"""Centralized (single-node) skyline algorithms behind the common
algorithm interface.

These are the building blocks the MapReduce algorithms use locally
(BNL, SFS, bitmap) plus the brute-force oracle — exposed as first-class
algorithms for small data, examples, and as the test baseline. No
MapReduce jobs run; the pipeline stats carry only wall time.
"""

from __future__ import annotations

import time

import numpy as np

from repro.algorithms.base import RunEnvironment, SkylineAlgorithm, SkylineResult
from repro.core.bitmap import bitmap_skyline_indices
from repro.core.bnl import bnl_multipass_skyline_indices, bnl_skyline_indices
from repro.core.dnc import dnc_skyline_indices
from repro.core.reference import bruteforce_skyline_indices
from repro.core.sfs import sfs_skyline_indices
from repro.errors import ValidationError
from repro.mapreduce.metrics import PipelineStats

_METHODS = {
    "bnl": bnl_skyline_indices,
    "bnl-multipass": bnl_multipass_skyline_indices,
    "sfs": sfs_skyline_indices,
    "dnc": dnc_skyline_indices,
    "bitmap": bitmap_skyline_indices,
    "bruteforce": bruteforce_skyline_indices,
}


class CentralizedSkyline(SkylineAlgorithm):
    """Single-node skyline via BNL (unbounded or bounded multi-pass),
    SFS, divide & conquer, bitmap, or brute force.

    ``method_options`` are forwarded to the underlying routine, e.g.
    ``window_size`` for "bnl-multipass" or ``block_size`` for "dnc".
    """

    name = "centralized"

    def __init__(self, method: str = "sfs", **method_options):
        if method not in _METHODS:
            raise ValidationError(
                f"unknown method {method!r}; expected one of {sorted(_METHODS)}"
            )
        self.method = method
        self.method_options = method_options
        self.name = f"centralized-{method}"

    def _run(self, data: np.ndarray, env: RunEnvironment) -> SkylineResult:
        started = time.perf_counter()
        indices = np.sort(
            _METHODS[self.method](data, **self.method_options)
        )
        stats = PipelineStats()
        stats.wall_s = time.perf_counter() - started
        stats.simulated_s = stats.wall_s
        return SkylineResult(
            indices=indices.astype(np.int64),
            values=data[indices],
            stats=stats,
            algorithm=self.name,
        )
