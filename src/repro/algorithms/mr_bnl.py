"""MR-BNL baseline [Zhang, Zhou, Guan 2011], paper Section 2.2.

"The MapReduce - Block Nested Loop (MR-BNL) algorithm partitions each
data dimension into two halves, distributes the resulting data
partitions to mappers, and computes local skyline on each [partition]
using the Block Nested Loop (BNL) skyline algorithm. Finally, all local
skylines are sent to a single reducer to compute the global skyline."

Two chained jobs:

1. *local* — map tags every tuple with its 2^d subspace flag (bit k set
   iff the tuple is in the upper half of dimension k); one reducer per
   subspace computes the subspace's local skyline with BNL.
2. *merge* — a single reducer assembles the global skyline. Subspace
   flags allow skipping pairs: tuples of subspace ``a`` can dominate
   tuples of ``b`` only if ``a``'s flag bits are a subset of ``b``'s
   (a 1-bit of ``a`` over a 0-bit of ``b`` means ``a``'s tuples are
   strictly worse on that dimension).

The single merge reducer is exactly the serial bottleneck the paper's
MR-GPMRS removes.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional, Sequence, Tuple

import numpy as np

from repro.algorithms.base import RunEnvironment, SkylineAlgorithm, SkylineResult
from repro.algorithms.common import BufferingMapper, CACHE_BOUNDS, assemble_result
from repro.core.bnl import bnl_skyline_indices
from repro.core.dominance import DominanceCounter
from repro.core.pointset import PointSet
from repro.core.sfs import sfs_skyline_indices
from repro.mapreduce import counters as counter_names
from repro.mapreduce.cache import DistributedCache
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.metrics import PipelineStats
from repro.mapreduce.partitioners import hash_partitioner, single_partitioner
from repro.mapreduce.splits import contiguous_splits, kv_splits
from repro.mapreduce.types import IdentityMapper, Reducer, TaskContext


def subspace_flags(values: np.ndarray, midpoint: np.ndarray) -> np.ndarray:
    """Per-row 2^d subspace flag: bit k set iff value_k >= midpoint_k."""
    upper = values >= midpoint
    weights = (1 << np.arange(values.shape[1], dtype=np.int64))
    return upper.astype(np.int64) @ weights


def flag_can_dominate(a: int, b: int) -> bool:
    """Can subspace ``a`` hold tuples dominating tuples of ``b``?

    Only if ``a``'s upper-half bits are a subset of ``b``'s: wherever
    ``a`` is in the upper half and ``b`` in the lower, every tuple of
    ``a`` is strictly worse on that dimension.
    """
    return (a & ~b) == 0


class SubspaceMapper(BufferingMapper):
    """Tag tuples with their subspace flag; ship per-subspace batches."""

    def finish(self, points: PointSet, ctx: TaskContext) -> None:
        if len(points) == 0:
            return
        lows, highs = ctx.cache[CACHE_BOUNDS]
        midpoint = (np.asarray(lows) + np.asarray(highs)) / 2.0
        flags = subspace_flags(points.values, midpoint)
        for flag, block in points.split_by(flags):
            ctx.emit(int(flag), block)


class _LocalSkylineReducer(Reducer):
    """Per-subspace local skyline; the local algorithm is pluggable."""

    local_indices: Callable[[np.ndarray], np.ndarray] = staticmethod(
        bnl_skyline_indices
    )

    def reduce(self, key, values, ctx: TaskContext) -> None:
        merged = PointSet.concat(values)
        counter = DominanceCounter()
        keep = type(self).local_indices(merged.values, counter=counter)
        ctx.counters.inc(counter_names.TUPLE_COMPARES, counter.pairs)
        sky = merged.select(np.sort(keep))
        ctx.counters.inc(counter_names.LOCAL_SKYLINE_SIZE, len(sky))
        ctx.emit(int(key), sky)


class BNLLocalSkylineReducer(_LocalSkylineReducer):
    local_indices = staticmethod(bnl_skyline_indices)


class SFSLocalSkylineReducer(_LocalSkylineReducer):
    local_indices = staticmethod(sfs_skyline_indices)


class FlagMergeReducer(Reducer):
    """Single-reducer global merge with flag-incomparability filtering.

    Dominators are taken from the *unfiltered* snapshots, so iteration
    order cannot lose pruning power.
    """

    def setup(self, ctx: TaskContext) -> None:
        self._subspaces: Dict[int, PointSet] = {}

    def reduce(self, key, values, ctx: TaskContext) -> None:
        merged = values[0]
        for extra in values[1:]:
            merged = PointSet.concat([merged, extra])
        self._subspaces[int(key)] = merged

    def cleanup(self, ctx: TaskContext) -> None:
        counter = DominanceCounter()
        flags = sorted(self._subspaces)
        for b in flags:
            survivors = self._subspaces[b]
            for a in flags:
                if a == b or not flag_can_dominate(a, b):
                    continue
                ctx.counters.inc(counter_names.PARTITION_COMPARES)
                survivors = survivors.remove_dominated_by(
                    self._subspaces[a], counter
                )
            if len(survivors):
                ctx.emit(b, survivors)
        ctx.counters.inc(counter_names.TUPLE_COMPARES, counter.pairs)


class MRBNL(SkylineAlgorithm):
    """The MR-BNL baseline of Zhang et al."""

    name = "mr-bnl"
    local_reducer_factory = BNLLocalSkylineReducer

    def __init__(
        self,
        bounds: Optional[Tuple[Sequence[float], Sequence[float]]] = None,
        num_local_reducers: Optional[int] = None,
    ):
        self.bounds = bounds
        self.num_local_reducers = num_local_reducers

    def _run(self, data: np.ndarray, env: RunEnvironment) -> SkylineResult:
        started = time.perf_counter()
        stats = PipelineStats()
        cardinality, dimensionality = data.shape
        if cardinality == 0:
            stats.wall_s = time.perf_counter() - started
            stats.simulated_s = 0.0
            return SkylineResult(
                indices=np.empty(0, dtype=np.int64),
                values=np.empty((0, dimensionality)),
                stats=stats,
                algorithm=self.name,
            )
        if self.bounds is not None:
            bounds = (
                np.asarray(self.bounds[0], dtype=np.float64),
                np.asarray(self.bounds[1], dtype=np.float64),
            )
        else:
            bounds = (data.min(axis=0), data.max(axis=0))
        splits = contiguous_splits(data, env.resolved_num_mappers())
        local_reducers = self.num_local_reducers or min(
            2 ** dimensionality, env.cluster.reduce_slots
        )
        local_job = MapReduceJob(
            name=f"{self.name}-local",
            splits=splits,
            mapper_factory=SubspaceMapper,
            reducer_factory=self.local_reducer_factory,
            num_reducers=local_reducers,
            partitioner=hash_partitioner,
            cache=DistributedCache({CACHE_BOUNDS: bounds}),
            merge_point_blocks=True,
        )
        local_result = env.engine.run(local_job)
        stats.jobs.append(local_result.stats)

        merge_job = MapReduceJob(
            name=f"{self.name}-merge",
            splits=kv_splits(local_result.all_pairs(), 1),
            mapper_factory=IdentityMapper,
            reducer_factory=FlagMergeReducer,
            num_reducers=1,
            partitioner=single_partitioner,
        )
        merge_result = env.engine.run(merge_job)
        stats.jobs.append(merge_result.stats)

        indices, values = assemble_result(
            merge_result.all_pairs(), dimensionality
        )
        stats.wall_s = time.perf_counter() - started
        env.cluster.annotate(stats)
        return SkylineResult(
            indices=indices,
            values=values,
            stats=stats,
            algorithm=self.name,
        )


class MRSFS(MRBNL):
    """MR-SFS [Zhang et al.]: MR-BNL with presorted (SFS) local
    skylines. The paper skips it experimentally ("less efficient than
    MR-BNL" on their testbed); included for completeness."""

    name = "mr-sfs"
    local_reducer_factory = SFSLocalSkylineReducer
