"""MR-GPSRS: Grid Partitioning based Single-Reducer Skyline computation
(paper Section 4, Algorithms 3-6, Figure 4).

Mappers compute bitstring-pruned per-partition local skylines and strip
false positives with ``ComparePartitions``; a single reducer merges all
mapper outputs per partition (Algorithm 6 lines 1-6), strips remaining
false positives across partitions (lines 7-8) and outputs the global
skyline.
"""

from __future__ import annotations

from repro.algorithms.common import (
    CACHE_BITSTRING,
    CACHE_GRID,
    BufferingMapper,
    compare_partitions_within,
    merge_partition_skylines,
    partition_local_skylines,
)
from repro.algorithms.grid_base import GridSkylineBase
from repro.core.pointset import PointSet
from repro.grid.bitstring import Bitstring
from repro.mapreduce.cache import DistributedCache
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.partitioners import single_partitioner
from repro.mapreduce.types import Reducer, TaskContext


class GPSRSMapper(BufferingMapper):
    """Algorithm 3: pruned local skylines per partition, ADR-filtered."""

    def finish(self, points: PointSet, ctx: TaskContext) -> None:
        grid = ctx.cache[CACHE_GRID]
        bitstring = Bitstring.from_bytes(grid, ctx.cache[CACHE_BITSTRING])
        skylines = partition_local_skylines(points, grid, bitstring, ctx)
        compare_partitions_within(skylines, grid, ctx)
        if skylines:
            ctx.emit(0, skylines)


class GPSRSReducer(Reducer):
    """Algorithm 6: merge mapper outputs into the global skyline."""

    def reduce(self, key, values, ctx: TaskContext) -> None:
        grid = ctx.cache[CACHE_GRID]
        merged = merge_partition_skylines(values, ctx)
        compare_partitions_within(merged, grid, ctx)
        for cell in sorted(merged):
            if len(merged[cell]):
                ctx.emit(cell, merged[cell])


class MRGPSRS(GridSkylineBase):
    """The MR-GPSRS algorithm (paper Section 4)."""

    name = "mr-gpsrs"

    def _make_skyline_job(self, splits, grid, bitstring, env) -> MapReduceJob:
        return MapReduceJob(
            name="gpsrs-skyline",
            splits=splits,
            mapper_factory=GPSRSMapper,
            reducer_factory=GPSRSReducer,
            num_reducers=1,
            partitioner=single_partitioner,
            cache=DistributedCache(
                {CACHE_GRID: grid, CACHE_BITSTRING: bitstring.to_bytes()}
            ),
        )
