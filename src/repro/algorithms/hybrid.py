"""Hybrid GPSRS/GPMRS switching — the paper's stated future work.

Section 8: "Multiple reducers in MR-GPMRS do not give the best
performance when the skyline fraction is low in the input data set. To
obtain optimal performance on arbitrary inputs, a hybrid method can be
developed by combining MR-GPSRS and MR-GPMRS. Such a method should be
able to switch between the two algorithms automatically, and
intelligently decide how many reducers to use."

The switch implemented here estimates the skyline fraction from a
deterministic random sample (the sample's exact skyline fraction is an
upper bound of the full data's, but it is monotone in distribution
hardness, which is all the decision needs):

* fraction below ``threshold`` — the skyline is small; the single
  reducer of MR-GPSRS wins (paper Sections 7.2-7.3).
* fraction at or above ``threshold`` — large skylines; use MR-GPMRS,
  with a reducer count scaled between the cluster's node count and its
  full reduce-slot capacity as the estimated fraction grows
  (Figure 10: anti-correlated data keeps improving up to 17 reducers).
"""

from __future__ import annotations

import time
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.algorithms.base import RunEnvironment, SkylineAlgorithm, SkylineResult
from repro.algorithms.gpmrs import MRGPMRS
from repro.algorithms.gpsrs import MRGPSRS
from repro.core.sfs import sfs_skyline_indices
from repro.errors import ValidationError
from repro.grid.ppd import DEFAULT_TPP


class HybridGridSkyline(SkylineAlgorithm):
    """Auto-switching MR-GPSRS / MR-GPMRS."""

    name = "mr-hybrid"

    def __init__(
        self,
        threshold: float = 0.15,
        sample_size: int = 1024,
        sample_seed: int = 0,
        ppd: Optional[int] = None,
        ppd_strategy: str = "equation4",
        tpp: int = DEFAULT_TPP,
        bounds: Optional[Tuple[Sequence[float], Sequence[float]]] = None,
        merge_strategy: str = "computation",
    ):
        if not 0.0 < threshold < 1.0:
            raise ValidationError(
                f"threshold must be in (0, 1), got {threshold}"
            )
        if sample_size < 8:
            raise ValidationError(
                f"sample_size must be >= 8, got {sample_size}"
            )
        self.threshold = threshold
        self.sample_size = sample_size
        self.sample_seed = sample_seed
        self.ppd = ppd
        self.ppd_strategy = ppd_strategy
        self.tpp = tpp
        self.bounds = bounds
        self.merge_strategy = merge_strategy

    def estimate_skyline_fraction(self, data: np.ndarray) -> float:
        """Exact skyline fraction of a deterministic random sample."""
        n = data.shape[0]
        if n == 0:
            return 0.0
        rng = np.random.default_rng(self.sample_seed)
        if n <= self.sample_size:
            sample = data
        else:
            sample = data[rng.choice(n, self.sample_size, replace=False)]
        return sfs_skyline_indices(sample).shape[0] / sample.shape[0]

    def choose_num_reducers(self, fraction: float, env: RunEnvironment) -> int:
        """Scale reducers with the estimated skyline fraction."""
        low, high = env.cluster.num_nodes, env.cluster.reduce_slots
        if high <= low:
            return low
        scale = min(1.0, max(0.0, (fraction - self.threshold) / 0.5))
        return int(round(low + scale * (high - low)))

    def _run(self, data: np.ndarray, env: RunEnvironment) -> SkylineResult:
        started = time.perf_counter()
        fraction = self.estimate_skyline_fraction(data)
        grid_kwargs = dict(
            ppd=self.ppd,
            ppd_strategy=self.ppd_strategy,
            tpp=self.tpp,
            bounds=self.bounds,
        )
        if fraction >= self.threshold:
            reducers = self.choose_num_reducers(fraction, env)
            delegate = MRGPMRS(
                num_reducers=reducers,
                merge_strategy=self.merge_strategy,
                **grid_kwargs,
            )
        else:
            delegate = MRGPSRS(**grid_kwargs)
        result = delegate._run(data, env)
        result.algorithm = self.name
        result.artifacts["hybrid_estimated_fraction"] = fraction
        result.artifacts["hybrid_delegate"] = delegate.name
        if delegate.name == "mr-gpmrs":
            result.artifacts["hybrid_num_reducers"] = delegate.num_reducers
        result.stats.wall_s = time.perf_counter() - started
        return result
