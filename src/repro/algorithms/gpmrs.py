"""MR-GPMRS: Grid Partitioning based Multiple-Reducer Skyline
computation (paper Section 5, Algorithms 8-9, Figure 5).

The mapper side is MR-GPSRS's (pruned per-partition local skylines,
ADR-filtered) plus the group routing of Algorithm 8 lines 11-19: the
pruned bitstring deterministically yields independent partition groups
(Algorithm 7), groups are merged down to the reducer count
(Section 5.4.1), and each mapper sends every reducer group the local
skylines of the partitions it covers.

Each reducer then computes its part of the global skyline completely
independently (Lemma 2) — Algorithm 9 — and outputs local skylines
only for the partitions it is *responsible* for (Section 5.4.2's
duplicate elimination).

Because grouping is a pure function of the cached bitstring and the
cached merge configuration, mappers and reducers recompute identical
groups — the consistency Algorithm 8 line 11 requires.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.algorithms.common import (
    CACHE_BITSTRING,
    CACHE_GRID,
    CACHE_MERGE_STRATEGY,
    CACHE_NUM_REDUCERS,
    BufferingMapper,
    compare_partitions_within,
    merge_partition_skylines,
    partition_local_skylines,
)
from repro.algorithms.grid_base import GridSkylineBase
from repro.core.pointset import PointSet
from repro.errors import AlgorithmError, ValidationError
from repro.grid.bitstring import Bitstring
from repro.grid.groups import ReducerGroup, generate_independent_groups, merge_groups
from repro.grid.ppd import DEFAULT_TPP
from repro.mapreduce.cache import DistributedCache
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.partitioners import direct_partitioner
from repro.mapreduce.types import Reducer, TaskContext


def _reducer_groups(ctx: TaskContext) -> Sequence[ReducerGroup]:
    """The deterministic grouping shared by mappers and reducers."""
    grid = ctx.cache[CACHE_GRID]
    bitstring = Bitstring.from_bytes(grid, ctx.cache[CACHE_BITSTRING])
    groups = generate_independent_groups(grid, bitstring)
    return merge_groups(
        groups,
        ctx.cache[CACHE_NUM_REDUCERS],
        strategy=ctx.cache[CACHE_MERGE_STRATEGY],
    )


class GPMRSMapper(BufferingMapper):
    """Algorithm 8: local skylines + independent-group routing."""

    def finish(self, points: PointSet, ctx: TaskContext) -> None:
        grid = ctx.cache[CACHE_GRID]
        bitstring = Bitstring.from_bytes(grid, ctx.cache[CACHE_BITSTRING])
        skylines = partition_local_skylines(points, grid, bitstring, ctx)
        compare_partitions_within(skylines, grid, ctx)
        for group in _reducer_groups(ctx):
            share = {
                p: skylines[p] for p in group.partitions if p in skylines
            }
            if share:
                ctx.emit(group.group_id, share)


class GPMRSReducer(Reducer):
    """Algorithm 9: one reducer group's share of the global skyline."""

    def reduce(self, key, values, ctx: TaskContext) -> None:
        grid = ctx.cache[CACHE_GRID]
        groups = _reducer_groups(ctx)
        gid = int(key)
        if not 0 <= gid < len(groups):
            raise AlgorithmError(f"reducer received unknown group id {gid}")
        group = groups[gid]
        allowed = set(group.partitions)
        merged = merge_partition_skylines(values, ctx)
        stray = set(merged) - allowed
        if stray:
            raise AlgorithmError(
                f"group {gid} received partitions outside its scope: "
                f"{sorted(stray)[:5]}"
            )
        compare_partitions_within(merged, grid, ctx)
        for cell in group.responsible:
            if cell in merged and len(merged[cell]):
                ctx.emit(cell, merged[cell])


class MRGPMRS(GridSkylineBase):
    """The MR-GPMRS algorithm (paper Section 5).

    ``num_reducers`` defaults to the cluster's nodes ("by default,
    MR-GPMRS uses one reducer per node" — Section 7.1);
    ``merge_strategy`` picks how surplus groups are merged
    ('computation', the paper's choice, or 'communication').
    """

    name = "mr-gpmrs"

    def __init__(
        self,
        num_reducers: Optional[int] = None,
        merge_strategy: str = "computation",
        ppd: Optional[int] = None,
        ppd_strategy: str = "equation4",
        tpp: int = DEFAULT_TPP,
        bounds: Optional[Tuple[Sequence[float], Sequence[float]]] = None,
        prune_bitstring: bool = True,
    ):
        super().__init__(
            ppd=ppd,
            ppd_strategy=ppd_strategy,
            tpp=tpp,
            bounds=bounds,
            prune_bitstring=prune_bitstring,
        )
        if num_reducers is not None and num_reducers < 1:
            raise ValidationError(
                f"num_reducers must be >= 1, got {num_reducers}"
            )
        if merge_strategy not in ("computation", "communication", "balanced"):
            raise ValidationError(
                f"unknown merge_strategy {merge_strategy!r}"
            )
        self.num_reducers = num_reducers
        self.merge_strategy = merge_strategy

    def _resolved_reducers(self, env) -> int:
        return self.num_reducers or env.cluster.num_nodes

    def _make_skyline_job(self, splits, grid, bitstring, env) -> MapReduceJob:
        r = self._resolved_reducers(env)
        return MapReduceJob(
            name="gpmrs-skyline",
            splits=splits,
            mapper_factory=GPMRSMapper,
            reducer_factory=GPMRSReducer,
            num_reducers=r,
            partitioner=direct_partitioner,
            cache=DistributedCache(
                {
                    CACHE_GRID: grid,
                    CACHE_BITSTRING: bitstring.to_bytes(),
                    CACHE_NUM_REDUCERS: r,
                    CACHE_MERGE_STRATEGY: self.merge_strategy,
                }
            ),
        )

    def _collect_artifacts(self, artifacts, grid, bitstring, env) -> None:
        groups = generate_independent_groups(grid, bitstring)
        artifacts["independent_groups"] = groups
        artifacts["reducer_groups"] = merge_groups(
            groups, self._resolved_reducers(env), strategy=self.merge_strategy
        )
