"""MapReduce jobs that precede skyline computation.

* Bounds job — min/max per dimension (the synthetic-domain analogue of
  knowing the data space; optional).
* Bitstring job — Algorithms 1 and 2 / Figure 3: local bitstrings per
  mapper, OR-merged and dominance-pruned by a single reducer.
* Adaptive-PPD job — the Section 3.3 extension: every mapper emits one
  local bitstring per candidate PPD; the reducer merges per candidate,
  measures non-empty counts ρ_j, selects the PPD, and returns the
  pruned bitstring of the chosen grid.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np

from repro.algorithms.common import (
    CACHE_BOUNDS,
    CACHE_CANDIDATES,
    CACHE_CARDINALITY,
    CACHE_GRID,
    CACHE_PPD_STRATEGY,
    CACHE_PRUNE,
    CACHE_TPP,
    BufferingMapper,
)
from repro.core.pointset import PointSet
from repro.errors import AlgorithmError
from repro.grid.bitstring import Bitstring
from repro.grid.grid import Grid
from repro.grid.ppd import select_ppd
from repro.mapreduce.cache import DistributedCache
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.partitioners import single_partitioner
from repro.mapreduce.types import InputSplit, Reducer, TaskContext


# -- bounds job ---------------------------------------------------------


class BoundsMapper(BufferingMapper):
    """Emit the split's per-dimension (min, max)."""

    def finish(self, points: PointSet, ctx: TaskContext) -> None:
        if len(points) == 0:
            return
        ctx.emit(0, (points.values.min(axis=0), points.values.max(axis=0)))


class BoundsReducer(Reducer):
    """Merge per-split bounds into global (lows, highs)."""

    def reduce(self, key, values, ctx: TaskContext) -> None:
        lows = np.minimum.reduce([v[0] for v in values])
        highs = np.maximum.reduce([v[1] for v in values])
        ctx.emit("bounds", (lows, highs))


def make_bounds_job(splits: Sequence[InputSplit]) -> MapReduceJob:
    return MapReduceJob(
        name="bounds",
        splits=splits,
        mapper_factory=BoundsMapper,
        reducer_factory=BoundsReducer,
        num_reducers=1,
        partitioner=single_partitioner,
    )


# -- fixed-PPD bitstring job (Algorithms 1-2) -----------------------------


class BitstringMapper(BufferingMapper):
    """Algorithm 1: the local bitstring of one split."""

    def finish(self, points: PointSet, ctx: TaskContext) -> None:
        grid: Grid = ctx.cache[CACHE_GRID]
        if len(points):
            local = Bitstring.from_data(grid, points.values)
        else:
            local = Bitstring(grid)
        ctx.emit(0, local.to_bytes())


class BitstringReducer(Reducer):
    """Algorithm 2: OR-merge local bitstrings, then prune (Eq. 2).

    Pruning can be disabled through the cache (the Eq. 1 ablation:
    occupancy-only bitstring, no dominated-partition elimination).
    """

    def reduce(self, key, values, ctx: TaskContext) -> None:
        grid: Grid = ctx.cache[CACHE_GRID]
        merged = Bitstring(grid)
        for payload in values:
            merged.bits |= Bitstring.from_bytes(grid, payload).bits
        if ctx.cache.get(CACHE_PRUNE, True):
            merged = merged.prune_dominated()
        ctx.emit("bitstring", merged.to_bytes())


def make_bitstring_job(
    splits: Sequence[InputSplit], grid: Grid, prune: bool = True
) -> MapReduceJob:
    return MapReduceJob(
        name="bitstring",
        splits=splits,
        mapper_factory=BitstringMapper,
        reducer_factory=BitstringReducer,
        num_reducers=1,
        partitioner=single_partitioner,
        cache=DistributedCache({CACHE_GRID: grid, CACHE_PRUNE: bool(prune)}),
    )


# -- adaptive-PPD job (Section 3.3) ---------------------------------------


class AdaptivePPDMapper(BufferingMapper):
    """Emit one local bitstring per candidate PPD, keyed by the PPD."""

    def finish(self, points: PointSet, ctx: TaskContext) -> None:
        lows, highs = ctx.cache[CACHE_BOUNDS]
        candidates: Sequence[int] = ctx.cache[CACHE_CANDIDATES]
        for j in candidates:
            grid = Grid(j, lows, highs)
            if len(points):
                local = Bitstring.from_data(grid, points.values)
            else:
                local = Bitstring(grid)
            ctx.emit(int(j), local.to_bytes())


class AdaptivePPDReducer(Reducer):
    """Merge per-candidate, measure ρ_j, select, prune, emit."""

    def setup(self, ctx: TaskContext) -> None:
        self._merged: Dict[int, Bitstring] = {}

    def reduce(self, key, values, ctx: TaskContext) -> None:
        lows, highs = ctx.cache[CACHE_BOUNDS]
        grid = Grid(int(key), lows, highs)
        merged = Bitstring(grid)
        for payload in values:
            merged.bits |= Bitstring.from_bytes(grid, payload).bits
        self._merged[int(key)] = merged

    def cleanup(self, ctx: TaskContext) -> None:
        if not self._merged:
            return
        cardinality = ctx.cache[CACHE_CARDINALITY]
        strategy = ctx.cache[CACHE_PPD_STRATEGY]
        tpp = ctx.cache[CACHE_TPP]
        rho = {j: bs.count() for j, bs in self._merged.items()}
        chosen = select_ppd(
            cardinality,
            rho,
            self._merged[next(iter(self._merged))].grid.d,
            strategy=strategy,
            tpp=tpp,
        )
        pruned = self._merged[chosen].prune_dominated()
        ctx.emit("ppd", (chosen, rho))
        ctx.emit("bitstring", pruned.to_bytes())


def make_adaptive_ppd_job(
    splits: Sequence[InputSplit],
    bounds: Tuple[np.ndarray, np.ndarray],
    candidates: Sequence[int],
    cardinality: int,
    strategy: str,
    tpp: int,
) -> MapReduceJob:
    return MapReduceJob(
        name="bitstring-adaptive",
        splits=splits,
        mapper_factory=AdaptivePPDMapper,
        reducer_factory=AdaptivePPDReducer,
        num_reducers=1,
        partitioner=single_partitioner,
        cache=DistributedCache(
            {
                CACHE_BOUNDS: bounds,
                CACHE_CANDIDATES: tuple(int(j) for j in candidates),
                CACHE_CARDINALITY: int(cardinality),
                CACHE_PPD_STRATEGY: strategy,
                CACHE_TPP: int(tpp),
            }
        ),
    )


def extract_bitstring(job_result, grid: Grid) -> Bitstring:
    """Pull the pruned bitstring payload out of a bitstring-job result."""
    for key, value in job_result.all_pairs():
        if key == "bitstring":
            return Bitstring.from_bytes(grid, value)
    raise AlgorithmError("bitstring job produced no 'bitstring' output")


def extract_ppd_choice(job_result) -> Tuple[int, Dict[int, int]]:
    """Pull (chosen PPD, ρ_j measurements) out of an adaptive result."""
    for key, value in job_result.all_pairs():
        if key == "ppd":
            return int(value[0]), dict(value[1])
    raise AlgorithmError("adaptive PPD job produced no 'ppd' output")
