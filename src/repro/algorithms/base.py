"""Algorithm interface and result type.

Every skyline algorithm — the paper's MR-GPSRS/MR-GPMRS, the baselines,
and the centralized references — implements :class:`SkylineAlgorithm`:
configuration lives on the instance, :meth:`compute` takes the data and
the runtime environment and returns a :class:`SkylineResult`.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

import numpy as np

from repro.core.order import as_dataset, normalize
from repro.errors import ValidationError
from repro.mapreduce.cluster import SimulatedCluster
from repro.mapreduce.engine import SerialEngine
from repro.mapreduce.metrics import PipelineStats
from repro.obs.events import PipelineEnd, PipelineStart


@dataclass
class SkylineResult:
    """Outcome of one skyline computation.

    ``indices`` are row indices into the *caller's* dataset, ascending;
    ``values`` the corresponding rows (in the caller's original scale,
    i.e. before MIN/MAX normalisation). ``stats`` aggregates the
    MapReduce pipeline execution; ``artifacts`` exposes inspectable
    intermediates (grid, bitstring, independent groups, ...).
    """

    indices: np.ndarray
    values: np.ndarray
    stats: PipelineStats
    algorithm: str
    artifacts: Dict[str, Any] = field(default_factory=dict)

    def __len__(self) -> int:
        return int(self.indices.shape[0])

    @property
    def runtime_s(self) -> Optional[float]:
        """Simulated cluster makespan (falls back to wall time)."""
        if self.stats.simulated_s is not None:
            return self.stats.simulated_s
        return self.stats.wall_s

    def skyline_fraction(self, cardinality: int) -> float:
        if cardinality <= 0:
            return 0.0
        return len(self) / cardinality

    def id_set(self) -> set:
        return set(self.indices.tolist())


@dataclass
class RunEnvironment:
    """The runtime a computation executes in."""

    cluster: SimulatedCluster = field(default_factory=SimulatedCluster)
    engine: Any = field(default_factory=SerialEngine)
    num_mappers: Optional[int] = None

    def resolved_num_mappers(self) -> int:
        if self.num_mappers is not None:
            if self.num_mappers < 1:
                raise ValidationError(
                    f"num_mappers must be >= 1, got {self.num_mappers}"
                )
            return self.num_mappers
        return self.cluster.map_slots


class SkylineAlgorithm(abc.ABC):
    """Base class: normalisation boundary + environment plumbing."""

    #: Registry name, e.g. "mr-gpmrs"; subclasses override.
    name: str = "abstract"

    def compute(
        self,
        data,
        prefs=None,
        cluster: Optional[SimulatedCluster] = None,
        engine=None,
        num_mappers: Optional[int] = None,
    ) -> SkylineResult:
        """Compute the skyline of ``data``.

        ``prefs`` is a per-dimension MIN/MAX preference (default: all
        MIN, the paper's convention). ``cluster`` configures the
        simulated cluster; ``engine`` the executor; ``num_mappers`` the
        number of input splits (default: one wave of the cluster's map
        slots).
        """
        original = as_dataset(data)
        normalized = normalize(original, prefs)
        env = RunEnvironment(
            cluster=cluster or SimulatedCluster(),
            engine=engine or SerialEngine(),
            num_mappers=num_mappers,
        )
        bus = getattr(env.engine, "bus", None)
        if bus is not None and bus.active:
            bus.emit(PipelineStart(algorithm=self.name))
        result = self._run(normalized, env)
        # Report values from the caller's original (un-negated) data.
        result.values = original[result.indices]
        if bus is not None and bus.active:
            bus.emit(
                PipelineEnd(
                    algorithm=self.name,
                    jobs=len(result.stats.jobs),
                    wall_s=result.stats.wall_s,
                    simulated_s=result.stats.simulated_s,
                    skyline_size=len(result),
                )
            )
        return result

    @abc.abstractmethod
    def _run(self, data: np.ndarray, env: RunEnvironment) -> SkylineResult:
        """Compute over min-is-better ``data``; return indices+stats."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"
