"""String-keyed registry of skyline algorithms.

The public entry point :func:`repro.skyline` resolves names here, so
user code and the bench harness can select algorithms uniformly.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.algorithms.base import SkylineAlgorithm
from repro.algorithms.centralized import CentralizedSkyline
from repro.algorithms.gpmrs import MRGPMRS
from repro.algorithms.gpsrs import MRGPSRS
from repro.algorithms.hybrid import HybridGridSkyline
from repro.algorithms.mr_angle import MRAngle
from repro.algorithms.mr_bitmap import MRBitmap
from repro.algorithms.mr_bnl import MRBNL, MRSFS
from repro.algorithms.sky_mr import SKYMR
from repro.errors import UnknownAlgorithmError

_REGISTRY: Dict[str, Callable[..., SkylineAlgorithm]] = {
    "mr-gpsrs": MRGPSRS,
    "mr-gpmrs": MRGPMRS,
    "mr-bnl": MRBNL,
    "mr-sfs": MRSFS,
    "mr-angle": MRAngle,
    "mr-bitmap": MRBitmap,
    "mr-hybrid": HybridGridSkyline,
    "sky-mr": SKYMR,
    "bnl": lambda **kw: CentralizedSkyline(method="bnl", **kw),
    "bnl-multipass": lambda **kw: CentralizedSkyline(
        method="bnl-multipass", **{"window_size": 128, **kw}
    ),
    "sfs": lambda **kw: CentralizedSkyline(method="sfs", **kw),
    "dnc": lambda **kw: CentralizedSkyline(method="dnc", **kw),
    "bitmap": lambda **kw: CentralizedSkyline(method="bitmap", **kw),
    "bruteforce": lambda **kw: CentralizedSkyline(method="bruteforce", **kw),
}


def available_algorithms() -> List[str]:
    """Sorted names accepted by :func:`make_algorithm`."""
    return sorted(_REGISTRY)


def make_algorithm(name: str, **kwargs) -> SkylineAlgorithm:
    """Instantiate an algorithm by registry name.

    Keyword arguments are forwarded to the algorithm's constructor
    (e.g. ``num_reducers`` for mr-gpmrs, ``ppd`` for the grid
    algorithms).
    """
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise UnknownAlgorithmError(
            f"unknown algorithm {name!r}; available: {available_algorithms()}"
        ) from None
    return factory(**kwargs)
