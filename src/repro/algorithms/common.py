"""Shared building blocks of the MapReduce skyline algorithms.

* :class:`BufferingMapper` — the Hadoop idiom the paper's mappers use:
  accumulate the whole split in ``map`` and do the real work once in
  ``cleanup`` (Algorithms 1, 3 and 8 all emit only after the last
  tuple).
* :func:`partition_local_skylines` — Algorithm 3 / 8 lines 1-8:
  bitstring-pruned, per-partition local skylines.
* :func:`compare_partitions_within` — Algorithm 5 applied across a set
  of partition skylines (Algorithm 3 lines 9-10, Algorithm 6 lines 7-8,
  Algorithm 9 lines 9-10), with exact partition-compare counting for
  the Figure 11 measurements.
* :func:`assemble_result` — turn reducer (partition, PointSet) outputs
  into a :class:`~repro.algorithms.base.SkylineResult`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

import numpy as np

from repro.core.dominance import DominanceCounter, dominated_mask
from repro.core.pointset import PointSet
from repro.errors import AlgorithmError
from repro.grid.bitstring import Bitstring
from repro.grid.grid import Grid
from repro.mapreduce import counters as counter_names
from repro.mapreduce.metrics import PipelineStats
from repro.mapreduce.types import Mapper, TaskContext

# Distributed-cache keys shared by the algorithms.
CACHE_GRID = "grid"
CACHE_BITSTRING = "bitstring"
CACHE_NUM_REDUCERS = "num_reducers"
CACHE_MERGE_STRATEGY = "merge_strategy"
CACHE_BOUNDS = "bounds"
CACHE_CANDIDATES = "ppd_candidates"
CACHE_CARDINALITY = "cardinality"
CACHE_PPD_STRATEGY = "ppd_strategy"
CACHE_TPP = "tpp"
CACHE_PRUNE = "prune_bitstring"


class BufferingMapper(Mapper):
    """Gathers the whole split; subclasses implement :meth:`finish`
    over it as a :class:`PointSet`.

    Two input protocols, one contract. On the runtime's block fast
    path, :meth:`map_block` receives the split as one columnar block —
    zero per-tuple Python work. On the legacy record path, ``map``
    accumulates (row_id, row) records and ``cleanup`` assembles the
    same PointSet. Either way :meth:`finish` sees an identical block,
    so emissions, counters, and shuffle bytes match exactly.
    """

    def setup(self, ctx: TaskContext) -> None:
        self._ids: List[int] = []
        self._rows: List[np.ndarray] = []
        self._blocks: List[PointSet] = []

    def map(self, key, value, ctx: TaskContext) -> None:
        self._ids.append(int(key))
        self._rows.append(np.asarray(value, dtype=np.float64))

    def map_block(self, points: PointSet, ctx: TaskContext) -> None:
        self._blocks.append(points)

    def cleanup(self, ctx: TaskContext) -> None:
        parts = list(self._blocks)
        if self._rows:
            parts.append(
                PointSet(
                    np.asarray(self._ids, dtype=np.int64), np.vstack(self._rows)
                )
            )
        if not parts:
            points = PointSet.empty(self._dimensionality(ctx))
        elif len(parts) == 1:
            points = parts[0]
        else:
            points = PointSet.concat(parts)
        self.finish(points, ctx)

    def _dimensionality(self, ctx: TaskContext) -> int:
        grid = ctx.cache.get(CACHE_GRID)
        if grid is not None:
            return grid.d
        bounds = ctx.cache.get(CACHE_BOUNDS)
        if bounds is not None:
            return len(bounds[0])
        return 1

    def finish(self, points: PointSet, ctx: TaskContext) -> None:
        raise NotImplementedError


def partition_local_skylines(
    points: PointSet, grid: Grid, bitstring: Bitstring, ctx: TaskContext
) -> Dict[int, PointSet]:
    """Per-partition local skylines with bitstring pruning.

    Algorithm 3 (and 8) lines 1-8: a tuple is processed only if its
    partition's bit is set; each surviving partition's tuples are
    reduced to the partition-local skyline (the vectorised equivalent
    of repeated ``InsertTuple`` calls).
    """
    result: Dict[int, PointSet] = {}
    if len(points) == 0:
        return result
    cells = grid.cell_indices(points.values)
    keep = bitstring.bits[cells]
    pruned = int((~keep).sum())
    if pruned:
        ctx.counters.inc(counter_names.TUPLES_PRUNED_BY_BITSTRING, pruned)
    counter = DominanceCounter()
    for cell, members in points.select(keep).split_by(cells[keep]):
        result[cell] = members.local_skyline(counter)
    ctx.counters.inc(counter_names.TUPLE_COMPARES, counter.pairs)
    ctx.counters.inc(
        counter_names.LOCAL_SKYLINE_SIZE, sum(len(s) for s in result.values())
    )
    return result


def compare_partitions_within(
    skylines: Dict[int, PointSet], grid: Grid, ctx: TaskContext
) -> None:
    """Algorithm 5 across all partitions present (in place).

    For every partition ``p`` and every other present partition
    ``pi ∈ p.ADR``, remove from ``S_p`` the tuples dominated by
    ``S_pi``. One increment of the partition-compare counter per
    (p, pi) pair — exactly the quantity the Section 6 cost model
    estimates and Figure 11 measures.

    A bounding-box screen skips the vectorised dominance work when no
    tuple of ``S_pi`` can possibly dominate a tuple of ``S_p`` (some
    axis where pi's componentwise minimum exceeds p's componentwise
    maximum). The counters are charged exactly as if the comparison ran
    — the screen is a wall-clock optimisation of *our* runtime, not of
    the modelled algorithm, so simulated runtimes and Figure 11 stay
    faithful to the paper's implementation.
    """
    order = sorted(skylines)
    if not order:
        return
    coord_matrix = np.asarray([grid.coords_of(p) for p in order])
    counter = DominanceCounter()
    mins = {
        p: skylines[p].values.min(axis=0) for p in order if len(skylines[p])
    }
    for i, p in enumerate(order):
        sp = skylines[p]
        # ADR membership, vectorised over all present partitions:
        # coords(q) <= coords(p) on every axis, q != p.
        leq = (coord_matrix <= coord_matrix[i]).all(axis=1)
        leq[i] = False
        adr_positions = np.flatnonzero(leq)
        ctx.counters.inc(
            counter_names.PARTITION_COMPARES, int(adr_positions.shape[0])
        )
        if len(sp) == 0:
            continue
        sp_max = sp.values.max(axis=0)
        for j in adr_positions.tolist():
            sq = skylines[order[j]]
            if len(sp) == 0 or len(sq) == 0:
                continue
            counter.charge(len(sq), len(sp))
            if not (mins[order[j]] <= sp_max).all():
                continue  # screened: no dominance possible
            mask = dominated_mask(sp.values, sq.values)
            if mask.any():
                sp = sp.select(~mask)
                if len(sp) == 0:
                    break  # counters for the remaining pairs were
                    # incremented up-front; no work remains
                sp_max = sp.values.max(axis=0)
        skylines[p] = sp
    ctx.counters.inc(counter_names.TUPLE_COMPARES, counter.pairs)


def merge_partition_skylines(
    chunks: Iterable[Dict[int, PointSet]], ctx: TaskContext
) -> Dict[int, PointSet]:
    """Union per-mapper partition skylines (Algorithm 6 lines 1-6).

    Each incoming chunk is internally dominance-free per partition, so
    the union of one partition's chunks is reduced with cross-filtering
    merges (the vectorised form of the InsertTuple loop).
    """
    counter = DominanceCounter()
    merged: Dict[int, PointSet] = {}
    for chunk in chunks:
        for cell, sky in chunk.items():
            current = merged.get(cell)
            merged[cell] = sky if current is None else current.merge_skyline(
                sky, counter
            )
    ctx.counters.inc(counter_names.TUPLE_COMPARES, counter.pairs)
    return merged


def assemble_result(
    pairs: Iterable[Tuple[int, PointSet]],
    dimensionality: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """Collect reducer (partition, PointSet) outputs into sorted
    (indices, values) arrays, verifying no partition is duplicated."""
    seen = set()
    parts: List[PointSet] = []
    for cell, points in pairs:
        if cell in seen:
            raise AlgorithmError(
                f"partition {cell} reported by more than one reducer; "
                "duplicate elimination is broken"
            )
        seen.add(cell)
        parts.append(points)
    parts = [p for p in parts if len(p)]
    if not parts:
        return (
            np.empty(0, dtype=np.int64),
            np.empty((0, dimensionality)),
        )
    combined = PointSet.concat(parts)
    if np.unique(combined.ids).size != combined.ids.size:
        raise AlgorithmError(
            "reducers emitted duplicate row ids across partitions; "
            "responsibility-based duplicate elimination is broken"
        )
    order = np.argsort(combined.ids, kind="stable")
    return combined.ids[order], combined.values[order]


def make_pipeline_result_stats(chain_result) -> PipelineStats:
    return chain_result.stats
