"""SKY-MR [Park, Min, Shim, PVLDB 2013] — the sampling competitor.

The paper's related work contrasts its bitstring with SKY-MR: "Before
starting MapReduce, SKY-MR obtains a random sample of the entire data
set and builds a quadtree for the sample to identify dominated sampled
regions. In contrast, the bitstring used in this work does not require
sampling, and it is built in parallel by MapReduce."

Implemented here so the trade-off is measurable:

* Driver: draw a deterministic random sample, compute its skyline (the
  *sky-filter*), and build a **sky-quadtree** — a midpoint quadtree
  over the sample whose leaves are marked *dominated* when their best
  corner is dominated by a sample skyline point (then every possible
  tuple in the leaf is dominated).
* Job 1 (*local*): mappers drop tuples in dominated leaves, then
  sky-filter the rest against the sample skyline, and route survivors
  by leaf; one reducer per leaf computes the leaf's local skyline.
* Job 2 (*merge*): a single reducer merges leaf skylines, comparing a
  pair of leaves only when one's region can possibly dominate the
  other's (region best-corner vs worst-corner screening).

Fidelity note (documented deviation): Park et al. additionally
parallelise the *global* merge by replicating local skylines to the
regions they can dominate; this implementation keeps the simpler
single-reducer merge, so SKY-MR-lite's merge scales like MR-GPSRS's.
The sampling/quadtree pruning — the part the paper argues against — is
faithful.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.algorithms.base import RunEnvironment, SkylineAlgorithm, SkylineResult
from repro.algorithms.common import BufferingMapper
from repro.core.dominance import DominanceCounter, dominated_mask
from repro.core.pointset import PointSet
from repro.core.sfs import sfs_skyline_indices
from repro.errors import ValidationError
from repro.mapreduce import counters as counter_names
from repro.mapreduce.cache import DistributedCache
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.metrics import PipelineStats
from repro.mapreduce.partitioners import hash_partitioner, single_partitioner
from repro.mapreduce.splits import contiguous_splits, kv_splits
from repro.mapreduce.types import IdentityMapper, Reducer, TaskContext

CACHE_QUADTREE = "sky_quadtree"
CACHE_SAMPLE_SKYLINE = "sample_skyline"


@dataclass(frozen=True)
class QuadtreeLeaf:
    """One leaf region of the sky-quadtree."""

    leaf_id: int
    lows: tuple
    highs: tuple
    dominated: bool

    def min_corner(self) -> np.ndarray:
        return np.asarray(self.lows)

    def max_corner(self) -> np.ndarray:
        return np.asarray(self.highs)


class SkyQuadtree:
    """Midpoint quadtree over a sample, with dominated-leaf marking.

    Built once on the driver; shipped to all tasks via the distributed
    cache (the sample-based analogue of the paper's bitstring).
    """

    def __init__(
        self,
        sample: np.ndarray,
        lows: np.ndarray,
        highs: np.ndarray,
        leaf_capacity: int = 32,
        max_depth: int = 6,
    ):
        if leaf_capacity < 1:
            raise ValidationError(
                f"leaf_capacity must be >= 1, got {leaf_capacity}"
            )
        if max_depth < 0:
            raise ValidationError(f"max_depth must be >= 0, got {max_depth}")
        self.lows = np.asarray(lows, dtype=np.float64)
        self.highs = np.asarray(highs, dtype=np.float64)
        self.d = int(self.lows.shape[0])
        self.leaf_capacity = leaf_capacity
        self.max_depth = max_depth
        self.leaves: List[QuadtreeLeaf] = []
        sample = np.asarray(sample, dtype=np.float64)
        sample_skyline = (
            sample[sfs_skyline_indices(sample)]
            if sample.shape[0]
            else np.empty((0, self.d))
        )
        self.sample_skyline = sample_skyline
        self._build(sample, self.lows.copy(), self.highs.copy(), 0)

    def _build(self, points, lows, highs, depth) -> None:
        if depth >= self.max_depth or points.shape[0] <= self.leaf_capacity:
            dominated = bool(
                self.sample_skyline.shape[0]
                and dominated_mask(
                    lows.reshape(1, -1), self.sample_skyline
                )[0]
            )
            self.leaves.append(
                QuadtreeLeaf(
                    leaf_id=len(self.leaves),
                    lows=tuple(lows.tolist()),
                    highs=tuple(highs.tolist()),
                    dominated=dominated,
                )
            )
            return
        mid = (lows + highs) / 2.0
        upper = points >= mid  # bool (n, d)
        codes = upper.astype(np.int64) @ (1 << np.arange(self.d))
        for child in range(1 << self.d):
            bits = np.array(
                [(child >> k) & 1 for k in range(self.d)], dtype=bool
            )
            child_lows = np.where(bits, mid, lows)
            child_highs = np.where(bits, highs, mid)
            self._build(
                points[codes == child], child_lows, child_highs, depth + 1
            )

    def leaf_ids(self, data: np.ndarray) -> np.ndarray:
        """Leaf id per row (vectorised over leaves).

        Uses half-open leaf boxes [lows, highs) except at the global
        upper boundary, mirroring the grid's cell geometry.
        """
        data = np.asarray(data, dtype=np.float64)
        out = np.full(data.shape[0], -1, dtype=np.int64)
        top = self.highs
        for leaf in self.leaves:
            lo = np.asarray(leaf.lows)
            hi = np.asarray(leaf.highs)
            upper_ok = (data < hi) | ((hi >= top) & (data <= hi))
            inside = ((data >= lo) & upper_ok).all(axis=1)
            out[inside & (out < 0)] = leaf.leaf_id
        # Points outside the sample's bounding box are clamped to the
        # nearest leaf by re-testing with clipped coordinates.
        missing = out < 0
        if missing.any():
            clipped = np.clip(data[missing], self.lows, self.highs)
            out[missing] = self.leaf_ids(clipped)
        return out

    def leaf_by_id(self, leaf_id: int) -> QuadtreeLeaf:
        return self.leaves[leaf_id]


class SkyMRMapper(BufferingMapper):
    """Dominated-leaf drop + sky-filter + leaf routing."""

    def finish(self, points: PointSet, ctx: TaskContext) -> None:
        if len(points) == 0:
            return
        tree: SkyQuadtree = ctx.cache[CACHE_QUADTREE]
        sample_skyline: np.ndarray = ctx.cache[CACHE_SAMPLE_SKYLINE]
        ids = tree.leaf_ids(points.values)
        dominated_leaves = np.asarray(
            [tree.leaf_by_id(int(i)).dominated for i in ids]
        )
        survivors = points.select(~dominated_leaves)
        ids = ids[~dominated_leaves]
        ctx.counters.inc(
            counter_names.TUPLES_PRUNED_BY_BITSTRING,
            int(dominated_leaves.sum()),
        )
        if sample_skyline.shape[0] and len(survivors):
            counter = DominanceCounter()
            counter.charge(sample_skyline.shape[0], len(survivors))
            mask = dominated_mask(survivors.values, sample_skyline)
            ctx.counters.inc(counter_names.TUPLE_COMPARES, counter.pairs)
            ctx.counters.inc(
                counter_names.TUPLES_PRUNED_BY_BITSTRING, int(mask.sum())
            )
            ids = ids[~mask]
            survivors = survivors.select(~mask)
        for leaf, block in survivors.split_by(ids):
            ctx.emit(int(leaf), block)


class SkyMRLocalReducer(Reducer):
    """Per-leaf local skyline."""

    def reduce(self, key, values, ctx: TaskContext) -> None:
        merged = PointSet.concat(values)
        counter = DominanceCounter()
        sky = merged.local_skyline(counter)
        ctx.counters.inc(counter_names.TUPLE_COMPARES, counter.pairs)
        ctx.counters.inc(counter_names.LOCAL_SKYLINE_SIZE, len(sky))
        ctx.emit(int(key), sky)


class SkyMRMergeReducer(Reducer):
    """Single-reducer merge with region-dominance screening."""

    def setup(self, ctx: TaskContext) -> None:
        self._leaves: Dict[int, PointSet] = {}

    def reduce(self, key, values, ctx: TaskContext) -> None:
        merged = values[0]
        for extra in values[1:]:
            merged = PointSet.concat([merged, extra])
        self._leaves[int(key)] = merged

    def cleanup(self, ctx: TaskContext) -> None:
        tree: SkyQuadtree = ctx.cache[CACHE_QUADTREE]
        counter = DominanceCounter()
        leaf_ids = sorted(self._leaves)
        mins = {i: tree.leaf_by_id(i).min_corner() for i in leaf_ids}
        maxs = {i: tree.leaf_by_id(i).max_corner() for i in leaf_ids}
        for b in leaf_ids:
            survivors = self._leaves[b]
            for a in leaf_ids:
                if a == b or len(survivors) == 0:
                    continue
                # region a can hold dominators of region b only if its
                # best corner is <= b's worst corner on every axis
                if not (mins[a] <= maxs[b]).all():
                    continue
                ctx.counters.inc(counter_names.PARTITION_COMPARES)
                survivors = survivors.remove_dominated_by(
                    self._leaves[a], counter
                )
            if len(survivors):
                ctx.emit(b, survivors)
        ctx.counters.inc(counter_names.TUPLE_COMPARES, counter.pairs)


class SKYMR(SkylineAlgorithm):
    """SKY-MR-lite: sample + sky-quadtree pruning (Park et al.)."""

    name = "sky-mr"

    def __init__(
        self,
        sample_size: int = 1024,
        sample_seed: int = 0,
        leaf_capacity: int = 32,
        max_depth: int = 6,
        bounds: Optional[Tuple] = None,
    ):
        if sample_size < 1:
            raise ValidationError(
                f"sample_size must be >= 1, got {sample_size}"
            )
        self.sample_size = sample_size
        self.sample_seed = sample_seed
        self.leaf_capacity = leaf_capacity
        self.max_depth = max_depth
        self.bounds = bounds

    def _run(self, data: np.ndarray, env: RunEnvironment) -> SkylineResult:
        started = time.perf_counter()
        stats = PipelineStats()
        cardinality, dimensionality = data.shape
        if cardinality == 0:
            stats.wall_s = time.perf_counter() - started
            stats.simulated_s = 0.0
            return SkylineResult(
                indices=np.empty(0, dtype=np.int64),
                values=np.empty((0, dimensionality)),
                stats=stats,
                algorithm=self.name,
            )
        if self.bounds is not None:
            lows = np.asarray(self.bounds[0], dtype=np.float64)
            highs = np.asarray(self.bounds[1], dtype=np.float64)
        else:
            lows, highs = data.min(axis=0), data.max(axis=0)
        rng = np.random.default_rng(self.sample_seed)
        take = min(self.sample_size, cardinality)
        sample = data[rng.choice(cardinality, take, replace=False)]
        # Cap tree size in high dimensions (2^d children per split).
        depth = self.max_depth if dimensionality <= 4 else max(
            1, self.max_depth - (dimensionality - 4)
        )
        tree = SkyQuadtree(
            sample,
            lows,
            highs,
            leaf_capacity=self.leaf_capacity,
            max_depth=depth,
        )
        cache = DistributedCache(
            {
                CACHE_QUADTREE: tree,
                CACHE_SAMPLE_SKYLINE: tree.sample_skyline,
            }
        )
        splits = contiguous_splits(data, env.resolved_num_mappers())
        local_job = MapReduceJob(
            name="sky-mr-local",
            splits=splits,
            mapper_factory=SkyMRMapper,
            reducer_factory=SkyMRLocalReducer,
            num_reducers=env.cluster.reduce_slots,
            partitioner=hash_partitioner,
            cache=cache,
            merge_point_blocks=True,
        )
        local_result = env.engine.run(local_job)
        stats.jobs.append(local_result.stats)

        merge_job = MapReduceJob(
            name="sky-mr-merge",
            splits=kv_splits(local_result.all_pairs(), 1),
            mapper_factory=IdentityMapper,
            reducer_factory=SkyMRMergeReducer,
            num_reducers=1,
            partitioner=single_partitioner,
            cache=cache,
        )
        merge_result = env.engine.run(merge_job)
        stats.jobs.append(merge_result.stats)

        parts = [v for _, v in merge_result.all_pairs() if len(v)]
        if parts:
            combined = PointSet.concat(parts)
            order = np.argsort(combined.ids, kind="stable")
            indices, values = combined.ids[order], combined.values[order]
        else:
            indices = np.empty(0, dtype=np.int64)
            values = np.empty((0, dimensionality))
        stats.wall_s = time.perf_counter() - started
        env.cluster.annotate(stats)
        return SkylineResult(
            indices=indices,
            values=values,
            stats=stats,
            algorithm=self.name,
            artifacts={
                "quadtree_leaves": len(tree.leaves),
                "dominated_leaves": sum(
                    1 for leaf in tree.leaves if leaf.dominated
                ),
                "sample_skyline_size": int(tree.sample_skyline.shape[0]),
            },
        )
