"""MR-Bitmap baseline [Zhang et al. 2011], paper Section 2.2.

"The MR-Bitmap algorithm uses the bitmap algorithm [Tan et al.] to
determine dominance in skyline computation on each node. Although
MR-Bitmap is able to use multiple reducers for global skyline
computing, it can only handle data dimensions with [a] limited number
of distinct values."

The paper *excludes* MR-Bitmap from its experiments for exactly that
reason (continuous numeric domains); it is implemented here for
completeness and tested on discretised data.

Two chained jobs:

1. *distinct* — per-dimension distinct-value counts; aborts with
   :class:`~repro.errors.AlgorithmError` when any dimension exceeds
   ``max_distinct`` (the algorithm's documented applicability limit).
2. *bitmap* — every mapper replicates its tuples to *every* reducer
   (the bit-slices each reducer needs span the whole dataset — the
   communication blow-up that makes MR-Bitmap unattractive); reducer
   ``r`` builds the full bitmap index and bit-slice-tests only the
   tuples it owns (``row_id % num_reducers == r``), emitting survivors.
"""

from __future__ import annotations

import time
from typing import Optional

import numpy as np

from repro.algorithms.base import RunEnvironment, SkylineAlgorithm, SkylineResult
from repro.algorithms.common import BufferingMapper
from repro.core.bitmap import BitmapIndex
from repro.core.pointset import PointSet
from repro.errors import AlgorithmError, ValidationError
from repro.mapreduce import counters as counter_names
from repro.mapreduce.cache import DistributedCache
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.metrics import PipelineStats
from repro.mapreduce.partitioners import direct_partitioner, hash_partitioner
from repro.mapreduce.splits import contiguous_splits
from repro.mapreduce.types import Reducer, TaskContext

CACHE_MAX_DISTINCT = "max_distinct"


class DistinctValuesMapper(BufferingMapper):
    """Emit (dimension, unique values of this split)."""

    def finish(self, points: PointSet, ctx: TaskContext) -> None:
        if len(points) == 0:
            return
        for k in range(points.dimensionality):
            ctx.emit(k, np.unique(points.values[:, k]))


class DistinctValuesReducer(Reducer):
    """Merge per-split uniques; enforce the distinct-value limit."""

    def reduce(self, key, values, ctx: TaskContext) -> None:
        distinct = np.unique(np.concatenate(values))
        limit = ctx.cache[CACHE_MAX_DISTINCT]
        if distinct.shape[0] > limit:
            raise AlgorithmError(
                f"dimension {key} has {distinct.shape[0]} distinct values, "
                f"exceeding MR-Bitmap's limit of {limit}; the bitmap "
                "algorithm cannot handle (near-)continuous domains "
                "(paper Section 2.2)"
            )
        ctx.emit(int(key), distinct.shape[0])


class BitmapBroadcastMapper(BufferingMapper):
    """Replicate the split's tuples to every reducer."""

    def finish(self, points: PointSet, ctx: TaskContext) -> None:
        if len(points) == 0:
            return
        for r in range(ctx.num_reducers):
            ctx.emit(r, points)


class BitmapTestReducer(Reducer):
    """Build the full bitmap index; test and emit owned tuples."""

    def reduce(self, key, values, ctx: TaskContext) -> None:
        full = PointSet.concat(values)
        order = np.argsort(full.ids, kind="stable")
        full = full.select(order)
        index = BitmapIndex(full.values)
        owned = np.flatnonzero(full.ids % ctx.num_reducers == int(key))
        # Each bit-slice test touches one bit per tuple per dimension;
        # charge it as |R| pair checks per tested tuple.
        ctx.counters.inc(
            counter_names.TUPLE_COMPARES, len(full) * owned.shape[0]
        )
        survivors = [i for i in owned.tolist() if not index.is_dominated(i)]
        if survivors:
            ctx.emit(int(key), full.select(np.asarray(survivors, dtype=np.int64)))


class MRBitmap(SkylineAlgorithm):
    """The MR-Bitmap baseline (discrete domains only)."""

    name = "mr-bitmap"

    def __init__(
        self,
        max_distinct: int = 64,
        num_reducers: Optional[int] = None,
    ):
        if max_distinct < 1:
            raise ValidationError(
                f"max_distinct must be >= 1, got {max_distinct}"
            )
        if num_reducers is not None and num_reducers < 1:
            raise ValidationError(
                f"num_reducers must be >= 1, got {num_reducers}"
            )
        self.max_distinct = max_distinct
        self.num_reducers = num_reducers

    def _run(self, data: np.ndarray, env: RunEnvironment) -> SkylineResult:
        started = time.perf_counter()
        stats = PipelineStats()
        cardinality, dimensionality = data.shape
        if cardinality == 0:
            stats.wall_s = time.perf_counter() - started
            stats.simulated_s = 0.0
            return SkylineResult(
                indices=np.empty(0, dtype=np.int64),
                values=np.empty((0, dimensionality)),
                stats=stats,
                algorithm=self.name,
            )
        splits = contiguous_splits(data, env.resolved_num_mappers())
        distinct_job = MapReduceJob(
            name="mr-bitmap-distinct",
            splits=splits,
            mapper_factory=DistinctValuesMapper,
            reducer_factory=DistinctValuesReducer,
            num_reducers=min(dimensionality, env.cluster.reduce_slots),
            partitioner=hash_partitioner,
            cache=DistributedCache({CACHE_MAX_DISTINCT: self.max_distinct}),
        )
        distinct_result = env.engine.run(distinct_job)
        stats.jobs.append(distinct_result.stats)

        reducers = self.num_reducers or env.cluster.reduce_slots
        bitmap_job = MapReduceJob(
            name="mr-bitmap-test",
            splits=splits,
            mapper_factory=BitmapBroadcastMapper,
            reducer_factory=BitmapTestReducer,
            num_reducers=reducers,
            partitioner=direct_partitioner,
        )
        bitmap_result = env.engine.run(bitmap_job)
        stats.jobs.append(bitmap_result.stats)

        parts = [v for _, v in bitmap_result.all_pairs() if len(v)]
        if parts:
            combined = PointSet.concat(parts)
            order = np.argsort(combined.ids, kind="stable")
            indices = combined.ids[order]
            values = combined.values[order]
        else:
            indices = np.empty(0, dtype=np.int64)
            values = np.empty((0, dimensionality))
        stats.wall_s = time.perf_counter() - started
        env.cluster.annotate(stats)
        return SkylineResult(
            indices=indices,
            values=values,
            stats=stats,
            algorithm=self.name,
            artifacts={
                "distinct_counts": dict(
                    (int(k), int(v)) for k, v in distinct_result.all_pairs()
                )
            },
        )
