"""MR-Angle baseline [Chen, Hwang, Wu 2012], paper Section 2.2.

"Angular partitioning divides the data space using angles, motivated by
the observation that skyline tuples are located near the origin. In
MR-Angle, angle based data partitions are distributed to mappers for
local skyline computation, and a single reducer is used to find the
global skyline."

Points are mapped to hyperspherical angles [Vlachou et al., SIGMOD'08]:
for a positive-orthant point x, the d−1 angles are

    φ_k = atan2( ||x_{k+1..d}||, x_k )  ∈ (0, π/2)

and each angle axis is cut into ``q`` equal sectors. Every angular
partition contains a cone from the origin outward, so its local skyline
is small — but *no* cross-partition pruning is possible (two cones
always both touch the origin region), which is why the merge step must
compare every pair of partition skylines and stays on one reducer.

Two chained jobs, like MR-BNL: per-angular-partition local skylines
(parallel reducers), then the single-reducer global merge.
"""

from __future__ import annotations

import time
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.algorithms.base import RunEnvironment, SkylineAlgorithm, SkylineResult
from repro.algorithms.common import BufferingMapper, CACHE_BOUNDS, assemble_result
from repro.algorithms.mr_bnl import BNLLocalSkylineReducer
from repro.core.dominance import DominanceCounter
from repro.core.pointset import PointSet
from repro.errors import ValidationError
from repro.mapreduce import counters as counter_names
from repro.mapreduce.cache import DistributedCache
from repro.mapreduce.job import MapReduceJob
from repro.mapreduce.metrics import PipelineStats
from repro.mapreduce.partitioners import hash_partitioner, single_partitioner
from repro.mapreduce.splits import contiguous_splits, kv_splits
from repro.mapreduce.types import IdentityMapper, Reducer, TaskContext

#: Shift applied so every coordinate is strictly positive before the
#: angular transform (atan2 needs a well-defined direction).
_EPSILON = 1e-9

CACHE_SECTORS = "angular_sectors"


def hyperspherical_angles(values: np.ndarray, lows: np.ndarray) -> np.ndarray:
    """The d−1 angular coordinates of each row, in [0, π/2]."""
    shifted = np.asarray(values, dtype=np.float64) - np.asarray(lows) + _EPSILON
    n, d = shifted.shape
    if d < 2:
        return np.zeros((n, 0))
    angles = np.empty((n, d - 1))
    # tail_norm[k] = ||x_{k+1..d}|| computed backwards cumulatively.
    tail_sq = np.zeros(n)
    norms = np.empty((n, d - 1))
    for k in range(d - 2, -1, -1):
        tail_sq = tail_sq + shifted[:, k + 1] ** 2
        norms[:, k] = np.sqrt(tail_sq)
    for k in range(d - 1):
        angles[:, k] = np.arctan2(norms[:, k], shifted[:, k])
    return angles


def angular_partition_ids(
    values: np.ndarray, lows: np.ndarray, sectors: int
) -> np.ndarray:
    """Equi-angle grid cell of each row (mixed-radix over d−1 angles)."""
    if sectors < 1:
        raise ValidationError(f"sectors must be >= 1, got {sectors}")
    angles = hyperspherical_angles(values, lows)
    if angles.shape[1] == 0:
        return np.zeros(values.shape[0], dtype=np.int64)
    bins = np.floor(angles / (np.pi / 2.0) * sectors).astype(np.int64)
    np.clip(bins, 0, sectors - 1, out=bins)
    weights = sectors ** np.arange(angles.shape[1], dtype=np.int64)
    return bins @ weights


def sectors_for_target(num_partitions: int, dimensionality: int) -> int:
    """Sectors per angle so that sectors^(d−1) ≈ the target count."""
    if num_partitions < 1:
        raise ValidationError(
            f"num_partitions must be >= 1, got {num_partitions}"
        )
    if dimensionality < 2:
        return 1
    q = int(round(num_partitions ** (1.0 / (dimensionality - 1))))
    return max(1, q)


class AngularMapper(BufferingMapper):
    """Tag tuples with their angular partition; ship batches."""

    def finish(self, points: PointSet, ctx: TaskContext) -> None:
        if len(points) == 0:
            return
        lows, _highs = ctx.cache[CACHE_BOUNDS]
        sectors = ctx.cache[CACHE_SECTORS]
        ids = angular_partition_ids(points.values, lows, sectors)
        for pid, block in points.split_by(ids):
            ctx.emit(int(pid), block)


class AngularMergeReducer(Reducer):
    """Single-reducer global merge: every pair must be compared."""

    def setup(self, ctx: TaskContext) -> None:
        self._partitions: Dict[int, PointSet] = {}

    def reduce(self, key, values, ctx: TaskContext) -> None:
        merged = values[0]
        for extra in values[1:]:
            merged = PointSet.concat([merged, extra])
        self._partitions[int(key)] = merged

    def cleanup(self, ctx: TaskContext) -> None:
        counter = DominanceCounter()
        pids = sorted(self._partitions)
        for b in pids:
            survivors = self._partitions[b]
            for a in pids:
                if a == b:
                    continue
                ctx.counters.inc(counter_names.PARTITION_COMPARES)
                survivors = survivors.remove_dominated_by(
                    self._partitions[a], counter
                )
            if len(survivors):
                ctx.emit(b, survivors)
        ctx.counters.inc(counter_names.TUPLE_COMPARES, counter.pairs)


class MRAngle(SkylineAlgorithm):
    """The MR-Angle baseline of Chen et al."""

    name = "mr-angle"

    def __init__(
        self,
        num_partitions: Optional[int] = None,
        bounds: Optional[Tuple[Sequence[float], Sequence[float]]] = None,
    ):
        if num_partitions is not None and num_partitions < 1:
            raise ValidationError(
                f"num_partitions must be >= 1, got {num_partitions}"
            )
        self.num_partitions = num_partitions
        self.bounds = bounds

    def _run(self, data: np.ndarray, env: RunEnvironment) -> SkylineResult:
        started = time.perf_counter()
        stats = PipelineStats()
        cardinality, dimensionality = data.shape
        if cardinality == 0:
            stats.wall_s = time.perf_counter() - started
            stats.simulated_s = 0.0
            return SkylineResult(
                indices=np.empty(0, dtype=np.int64),
                values=np.empty((0, dimensionality)),
                stats=stats,
                algorithm=self.name,
            )
        if self.bounds is not None:
            bounds = (
                np.asarray(self.bounds[0], dtype=np.float64),
                np.asarray(self.bounds[1], dtype=np.float64),
            )
        else:
            bounds = (data.min(axis=0), data.max(axis=0))
        target = self.num_partitions or env.cluster.reduce_slots * 4
        sectors = sectors_for_target(target, dimensionality)
        splits = contiguous_splits(data, env.resolved_num_mappers())
        local_job = MapReduceJob(
            name="mr-angle-local",
            splits=splits,
            mapper_factory=AngularMapper,
            reducer_factory=BNLLocalSkylineReducer,
            num_reducers=min(
                max(1, sectors ** max(0, dimensionality - 1)),
                env.cluster.reduce_slots,
            ),
            partitioner=hash_partitioner,
            cache=DistributedCache(
                {CACHE_BOUNDS: bounds, CACHE_SECTORS: sectors}
            ),
            merge_point_blocks=True,
        )
        local_result = env.engine.run(local_job)
        stats.jobs.append(local_result.stats)

        merge_job = MapReduceJob(
            name="mr-angle-merge",
            splits=kv_splits(local_result.all_pairs(), 1),
            mapper_factory=IdentityMapper,
            reducer_factory=AngularMergeReducer,
            num_reducers=1,
            partitioner=single_partitioner,
        )
        merge_result = env.engine.run(merge_job)
        stats.jobs.append(merge_result.stats)

        indices, values = assemble_result(
            merge_result.all_pairs(), dimensionality
        )
        stats.wall_s = time.perf_counter() - started
        env.cluster.annotate(stats)
        return SkylineResult(
            indices=indices,
            values=values,
            stats=stats,
            algorithm=self.name,
            artifacts={"sectors": sectors},
        )
