"""Skyline algorithms: the paper's MR-GPSRS and MR-GPMRS, the
baselines it evaluates against, and centralized references."""

from repro.algorithms.base import RunEnvironment, SkylineAlgorithm, SkylineResult
from repro.algorithms.centralized import CentralizedSkyline
from repro.algorithms.gpmrs import MRGPMRS
from repro.algorithms.gpsrs import MRGPSRS
from repro.algorithms.hybrid import HybridGridSkyline
from repro.algorithms.mr_angle import MRAngle
from repro.algorithms.mr_bitmap import MRBitmap
from repro.algorithms.mr_bnl import MRBNL, MRSFS
from repro.algorithms.registry import available_algorithms, make_algorithm
from repro.algorithms.sky_mr import SKYMR, SkyQuadtree

__all__ = [
    "CentralizedSkyline",
    "HybridGridSkyline",
    "MRAngle",
    "MRBNL",
    "MRBitmap",
    "MRGPMRS",
    "MRGPSRS",
    "MRSFS",
    "RunEnvironment",
    "SkylineAlgorithm",
    "SkylineResult",
    "available_algorithms",
    "make_algorithm",
]
