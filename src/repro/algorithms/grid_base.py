"""Shared driver for the two grid-partitioning algorithms.

Both MR-GPSRS and MR-GPMRS are two-job chains (the paper includes
bitstring-generation time in every reported runtime):

  1. bitstring job — fixed-PPD (Algorithms 1-2) or the adaptive
     Section 3.3 variant, depending on configuration;
  2. skyline job — algorithm-specific (provided by the subclass).

Configuration:

* ``ppd``           — fix the grid's PPD explicitly; or
* ``ppd_strategy``  — ``"equation4"`` (closed form from the desired
  TPP), ``"adaptive-target"`` / ``"adaptive-literal"`` (the measured-ρ
  schemes of Section 3.3).
* ``tpp``           — desired tuples-per-partition.
* ``bounds``        — (lows, highs) of the data space if known (the
  paper's synthetic setting); defaults to the data's bounding box,
  computed driver-side (documented substitution — Hadoop would ship
  this as job configuration).
"""

from __future__ import annotations

import time
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.algorithms.base import RunEnvironment, SkylineAlgorithm, SkylineResult
from repro.algorithms.bitstring_job import (
    extract_bitstring,
    extract_ppd_choice,
    make_adaptive_ppd_job,
    make_bitstring_job,
)
from repro.algorithms.common import assemble_result
from repro.errors import ValidationError
from repro.grid.grid import Grid
from repro.grid.ppd import DEFAULT_TPP, candidate_ppds, cap_ppd, ppd_from_equation4
from repro.mapreduce.metrics import PipelineStats
from repro.mapreduce.splits import contiguous_splits

_PPD_STRATEGIES = ("equation4", "adaptive-target", "adaptive-literal")


class GridSkylineBase(SkylineAlgorithm):
    """Bounds/PPD/bitstring plumbing for MR-GPSRS and MR-GPMRS."""

    def __init__(
        self,
        ppd: Optional[int] = None,
        ppd_strategy: str = "equation4",
        tpp: int = DEFAULT_TPP,
        bounds: Optional[Tuple[Sequence[float], Sequence[float]]] = None,
        prune_bitstring: bool = True,
    ):
        if ppd is not None and (int(ppd) != ppd or ppd < 1):
            raise ValidationError(f"ppd must be a positive integer, got {ppd!r}")
        if ppd_strategy not in _PPD_STRATEGIES:
            raise ValidationError(
                f"unknown ppd_strategy {ppd_strategy!r}; "
                f"expected one of {_PPD_STRATEGIES}"
            )
        if tpp < 1:
            raise ValidationError(f"tpp must be >= 1, got {tpp}")
        self.ppd = int(ppd) if ppd is not None else None
        self.ppd_strategy = ppd_strategy
        self.tpp = int(tpp)
        self.bounds = bounds
        self.prune_bitstring = bool(prune_bitstring)

    # Subclass hook: build the skyline job from prepared inputs.
    def _make_skyline_job(self, splits, grid, bitstring, env):
        raise NotImplementedError

    def _run(self, data: np.ndarray, env: RunEnvironment) -> SkylineResult:
        started = time.perf_counter()
        stats = PipelineStats()
        artifacts = {}
        cardinality, dimensionality = data.shape
        if cardinality == 0:
            stats.wall_s = time.perf_counter() - started
            stats.simulated_s = 0.0
            return SkylineResult(
                indices=np.empty(0, dtype=np.int64),
                values=np.empty((0, dimensionality)),
                stats=stats,
                algorithm=self.name,
                artifacts=artifacts,
            )

        splits = contiguous_splits(data, env.resolved_num_mappers())
        if self.bounds is not None:
            lows = np.asarray(self.bounds[0], dtype=np.float64)
            highs = np.asarray(self.bounds[1], dtype=np.float64)
        else:
            lows, highs = data.min(axis=0), data.max(axis=0)

        # -- job 1: bitstring ------------------------------------------
        if self.ppd is not None or self.ppd_strategy == "equation4":
            n = self.ppd or ppd_from_equation4(
                cardinality, dimensionality, self.tpp
            )
            n = cap_ppd(n, dimensionality)
            grid = Grid(n, lows, highs)
            job = make_bitstring_job(splits, grid, prune=self.prune_bitstring)
            result = env.engine.run(job)
            stats.jobs.append(result.stats)
            bitstring = extract_bitstring(result, grid)
        else:
            candidates = candidate_ppds(cardinality, dimensionality)
            rule = "target" if self.ppd_strategy == "adaptive-target" else "literal"
            job = make_adaptive_ppd_job(
                splits,
                (lows, highs),
                candidates,
                cardinality,
                strategy=rule,
                tpp=self.tpp,
            )
            result = env.engine.run(job)
            stats.jobs.append(result.stats)
            chosen, rho = extract_ppd_choice(result)
            grid = Grid(chosen, lows, highs)
            bitstring = extract_bitstring(result, grid)
            artifacts["ppd_candidates"] = rho
        artifacts["grid"] = grid
        artifacts["bitstring"] = bitstring

        # -- job 2: skyline --------------------------------------------
        skyline_job = self._make_skyline_job(splits, grid, bitstring, env)
        skyline_result = env.engine.run(skyline_job)
        stats.jobs.append(skyline_result.stats)
        self._collect_artifacts(artifacts, grid, bitstring, env)

        indices, values = assemble_result(
            skyline_result.all_pairs(), dimensionality
        )
        stats.wall_s = time.perf_counter() - started
        env.cluster.annotate(stats)
        return SkylineResult(
            indices=indices,
            values=values,
            stats=stats,
            algorithm=self.name,
            artifacts=artifacts,
        )

    def _collect_artifacts(self, artifacts, grid, bitstring, env) -> None:
        """Subclass hook for extra inspectables (e.g. groups)."""
