"""Skyline result verification — public, vectorised, O(n·s).

Checking a skyline answer is much cheaper than computing one:
*soundness* (no reported tuple is dominated) costs one pass of the
reported set against the data, and *completeness* (every unreported
tuple is dominated by some reported one) costs one pass of the data
against the reported set — both via the chunked dominance kernel.
Examples and downstream users can assert any engine's output without
touching the O(n²) oracle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.core.dominance import dominated_mask
from repro.core.order import as_dataset, normalize
from repro.errors import ValidationError


@dataclass
class VerificationReport:
    """Outcome of a skyline verification."""

    ok: bool
    cardinality: int
    reported: int
    dominated_reported: List[int]  # soundness violations (row ids)
    missing: List[int]  # completeness violations (row ids)

    def raise_if_failed(self) -> None:
        if self.ok:
            return
        parts = []
        if self.dominated_reported:
            parts.append(
                f"{len(self.dominated_reported)} reported tuples are "
                f"dominated (e.g. rows {self.dominated_reported[:5]})"
            )
        if self.missing:
            parts.append(
                f"{len(self.missing)} skyline tuples are missing "
                f"(e.g. rows {self.missing[:5]})"
            )
        raise ValidationError("skyline verification failed: " + "; ".join(parts))


def verify_skyline(
    data,
    indices,
    prefs=None,
    max_report: int = 32,
) -> VerificationReport:
    """Verify that ``indices`` is exactly the skyline of ``data``.

    ``prefs`` matches :func:`repro.skyline`'s parameter (per-dimension
    MIN/MAX). Duplicate semantics follow Definition 1: equal tuples do
    not dominate each other, so *all* duplicates of a skyline point
    must be reported.
    """
    arr = normalize(as_dataset(data), prefs)
    n = arr.shape[0]
    idx = np.asarray(indices, dtype=np.int64).ravel()
    if idx.size != np.unique(idx).size:
        raise ValidationError("reported indices contain duplicates")
    if idx.size and (idx.min() < 0 or idx.max() >= n):
        raise ValidationError("reported indices out of range")
    reported_mask = np.zeros(n, dtype=bool)
    reported_mask[idx] = True
    reported_rows = arr[reported_mask]

    # Soundness: nothing may dominate a reported tuple.
    dominated = dominated_mask(reported_rows, arr)
    bad = np.flatnonzero(reported_mask)[dominated][:max_report]

    # Completeness: every unreported tuple must be dominated by the
    # full dataset (equivalently: it is not a skyline member).
    unreported_rows = arr[~reported_mask]
    undominated = ~dominated_mask(unreported_rows, arr)
    missing = np.flatnonzero(~reported_mask)[undominated][:max_report]

    ok = bad.size == 0 and missing.size == 0
    return VerificationReport(
        ok=bool(ok),
        cardinality=n,
        reported=int(idx.size),
        dominated_reported=bad.tolist(),
        missing=missing.tolist(),
    )
