"""Schedule reconstruction and ASCII Gantt rendering.

The makespan model (``SimulatedCluster``) reduces a job to three
numbers; this module exposes the schedule *behind* those numbers —
which task ran on which slot, when — so users can see why a pipeline
costs what it costs (and tests can pin the scheduler's behaviour).

``build_schedule`` replays the same greedy least-loaded-slot policy as
:func:`repro.mapreduce.cluster.schedule_makespan`, so the derived
makespan is identical by construction (tested).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from repro.errors import ValidationError
from repro.mapreduce.cluster import SimulatedCluster
from repro.mapreduce.metrics import JobStats, TaskStats
from repro.obs.spans import Span, render_span_rows


@dataclass(frozen=True)
class ScheduledTask:
    """One task attempt's placement in the simulated schedule.

    ``outcome`` distinguishes failed attempts, killed stragglers, and
    speculative backup copies from ordinary successes so the Gantt can
    render re-execution distinctly.
    """

    name: str
    slot: int
    start_s: float
    end_s: float
    outcome: str = "success"

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s


@dataclass
class PhaseSchedule:
    """One phase (map wave, shuffle, reduce wave) of a job."""

    phase: str  # 'map' | 'shuffle' | 'reduce'
    start_s: float
    end_s: float
    tasks: List[ScheduledTask] = field(default_factory=list)

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s


@dataclass
class JobSchedule:
    """The full reconstructed schedule of one job."""

    job_name: str
    phases: List[PhaseSchedule]

    @property
    def makespan_s(self) -> float:
        return self.phases[-1].end_s if self.phases else 0.0


def _attempt_units(cluster: SimulatedCluster, task: TaskStats):
    """Expand one task into its schedulable attempt units.

    Tasks without recorded history schedule as a single success under
    the plain task name (pre-fault behaviour); tasks with several
    attempts get ``/0``, ``/1``, ... suffixes in execution order.
    """
    if not task.attempts:
        return [(str(task.task_id), cluster.task_duration(task), "success")]
    if len(task.attempts) == 1:
        record = task.attempts[0]
        return [
            (str(task.task_id), cluster.attempt_duration(task, record),
             record.outcome)
        ]
    return [
        (
            f"{task.task_id}/{position}",
            cluster.attempt_duration(task, record),
            record.outcome,
        )
        for position, record in enumerate(task.attempts)
    ]


def _schedule_phase(
    cluster: SimulatedCluster,
    tasks: Sequence[TaskStats],
    slots: int,
    phase: str,
    offset: float,
) -> PhaseSchedule:
    units = [u for task in tasks for u in _attempt_units(cluster, task)]
    loads = [0.0] * max(1, min(slots, max(1, len(units))))
    placed: List[ScheduledTask] = []
    for name, duration, outcome in units:
        slot = min(range(len(loads)), key=lambda s: loads[s])
        start = offset + loads[slot]
        placed.append(
            ScheduledTask(
                name=name,
                slot=slot,
                start_s=start,
                end_s=start + duration,
                outcome=outcome,
            )
        )
        loads[slot] += duration
    end = offset + (max(loads) if units else 0.0)
    return PhaseSchedule(phase=phase, start_s=offset, end_s=end, tasks=placed)


def build_schedule(cluster: SimulatedCluster, stats: JobStats) -> JobSchedule:
    """Reconstruct the schedule the makespan model implies."""
    map_phase = _schedule_phase(
        cluster, stats.map_tasks, cluster.map_slots, "map", 0.0
    )
    moved = stats.shuffle_bytes + stats.broadcast_bytes * cluster.num_nodes
    shuffle_end = map_phase.end_s + moved / cluster.bandwidth_bytes_per_s
    shuffle_phase = PhaseSchedule(
        phase="shuffle", start_s=map_phase.end_s, end_s=shuffle_end
    )
    reduce_phase = _schedule_phase(
        cluster, stats.reduce_tasks, cluster.reduce_slots, "reduce", shuffle_end
    )
    return JobSchedule(
        job_name=stats.job_name,
        phases=[map_phase, shuffle_phase, reduce_phase],
    )


def _schedule_track_order(schedule: JobSchedule) -> List[str]:
    """Track names in presentation order: map slots, shuffle, reduce
    slots — matching phase order."""
    tracks: List[str] = []
    for phase in schedule.phases:
        if phase.phase == "shuffle":
            tracks.append("shuffle")
            continue
        for slot in sorted({t.slot for t in phase.tasks}):
            tracks.append(f"{phase.phase}-slot-{slot}")
    return tracks


def _schedule_to_spans(
    schedule: JobSchedule, offset: float = 0.0
) -> List[Span]:
    """One :class:`~repro.obs.spans.Span` per scheduled attempt unit.

    The single simulated-clock source for both renderers: the ASCII
    Gantt and the Chrome-trace export draw these same spans, so the two
    views cannot drift apart.
    """
    spans: List[Span] = []
    for phase in schedule.phases:
        if phase.phase == "shuffle":
            spans.append(
                Span(
                    name=f"{schedule.job_name} shuffle",
                    track="shuffle",
                    start_s=offset + phase.start_s,
                    end_s=offset + phase.end_s,
                    category="shuffle",
                    args={"job": schedule.job_name},
                )
            )
            continue
        for task in phase.tasks:
            spans.append(
                Span(
                    name=task.name,
                    track=f"{phase.phase}-slot-{task.slot}",
                    start_s=offset + task.start_s,
                    end_s=offset + task.end_s,
                    outcome=task.outcome,
                    args={"job": schedule.job_name, "phase": phase.phase},
                )
            )
    return spans


def schedule_spans(
    cluster: SimulatedCluster, jobs: Sequence[JobStats]
) -> List[Span]:
    """Simulated-clock spans of a job chain, laid out back to back.

    Each job starts where the previous one's makespan ended (jobs in a
    chain run strictly sequentially), one track per simulated slot plus
    the shuffle track. This is the ``"simulated"`` clock of the Chrome
    trace written by ``repro-skyline compute --trace-out``.
    """
    spans: List[Span] = []
    offset = 0.0
    for stats in jobs:
        schedule = build_schedule(cluster, stats)
        spans.extend(_schedule_to_spans(schedule, offset))
        offset += schedule.makespan_s
    return spans


def render_gantt(
    schedule: JobSchedule, width: int = 64, min_label: int = 14
) -> str:
    """Plain-text Gantt chart of a job schedule.

    One row per (phase, slot); ``#`` marks busy time, ``x`` a failed or
    killed attempt, ``+`` a speculative backup copy, ``~`` the shuffle.
    Proportional to the makespan, so short tasks may render as a single
    cell; zero-duration phases (e.g. a shuffle that moved no bytes)
    render empty rather than pretending to occupy a column. Column
    painting is half-open: a task ending at time ``t`` and a task
    starting at ``t`` never share a cell.
    """
    if width < 8:
        raise ValidationError(f"width must be >= 8, got {width}")
    total = schedule.makespan_s
    if total <= 0:
        return f"{schedule.job_name}: empty schedule"
    lines = [
        f"{schedule.job_name}: simulated makespan {total:.3f}s "
        f"(1 col = {total / width:.4f}s)"
    ]
    lines.extend(
        render_span_rows(
            _schedule_to_spans(schedule),
            _schedule_track_order(schedule),
            total,
            width,
            min_label=min_label,
        )
    )
    return "\n".join(lines)


def render_pipeline_gantt(
    cluster: SimulatedCluster, jobs: Sequence[JobStats], width: int = 64
) -> str:
    """Gantt charts for a chain of jobs, back to back."""
    parts = []
    for stats in jobs:
        parts.append(render_gantt(build_schedule(cluster, stats), width))
    return "\n\n".join(parts)
