"""Schedule reconstruction and ASCII Gantt rendering.

The makespan model (``SimulatedCluster``) reduces a job to three
numbers; this module exposes the schedule *behind* those numbers —
which task ran on which slot, when — so users can see why a pipeline
costs what it costs (and tests can pin the scheduler's behaviour).

``build_schedule`` replays the same greedy least-loaded-slot policy as
:func:`repro.mapreduce.cluster.schedule_makespan`, so the derived
makespan is identical by construction (tested).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.errors import ValidationError
from repro.mapreduce.cluster import SimulatedCluster
from repro.mapreduce.metrics import JobStats, TaskStats


@dataclass(frozen=True)
class ScheduledTask:
    """One task attempt's placement in the simulated schedule.

    ``outcome`` distinguishes failed attempts, killed stragglers, and
    speculative backup copies from ordinary successes so the Gantt can
    render re-execution distinctly.
    """

    name: str
    slot: int
    start_s: float
    end_s: float
    outcome: str = "success"

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s


@dataclass
class PhaseSchedule:
    """One phase (map wave, shuffle, reduce wave) of a job."""

    phase: str  # 'map' | 'shuffle' | 'reduce'
    start_s: float
    end_s: float
    tasks: List[ScheduledTask] = field(default_factory=list)

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s


@dataclass
class JobSchedule:
    """The full reconstructed schedule of one job."""

    job_name: str
    phases: List[PhaseSchedule]

    @property
    def makespan_s(self) -> float:
        return self.phases[-1].end_s if self.phases else 0.0


def _attempt_units(cluster: SimulatedCluster, task: TaskStats):
    """Expand one task into its schedulable attempt units.

    Tasks without recorded history schedule as a single success under
    the plain task name (pre-fault behaviour); tasks with several
    attempts get ``/0``, ``/1``, ... suffixes in execution order.
    """
    if not task.attempts:
        return [(str(task.task_id), cluster.task_duration(task), "success")]
    if len(task.attempts) == 1:
        record = task.attempts[0]
        return [
            (str(task.task_id), cluster.attempt_duration(task, record),
             record.outcome)
        ]
    return [
        (
            f"{task.task_id}/{position}",
            cluster.attempt_duration(task, record),
            record.outcome,
        )
        for position, record in enumerate(task.attempts)
    ]


def _schedule_phase(
    cluster: SimulatedCluster,
    tasks: Sequence[TaskStats],
    slots: int,
    phase: str,
    offset: float,
) -> PhaseSchedule:
    units = [u for task in tasks for u in _attempt_units(cluster, task)]
    loads = [0.0] * max(1, min(slots, max(1, len(units))))
    placed: List[ScheduledTask] = []
    for name, duration, outcome in units:
        slot = min(range(len(loads)), key=lambda s: loads[s])
        start = offset + loads[slot]
        placed.append(
            ScheduledTask(
                name=name,
                slot=slot,
                start_s=start,
                end_s=start + duration,
                outcome=outcome,
            )
        )
        loads[slot] += duration
    end = offset + (max(loads) if units else 0.0)
    return PhaseSchedule(phase=phase, start_s=offset, end_s=end, tasks=placed)


def build_schedule(cluster: SimulatedCluster, stats: JobStats) -> JobSchedule:
    """Reconstruct the schedule the makespan model implies."""
    map_phase = _schedule_phase(
        cluster, stats.map_tasks, cluster.map_slots, "map", 0.0
    )
    moved = stats.shuffle_bytes + stats.broadcast_bytes * cluster.num_nodes
    shuffle_end = map_phase.end_s + moved / cluster.bandwidth_bytes_per_s
    shuffle_phase = PhaseSchedule(
        phase="shuffle", start_s=map_phase.end_s, end_s=shuffle_end
    )
    reduce_phase = _schedule_phase(
        cluster, stats.reduce_tasks, cluster.reduce_slots, "reduce", shuffle_end
    )
    return JobSchedule(
        job_name=stats.job_name,
        phases=[map_phase, shuffle_phase, reduce_phase],
    )


#: Gantt cell per attempt outcome: failed attempts and killed
#: stragglers render as ``x``, speculative backup copies as ``+``.
_OUTCOME_CELLS = {"failed": "x", "killed": "x", "speculative": "+"}


def render_gantt(
    schedule: JobSchedule, width: int = 64, min_label: int = 14
) -> str:
    """Plain-text Gantt chart of a job schedule.

    One row per (phase, slot); ``#`` marks busy time, ``x`` a failed or
    killed attempt, ``+`` a speculative backup copy. Proportional to
    the makespan, so short tasks may render as a single cell;
    zero-duration phases (e.g. a shuffle that moved no bytes) render
    empty rather than pretending to occupy a column.
    """
    if width < 8:
        raise ValidationError(f"width must be >= 8, got {width}")
    total = schedule.makespan_s
    if total <= 0:
        return f"{schedule.job_name}: empty schedule"

    def col(t: float) -> int:
        return min(width - 1, int(t / total * width))

    lines = [
        f"{schedule.job_name}: simulated makespan {total:.3f}s "
        f"(1 col = {total / width:.4f}s)"
    ]
    for phase in schedule.phases:
        if phase.phase == "shuffle":
            row = [" "] * width
            if phase.duration_s > 0:
                for i in range(col(phase.start_s), col(phase.end_s) + 1):
                    row[i] = "~"
            lines.append(f"{'shuffle':>{min_label}s} |{''.join(row)}|")
            continue
        slots = sorted({t.slot for t in phase.tasks})
        for slot in slots:
            row = [" "] * width
            for task in phase.tasks:
                if task.slot != slot or task.duration_s <= 0:
                    continue
                cell = _OUTCOME_CELLS.get(task.outcome, "#")
                for i in range(col(task.start_s), col(task.end_s) + 1):
                    row[i] = cell
            label = f"{phase.phase}-slot-{slot}"
            lines.append(f"{label:>{min_label}s} |{''.join(row)}|")
    return "\n".join(lines)


def render_pipeline_gantt(
    cluster: SimulatedCluster, jobs: Sequence[JobStats], width: int = 64
) -> str:
    """Gantt charts for a chain of jobs, back to back."""
    parts = []
    for stats in jobs:
        parts.append(render_gantt(build_schedule(cluster, stats), width))
    return "\n\n".join(parts)
