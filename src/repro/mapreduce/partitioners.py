"""Shuffle partitioners: map-output key -> reducer index.

MR-GPMRS routes whole independent groups to reducers by keying them
with the reducer index directly (Algorithm 8 line 18's
``Output(i % r + 1, ...)``), so a :func:`direct_partitioner` is provided
alongside the default hash partitioner.
"""

from __future__ import annotations

import hashlib
from typing import Any, Callable

from repro.errors import ValidationError

Partitioner = Callable[[Any, int], int]


def _stable_hash(key: Any) -> int:
    """Deterministic across processes (unlike builtin ``hash`` on str)."""
    digest = hashlib.blake2b(repr(key).encode(), digest_size=8).digest()
    return int.from_bytes(digest, "big")


def hash_partitioner(key: Any, num_reducers: int) -> int:
    """Hadoop's default: stable hash of the key modulo reducers."""
    if num_reducers < 1:
        raise ValidationError(f"num_reducers must be >= 1, got {num_reducers}")
    if isinstance(key, (int, bool)):
        return int(key) % num_reducers
    return _stable_hash(key) % num_reducers


def direct_partitioner(key: Any, num_reducers: int) -> int:
    """The key *is* the reducer index (must be an int in range)."""
    if num_reducers < 1:
        raise ValidationError(f"num_reducers must be >= 1, got {num_reducers}")
    index = int(key)
    if not 0 <= index < num_reducers:
        raise ValidationError(
            f"direct partitioner key {key!r} outside [0, {num_reducers})"
        )
    return index


def single_partitioner(key: Any, num_reducers: int) -> int:
    """Everything to reducer 0 (the single-reducer algorithms)."""
    return 0
