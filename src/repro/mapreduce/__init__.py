"""A from-scratch MapReduce runtime (the Hadoop substitution).

Programming model per the paper's Section 2.1: Map(k1, v1) ->
list(k2, v2); Reduce(k2, list(v2)) -> list(k3, v3); job chaining; a
Distributed Cache broadcast to all tasks. Execution engines measure
per-task durations; :class:`SimulatedCluster` converts them into the
cluster makespans the benchmarks report.
"""

from repro.mapreduce.cache import DistributedCache
from repro.mapreduce.cluster import (
    MINI_CLUSTER,
    PAPER_CLUSTER,
    SimulatedCluster,
    schedule_makespan,
)
from repro.mapreduce.counters import Counters
from repro.mapreduce.engine import SerialEngine
from repro.mapreduce.faults import (
    FaultPlan,
    InjectedTaskFailure,
    NodeLostError,
    RetryPolicy,
)
from repro.mapreduce.io import csv_splits, npy_block_splits, npy_splits
from repro.mapreduce.job import JobResult, MapReduceJob
from repro.mapreduce.metrics import (
    AttemptRecord,
    JobStats,
    PipelineStats,
    TaskStats,
)
from repro.mapreduce.parallel import ProcessPoolEngine, ThreadPoolEngine
from repro.mapreduce.partitioners import (
    direct_partitioner,
    hash_partitioner,
    single_partitioner,
)
from repro.mapreduce.pipeline import ChainResult, JobChain
from repro.mapreduce.sizes import payload_size
from repro.mapreduce.splits import (
    block_splits,
    contiguous_splits,
    kv_splits,
    round_robin_splits,
)
from repro.mapreduce.types import (
    BlockInputSplit,
    IdentityMapper,
    IdentityReducer,
    InputSplit,
    Mapper,
    Reducer,
    TaskContext,
    TaskId,
    supports_block_map,
)

__all__ = [
    "AttemptRecord",
    "BlockInputSplit",
    "ChainResult",
    "Counters",
    "DistributedCache",
    "FaultPlan",
    "IdentityMapper",
    "IdentityReducer",
    "InjectedTaskFailure",
    "InputSplit",
    "JobChain",
    "JobResult",
    "JobStats",
    "MINI_CLUSTER",
    "MapReduceJob",
    "Mapper",
    "NodeLostError",
    "PAPER_CLUSTER",
    "PipelineStats",
    "ProcessPoolEngine",
    "Reducer",
    "RetryPolicy",
    "SerialEngine",
    "SimulatedCluster",
    "TaskContext",
    "TaskId",
    "TaskStats",
    "ThreadPoolEngine",
    "block_splits",
    "contiguous_splits",
    "csv_splits",
    "direct_partitioner",
    "hash_partitioner",
    "kv_splits",
    "npy_block_splits",
    "npy_splits",
    "payload_size",
    "round_robin_splits",
    "schedule_makespan",
    "single_partitioner",
    "supports_block_map",
]
