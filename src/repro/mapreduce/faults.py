"""Deterministic fault injection and retry policy for the runtime.

The paper picks MapReduce for its "scalability and fault-tolerance"
(Section 1); this module makes that claim *testable* instead of
assumed. A :class:`FaultPlan` injects task-attempt failures, node
losses, and stragglers into any engine, and a :class:`RetryPolicy`
governs how engines respond (how many attempts, which errors are
worth retrying, whether stragglers get speculative backup copies).

Every injection decision is a pure function of ``(seed, task kind,
task index, attempt)`` via a keyed hash — *not* a shared RNG stream —
so the serial, thread-pool, and process-pool engines see bit-identical
fault schedules regardless of execution order, and a re-run with the
same seed replays the same faults. That determinism is what lets the
equivalence suite assert that skylines survive any fault schedule
unchanged (tests/test_fault_equivalence.py).

Injected failures model Hadoop task crashes: the attempt is charged in
the makespan (the work ran and died) but the task is re-executed from
scratch, so no partial output ever leaks. Node losses fail the first
attempt of every task placed on a lost node; the retry lands elsewhere.
Slowdowns mark an attempt as a straggler: engines with speculation
enabled launch a backup copy on a healthy node and take the first
finisher, exactly Hadoop's speculative execution.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Optional, Tuple, Type

from repro.errors import JobError, ValidationError
from repro.mapreduce.types import TaskId


class InjectedTaskFailure(JobError):
    """A FaultPlan-injected task crash (transient, always retryable)."""


class NodeLostError(InjectedTaskFailure):
    """The simulated node hosting an attempt was lost mid-task."""


def _unit_hash(*parts) -> float:
    """Map arbitrary parts to a uniform float in [0, 1), deterministically.

    Keyed hashing instead of an RNG stream: the decision for one
    (task, attempt) must not depend on how many other decisions were
    drawn before it, or concurrent engines would disagree.
    """
    payload = "\x1f".join(str(p) for p in parts).encode()
    digest = hashlib.blake2b(payload, digest_size=8).digest()
    return int.from_bytes(digest, "big") / 2.0**64


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, deterministic schedule of injected runtime faults.

    ``fail_rate`` applies to both phases unless overridden per phase;
    a task stops being failure-injected after ``max_failures_per_task``
    attempts, so any plan is survivable with
    ``max_attempts >= min_attempts()``. ``lost_nodes`` kills the first
    attempt of every task whose home node (``index % num_nodes``) is
    lost. ``slow_rate`` marks attempts as stragglers running at
    ``slow_factor``x their normal duration.
    """

    seed: int = 0
    fail_rate: float = 0.0
    map_fail_rate: Optional[float] = None
    reduce_fail_rate: Optional[float] = None
    slow_rate: float = 0.0
    slow_factor: float = 4.0
    lost_nodes: Tuple[int, ...] = ()
    num_nodes: int = 13
    max_failures_per_task: int = 2

    def __post_init__(self):
        rates = {
            "fail_rate": self.fail_rate,
            "map_fail_rate": self.map_fail_rate,
            "reduce_fail_rate": self.reduce_fail_rate,
            "slow_rate": self.slow_rate,
        }
        for name, rate in rates.items():
            if rate is not None and not 0.0 <= rate <= 1.0:
                raise ValidationError(
                    f"{name} must be in [0, 1], got {rate}"
                )
        if self.slow_factor < 1.0:
            raise ValidationError(
                f"slow_factor must be >= 1, got {self.slow_factor}"
            )
        if self.num_nodes < 1:
            raise ValidationError(
                f"num_nodes must be >= 1, got {self.num_nodes}"
            )
        if self.max_failures_per_task < 0:
            raise ValidationError(
                "max_failures_per_task must be >= 0, "
                f"got {self.max_failures_per_task}"
            )
        for node in self.lost_nodes:
            if not 0 <= node < self.num_nodes:
                raise ValidationError(
                    f"lost node {node} outside [0, {self.num_nodes})"
                )

    # -- placement ------------------------------------------------------

    def node_of(self, task_id: TaskId) -> int:
        """Home node of a task's first attempt (round-robin placement)."""
        return task_id.index % self.num_nodes

    def phase_fail_rate(self, kind: str) -> float:
        if kind == "map" and self.map_fail_rate is not None:
            return self.map_fail_rate
        if kind == "reduce" and self.reduce_fail_rate is not None:
            return self.reduce_fail_rate
        return self.fail_rate

    # -- injection decisions (pure in (seed, kind, index, attempt)) -----

    def injected_error(
        self, task_id: TaskId, attempt: int
    ) -> Optional[Exception]:
        """The failure injected into this attempt, or ``None``."""
        if attempt == 0 and self.node_of(task_id) in self.lost_nodes:
            return NodeLostError(
                f"node {self.node_of(task_id)} lost while running "
                f"{task_id} attempt {attempt}"
            )
        if attempt >= self.max_failures_per_task:
            return None
        rate = self.phase_fail_rate(task_id.kind)
        if rate <= 0.0:
            return None
        draw = _unit_hash(self.seed, "fail", task_id.kind, task_id.index, attempt)
        if draw < rate:
            return InjectedTaskFailure(
                f"injected failure in {task_id} attempt {attempt} "
                f"(seed={self.seed})"
            )
        return None

    def slowdown(self, task_id: TaskId, attempt: int) -> float:
        """Straggler factor for this attempt (1.0 = normal speed)."""
        if self.slow_rate <= 0.0:
            return 1.0
        draw = _unit_hash(self.seed, "slow", task_id.kind, task_id.index, attempt)
        return self.slow_factor if draw < self.slow_rate else 1.0

    def min_attempts(self) -> int:
        """Smallest ``max_attempts`` guaranteed to survive this plan."""
        node_loss_attempts = 1 if self.lost_nodes else 0
        return self.max_failures_per_task + node_loss_attempts + 1

    def describe(self) -> dict:
        """The plan as a JSON-serializable dict (embedded in run
        reports: a fault schedule is part of a run's configuration)."""
        return {
            "seed": self.seed,
            "fail_rate": self.fail_rate,
            "map_fail_rate": self.map_fail_rate,
            "reduce_fail_rate": self.reduce_fail_rate,
            "slow_rate": self.slow_rate,
            "slow_factor": self.slow_factor,
            "lost_nodes": list(self.lost_nodes),
            "num_nodes": self.num_nodes,
            "max_failures_per_task": self.max_failures_per_task,
        }


#: Error types a retry cannot fix: configuration and programming bugs.
#: Retrying these burns attempts and masks the real defect.
NON_RETRYABLE_ERRORS: Tuple[Type[BaseException], ...] = (
    ValidationError,
    NotImplementedError,
    AssertionError,
    TypeError,
    AttributeError,
)


@dataclass(frozen=True)
class RetryPolicy:
    """How an engine responds to task-attempt failures.

    Replaces the bare ``max_attempts`` int: in addition to the attempt
    budget it knows which error types are transient (worth re-running)
    versus deterministic programming/validation bugs that would fail
    identically on every attempt.
    """

    max_attempts: int = 1
    non_retryable: Tuple[Type[BaseException], ...] = field(
        default=NON_RETRYABLE_ERRORS
    )

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValidationError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )

    def is_retryable(self, error: BaseException) -> bool:
        return not isinstance(error, self.non_retryable)

    @classmethod
    def from_attempts(cls, max_attempts: int) -> "RetryPolicy":
        """The policy equivalent of the old bare ``max_attempts`` int."""
        return cls(max_attempts=max_attempts)
