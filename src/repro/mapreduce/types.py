"""Foundational types of the MapReduce runtime.

The runtime mirrors Hadoop's programming model (paper Section 2.1):
``Map(k1, v1) -> list(k2, v2)`` and ``Reduce(k2, list(v2)) ->
list(k3, v3)``, with setup/cleanup hooks, counters, and a read-only
distributed cache available to every task through its
:class:`TaskContext`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, List, Sequence, Tuple

from repro.errors import ValidationError
from repro.mapreduce.counters import Counters

KeyValue = Tuple[Any, Any]


@dataclass(frozen=True)
class TaskId:
    """Identity of one map or reduce task within a job."""

    kind: str  # 'map' | 'reduce' | 'combine'
    index: int

    def __post_init__(self):
        if self.kind not in ("map", "reduce", "combine"):
            raise ValidationError(f"unknown task kind {self.kind!r}")
        if self.index < 0:
            raise ValidationError(f"task index must be >= 0, got {self.index}")

    def __str__(self) -> str:
        return f"{self.kind}-{self.index:04d}"


class TaskContext:
    """What a running task sees: emit(), counters, the cache.

    ``emit`` appends to the task's output buffer; the engine owns
    shuffling and grouping. ``cache`` is the job's distributed cache
    (read-only broadcast data, e.g. the global bitstring).
    """

    __slots__ = ("task_id", "num_reducers", "cache", "counters", "_output")

    def __init__(self, task_id: TaskId, num_reducers: int, cache):
        self.task_id = task_id
        self.num_reducers = num_reducers
        self.cache = cache
        self.counters = Counters()
        self._output: List[KeyValue] = []

    def emit(self, key: Any, value: Any) -> None:
        self._output.append((key, value))

    @property
    def output(self) -> List[KeyValue]:
        return self._output


class Mapper:
    """Base mapper. Override :meth:`map`; optionally setup/cleanup.

    ``cleanup`` exists because several of the paper's mappers (the
    bitstring mapper of Algorithm 1, the skyline mappers of
    Algorithms 3 and 8) accumulate over their whole split and emit only
    once at the end — exactly how they are written for Hadoop.

    Mappers may additionally override :meth:`map_block` to receive a
    whole columnar split (a :class:`~repro.core.pointset.PointSet`) in
    one call. Engines use that fast path only when the split carries a
    block *and* the mapper overrides the method; otherwise they fall
    back to record-at-a-time :meth:`map`. The default implementation
    replays the block through :meth:`map`, so the two protocols are
    interchangeable.
    """

    def setup(self, ctx: TaskContext) -> None:
        """Called once before the first record."""

    def map(self, key: Any, value: Any, ctx: TaskContext) -> None:
        raise NotImplementedError

    def map_block(self, points, ctx: TaskContext) -> None:
        """Consume one whole columnar block (compatibility shim).

        ``points`` iterates as ``(row_id, row_values)`` pairs, so the
        default is exactly the record path.
        """
        for key, value in points:
            self.map(key, value, ctx)

    def cleanup(self, ctx: TaskContext) -> None:
        """Called once after the last record."""


def supports_block_map(mapper: "Mapper") -> bool:
    """True iff ``mapper`` overrides :meth:`Mapper.map_block`.

    The runtime takes the block fast path only for mappers that opted
    in by overriding the method — running the base-class shim through
    ``map_block`` would just hide the per-record loop from profiling.
    """
    return type(mapper).map_block is not Mapper.map_block


class Reducer:
    """Base reducer. Override :meth:`reduce`."""

    def setup(self, ctx: TaskContext) -> None:
        """Called once before the first key group."""

    def reduce(self, key: Any, values: List[Any], ctx: TaskContext) -> None:
        raise NotImplementedError

    def cleanup(self, ctx: TaskContext) -> None:
        """Called once after the last key group."""


class IdentityMapper(Mapper):
    """Pass records through unchanged."""

    def map(self, key, value, ctx):
        ctx.emit(key, value)


class IdentityReducer(Reducer):
    """Emit every (key, value) pair unchanged."""

    def reduce(self, key, values, ctx):
        for value in values:
            ctx.emit(key, value)


@dataclass
class InputSplit:
    """One mapper's share of the input (an HDFS block, conceptually)."""

    split_id: int
    records: Sequence[KeyValue]

    def __iter__(self) -> Iterator[KeyValue]:
        return iter(self.records)

    def __len__(self) -> int:
        return len(self.records)


class BlockInputSplit(InputSplit):
    """A split backed by one columnar block (ids + 2-D float64 values).

    ``points`` is a :class:`~repro.core.pointset.PointSet`; it doubles
    as the record sequence because iterating a PointSet yields
    ``(row_id, row_values)`` pairs, so legacy record-at-a-time mappers
    run on block splits unchanged. Engines hand ``points`` directly to
    block-aware mappers with zero per-tuple Python work.
    """

    def __init__(self, split_id: int, points):
        super().__init__(split_id=split_id, records=points)
        self.points = points
