"""Input splitting: sharing a dataset among mappers.

The paper divides R into disjoint subsets R1..Rm, one per mapper —
Hadoop does this by HDFS block. For an in-memory NumPy dataset we cut
contiguous row ranges (``contiguous_splits``) or deal rows round-robin
(``round_robin_splits``). Array splits are *block splits*: each carries
its share of the dataset as one :class:`~repro.core.pointset.PointSet`
(ids + 2-D float64 array), which block-aware mappers consume whole
while legacy mappers iterate the same split as ``(row_id, row_values)``
records.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.core.order import as_dataset
from repro.core.pointset import PointSet
from repro.errors import ValidationError
from repro.mapreduce.types import BlockInputSplit, InputSplit


class ArrayRecords:
    """Lazy (row_id, row) record view over a slice of a dataset."""

    __slots__ = ("ids", "rows")

    def __init__(self, ids: np.ndarray, rows: np.ndarray):
        self.ids = ids
        self.rows = rows

    def __len__(self) -> int:
        return int(self.ids.shape[0])

    def __iter__(self):
        for i in range(len(self)):
            yield int(self.ids[i]), self.rows[i]


def block_split(split_id: int, ids: np.ndarray, rows: np.ndarray) -> BlockInputSplit:
    """One block split from an id vector and its value rows."""
    return BlockInputSplit(split_id=split_id, points=PointSet(ids, rows))


def contiguous_splits(data, num_splits: int) -> List[BlockInputSplit]:
    """Cut the dataset into ``num_splits`` contiguous row ranges.

    Ranges differ in size by at most one row. Splits beyond the row
    count come back empty (a 3-row dataset on 8 mappers still creates
    8 map tasks, as Hadoop would with tiny files).
    """
    arr = as_dataset(data)
    if num_splits < 1:
        raise ValidationError(f"num_splits must be >= 1, got {num_splits}")
    n = arr.shape[0]
    bounds = np.linspace(0, n, num_splits + 1).astype(np.int64)
    splits = []
    for s in range(num_splits):
        lo, hi = int(bounds[s]), int(bounds[s + 1])
        ids = np.arange(lo, hi, dtype=np.int64)
        splits.append(block_split(s, ids, arr[lo:hi]))
    return splits


#: Alias making the block-oriented nature of array splits explicit.
block_splits = contiguous_splits


def round_robin_splits(data, num_splits: int) -> List[BlockInputSplit]:
    """Deal rows to splits round-robin (destroys input ordering skew)."""
    arr = as_dataset(data)
    if num_splits < 1:
        raise ValidationError(f"num_splits must be >= 1, got {num_splits}")
    splits = []
    for s in range(num_splits):
        ids = np.arange(s, arr.shape[0], num_splits, dtype=np.int64)
        splits.append(block_split(s, ids, arr[ids]))
    return splits


def kv_splits(pairs: Sequence, num_splits: int) -> List[InputSplit]:
    """Split an explicit list of (key, value) records contiguously."""
    if num_splits < 1:
        raise ValidationError(f"num_splits must be >= 1, got {num_splits}")
    n = len(pairs)
    bounds = np.linspace(0, n, num_splits + 1).astype(np.int64)
    return [
        InputSplit(split_id=s, records=list(pairs[int(bounds[s]):int(bounds[s + 1])]))
        for s in range(num_splits)
    ]
