"""Concurrent engines: identical semantics to the serial engine.

* :class:`ThreadPoolEngine` — map tasks run concurrently, then reduce
  tasks, on one shared thread pool. NumPy releases the GIL in its
  kernels, so dominance-heavy tasks do overlap; determinism of the
  *result* is preserved because outputs are collected in task order and
  the shuffle is unchanged.
* :class:`ProcessPoolEngine` — tasks run in worker *processes*, so the
  remaining Python glue (per-partition loops, grouping, emission)
  parallelises too instead of serialising on the GIL. Columnar block
  splits make this practical: a split pickles as two contiguous arrays
  instead of a million Python tuples, and the distributed cache is
  broadcast once per worker (exactly Hadoop's Distributed Cache
  semantics), not once per task.

Timing is noisier than the serial engine's, which is why benches
default to the serial engine + makespan model.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from time import perf_counter
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import multiprocessing

from repro.core.shm import (
    SharedArena,
    attach_count,
    promote_cache,
    promote_splits,
    release_attachments,
)
from repro.errors import ValidationError
from repro.mapreduce.counters import (
    SHM_ATTACHES,
    SHM_BLOCKS_SHARED,
    SHM_BYTES_SHARED,
    SHM_SEGMENTS_CREATED,
    SHM_SEGMENTS_UNLINKED,
    Counters,
)
from repro.mapreduce.engine import (
    SerialEngine,
    attempt_task,
    execute_map_attempt,
    execute_reduce_attempt,
    finish_map_task,
    finish_reduce_task,
    shuffle_outputs,
)
from repro.mapreduce.faults import FaultPlan, RetryPolicy
from repro.mapreduce.job import JobResult, MapReduceJob
from repro.mapreduce.metrics import JobStats, TaskStats
from repro.mapreduce.types import KeyValue, TaskId
from repro.obs.events import ShmArenaRetired, ShmBlocksShared


class ThreadPoolEngine(SerialEngine):
    """Concurrent task execution; inherits combine/retry logic from
    the serial engine. One thread pool serves both phases of a job."""

    def __init__(
        self,
        max_workers: Optional[int] = None,
        max_attempts: int = 1,
        block_path: bool = True,
        retry: Optional[RetryPolicy] = None,
        faults: Optional[FaultPlan] = None,
        speculative: bool = False,
        bus=None,
    ):
        super().__init__(
            max_attempts=max_attempts,
            block_path=block_path,
            retry=retry,
            faults=faults,
            speculative=speculative,
            bus=bus,
        )
        self.max_workers = max_workers

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(max_workers={self.max_workers}, "
            f"block_path={self.block_path})"
        )

    def run(self, job: MapReduceJob) -> JobResult:
        job.validate()
        stats = JobStats(job_name=job.name)
        stats.broadcast_bytes = job.cache.payload_bytes()
        self._emit_job_start(job)

        with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
            map_results = list(
                pool.map(lambda split: self._map_task(job, split), job.splits)
            )
            map_outputs = self._collect_maps(stats, map_results)

            buckets = shuffle_outputs(job, map_outputs)
            self._emit_shuffle(job, buckets)

            reduce_results = list(
                pool.map(
                    lambda r: self._reduce_task(job, r, buckets[r]),
                    range(job.num_reducers),
                )
            )
        reducer_outputs = self._collect_reduces(stats, reduce_results)
        self._emit_job_end(stats)
        return JobResult(job_name=job.name, reducer_outputs=reducer_outputs, stats=stats)


# -- process-pool engine --------------------------------------------------


@dataclass
class _JobSpec:
    """The picklable subset of a job that worker processes need.

    Shipped once per *batch* of tasks. With the zero-copy substrate the
    cache's block payloads are shared-memory descriptors, so the spec
    is small and the pool can stay alive across jobs (no per-job
    initializer, no per-job worker respawn) — the in-process equivalent
    of broadcasting job configuration + Distributed Cache to every
    node before tasks start.
    """

    mapper_factory: Callable
    reducer_factory: Callable
    combiner_factory: Optional[Callable]
    num_reducers: int
    cache: Any
    sort_keys: bool
    merge_point_blocks: bool
    retry: RetryPolicy
    faults: Optional[FaultPlan]
    speculative: bool
    block_path: bool


def _worker_map_task(spec: _JobSpec, split) -> Tuple[TaskStats, List[KeyValue]]:
    task_id = TaskId("map", split.split_id)
    (ctx, output, records_in, duration), attempts = attempt_task(
        task_id,
        lambda attempt: execute_map_attempt(spec, split, task_id, spec.block_path),
        spec.retry,
        faults=spec.faults,
        speculative=spec.speculative,
    )
    return (
        finish_map_task(task_id, ctx, output, records_in, duration, attempts),
        output,
    )


def _worker_reduce_task(spec: _JobSpec, args) -> Tuple[TaskStats, List[KeyValue]]:
    r, bucket = args
    task_id = TaskId("reduce", r)
    (ctx, duration), attempts = attempt_task(
        task_id,
        lambda attempt: execute_reduce_attempt(spec, bucket, task_id),
        spec.retry,
        faults=spec.faults,
        speculative=spec.speculative,
    )
    return (
        finish_reduce_task(task_id, ctx, len(bucket), duration, attempts),
        ctx.output,
    )


#: Worker-local: value of :func:`attach_count` at the last batch report.
_ATTACHES_REPORTED = 0


def _run_task_batch(
    spec: _JobSpec,
    kind: str,
    items: Sequence,
    keep_segments: Tuple[str, ...],
) -> Tuple[List[Tuple[TaskStats, List[KeyValue]]], int]:
    """Worker entry point: run a contiguous batch of same-kind tasks.

    Items arrive (and results return) in submission order, so the
    parent can flatten batch results back into the exact task order the
    serial engine would produce — attempt histories, counters, and
    fault-plan interactions are batch-size-invariant.

    ``keep_segments`` is the current job's shared-segment allowlist:
    anything else this long-lived worker still has mapped belongs to a
    retired job and is dropped first (names are never reused, so stale
    handles would otherwise accumulate for the life of the pool).
    Returns the batch results plus how many segment attachments this
    worker performed since it last reported (the parent aggregates
    them into its ``mr.shm.attaches`` counter — workers have no
    channel to it). Attachment happens while this call's own arguments
    are unpickled, which is why the count is a delta of the process-
    wide attach counter, not a snapshot around the task loop.
    """
    global _ATTACHES_REPORTED
    release_attachments(keep=keep_segments)
    runner = _worker_map_task if kind == "map" else _worker_reduce_task
    results = [runner(spec, item) for item in items]
    total = attach_count()
    attaches = total - _ATTACHES_REPORTED
    _ATTACHES_REPORTED = total
    return results, attaches


def _contiguous_batches(items: List, num_batches: int) -> List[List]:
    """Split ``items`` into at most ``num_batches`` contiguous runs."""
    if not items:
        return []
    num_batches = max(1, min(num_batches, len(items)))
    base, extra = divmod(len(items), num_batches)
    batches, start = [], 0
    for i in range(num_batches):
        size = base + (1 if i < extra else 0)
        batches.append(items[start:start + size])
        start += size
    return batches


class ProcessPoolEngine(SerialEngine):
    """Run map and reduce tasks in worker processes, zero-copy.

    Real multi-core parallelism for the Python-level work the GIL
    serialises under :class:`ThreadPoolEngine`, rebuilt on the
    shared-memory substrate (:mod:`repro.core.shm`):

    * **Persistent pool** — workers are spawned once (lazily, on the
      first run) and reused across jobs, so chained pipelines stop
      paying process spawn + interpreter import per job.
    * **Zero-copy blocks** — each run promotes its splits' and cache's
      block payloads into a per-job :class:`SharedArena`; they cross
      the process boundary as ~100-byte descriptors and every process
      maps the same pages. Only descriptors, task stats, and
      non-block values are pickled.
    * **Batched dispatch** — tasks ship as contiguous batches (one
      spec per batch, not per task), flattened back in task order so
      results, counters, and attempt histories are bit-identical to
      the serial engine's.
    * **Arena lifecycle** — a job's segments stay linked until the
      *next* run starts (returned output views must stay valid) and
      are unlinked at :meth:`shutdown`, on engine GC, or immediately
      if the run dies. The engine-local :attr:`shm_counters` bag
      carries ``mr.shm.*`` accounting; job stats never see it, so run
      reports stay byte-identical across engines.

    The shuffle runs in the parent so partitioner placement is
    bit-identical to the serial engine. Task events cannot stream live
    across the process boundary, so the parent replays each task's
    recorded attempt history onto the bus (``replay=True``) as results
    are collected; job/shuffle/broadcast events still emit live from
    the parent.

    Wall-time of the last run is broken down in :attr:`last_phases`
    (``promote_s``/``submit_s``/``compute_s``/``transfer_s``/
    ``collect_s``) for the fast-path bench; it is diagnostic only and
    deliberately kept out of :class:`JobStats`.
    """

    #: Workers hold no channel to the parent's bus; events are replayed
    #: from recorded attempt histories in the collect phase.
    _live_task_events = False

    def __init__(
        self,
        max_workers: Optional[int] = None,
        max_attempts: int = 1,
        block_path: bool = True,
        start_method: Optional[str] = None,
        retry: Optional[RetryPolicy] = None,
        faults: Optional[FaultPlan] = None,
        speculative: bool = False,
        bus=None,
        shm: bool = True,
    ):
        super().__init__(
            max_attempts=max_attempts,
            block_path=block_path,
            retry=retry,
            faults=faults,
            speculative=speculative,
            bus=bus,
        )
        if max_workers is not None and max_workers < 1:
            raise ValidationError(
                f"max_workers must be >= 1, got {max_workers}"
            )
        self.max_workers = max_workers
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        self.start_method = start_method
        self.shm = shm
        self.shm_counters = Counters()
        self.last_phases: Dict[str, float] = {}
        self._pool: Optional[ProcessPoolExecutor] = None
        self._arena: Optional[SharedArena] = None
        self._arena_job: Optional[str] = None

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(max_workers={self.max_workers}, "
            f"start_method={self.start_method!r}, "
            f"block_path={self.block_path})"
        )

    def _resolved_workers(self) -> int:
        return self.max_workers or os.cpu_count() or 1

    # -- pool + arena lifecycle ---------------------------------------

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self._resolved_workers(),
                mp_context=multiprocessing.get_context(self.start_method),
            )
        return self._pool

    def _reset_pool(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    def _retire_arena(self) -> None:
        """Unlink the previous job's segments (names never leak)."""
        arena = self._arena
        if arena is None:
            return
        self._arena = None
        segments = len(arena.names)
        arena.unlink()
        self.shm_counters.inc(SHM_SEGMENTS_UNLINKED, segments)
        if self.bus is not None and self.bus.active:
            self.bus.emit(
                ShmArenaRetired(
                    job=self._arena_job or "?", segments=segments
                )
            )
        self._arena_job = None

    def shutdown(self) -> None:
        """Stop the worker pool and release every shared segment."""
        self._reset_pool()
        self._retire_arena()

    def __enter__(self) -> "ProcessPoolEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def __del__(self):  # pragma: no cover - GC timing dependent
        try:
            self.shutdown()
        except Exception:  # repro: allow[REP006] - interpreter teardown
            pass

    # -- execution ----------------------------------------------------

    def _dispatch(
        self, pool, spec, kind: str, items: List, keep: Tuple[str, ...]
    ) -> List[Tuple[TaskStats, List[KeyValue]]]:
        """Run one phase as contiguous batches; flatten in task order."""
        batches = _contiguous_batches(items, self._resolved_workers())
        t0 = perf_counter()
        futures = [
            pool.submit(_run_task_batch, spec, kind, batch, keep)
            for batch in batches
        ]
        self.last_phases["submit_s"] += perf_counter() - t0
        t1 = perf_counter()
        results: List[Tuple[TaskStats, List[KeyValue]]] = []
        for future in futures:
            batch_results, attaches = future.result()
            results.extend(batch_results)
            self.shm_counters.inc(SHM_ATTACHES, attaches)
        wait_s = perf_counter() - t1
        compute_s = sum(task.duration_s for task, _output in results)
        workers = max(1, self._resolved_workers())
        # Transfer is what waiting cost beyond the (ideally overlapped)
        # per-worker compute: descriptor/stat pickling + IPC latency.
        self.last_phases["compute_s"] += compute_s
        self.last_phases["transfer_s"] += max(0.0, wait_s - compute_s / workers)
        return results

    def run(self, job: MapReduceJob) -> JobResult:
        job.validate()
        stats = JobStats(job_name=job.name)
        stats.broadcast_bytes = job.cache.payload_bytes()
        self._emit_job_start(job)
        self.last_phases = {
            "promote_s": 0.0,
            "submit_s": 0.0,
            "compute_s": 0.0,
            "transfer_s": 0.0,
            "collect_s": 0.0,
        }

        # Outputs of the *previous* job are out of scope now: its
        # segments can finally be unlinked (views already handed out
        # stay mapped until their holders drop them).
        self._retire_arena()

        t0 = perf_counter()
        splits = list(job.splits)
        cache = job.cache
        if self.shm:
            arena = SharedArena()
            splits = promote_splits(splits, arena)
            cache = promote_cache(cache, arena)
            if arena.names:
                self._arena = arena
                self._arena_job = job.name
                self.shm_counters.inc(
                    SHM_SEGMENTS_CREATED, arena.segments_created
                )
                self.shm_counters.inc(SHM_BLOCKS_SHARED, arena.blocks_shared)
                self.shm_counters.inc(SHM_BYTES_SHARED, arena.bytes_shared)
                if self.bus is not None and self.bus.active:
                    self.bus.emit(
                        ShmBlocksShared(
                            job=job.name,
                            segments=arena.segments_created,
                            blocks=arena.blocks_shared,
                            payload_bytes=arena.bytes_shared,
                        )
                    )
            else:
                arena.unlink()  # nothing promoted: no empty segment
        self.last_phases["promote_s"] = perf_counter() - t0

        spec = _JobSpec(
            mapper_factory=job.mapper_factory,
            reducer_factory=job.reducer_factory,
            combiner_factory=job.combiner_factory,
            num_reducers=job.num_reducers,
            cache=cache,
            sort_keys=job.sort_keys,
            merge_point_blocks=job.merge_point_blocks,
            retry=self.retry,
            faults=self.faults,
            speculative=self.speculative,
            block_path=self.block_path,
        )
        keep = self._arena.names if self._arena is not None else ()
        pool = self._ensure_pool()
        try:
            map_results = self._dispatch(pool, spec, "map", splits, keep)
            t2 = perf_counter()
            map_outputs = self._collect_maps(stats, map_results)
            buckets = shuffle_outputs(job, map_outputs)
            self._emit_shuffle(job, buckets)
            self.last_phases["collect_s"] += perf_counter() - t2

            reduce_items = [(r, buckets[r]) for r in range(job.num_reducers)]
            reduce_results = self._dispatch(
                pool, spec, "reduce", reduce_items, keep
            )
            t3 = perf_counter()
            reducer_outputs = self._collect_reduces(stats, reduce_results)
            self.last_phases["collect_s"] += perf_counter() - t3
        except BrokenProcessPool:
            # A worker died mid-job (crash/kill). The pool is unusable
            # and this job's outputs will never materialise: drop both
            # so nothing leaks, then surface the failure.
            self._reset_pool()
            self._retire_arena()
            raise
        except BaseException:  # repro: allow[REP006] - cleanup, re-raised
            self._retire_arena()
            raise
        self._emit_job_end(stats)
        return JobResult(job_name=job.name, reducer_outputs=reducer_outputs, stats=stats)
