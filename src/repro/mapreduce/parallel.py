"""Thread-pool engine: same semantics as the serial engine, real
concurrency across tasks.

Map tasks run concurrently, then reduce tasks. NumPy releases the GIL
in its kernels, so dominance-heavy tasks do overlap; determinism of the
*result* is preserved because outputs are collected in task order and
the shuffle is unchanged. Timing is noisier than the serial engine's,
which is why benches default to the serial engine + makespan model.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from typing import List, Optional, Tuple

from repro.errors import TaskFailedError
from repro.mapreduce import counters as counter_names
from repro.mapreduce.engine import SerialEngine, _group_by_key
from repro.mapreduce.job import JobResult, MapReduceJob
from repro.mapreduce.metrics import JobStats, TaskStats
from repro.mapreduce.sizes import payload_size
from repro.mapreduce.types import KeyValue, TaskContext, TaskId


class ThreadPoolEngine(SerialEngine):
    """Concurrent task execution; inherits combine/retry logic from
    the serial engine."""

    def __init__(self, max_workers: Optional[int] = None, max_attempts: int = 1):
        super().__init__(max_attempts=max_attempts)
        self.max_workers = max_workers

    def run(self, job: MapReduceJob) -> JobResult:
        job.validate()
        stats = JobStats(job_name=job.name)
        stats.broadcast_bytes = job.cache.payload_bytes()

        def run_map(split) -> Tuple[TaskStats, List[KeyValue]]:
            task_id = TaskId("map", split.split_id)

            def attempt(_attempt_index):
                ctx = TaskContext(task_id, job.num_reducers, job.cache)
                mapper = job.mapper_factory()
                records_in = 0
                started = time.perf_counter()
                mapper.setup(ctx)
                for key, value in split:
                    records_in += 1
                    mapper.map(key, value, ctx)
                mapper.cleanup(ctx)
                output = ctx.output
                if job.combiner_factory is not None:
                    output = self._combine(job, split.split_id, ctx, output)
                return ctx, output, records_in, time.perf_counter() - started

            ctx, output, records_in, duration = self._attempt(task_id, attempt)
            bytes_out = sum(payload_size(k) + payload_size(v) for k, v in output)
            ctx.counters.inc(counter_names.RECORDS_IN, records_in)
            ctx.counters.inc(counter_names.RECORDS_OUT, len(output))
            task_stats = TaskStats(
                task_id=task_id,
                duration_s=duration,
                records_in=records_in,
                records_out=len(output),
                bytes_out=bytes_out,
                counters=ctx.counters,
            )
            return task_stats, output

        with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
            map_results = list(pool.map(run_map, job.splits))

        map_outputs: List[List[KeyValue]] = []
        for task_stats, output in map_results:
            stats.map_tasks.append(task_stats)
            stats.counters.merge(task_stats.counters)
            stats.shuffle_bytes += task_stats.bytes_out
            map_outputs.append(output)

        buckets: List[List[KeyValue]] = [[] for _ in range(job.num_reducers)]
        for output in map_outputs:
            for key, value in output:
                buckets[job.partitioner(key, job.num_reducers)].append((key, value))

        def run_reduce(r: int) -> Tuple[TaskStats, List[KeyValue]]:
            task_id = TaskId("reduce", r)

            def attempt(_attempt_index):
                ctx = TaskContext(task_id, job.num_reducers, job.cache)
                reducer = job.reducer_factory()
                grouped = _group_by_key(buckets[r], job.sort_keys)
                started = time.perf_counter()
                reducer.setup(ctx)
                for key, values in grouped.items():
                    reducer.reduce(key, values, ctx)
                reducer.cleanup(ctx)
                return ctx, time.perf_counter() - started

            ctx, duration = self._attempt(task_id, attempt)
            output = ctx.output
            bytes_out = sum(payload_size(k) + payload_size(v) for k, v in output)
            ctx.counters.inc(counter_names.RECORDS_IN, len(buckets[r]))
            ctx.counters.inc(counter_names.RECORDS_OUT, len(output))
            task_stats = TaskStats(
                task_id=task_id,
                duration_s=duration,
                records_in=len(buckets[r]),
                records_out=len(output),
                bytes_out=bytes_out,
                counters=ctx.counters,
            )
            return task_stats, output

        with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
            reduce_results = list(pool.map(run_reduce, range(job.num_reducers)))

        reducer_outputs: List[List[KeyValue]] = []
        for task_stats, output in reduce_results:
            stats.reduce_tasks.append(task_stats)
            stats.counters.merge(task_stats.counters)
            reducer_outputs.append(output)

        stats.counters.inc(counter_names.SHUFFLE_BYTES, stats.shuffle_bytes)
        return JobResult(job_name=job.name, reducer_outputs=reducer_outputs, stats=stats)
