"""Concurrent engines: identical semantics to the serial engine.

* :class:`ThreadPoolEngine` — map tasks run concurrently, then reduce
  tasks, on one shared thread pool. NumPy releases the GIL in its
  kernels, so dominance-heavy tasks do overlap; determinism of the
  *result* is preserved because outputs are collected in task order and
  the shuffle is unchanged.
* :class:`ProcessPoolEngine` — tasks run in worker *processes*, so the
  remaining Python glue (per-partition loops, grouping, emission)
  parallelises too instead of serialising on the GIL. Columnar block
  splits make this practical: a split pickles as two contiguous arrays
  instead of a million Python tuples, and the distributed cache is
  broadcast once per worker (exactly Hadoop's Distributed Cache
  semantics), not once per task.

Timing is noisier than the serial engine's, which is why benches
default to the serial engine + makespan model.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Tuple

import multiprocessing

from repro.errors import ValidationError
from repro.mapreduce.engine import (
    SerialEngine,
    attempt_task,
    execute_map_attempt,
    execute_reduce_attempt,
    finish_map_task,
    finish_reduce_task,
    shuffle_outputs,
)
from repro.mapreduce.faults import FaultPlan, RetryPolicy
from repro.mapreduce.job import JobResult, MapReduceJob
from repro.mapreduce.metrics import JobStats, TaskStats
from repro.mapreduce.types import KeyValue, TaskId


class ThreadPoolEngine(SerialEngine):
    """Concurrent task execution; inherits combine/retry logic from
    the serial engine. One thread pool serves both phases of a job."""

    def __init__(
        self,
        max_workers: Optional[int] = None,
        max_attempts: int = 1,
        block_path: bool = True,
        retry: Optional[RetryPolicy] = None,
        faults: Optional[FaultPlan] = None,
        speculative: bool = False,
        bus=None,
    ):
        super().__init__(
            max_attempts=max_attempts,
            block_path=block_path,
            retry=retry,
            faults=faults,
            speculative=speculative,
            bus=bus,
        )
        self.max_workers = max_workers

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(max_workers={self.max_workers}, "
            f"block_path={self.block_path})"
        )

    def run(self, job: MapReduceJob) -> JobResult:
        job.validate()
        stats = JobStats(job_name=job.name)
        stats.broadcast_bytes = job.cache.payload_bytes()
        self._emit_job_start(job)

        with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
            map_results = list(
                pool.map(lambda split: self._map_task(job, split), job.splits)
            )
            map_outputs = self._collect_maps(stats, map_results)

            buckets = shuffle_outputs(job, map_outputs)
            self._emit_shuffle(job, buckets)

            reduce_results = list(
                pool.map(
                    lambda r: self._reduce_task(job, r, buckets[r]),
                    range(job.num_reducers),
                )
            )
        reducer_outputs = self._collect_reduces(stats, reduce_results)
        self._emit_job_end(stats)
        return JobResult(job_name=job.name, reducer_outputs=reducer_outputs, stats=stats)


# -- process-pool engine --------------------------------------------------


@dataclass
class _JobSpec:
    """The picklable subset of a job that worker processes need.

    Shipped once per worker via the pool initializer — the in-process
    equivalent of broadcasting job configuration + Distributed Cache to
    every node before tasks start.
    """

    mapper_factory: Callable
    reducer_factory: Callable
    combiner_factory: Optional[Callable]
    num_reducers: int
    cache: Any
    sort_keys: bool
    merge_point_blocks: bool
    retry: RetryPolicy
    faults: Optional[FaultPlan]
    speculative: bool
    block_path: bool


#: Per-worker job spec installed by the pool initializer.
_WORKER_SPEC: Optional[_JobSpec] = None


def _install_worker_spec(spec: _JobSpec) -> None:
    global _WORKER_SPEC
    _WORKER_SPEC = spec


def _worker_map_task(split) -> Tuple[TaskStats, List[KeyValue]]:
    spec = _WORKER_SPEC
    task_id = TaskId("map", split.split_id)
    (ctx, output, records_in, duration), attempts = attempt_task(
        task_id,
        lambda attempt: execute_map_attempt(spec, split, task_id, spec.block_path),
        spec.retry,
        faults=spec.faults,
        speculative=spec.speculative,
    )
    return (
        finish_map_task(task_id, ctx, output, records_in, duration, attempts),
        output,
    )


def _worker_reduce_task(args) -> Tuple[TaskStats, List[KeyValue]]:
    r, bucket = args
    spec = _WORKER_SPEC
    task_id = TaskId("reduce", r)
    (ctx, duration), attempts = attempt_task(
        task_id,
        lambda attempt: execute_reduce_attempt(spec, bucket, task_id),
        spec.retry,
        faults=spec.faults,
        speculative=spec.speculative,
    )
    return (
        finish_reduce_task(task_id, ctx, len(bucket), duration, attempts),
        ctx.output,
    )


class ProcessPoolEngine(SerialEngine):
    """Run map and reduce tasks in worker processes.

    Real multi-core parallelism for the Python-level work the GIL
    serialises under :class:`ThreadPoolEngine`. Everything crossing the
    process boundary (splits, cache, task stats, outputs) is pickled,
    which columnar blocks keep cheap; the shuffle itself runs in the
    parent so partitioner placement is bit-identical to the serial
    engine. Requires mapper/reducer factories, the cache contents, and
    emitted values to be picklable — true for everything this library
    ships.

    Task events cannot stream live across the process boundary, so the
    parent replays each task's recorded attempt history onto the bus
    (``replay=True``) as results are collected; job/shuffle/broadcast
    events still emit live from the parent.
    """

    #: Workers hold no channel to the parent's bus; events are replayed
    #: from recorded attempt histories in the collect phase.
    _live_task_events = False

    def __init__(
        self,
        max_workers: Optional[int] = None,
        max_attempts: int = 1,
        block_path: bool = True,
        start_method: Optional[str] = None,
        retry: Optional[RetryPolicy] = None,
        faults: Optional[FaultPlan] = None,
        speculative: bool = False,
        bus=None,
    ):
        super().__init__(
            max_attempts=max_attempts,
            block_path=block_path,
            retry=retry,
            faults=faults,
            speculative=speculative,
            bus=bus,
        )
        if max_workers is not None and max_workers < 1:
            raise ValidationError(
                f"max_workers must be >= 1, got {max_workers}"
            )
        self.max_workers = max_workers
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        self.start_method = start_method

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(max_workers={self.max_workers}, "
            f"start_method={self.start_method!r}, "
            f"block_path={self.block_path})"
        )

    def _resolved_workers(self) -> int:
        return self.max_workers or os.cpu_count() or 1

    def run(self, job: MapReduceJob) -> JobResult:
        job.validate()
        stats = JobStats(job_name=job.name)
        stats.broadcast_bytes = job.cache.payload_bytes()
        self._emit_job_start(job)

        spec = _JobSpec(
            mapper_factory=job.mapper_factory,
            reducer_factory=job.reducer_factory,
            combiner_factory=job.combiner_factory,
            num_reducers=job.num_reducers,
            cache=job.cache,
            sort_keys=job.sort_keys,
            merge_point_blocks=job.merge_point_blocks,
            retry=self.retry,
            faults=self.faults,
            speculative=self.speculative,
            block_path=self.block_path,
        )
        mp_context = multiprocessing.get_context(self.start_method)
        with ProcessPoolExecutor(
            max_workers=self._resolved_workers(),
            mp_context=mp_context,
            initializer=_install_worker_spec,
            initargs=(spec,),
        ) as pool:
            map_results = list(pool.map(_worker_map_task, list(job.splits)))
            map_outputs = self._collect_maps(stats, map_results)

            buckets = shuffle_outputs(job, map_outputs)
            self._emit_shuffle(job, buckets)

            reduce_results = list(
                pool.map(
                    _worker_reduce_task,
                    [(r, buckets[r]) for r in range(job.num_reducers)],
                )
            )
        reducer_outputs = self._collect_reduces(stats, reduce_results)
        self._emit_job_end(stats)
        return JobResult(job_name=job.name, reducer_outputs=reducer_outputs, stats=stats)
