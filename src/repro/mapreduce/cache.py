"""A Distributed-Cache equivalent (paper Section 2.1).

"When a MapReduce job starts, data written to the Distributed Cache is
transferred to all nodes, making it accessible in the Map and Reduce
functions. This paper assumes that the Distributed Cache, or something
similar, is available."

The cache is write-once at job-build time and read-only inside tasks.
Its total payload size is charged to the job's broadcast traffic by the
cluster model (it is replicated to every node, as in Hadoop).
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, Mapping

from repro.errors import ValidationError
from repro.mapreduce.sizes import payload_size


class DistributedCache:
    """Immutable broadcast key-value store for one job."""

    __slots__ = ("_data", "_payload_bytes")

    def __init__(self, data: Mapping[str, Any] = None):
        self._data: Dict[str, Any] = dict(data or {})
        self._payload_bytes: int = -1

    def __getitem__(self, key: str) -> Any:
        try:
            return self._data[key]
        except KeyError:
            raise ValidationError(
                f"distributed cache has no entry {key!r}; "
                f"available: {sorted(self._data)}"
            ) from None

    def get(self, key: str, default: Any = None) -> Any:
        return self._data.get(key, default)

    def __contains__(self, key: str) -> bool:
        return key in self._data

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._data))

    def __len__(self) -> int:
        return len(self._data)

    def payload_bytes(self) -> int:
        """Approximate bytes broadcast to each node.

        Memoized: the cache is write-once at job-build time (grids and
        bitstrings are immutable once set), and chained pipelines ask
        for this on every job — re-walking and re-sizing every cached
        object each time is pure waste.
        """
        if self._payload_bytes < 0:
            self._payload_bytes = sum(
                payload_size(v) for v in self._data.values()
            )
        return self._payload_bytes

    def replaced(self, data: Mapping[str, Any]) -> "DistributedCache":
        """A new cache with the same keys but substituted values.

        Used by the zero-copy substrate to swap block payloads for
        their shared-memory equivalents. The key set must be
        unchanged; the memoized payload size carries over because the
        substitution is size-preserving by construction (a shared
        block sizes exactly like the PointSet it mirrors).
        """
        if set(data) != set(self._data):
            raise ValidationError(
                "replaced() must keep the cache's key set unchanged"
            )
        out = DistributedCache(data)
        out._payload_bytes = self._payload_bytes
        return out

    @classmethod
    def empty(cls) -> "DistributedCache":
        return cls({})
