"""The serial (deterministic) MapReduce engine.

Executes a :class:`~repro.mapreduce.job.MapReduceJob` exactly as Hadoop
would — map, optional combine, partition, shuffle/sort/group, reduce —
but one task at a time, timing every task. Parallelism is *modelled*,
not exercised: the cluster model turns per-task durations into a
makespan (see :mod:`repro.mapreduce.cluster`), while
:class:`~repro.mapreduce.parallel.ThreadPoolEngine` and
:class:`~repro.mapreduce.parallel.ProcessPoolEngine` offer genuinely
concurrent execution with identical semantics.

Map tasks have two input protocols. When a split carries a columnar
block (:class:`~repro.mapreduce.types.BlockInputSplit`) and the mapper
overrides :meth:`~repro.mapreduce.types.Mapper.map_block`, the engine
hands the whole block over in one call — zero per-tuple Python work.
Otherwise it iterates ``(key, value)`` records exactly as before.
Counters, shuffle-byte accounting, and outputs are identical on both
paths; ``block_path=False`` forces the record path (used by the
fast-path benchmark and the equivalence tests).
"""

from __future__ import annotations

import time
from collections import OrderedDict
from typing import Dict, List, Tuple

from repro.core.pointset import PointSet
from repro.errors import TaskFailedError, ValidationError
from repro.mapreduce import counters as counter_names
from repro.mapreduce.faults import FaultPlan, RetryPolicy
from repro.mapreduce.job import JobResult, MapReduceJob
from repro.mapreduce.metrics import AttemptRecord, JobStats, TaskStats
from repro.mapreduce.sizes import payload_size
from repro.mapreduce.types import (
    KeyValue,
    TaskContext,
    TaskId,
    supports_block_map,
)
from repro.obs.events import (
    Broadcast,
    EventBus,
    FaultInjected,
    JobEnd,
    JobStart,
    Shuffle,
    SpeculationLaunched,
    TaskAttemptEnd,
    TaskAttemptStart,
    replay_task_events,
)


def _bus_active(bus) -> bool:
    """One cheap guard for every emission site: the telemetry layer's
    documented overhead budget requires that no event object is even
    constructed unless a subscriber is attached."""
    return bus is not None and bus.active


def _sorted_keys(keys) -> List:
    """Sort keys; fall back to repr order for mixed/unsortable keys."""
    keys = list(keys)
    try:
        return sorted(keys)
    except TypeError:
        return sorted(keys, key=repr)


def _group_by_key(
    pairs: List[KeyValue], sort: bool, merge_blocks: bool = False
) -> "OrderedDict":
    grouped: Dict = OrderedDict()
    for key, value in pairs:
        grouped.setdefault(key, []).append(value)
    if merge_blocks:
        for key, values in grouped.items():
            if (
                len(values) > 1
                and all(isinstance(v, PointSet) for v in values)
                and any(len(v) for v in values)
            ):
                grouped[key] = [PointSet.concat(values)]
    if not sort:
        return grouped
    ordered = OrderedDict()
    for key in _sorted_keys(grouped.keys()):
        ordered[key] = grouped[key]
    return ordered


def attempt_task(
    task_id: TaskId,
    run_once,
    retry,
    faults: "FaultPlan" = None,
    speculative: bool = False,
    bus: "EventBus" = None,
    job: str = None,
):
    """Run ``run_once`` under a retry policy; returns ``(result, attempts)``.

    A failing attempt is re-run from scratch (the caller builds a fresh
    task instance and context per attempt), up to the policy's attempt
    budget — but only for *retryable* errors: programming and validation
    bugs fail identically every time, so the policy surfaces them
    immediately instead of burning attempts.

    ``faults`` injects deterministic failures and straggler slowdowns
    per attempt; with ``speculative`` enabled, a straggler attempt gets
    a backup copy (run on a different simulated node, no injected
    slowdown) and the first finisher wins — the loser is recorded as
    ``killed``, exactly Hadoop's speculative execution.

    ``attempts`` is the complete :class:`AttemptRecord` history in
    execution order; the winning attempt is always last. ``retry`` also
    accepts a bare int (the legacy ``max_attempts``).
    """
    if isinstance(retry, int):
        retry = RetryPolicy.from_attempts(retry)
    attempts: List[AttemptRecord] = []
    last_error = None
    for attempt in range(retry.max_attempts):
        node = faults.node_of(task_id) if faults is not None else None
        if _bus_active(bus):
            bus.emit(
                TaskAttemptStart(
                    job=job, task_id=str(task_id), attempt=attempt, node=node
                )
            )
        injected = (
            faults.injected_error(task_id, attempt)
            if faults is not None
            else None
        )
        if injected is not None:
            # The injected crash kills the attempt at the end of its
            # work (it is still charged in full by the makespan model);
            # the real task body never runs, so no partial output and
            # no wasted CPU in the simulation.
            record = AttemptRecord(
                attempt=attempt,
                outcome="failed",
                slowdown=faults.slowdown(task_id, attempt),
                error=repr(injected),
                node=node,
            )
            attempts.append(record)
            if _bus_active(bus):
                bus.emit(
                    FaultInjected(
                        job=job,
                        task_id=str(task_id),
                        attempt=attempt,
                        error=record.error,
                        node=node,
                    )
                )
                bus.emit(
                    TaskAttemptEnd(
                        job=job,
                        task_id=str(task_id),
                        attempt=attempt,
                        outcome="failed",
                        slowdown=record.slowdown,
                        error=record.error,
                        node=node,
                    )
                )
            last_error = injected
            continue
        started = time.perf_counter()
        try:
            result = run_once(attempt)
        except Exception as exc:  # repro: allow[REP006]
            # The fault-tolerance boundary: ANY user-code error is a
            # task failure by definition (exactly Hadoop's child-JVM
            # catch). ValidationError is not swallowed — the retry
            # policy classifies it non-retryable and re-raises below.
            record = AttemptRecord(
                attempt=attempt,
                outcome="failed",
                duration_s=time.perf_counter() - started,
                error=repr(exc),
                node=node,
            )
            attempts.append(record)
            if _bus_active(bus):
                bus.emit(
                    TaskAttemptEnd(
                        job=job,
                        task_id=str(task_id),
                        attempt=attempt,
                        outcome="failed",
                        duration_s=record.duration_s,
                        error=record.error,
                        node=node,
                    )
                )
            last_error = exc
            if not retry.is_retryable(exc):
                raise TaskFailedError(str(task_id), exc) from exc
            continue
        duration = time.perf_counter() - started
        slowdown = (
            faults.slowdown(task_id, attempt) if faults is not None else 1.0
        )
        if speculative and slowdown > 1.0:
            backup = _speculate(
                task_id, run_once, attempt, duration, slowdown, node,
                faults, attempts, bus=bus, job=job,
            )
            if backup is not None:
                return backup, attempts
            return result, attempts
        attempts.append(
            AttemptRecord(
                attempt=attempt,
                outcome="success",
                duration_s=duration,
                slowdown=slowdown,
                node=node,
            )
        )
        if _bus_active(bus):
            bus.emit(
                TaskAttemptEnd(
                    job=job,
                    task_id=str(task_id),
                    attempt=attempt,
                    outcome="success",
                    duration_s=duration,
                    slowdown=slowdown,
                    node=node,
                )
            )
        return result, attempts
    raise TaskFailedError(str(task_id), last_error) from last_error


def _speculate(
    task_id, run_once, attempt, duration, slowdown, node, faults, attempts,
    bus=None, job=None,
):
    """Launch a backup copy of a straggler attempt; first finisher wins.

    The backup runs on a neighbouring simulated node at normal speed,
    so (slowdown > 1 being the trigger) it always finishes first in
    modelled time: the straggler is recorded as ``killed`` — charged
    only up to the backup's finish, as Hadoop kills the loser — and the
    backup's result is used. If the backup itself crashes (only
    possible with genuinely flaky user code), the straggler's completed
    result stands and ``None`` is returned.
    """
    backup_node = (
        (node + 1) % faults.num_nodes if node is not None else None
    )
    if _bus_active(bus):
        bus.emit(
            SpeculationLaunched(
                job=job,
                task_id=str(task_id),
                attempt=attempt,
                node=node,
                backup_node=backup_node,
            )
        )
        bus.emit(
            TaskAttemptStart(
                job=job,
                task_id=str(task_id),
                attempt=attempt,
                node=backup_node,
                speculative=True,
            )
        )
    started = time.perf_counter()
    try:
        backup_result = run_once(attempt)
    except Exception as exc:  # repro: allow[REP006]
        # Same fault-tolerance boundary as attempt_task: a crashed
        # backup of any error type must not kill the job while the
        # straggler's completed result stands.
        # Winner last: the crashed backup is recorded before the
        # straggler's surviving success.
        attempts.append(
            AttemptRecord(
                attempt=attempt,
                outcome="failed",
                duration_s=time.perf_counter() - started,
                error=repr(exc),
                node=backup_node,
            )
        )
        attempts.append(
            AttemptRecord(
                attempt=attempt,
                outcome="success",
                duration_s=duration,
                slowdown=slowdown,
                node=node,
            )
        )
        if _bus_active(bus):
            failed_backup, straggler = attempts[-2], attempts[-1]
            bus.emit(
                TaskAttemptEnd(
                    job=job,
                    task_id=str(task_id),
                    attempt=attempt,
                    outcome="failed",
                    duration_s=failed_backup.duration_s,
                    error=failed_backup.error,
                    node=backup_node,
                    speculative=True,
                )
            )
            bus.emit(
                TaskAttemptEnd(
                    job=job,
                    task_id=str(task_id),
                    attempt=attempt,
                    outcome="success",
                    duration_s=straggler.duration_s,
                    slowdown=straggler.slowdown,
                    node=node,
                )
            )
        return None
    attempts.append(
        AttemptRecord(
            attempt=attempt,
            outcome="killed",
            duration_s=duration,
            slowdown=slowdown,
            node=node,
        )
    )
    attempts.append(
        AttemptRecord(
            attempt=attempt,
            outcome="speculative",
            duration_s=time.perf_counter() - started,
            slowdown=1.0,
            node=backup_node,
        )
    )
    if _bus_active(bus):
        killed, winner = attempts[-2], attempts[-1]
        bus.emit(
            TaskAttemptEnd(
                job=job,
                task_id=str(task_id),
                attempt=attempt,
                outcome="killed",
                duration_s=killed.duration_s,
                slowdown=killed.slowdown,
                node=node,
            )
        )
        bus.emit(
            TaskAttemptEnd(
                job=job,
                task_id=str(task_id),
                attempt=attempt,
                outcome="speculative",
                duration_s=winner.duration_s,
                node=backup_node,
                speculative=True,
            )
        )
    return backup_result


def run_combiner(
    job, split_id: int, map_ctx: TaskContext, output: List[KeyValue]
) -> List[KeyValue]:
    """Run the combiner over one mapper's output, in the map task."""
    combine_ctx = TaskContext(
        TaskId("combine", split_id), job.num_reducers, job.cache
    )
    combiner = job.combiner_factory()
    combiner.setup(combine_ctx)
    for key, values in _group_by_key(output, job.sort_keys).items():
        combiner.reduce(key, values, combine_ctx)
    combiner.cleanup(combine_ctx)
    map_ctx.counters.merge(combine_ctx.counters)
    return combine_ctx.output


def execute_map_attempt(
    job, split, task_id: TaskId, block_path: bool
) -> Tuple[TaskContext, List[KeyValue], int, float]:
    """One attempt of one map task (block fast path or record path).

    ``job`` only needs mapper/combiner factories, ``num_reducers``,
    ``cache`` and ``sort_keys`` — engines may pass a slim job spec
    (the process-pool engine ships one to its workers).
    """
    ctx = TaskContext(task_id, job.num_reducers, job.cache)
    mapper = job.mapper_factory()
    started = time.perf_counter()
    mapper.setup(ctx)
    points = getattr(split, "points", None) if block_path else None
    if points is not None and supports_block_map(mapper):
        records_in = len(points)
        mapper.map_block(points, ctx)
    else:
        records_in = 0
        for key, value in split:
            records_in += 1
            mapper.map(key, value, ctx)
    mapper.cleanup(ctx)
    output = ctx.output
    if job.combiner_factory is not None:
        output = run_combiner(job, split.split_id, ctx, output)
    return ctx, output, records_in, time.perf_counter() - started


def execute_reduce_attempt(
    job, bucket: List[KeyValue], task_id: TaskId
) -> Tuple[TaskContext, float]:
    """One attempt of one reduce task over its shuffled bucket."""
    ctx = TaskContext(task_id, job.num_reducers, job.cache)
    reducer = job.reducer_factory()
    grouped = _group_by_key(
        bucket, job.sort_keys, getattr(job, "merge_point_blocks", False)
    )
    started = time.perf_counter()
    reducer.setup(ctx)
    for key, values in grouped.items():
        reducer.reduce(key, values, ctx)
    reducer.cleanup(ctx)
    return ctx, time.perf_counter() - started


def _charge_attempt_counters(ctx: TaskContext, attempts) -> None:
    """Fold the attempt history into the task's counters.

    Only charged when nonzero so fault-free runs keep their exact
    pre-fault counter fingerprints.
    """
    retries = sum(1 for a in attempts if a.outcome == "failed")
    if retries:
        ctx.counters.inc(counter_names.TASK_RETRIES, retries)
    speculative = sum(1 for a in attempts if a.outcome == "speculative")
    if speculative:
        ctx.counters.inc(counter_names.SPECULATIVE_ATTEMPTS, speculative)
    node_losses = sum(
        1
        for a in attempts
        if a.error is not None and a.error.startswith("NodeLostError")
    )
    if node_losses:
        ctx.counters.inc(counter_names.NODE_LOSS_REEXECS, node_losses)


def finish_map_task(
    task_id: TaskId, ctx: TaskContext, output: List[KeyValue],
    records_in: int, duration: float, attempts=(),
) -> TaskStats:
    """Charge per-task counters and byte accounting for one map task."""
    bytes_out = sum(payload_size(k) + payload_size(v) for k, v in output)
    ctx.counters.inc(counter_names.RECORDS_IN, records_in)
    ctx.counters.inc(counter_names.RECORDS_OUT, len(output))
    _charge_attempt_counters(ctx, attempts)
    return TaskStats(
        task_id=task_id,
        duration_s=duration,
        records_in=records_in,
        records_out=len(output),
        bytes_out=bytes_out,
        counters=ctx.counters,
        attempts=list(attempts),
    )


def finish_reduce_task(
    task_id: TaskId, ctx: TaskContext, records_in: int, duration: float,
    attempts=(),
) -> TaskStats:
    """Charge per-task counters and byte accounting for one reduce task."""
    output = ctx.output
    bytes_out = sum(payload_size(k) + payload_size(v) for k, v in output)
    ctx.counters.inc(counter_names.RECORDS_IN, records_in)
    ctx.counters.inc(counter_names.RECORDS_OUT, len(output))
    _charge_attempt_counters(ctx, attempts)
    return TaskStats(
        task_id=task_id,
        duration_s=duration,
        records_in=records_in,
        records_out=len(output),
        bytes_out=bytes_out,
        counters=ctx.counters,
        attempts=list(attempts),
    )


def partition_index(job, key, n: int) -> int:
    """One validated partitioner probe: which reducer gets ``key``.

    Shared by the shuffle and the BSP communication phase so both route
    identically. A negative index would silently wrap to the wrong
    reducer and an index >= num_reducers would raise a bare IndexError
    — both are configuration bugs worth naming.
    """
    index = job.partitioner(key, n)
    if not isinstance(index, int) or isinstance(index, bool):
        try:
            index = int(index)  # allow numpy integer indices
        except (TypeError, ValueError):
            raise ValidationError(
                f"partitioner returned non-integer {index!r} "
                f"for key {key!r} ({n} reducers)"
            ) from None
    if not 0 <= index < n:
        raise ValidationError(
            f"partitioner routed key {key!r} to reducer {index}, "
            f"outside [0, {n})"
        )
    return index


def shuffle_outputs(job, map_outputs: List[List[KeyValue]]) -> List[List[KeyValue]]:
    """Partition map outputs into per-reducer buckets."""
    n = job.num_reducers
    buckets: List[List[KeyValue]] = [[] for _ in range(n)]
    for output in map_outputs:
        for key, value in output:
            buckets[partition_index(job, key, n)].append((key, value))
    return buckets


class SerialEngine:
    """Run jobs one task at a time with exact per-task accounting.

    ``retry`` (a :class:`~repro.mapreduce.faults.RetryPolicy`)
    reproduces Hadoop's task-retry fault tolerance (the paper's
    Section 1 motivation for MapReduce: "scalability and
    fault-tolerance"): a failing task is re-run from scratch with a
    fresh mapper/reducer instance and a fresh context, up to the
    policy's budget — except for non-retryable programming/validation
    errors, which fail the job immediately. Hadoop's default budget is
    4 attempts; ``max_attempts`` remains as shorthand for
    ``RetryPolicy(max_attempts=...)``.

    ``faults`` (a :class:`~repro.mapreduce.faults.FaultPlan`) injects
    deterministic per-attempt failures, node losses, and straggler
    slowdowns; ``speculative`` enables backup copies of stragglers.
    Results are engine- and fault-schedule-independent; only the
    attempt history and the simulated makespan change.

    ``block_path`` enables the columnar fast path for block splits and
    block-aware mappers (identical results either way; off switches the
    runtime back to record-at-a-time iteration everywhere).

    ``bus`` (an :class:`~repro.obs.events.EventBus`) receives the typed
    telemetry stream — job/task lifecycles, shuffle, broadcast, faults,
    speculation. ``None`` (the default) costs one ``is not None`` test
    per site; attached-but-unobserved stays within the documented < 2%
    budget because events are only constructed when a subscriber is
    listening.
    """

    #: Whether task attempts emit bus events live, as they run. The
    #: process-pool engine flips this off (worker processes have no
    #: channel to the parent's bus) and replays recorded histories in
    #: the collect phase instead.
    _live_task_events = True

    def __init__(
        self,
        max_attempts: int = 1,
        block_path: bool = True,
        retry: RetryPolicy = None,
        faults: FaultPlan = None,
        speculative: bool = False,
        bus: EventBus = None,
    ):
        if retry is None:
            if max_attempts < 1:
                raise ValidationError(
                    f"max_attempts must be >= 1, got {max_attempts}"
                )
            retry = RetryPolicy.from_attempts(max_attempts)
        self.retry = retry
        self.faults = faults
        self.speculative = bool(speculative)
        self.block_path = bool(block_path)
        self.bus = bus

    @property
    def max_attempts(self) -> int:
        return self.retry.max_attempts

    def __repr__(self) -> str:
        extras = ""
        if self.faults is not None:
            extras += f", faults={self.faults!r}"
        if self.speculative:
            extras += ", speculative=True"
        return f"{type(self).__name__}(block_path={self.block_path}{extras})"

    def _attempt(self, task_id: TaskId, run_once, job_name: str = None):
        """Run with retry/faults; returns ((ctx, ...), attempt history)."""
        return attempt_task(
            task_id,
            run_once,
            self.retry,
            faults=self.faults,
            speculative=self.speculative,
            bus=self.bus if self._live_task_events else None,
            job=job_name,
        )

    # -- single-task drivers (shared with the concurrent engines) -------

    def _map_task(self, job, split) -> Tuple[TaskStats, List[KeyValue]]:
        task_id = TaskId("map", split.split_id)
        (ctx, output, records_in, duration), attempts = self._attempt(
            task_id,
            lambda attempt: execute_map_attempt(
                job, split, task_id, self.block_path
            ),
            job_name=job.name,
        )
        return (
            finish_map_task(
                task_id, ctx, output, records_in, duration, attempts
            ),
            output,
        )

    def _reduce_task(
        self, job, r: int, bucket: List[KeyValue]
    ) -> Tuple[TaskStats, List[KeyValue]]:
        task_id = TaskId("reduce", r)
        (ctx, duration), attempts = self._attempt(
            task_id,
            lambda attempt: execute_reduce_attempt(job, bucket, task_id),
            job_name=job.name,
        )
        return (
            finish_reduce_task(task_id, ctx, len(bucket), duration, attempts),
            ctx.output,
        )

    # -- telemetry ------------------------------------------------------

    def _emit_job_start(self, job) -> None:
        if not _bus_active(self.bus):
            return
        self.bus.emit(
            JobStart(
                job=job.name,
                num_mappers=len(job.splits),
                num_reducers=job.num_reducers,
            )
        )
        self.bus.emit(
            Broadcast(
                job=job.name,
                payload_bytes=job.cache.payload_bytes(),
                num_keys=len(job.cache),
            )
        )

    def _emit_shuffle(self, job, buckets) -> None:
        if not _bus_active(self.bus):
            return
        # Per-partition byte sizing is the one genuinely expensive probe
        # (payload_size per record), so it only ever runs on this
        # subscriber-attached path.
        partition_bytes = tuple(
            sum(payload_size(k) + payload_size(v) for k, v in bucket)
            for bucket in buckets
        )
        self.bus.emit(
            Shuffle(
                job=job.name,
                partition_records=tuple(len(b) for b in buckets),
                partition_bytes=partition_bytes,
                total_bytes=sum(partition_bytes),
            )
        )

    def _emit_job_end(self, stats: JobStats) -> None:
        if _bus_active(self.bus):
            self.bus.emit(JobEnd(job=stats.job_name, stats=stats))

    # -- phase aggregation ----------------------------------------------

    def _collect_maps(self, stats: JobStats, map_results) -> List[List[KeyValue]]:
        replay = not self._live_task_events and _bus_active(self.bus)
        map_outputs: List[List[KeyValue]] = []
        for task_stats, output in map_results:
            if replay:
                replay_task_events(self.bus, stats.job_name, task_stats)
            stats.map_tasks.append(task_stats)
            stats.counters.merge(task_stats.counters)
            stats.shuffle_bytes += task_stats.bytes_out
            map_outputs.append(output)
        return map_outputs

    def _collect_reduces(self, stats: JobStats, reduce_results) -> List[List[KeyValue]]:
        replay = not self._live_task_events and _bus_active(self.bus)
        reducer_outputs: List[List[KeyValue]] = []
        for task_stats, output in reduce_results:
            if replay:
                replay_task_events(self.bus, stats.job_name, task_stats)
            stats.reduce_tasks.append(task_stats)
            stats.counters.merge(task_stats.counters)
            reducer_outputs.append(output)
        stats.counters.inc(counter_names.SHUFFLE_BYTES, stats.shuffle_bytes)
        return reducer_outputs

    def run(self, job: MapReduceJob) -> JobResult:
        job.validate()
        stats = JobStats(job_name=job.name)
        stats.broadcast_bytes = job.cache.payload_bytes()
        self._emit_job_start(job)

        map_results = [self._map_task(job, split) for split in job.splits]
        map_outputs = self._collect_maps(stats, map_results)

        buckets = shuffle_outputs(job, map_outputs)
        self._emit_shuffle(job, buckets)

        reduce_results = [
            self._reduce_task(job, r, buckets[r])
            for r in range(job.num_reducers)
        ]
        reducer_outputs = self._collect_reduces(stats, reduce_results)
        self._emit_job_end(stats)
        return JobResult(job_name=job.name, reducer_outputs=reducer_outputs, stats=stats)
