"""The serial (deterministic) MapReduce engine.

Executes a :class:`~repro.mapreduce.job.MapReduceJob` exactly as Hadoop
would — map, optional combine, partition, shuffle/sort/group, reduce —
but one task at a time, timing every task. Parallelism is *modelled*,
not exercised: the cluster model turns per-task durations into a
makespan (see :mod:`repro.mapreduce.cluster`), while
:class:`~repro.mapreduce.parallel.ThreadPoolEngine` and
:class:`~repro.mapreduce.parallel.ProcessPoolEngine` offer genuinely
concurrent execution with identical semantics.

Map tasks have two input protocols. When a split carries a columnar
block (:class:`~repro.mapreduce.types.BlockInputSplit`) and the mapper
overrides :meth:`~repro.mapreduce.types.Mapper.map_block`, the engine
hands the whole block over in one call — zero per-tuple Python work.
Otherwise it iterates ``(key, value)`` records exactly as before.
Counters, shuffle-byte accounting, and outputs are identical on both
paths; ``block_path=False`` forces the record path (used by the
fast-path benchmark and the equivalence tests).
"""

from __future__ import annotations

import time
from collections import OrderedDict
from typing import Dict, List, Tuple

from repro.core.pointset import PointSet
from repro.errors import TaskFailedError, ValidationError
from repro.mapreduce import counters as counter_names
from repro.mapreduce.job import JobResult, MapReduceJob
from repro.mapreduce.metrics import JobStats, TaskStats
from repro.mapreduce.sizes import payload_size
from repro.mapreduce.types import (
    KeyValue,
    TaskContext,
    TaskId,
    supports_block_map,
)


def _sorted_keys(keys) -> List:
    """Sort keys; fall back to repr order for mixed/unsortable keys."""
    keys = list(keys)
    try:
        return sorted(keys)
    except TypeError:
        return sorted(keys, key=repr)


def _group_by_key(
    pairs: List[KeyValue], sort: bool, merge_blocks: bool = False
) -> "OrderedDict":
    grouped: Dict = OrderedDict()
    for key, value in pairs:
        grouped.setdefault(key, []).append(value)
    if merge_blocks:
        for key, values in grouped.items():
            if (
                len(values) > 1
                and all(isinstance(v, PointSet) for v in values)
                and any(len(v) for v in values)
            ):
                grouped[key] = [PointSet.concat(values)]
    if not sort:
        return grouped
    ordered = OrderedDict()
    for key in _sorted_keys(grouped.keys()):
        ordered[key] = grouped[key]
    return ordered


def attempt_task(task_id: TaskId, run_once, max_attempts: int):
    """Run ``run_once`` with Hadoop-style retry; returns its result.

    A failing attempt is re-run from scratch (the caller builds a fresh
    task instance and context per attempt), up to ``max_attempts``;
    only then does the task — and with it the job — fail.
    """
    last_error = None
    for attempt in range(max_attempts):
        try:
            return run_once(attempt)
        except Exception as exc:
            last_error = exc
    raise TaskFailedError(str(task_id), last_error) from last_error


def run_combiner(
    job, split_id: int, map_ctx: TaskContext, output: List[KeyValue]
) -> List[KeyValue]:
    """Run the combiner over one mapper's output, in the map task."""
    combine_ctx = TaskContext(
        TaskId("combine", split_id), job.num_reducers, job.cache
    )
    combiner = job.combiner_factory()
    combiner.setup(combine_ctx)
    for key, values in _group_by_key(output, job.sort_keys).items():
        combiner.reduce(key, values, combine_ctx)
    combiner.cleanup(combine_ctx)
    map_ctx.counters.merge(combine_ctx.counters)
    return combine_ctx.output


def execute_map_attempt(
    job, split, task_id: TaskId, block_path: bool
) -> Tuple[TaskContext, List[KeyValue], int, float]:
    """One attempt of one map task (block fast path or record path).

    ``job`` only needs mapper/combiner factories, ``num_reducers``,
    ``cache`` and ``sort_keys`` — engines may pass a slim job spec
    (the process-pool engine ships one to its workers).
    """
    ctx = TaskContext(task_id, job.num_reducers, job.cache)
    mapper = job.mapper_factory()
    started = time.perf_counter()
    mapper.setup(ctx)
    points = getattr(split, "points", None) if block_path else None
    if points is not None and supports_block_map(mapper):
        records_in = len(points)
        mapper.map_block(points, ctx)
    else:
        records_in = 0
        for key, value in split:
            records_in += 1
            mapper.map(key, value, ctx)
    mapper.cleanup(ctx)
    output = ctx.output
    if job.combiner_factory is not None:
        output = run_combiner(job, split.split_id, ctx, output)
    return ctx, output, records_in, time.perf_counter() - started


def execute_reduce_attempt(
    job, bucket: List[KeyValue], task_id: TaskId
) -> Tuple[TaskContext, float]:
    """One attempt of one reduce task over its shuffled bucket."""
    ctx = TaskContext(task_id, job.num_reducers, job.cache)
    reducer = job.reducer_factory()
    grouped = _group_by_key(
        bucket, job.sort_keys, getattr(job, "merge_point_blocks", False)
    )
    started = time.perf_counter()
    reducer.setup(ctx)
    for key, values in grouped.items():
        reducer.reduce(key, values, ctx)
    reducer.cleanup(ctx)
    return ctx, time.perf_counter() - started


def finish_map_task(
    task_id: TaskId, ctx: TaskContext, output: List[KeyValue],
    records_in: int, duration: float,
) -> TaskStats:
    """Charge per-task counters and byte accounting for one map task."""
    bytes_out = sum(payload_size(k) + payload_size(v) for k, v in output)
    ctx.counters.inc(counter_names.RECORDS_IN, records_in)
    ctx.counters.inc(counter_names.RECORDS_OUT, len(output))
    return TaskStats(
        task_id=task_id,
        duration_s=duration,
        records_in=records_in,
        records_out=len(output),
        bytes_out=bytes_out,
        counters=ctx.counters,
    )


def finish_reduce_task(
    task_id: TaskId, ctx: TaskContext, records_in: int, duration: float
) -> TaskStats:
    """Charge per-task counters and byte accounting for one reduce task."""
    output = ctx.output
    bytes_out = sum(payload_size(k) + payload_size(v) for k, v in output)
    ctx.counters.inc(counter_names.RECORDS_IN, records_in)
    ctx.counters.inc(counter_names.RECORDS_OUT, len(output))
    return TaskStats(
        task_id=task_id,
        duration_s=duration,
        records_in=records_in,
        records_out=len(output),
        bytes_out=bytes_out,
        counters=ctx.counters,
    )


def shuffle_outputs(job, map_outputs: List[List[KeyValue]]) -> List[List[KeyValue]]:
    """Partition map outputs into per-reducer buckets."""
    buckets: List[List[KeyValue]] = [[] for _ in range(job.num_reducers)]
    for output in map_outputs:
        for key, value in output:
            buckets[job.partitioner(key, job.num_reducers)].append((key, value))
    return buckets


class SerialEngine:
    """Run jobs one task at a time with exact per-task accounting.

    ``max_attempts`` reproduces Hadoop's task-retry fault tolerance
    (the paper's Section 1 motivation for MapReduce: "scalability and
    fault-tolerance"): a failing task is re-run from scratch with a
    fresh mapper/reducer instance and a fresh context, up to the limit;
    only then does the job fail. Hadoop's default is 4 attempts.

    ``block_path`` enables the columnar fast path for block splits and
    block-aware mappers (identical results either way; off switches the
    runtime back to record-at-a-time iteration everywhere).
    """

    def __init__(self, max_attempts: int = 1, block_path: bool = True):
        if max_attempts < 1:
            raise ValidationError(
                f"max_attempts must be >= 1, got {max_attempts}"
            )
        self.max_attempts = max_attempts
        self.block_path = bool(block_path)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(block_path={self.block_path})"

    def _attempt(self, task_id: TaskId, run_once):
        """Run ``run_once`` with retry; returns its (ctx, ...) result."""
        return attempt_task(task_id, run_once, self.max_attempts)

    # -- single-task drivers (shared with the concurrent engines) -------

    def _map_task(self, job, split) -> Tuple[TaskStats, List[KeyValue]]:
        task_id = TaskId("map", split.split_id)
        ctx, output, records_in, duration = self._attempt(
            task_id,
            lambda attempt: execute_map_attempt(
                job, split, task_id, self.block_path
            ),
        )
        return finish_map_task(task_id, ctx, output, records_in, duration), output

    def _reduce_task(
        self, job, r: int, bucket: List[KeyValue]
    ) -> Tuple[TaskStats, List[KeyValue]]:
        task_id = TaskId("reduce", r)
        ctx, duration = self._attempt(
            task_id,
            lambda attempt: execute_reduce_attempt(job, bucket, task_id),
        )
        return finish_reduce_task(task_id, ctx, len(bucket), duration), ctx.output

    # -- phase aggregation ----------------------------------------------

    def _collect_maps(self, stats: JobStats, map_results) -> List[List[KeyValue]]:
        map_outputs: List[List[KeyValue]] = []
        for task_stats, output in map_results:
            stats.map_tasks.append(task_stats)
            stats.counters.merge(task_stats.counters)
            stats.shuffle_bytes += task_stats.bytes_out
            map_outputs.append(output)
        return map_outputs

    def _collect_reduces(self, stats: JobStats, reduce_results) -> List[List[KeyValue]]:
        reducer_outputs: List[List[KeyValue]] = []
        for task_stats, output in reduce_results:
            stats.reduce_tasks.append(task_stats)
            stats.counters.merge(task_stats.counters)
            reducer_outputs.append(output)
        stats.counters.inc(counter_names.SHUFFLE_BYTES, stats.shuffle_bytes)
        return reducer_outputs

    def run(self, job: MapReduceJob) -> JobResult:
        job.validate()
        stats = JobStats(job_name=job.name)
        stats.broadcast_bytes = job.cache.payload_bytes()

        map_results = [self._map_task(job, split) for split in job.splits]
        map_outputs = self._collect_maps(stats, map_results)

        buckets = shuffle_outputs(job, map_outputs)

        reduce_results = [
            self._reduce_task(job, r, buckets[r])
            for r in range(job.num_reducers)
        ]
        reducer_outputs = self._collect_reduces(stats, reduce_results)
        return JobResult(job_name=job.name, reducer_outputs=reducer_outputs, stats=stats)

    def _combine(
        self,
        job: MapReduceJob,
        split_id: int,
        map_ctx: TaskContext,
        output: List[KeyValue],
    ) -> List[KeyValue]:
        """Run the combiner over one mapper's output, in the map task."""
        return run_combiner(job, split_id, map_ctx, output)
