"""The serial (deterministic) MapReduce engine.

Executes a :class:`~repro.mapreduce.job.MapReduceJob` exactly as Hadoop
would — map, optional combine, partition, shuffle/sort/group, reduce —
but one task at a time, timing every task. Parallelism is *modelled*,
not exercised: the cluster model turns per-task durations into a
makespan (see :mod:`repro.mapreduce.cluster`), while
:class:`~repro.mapreduce.parallel.ThreadPoolEngine` and
:class:`~repro.mapreduce.parallel.ProcessPoolEngine` offer genuinely
concurrent execution with identical semantics.

Map tasks have two input protocols. When a split carries a columnar
block (:class:`~repro.mapreduce.types.BlockInputSplit`) and the mapper
overrides :meth:`~repro.mapreduce.types.Mapper.map_block`, the engine
hands the whole block over in one call — zero per-tuple Python work.
Otherwise it iterates ``(key, value)`` records exactly as before.
Counters, shuffle-byte accounting, and outputs are identical on both
paths; ``block_path=False`` forces the record path (used by the
fast-path benchmark and the equivalence tests).
"""

from __future__ import annotations

import time
from collections import OrderedDict
from typing import Dict, List, Tuple

from repro.core.pointset import PointSet
from repro.errors import TaskFailedError, ValidationError
from repro.mapreduce import counters as counter_names
from repro.mapreduce.faults import FaultPlan, RetryPolicy
from repro.mapreduce.job import JobResult, MapReduceJob
from repro.mapreduce.metrics import AttemptRecord, JobStats, TaskStats
from repro.mapreduce.sizes import payload_size
from repro.mapreduce.types import (
    KeyValue,
    TaskContext,
    TaskId,
    supports_block_map,
)


def _sorted_keys(keys) -> List:
    """Sort keys; fall back to repr order for mixed/unsortable keys."""
    keys = list(keys)
    try:
        return sorted(keys)
    except TypeError:
        return sorted(keys, key=repr)


def _group_by_key(
    pairs: List[KeyValue], sort: bool, merge_blocks: bool = False
) -> "OrderedDict":
    grouped: Dict = OrderedDict()
    for key, value in pairs:
        grouped.setdefault(key, []).append(value)
    if merge_blocks:
        for key, values in grouped.items():
            if (
                len(values) > 1
                and all(isinstance(v, PointSet) for v in values)
                and any(len(v) for v in values)
            ):
                grouped[key] = [PointSet.concat(values)]
    if not sort:
        return grouped
    ordered = OrderedDict()
    for key in _sorted_keys(grouped.keys()):
        ordered[key] = grouped[key]
    return ordered


def attempt_task(
    task_id: TaskId,
    run_once,
    retry,
    faults: "FaultPlan" = None,
    speculative: bool = False,
):
    """Run ``run_once`` under a retry policy; returns ``(result, attempts)``.

    A failing attempt is re-run from scratch (the caller builds a fresh
    task instance and context per attempt), up to the policy's attempt
    budget — but only for *retryable* errors: programming and validation
    bugs fail identically every time, so the policy surfaces them
    immediately instead of burning attempts.

    ``faults`` injects deterministic failures and straggler slowdowns
    per attempt; with ``speculative`` enabled, a straggler attempt gets
    a backup copy (run on a different simulated node, no injected
    slowdown) and the first finisher wins — the loser is recorded as
    ``killed``, exactly Hadoop's speculative execution.

    ``attempts`` is the complete :class:`AttemptRecord` history in
    execution order; the winning attempt is always last. ``retry`` also
    accepts a bare int (the legacy ``max_attempts``).
    """
    if isinstance(retry, int):
        retry = RetryPolicy.from_attempts(retry)
    attempts: List[AttemptRecord] = []
    last_error = None
    for attempt in range(retry.max_attempts):
        node = faults.node_of(task_id) if faults is not None else None
        injected = (
            faults.injected_error(task_id, attempt)
            if faults is not None
            else None
        )
        if injected is not None:
            # The injected crash kills the attempt at the end of its
            # work (it is still charged in full by the makespan model);
            # the real task body never runs, so no partial output and
            # no wasted CPU in the simulation.
            attempts.append(
                AttemptRecord(
                    attempt=attempt,
                    outcome="failed",
                    slowdown=faults.slowdown(task_id, attempt),
                    error=repr(injected),
                    node=node,
                )
            )
            last_error = injected
            continue
        started = time.perf_counter()
        try:
            result = run_once(attempt)
        except Exception as exc:
            attempts.append(
                AttemptRecord(
                    attempt=attempt,
                    outcome="failed",
                    duration_s=time.perf_counter() - started,
                    error=repr(exc),
                    node=node,
                )
            )
            last_error = exc
            if not retry.is_retryable(exc):
                raise TaskFailedError(str(task_id), exc) from exc
            continue
        duration = time.perf_counter() - started
        slowdown = (
            faults.slowdown(task_id, attempt) if faults is not None else 1.0
        )
        if speculative and slowdown > 1.0:
            backup = _speculate(
                task_id, run_once, attempt, duration, slowdown, node,
                faults, attempts,
            )
            if backup is not None:
                return backup, attempts
            return result, attempts
        attempts.append(
            AttemptRecord(
                attempt=attempt,
                outcome="success",
                duration_s=duration,
                slowdown=slowdown,
                node=node,
            )
        )
        return result, attempts
    raise TaskFailedError(str(task_id), last_error) from last_error


def _speculate(
    task_id, run_once, attempt, duration, slowdown, node, faults, attempts
):
    """Launch a backup copy of a straggler attempt; first finisher wins.

    The backup runs on a neighbouring simulated node at normal speed,
    so (slowdown > 1 being the trigger) it always finishes first in
    modelled time: the straggler is recorded as ``killed`` — charged
    only up to the backup's finish, as Hadoop kills the loser — and the
    backup's result is used. If the backup itself crashes (only
    possible with genuinely flaky user code), the straggler's completed
    result stands and ``None`` is returned.
    """
    backup_node = (
        (node + 1) % faults.num_nodes if node is not None else None
    )
    started = time.perf_counter()
    try:
        backup_result = run_once(attempt)
    except Exception as exc:
        # Winner last: the crashed backup is recorded before the
        # straggler's surviving success.
        attempts.append(
            AttemptRecord(
                attempt=attempt,
                outcome="failed",
                duration_s=time.perf_counter() - started,
                error=repr(exc),
                node=backup_node,
            )
        )
        attempts.append(
            AttemptRecord(
                attempt=attempt,
                outcome="success",
                duration_s=duration,
                slowdown=slowdown,
                node=node,
            )
        )
        return None
    attempts.append(
        AttemptRecord(
            attempt=attempt,
            outcome="killed",
            duration_s=duration,
            slowdown=slowdown,
            node=node,
        )
    )
    attempts.append(
        AttemptRecord(
            attempt=attempt,
            outcome="speculative",
            duration_s=time.perf_counter() - started,
            slowdown=1.0,
            node=backup_node,
        )
    )
    return backup_result


def run_combiner(
    job, split_id: int, map_ctx: TaskContext, output: List[KeyValue]
) -> List[KeyValue]:
    """Run the combiner over one mapper's output, in the map task."""
    combine_ctx = TaskContext(
        TaskId("combine", split_id), job.num_reducers, job.cache
    )
    combiner = job.combiner_factory()
    combiner.setup(combine_ctx)
    for key, values in _group_by_key(output, job.sort_keys).items():
        combiner.reduce(key, values, combine_ctx)
    combiner.cleanup(combine_ctx)
    map_ctx.counters.merge(combine_ctx.counters)
    return combine_ctx.output


def execute_map_attempt(
    job, split, task_id: TaskId, block_path: bool
) -> Tuple[TaskContext, List[KeyValue], int, float]:
    """One attempt of one map task (block fast path or record path).

    ``job`` only needs mapper/combiner factories, ``num_reducers``,
    ``cache`` and ``sort_keys`` — engines may pass a slim job spec
    (the process-pool engine ships one to its workers).
    """
    ctx = TaskContext(task_id, job.num_reducers, job.cache)
    mapper = job.mapper_factory()
    started = time.perf_counter()
    mapper.setup(ctx)
    points = getattr(split, "points", None) if block_path else None
    if points is not None and supports_block_map(mapper):
        records_in = len(points)
        mapper.map_block(points, ctx)
    else:
        records_in = 0
        for key, value in split:
            records_in += 1
            mapper.map(key, value, ctx)
    mapper.cleanup(ctx)
    output = ctx.output
    if job.combiner_factory is not None:
        output = run_combiner(job, split.split_id, ctx, output)
    return ctx, output, records_in, time.perf_counter() - started


def execute_reduce_attempt(
    job, bucket: List[KeyValue], task_id: TaskId
) -> Tuple[TaskContext, float]:
    """One attempt of one reduce task over its shuffled bucket."""
    ctx = TaskContext(task_id, job.num_reducers, job.cache)
    reducer = job.reducer_factory()
    grouped = _group_by_key(
        bucket, job.sort_keys, getattr(job, "merge_point_blocks", False)
    )
    started = time.perf_counter()
    reducer.setup(ctx)
    for key, values in grouped.items():
        reducer.reduce(key, values, ctx)
    reducer.cleanup(ctx)
    return ctx, time.perf_counter() - started


def _charge_attempt_counters(ctx: TaskContext, attempts) -> None:
    """Fold the attempt history into the task's counters.

    Only charged when nonzero so fault-free runs keep their exact
    pre-fault counter fingerprints.
    """
    retries = sum(1 for a in attempts if a.outcome == "failed")
    if retries:
        ctx.counters.inc(counter_names.TASK_RETRIES, retries)
    speculative = sum(1 for a in attempts if a.outcome == "speculative")
    if speculative:
        ctx.counters.inc(counter_names.SPECULATIVE_ATTEMPTS, speculative)
    node_losses = sum(
        1
        for a in attempts
        if a.error is not None and a.error.startswith("NodeLostError")
    )
    if node_losses:
        ctx.counters.inc(counter_names.NODE_LOSS_REEXECS, node_losses)


def finish_map_task(
    task_id: TaskId, ctx: TaskContext, output: List[KeyValue],
    records_in: int, duration: float, attempts=(),
) -> TaskStats:
    """Charge per-task counters and byte accounting for one map task."""
    bytes_out = sum(payload_size(k) + payload_size(v) for k, v in output)
    ctx.counters.inc(counter_names.RECORDS_IN, records_in)
    ctx.counters.inc(counter_names.RECORDS_OUT, len(output))
    _charge_attempt_counters(ctx, attempts)
    return TaskStats(
        task_id=task_id,
        duration_s=duration,
        records_in=records_in,
        records_out=len(output),
        bytes_out=bytes_out,
        counters=ctx.counters,
        attempts=list(attempts),
    )


def finish_reduce_task(
    task_id: TaskId, ctx: TaskContext, records_in: int, duration: float,
    attempts=(),
) -> TaskStats:
    """Charge per-task counters and byte accounting for one reduce task."""
    output = ctx.output
    bytes_out = sum(payload_size(k) + payload_size(v) for k, v in output)
    ctx.counters.inc(counter_names.RECORDS_IN, records_in)
    ctx.counters.inc(counter_names.RECORDS_OUT, len(output))
    _charge_attempt_counters(ctx, attempts)
    return TaskStats(
        task_id=task_id,
        duration_s=duration,
        records_in=records_in,
        records_out=len(output),
        bytes_out=bytes_out,
        counters=ctx.counters,
        attempts=list(attempts),
    )


def shuffle_outputs(job, map_outputs: List[List[KeyValue]]) -> List[List[KeyValue]]:
    """Partition map outputs into per-reducer buckets.

    Partitioner indices are validated: a negative index would silently
    wrap to the wrong reducer and an index >= num_reducers would raise
    a bare IndexError — both are configuration bugs worth naming.
    """
    n = job.num_reducers
    buckets: List[List[KeyValue]] = [[] for _ in range(n)]
    for output in map_outputs:
        for key, value in output:
            index = job.partitioner(key, n)
            if not isinstance(index, int) or isinstance(index, bool):
                try:
                    index = int(index)  # allow numpy integer indices
                except (TypeError, ValueError):
                    raise ValidationError(
                        f"partitioner returned non-integer {index!r} "
                        f"for key {key!r} ({n} reducers)"
                    ) from None
            if not 0 <= index < n:
                raise ValidationError(
                    f"partitioner routed key {key!r} to reducer {index}, "
                    f"outside [0, {n})"
                )
            buckets[index].append((key, value))
    return buckets


class SerialEngine:
    """Run jobs one task at a time with exact per-task accounting.

    ``retry`` (a :class:`~repro.mapreduce.faults.RetryPolicy`)
    reproduces Hadoop's task-retry fault tolerance (the paper's
    Section 1 motivation for MapReduce: "scalability and
    fault-tolerance"): a failing task is re-run from scratch with a
    fresh mapper/reducer instance and a fresh context, up to the
    policy's budget — except for non-retryable programming/validation
    errors, which fail the job immediately. Hadoop's default budget is
    4 attempts; ``max_attempts`` remains as shorthand for
    ``RetryPolicy(max_attempts=...)``.

    ``faults`` (a :class:`~repro.mapreduce.faults.FaultPlan`) injects
    deterministic per-attempt failures, node losses, and straggler
    slowdowns; ``speculative`` enables backup copies of stragglers.
    Results are engine- and fault-schedule-independent; only the
    attempt history and the simulated makespan change.

    ``block_path`` enables the columnar fast path for block splits and
    block-aware mappers (identical results either way; off switches the
    runtime back to record-at-a-time iteration everywhere).
    """

    def __init__(
        self,
        max_attempts: int = 1,
        block_path: bool = True,
        retry: RetryPolicy = None,
        faults: FaultPlan = None,
        speculative: bool = False,
    ):
        if retry is None:
            if max_attempts < 1:
                raise ValidationError(
                    f"max_attempts must be >= 1, got {max_attempts}"
                )
            retry = RetryPolicy.from_attempts(max_attempts)
        self.retry = retry
        self.faults = faults
        self.speculative = bool(speculative)
        self.block_path = bool(block_path)

    @property
    def max_attempts(self) -> int:
        return self.retry.max_attempts

    def __repr__(self) -> str:
        extras = ""
        if self.faults is not None:
            extras += f", faults={self.faults!r}"
        if self.speculative:
            extras += ", speculative=True"
        return f"{type(self).__name__}(block_path={self.block_path}{extras})"

    def _attempt(self, task_id: TaskId, run_once):
        """Run with retry/faults; returns ((ctx, ...), attempt history)."""
        return attempt_task(
            task_id,
            run_once,
            self.retry,
            faults=self.faults,
            speculative=self.speculative,
        )

    # -- single-task drivers (shared with the concurrent engines) -------

    def _map_task(self, job, split) -> Tuple[TaskStats, List[KeyValue]]:
        task_id = TaskId("map", split.split_id)
        (ctx, output, records_in, duration), attempts = self._attempt(
            task_id,
            lambda attempt: execute_map_attempt(
                job, split, task_id, self.block_path
            ),
        )
        return (
            finish_map_task(
                task_id, ctx, output, records_in, duration, attempts
            ),
            output,
        )

    def _reduce_task(
        self, job, r: int, bucket: List[KeyValue]
    ) -> Tuple[TaskStats, List[KeyValue]]:
        task_id = TaskId("reduce", r)
        (ctx, duration), attempts = self._attempt(
            task_id,
            lambda attempt: execute_reduce_attempt(job, bucket, task_id),
        )
        return (
            finish_reduce_task(task_id, ctx, len(bucket), duration, attempts),
            ctx.output,
        )

    # -- phase aggregation ----------------------------------------------

    def _collect_maps(self, stats: JobStats, map_results) -> List[List[KeyValue]]:
        map_outputs: List[List[KeyValue]] = []
        for task_stats, output in map_results:
            stats.map_tasks.append(task_stats)
            stats.counters.merge(task_stats.counters)
            stats.shuffle_bytes += task_stats.bytes_out
            map_outputs.append(output)
        return map_outputs

    def _collect_reduces(self, stats: JobStats, reduce_results) -> List[List[KeyValue]]:
        reducer_outputs: List[List[KeyValue]] = []
        for task_stats, output in reduce_results:
            stats.reduce_tasks.append(task_stats)
            stats.counters.merge(task_stats.counters)
            reducer_outputs.append(output)
        stats.counters.inc(counter_names.SHUFFLE_BYTES, stats.shuffle_bytes)
        return reducer_outputs

    def run(self, job: MapReduceJob) -> JobResult:
        job.validate()
        stats = JobStats(job_name=job.name)
        stats.broadcast_bytes = job.cache.payload_bytes()

        map_results = [self._map_task(job, split) for split in job.splits]
        map_outputs = self._collect_maps(stats, map_results)

        buckets = shuffle_outputs(job, map_outputs)

        reduce_results = [
            self._reduce_task(job, r, buckets[r])
            for r in range(job.num_reducers)
        ]
        reducer_outputs = self._collect_reduces(stats, reduce_results)
        return JobResult(job_name=job.name, reducer_outputs=reducer_outputs, stats=stats)
