"""The serial (deterministic) MapReduce engine.

Executes a :class:`~repro.mapreduce.job.MapReduceJob` exactly as Hadoop
would — map, optional combine, partition, shuffle/sort/group, reduce —
but one task at a time, timing every task. Parallelism is *modelled*,
not exercised: the cluster model turns per-task durations into a
makespan (see :mod:`repro.mapreduce.cluster`), while
:class:`~repro.mapreduce.parallel.ThreadPoolEngine` offers genuinely
concurrent execution with identical semantics.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from typing import Dict, List, Tuple

from repro.errors import TaskFailedError, ValidationError
from repro.mapreduce import counters as counter_names
from repro.mapreduce.job import JobResult, MapReduceJob
from repro.mapreduce.metrics import JobStats, TaskStats
from repro.mapreduce.sizes import payload_size
from repro.mapreduce.types import KeyValue, TaskContext, TaskId


def _sorted_keys(keys) -> List:
    """Sort keys; fall back to repr order for mixed/unsortable keys."""
    keys = list(keys)
    try:
        return sorted(keys)
    except TypeError:
        return sorted(keys, key=repr)


def _group_by_key(pairs: List[KeyValue], sort: bool) -> "OrderedDict":
    grouped: Dict = OrderedDict()
    for key, value in pairs:
        grouped.setdefault(key, []).append(value)
    if not sort:
        return grouped
    ordered = OrderedDict()
    for key in _sorted_keys(grouped.keys()):
        ordered[key] = grouped[key]
    return ordered


class SerialEngine:
    """Run jobs one task at a time with exact per-task accounting.

    ``max_attempts`` reproduces Hadoop's task-retry fault tolerance
    (the paper's Section 1 motivation for MapReduce: "scalability and
    fault-tolerance"): a failing task is re-run from scratch with a
    fresh mapper/reducer instance and a fresh context, up to the limit;
    only then does the job fail. Hadoop's default is 4 attempts.
    """

    def __init__(self, max_attempts: int = 1):
        if max_attempts < 1:
            raise ValidationError(
                f"max_attempts must be >= 1, got {max_attempts}"
            )
        self.max_attempts = max_attempts

    def _attempt(self, task_id: TaskId, run_once):
        """Run ``run_once`` with retry; returns its (ctx, ...) result."""
        last_error = None
        for attempt in range(self.max_attempts):
            try:
                return run_once(attempt)
            except Exception as exc:
                last_error = exc
        raise TaskFailedError(str(task_id), last_error) from last_error

    def run(self, job: MapReduceJob) -> JobResult:
        job.validate()
        stats = JobStats(job_name=job.name)
        stats.broadcast_bytes = job.cache.payload_bytes()

        # -- map phase (+ optional combine) -----------------------------
        map_outputs: List[List[KeyValue]] = []
        for split in job.splits:
            task_id = TaskId("map", split.split_id)

            def run_map(attempt, split=split, task_id=task_id):
                ctx = TaskContext(task_id, job.num_reducers, job.cache)
                mapper = job.mapper_factory()
                records_in = 0
                started = time.perf_counter()
                mapper.setup(ctx)
                for key, value in split:
                    records_in += 1
                    mapper.map(key, value, ctx)
                mapper.cleanup(ctx)
                output = ctx.output
                if job.combiner_factory is not None:
                    output = self._combine(job, split.split_id, ctx, output)
                duration = time.perf_counter() - started
                return ctx, output, records_in, duration

            ctx, output, records_in, duration = self._attempt(task_id, run_map)
            bytes_out = sum(
                payload_size(k) + payload_size(v) for k, v in output
            )
            ctx.counters.inc(counter_names.RECORDS_IN, records_in)
            ctx.counters.inc(counter_names.RECORDS_OUT, len(output))
            stats.map_tasks.append(
                TaskStats(
                    task_id=task_id,
                    duration_s=duration,
                    records_in=records_in,
                    records_out=len(output),
                    bytes_out=bytes_out,
                    counters=ctx.counters,
                )
            )
            stats.counters.merge(ctx.counters)
            map_outputs.append(output)
            stats.shuffle_bytes += bytes_out

        # -- shuffle: partition map output to reducers -------------------
        buckets: List[List[KeyValue]] = [[] for _ in range(job.num_reducers)]
        for output in map_outputs:
            for key, value in output:
                buckets[job.partitioner(key, job.num_reducers)].append((key, value))

        # -- reduce phase -------------------------------------------------
        reducer_outputs: List[List[KeyValue]] = []
        for r in range(job.num_reducers):
            task_id = TaskId("reduce", r)

            def run_reduce(attempt, r=r, task_id=task_id):
                ctx = TaskContext(task_id, job.num_reducers, job.cache)
                reducer = job.reducer_factory()
                grouped = _group_by_key(buckets[r], job.sort_keys)
                started = time.perf_counter()
                reducer.setup(ctx)
                for key, values in grouped.items():
                    reducer.reduce(key, values, ctx)
                reducer.cleanup(ctx)
                return ctx, time.perf_counter() - started

            ctx, duration = self._attempt(task_id, run_reduce)
            records_in = len(buckets[r])
            output = ctx.output
            bytes_out = sum(payload_size(k) + payload_size(v) for k, v in output)
            ctx.counters.inc(counter_names.RECORDS_IN, records_in)
            ctx.counters.inc(counter_names.RECORDS_OUT, len(output))
            stats.reduce_tasks.append(
                TaskStats(
                    task_id=task_id,
                    duration_s=duration,
                    records_in=records_in,
                    records_out=len(output),
                    bytes_out=bytes_out,
                    counters=ctx.counters,
                )
            )
            stats.counters.merge(ctx.counters)
            reducer_outputs.append(output)

        stats.counters.inc(counter_names.SHUFFLE_BYTES, stats.shuffle_bytes)
        return JobResult(job_name=job.name, reducer_outputs=reducer_outputs, stats=stats)

    def _combine(
        self,
        job: MapReduceJob,
        split_id: int,
        map_ctx: TaskContext,
        output: List[KeyValue],
    ) -> List[KeyValue]:
        """Run the combiner over one mapper's output, in the map task."""
        combine_ctx = TaskContext(
            TaskId("combine", split_id), job.num_reducers, job.cache
        )
        combiner = job.combiner_factory()
        combiner.setup(combine_ctx)
        for key, values in _group_by_key(output, job.sort_keys).items():
            combiner.reduce(key, values, combine_ctx)
        combiner.cleanup(combine_ctx)
        map_ctx.counters.merge(combine_ctx.counters)
        return combine_ctx.output
