"""MapReduce job specification.

A :class:`MapReduceJob` is a declarative bundle: input splits, mapper
and reducer factories, an optional combiner, a shuffle partitioner, the
number of reducers, and a distributed cache. Engines (serial or
thread-pool) execute the spec; the spec itself never runs anything.

Factories (not instances) are required because every task must get a
fresh, state-free mapper/reducer object — the same discipline Hadoop
enforces by instantiating user classes per task.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from repro.errors import JobValidationError
from repro.mapreduce.cache import DistributedCache
from repro.mapreduce.partitioners import Partitioner, hash_partitioner
from repro.mapreduce.types import InputSplit, Mapper, Reducer


@dataclass
class MapReduceJob:
    """Specification of a single MapReduce job."""

    name: str
    splits: Sequence[InputSplit]
    mapper_factory: Callable[[], Mapper]
    reducer_factory: Callable[[], Reducer]
    num_reducers: int = 1
    partitioner: Partitioner = hash_partitioner
    combiner_factory: Optional[Callable[[], Reducer]] = None
    cache: DistributedCache = field(default_factory=DistributedCache)
    sort_keys: bool = True
    #: Concatenate each reduce key's PointSet values into one block
    #: before calling the reducer. Safe only for reducers that treat
    #: their value list as an unordered union of point blocks (the
    #: local-skyline jobs of MR-BNL / MR-Angle / Sky-MR do).
    merge_point_blocks: bool = False

    def validate(self) -> None:
        if not self.name:
            raise JobValidationError("job name must be non-empty")
        if self.num_reducers < 1:
            raise JobValidationError(
                f"num_reducers must be >= 1, got {self.num_reducers}"
            )
        if not callable(self.mapper_factory):
            raise JobValidationError("mapper_factory must be callable")
        if not callable(self.reducer_factory):
            raise JobValidationError("reducer_factory must be callable")
        if self.combiner_factory is not None and not callable(self.combiner_factory):
            raise JobValidationError("combiner_factory must be callable or None")
        if not callable(self.partitioner):
            raise JobValidationError("partitioner must be callable")
        if len(list(self.splits)) == 0:
            raise JobValidationError("job needs at least one input split")
        probe_map = self.mapper_factory()
        if not isinstance(probe_map, Mapper):
            raise JobValidationError(
                f"mapper_factory produced {type(probe_map).__name__}, "
                "expected a Mapper"
            )
        probe_red = self.reducer_factory()
        if not isinstance(probe_red, Reducer):
            raise JobValidationError(
                f"reducer_factory produced {type(probe_red).__name__}, "
                "expected a Reducer"
            )

    @property
    def num_mappers(self) -> int:
        return len(list(self.splits))


@dataclass
class JobResult:
    """Output of one executed job: per-reducer key-value lists + stats."""

    job_name: str
    reducer_outputs: List[List]  # one list of (k, v) per reducer
    stats: "JobStats"

    def all_pairs(self) -> List:
        out = []
        for chunk in self.reducer_outputs:
            out.extend(chunk)
        return out

    def all_values(self) -> List:
        return [v for _, v in self.all_pairs()]

    def single_value(self):
        """Convenience for jobs that emit exactly one pair overall."""
        pairs = self.all_pairs()
        if len(pairs) != 1:
            raise JobValidationError(
                f"expected exactly one output pair, got {len(pairs)}"
            )
        return pairs[0][1]


from repro.mapreduce.metrics import JobStats  # noqa: E402  (dataclass ref)
