"""Payload size estimation for shuffle/broadcast accounting.

The simulated cluster charges shuffle time as bytes/bandwidth, so the
runtime needs a cheap, deterministic estimate of how many bytes a value
would occupy on the wire. Exact serialisation (pickling every record)
would distort the timing measurements; this estimator is O(structure)
and within a small constant of pickled size for the types the library
actually shuffles (numbers, tuples, NumPy arrays, bitstring bytes,
PointSets).
"""

from __future__ import annotations

import dataclasses
import pickle
from typing import Any, Optional

import numpy as np

from repro.core.pointset import PointSet

#: Per-object framing overhead assumed by the estimator.
_OVERHEAD = 8


def payload_size(value: Any) -> int:
    """Approximate serialised size of ``value`` in bytes."""
    if value is None:
        return _OVERHEAD
    # The runtime's hottest shuffled payload: size a columnar block in
    # O(1) from its array nbytes, before any recursive inspection.
    if isinstance(value, PointSet):
        return int(value.ids.nbytes + value.values.nbytes) + _OVERHEAD
    if isinstance(value, (bool, int, float)):
        return _OVERHEAD
    if isinstance(value, (bytes, bytearray, memoryview)):
        return len(value) + _OVERHEAD
    if isinstance(value, str):
        return len(value.encode("utf-8", "replace")) + _OVERHEAD
    if isinstance(value, np.ndarray):
        return int(value.nbytes) + _OVERHEAD
    if isinstance(value, np.generic):
        return int(value.nbytes) + _OVERHEAD
    if isinstance(value, (tuple, list, set, frozenset)):
        return sum(payload_size(v) for v in value) + _OVERHEAD
    if isinstance(value, dict):
        return (
            sum(payload_size(k) + payload_size(v) for k, v in value.items())
            + _OVERHEAD
        )
    # Library containers expose their own accounting when possible.
    nbytes = getattr(value, "nbytes", None)
    if isinstance(nbytes, (int, np.integer)):
        return int(nbytes) + _OVERHEAD
    sizer = getattr(value, "payload_bytes", None)
    if callable(sizer):
        return int(sizer()) + _OVERHEAD
    ids = getattr(value, "ids", None)
    values = getattr(value, "values", None)
    if isinstance(ids, np.ndarray) and isinstance(values, np.ndarray):
        return int(ids.nbytes + values.nbytes) + _OVERHEAD
    structural = _structural_size(value)
    if structural is not None:
        return structural
    try:
        return len(pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL))
    except (pickle.PicklingError, TypeError, AttributeError, RecursionError):
        # The concrete ways pickling an arbitrary object fails. A bare
        # Exception here would also swallow ValidationError raised by a
        # payload's own __reduce__, hiding real configuration bugs.
        return 64  # opaque object; charge a flat token


def payload_units(value: Any) -> int:
    """Logical record (tuple) count of a shuffled value.

    The unit of the BSP cost model's replication accounting: a columnar
    :class:`PointSet` carries one record per point, containers carry
    the sum of their members, and any scalar payload counts as one
    record. Deterministic and O(structure), like :func:`payload_size`.
    """
    if isinstance(value, PointSet):
        return len(value)
    if isinstance(value, (tuple, list, set, frozenset)):
        return sum(payload_units(v) for v in value)
    if isinstance(value, dict):
        return sum(payload_units(v) for v in value.values())
    return 1


def _structural_size(value: Any) -> Optional[int]:
    """Size dataclass/slotted library objects by walking their fields.

    Grids, bitstrings, reducer groups, block descriptors and the other
    structured values the runtime broadcasts all end up here, so the
    shuffle/broadcast accounting never round-trips them through
    ``pickle.dumps`` (the former cold-path cost). Plain ``__dict__``
    objects keep the pickle fallback: their layout is not ours to
    assume.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return (
            sum(
                payload_size(getattr(value, f.name))
                for f in dataclasses.fields(value)
            )
            + _OVERHEAD
        )
    slots: list = []
    for klass in type(value).__mro__:
        declared = klass.__dict__.get("__slots__")
        if declared is None:
            continue
        slots.extend((declared,) if isinstance(declared, str) else declared)
    if not slots:
        return None
    total = _OVERHEAD
    for name in slots:
        try:
            total += payload_size(getattr(value, name))
        except AttributeError:
            continue  # slot declared but never assigned
    return total
