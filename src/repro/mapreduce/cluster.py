"""The simulated cluster and its makespan model.

The paper ran on thirteen commodity machines on a 100 Mbit/s LAN. This
module substitutes that testbed: per-task CPU durations measured by an
engine are scheduled onto a configurable number of map/reduce slots,
and shuffle plus distributed-cache broadcast traffic is charged against
a modelled bandwidth. The resulting *makespan* is what benches report
as "runtime" — it is what an otherwise-idle Hadoop cluster's wall clock
measures, so the paper's figure shapes survive the substitution (see
DESIGN.md Section 1).

Model per job:

    makespan = map_wave + shuffle + reduce_wave

* ``map_wave``    — greedy scheduling of map-task durations (plus a
  per-task startup overhead, Hadoop's JVM-start tax) onto
  ``map_slots`` machines-worth of slots; phase time is the busiest
  slot.
* ``shuffle``     — (total map-output bytes + cache payload replicated
  to every node) / bandwidth.
* ``reduce_wave`` — same scheduling for reduce tasks on
  ``reduce_slots``.

Task durations come from one of two cost models:

* ``"work"`` (default) — deterministic, machine-independent: a task
  costs its counted algorithmic work — tuple-dominance pair checks at
  ``compare_rate`` plus record handling (read/parse/serialise) at
  ``record_rate`` — plus the startup overhead. This mirrors what the
  paper's Java implementation pays (tuple-at-a-time dominance loops)
  and is immune to NumPy-vectorisation artefacts that would otherwise
  flatter whichever algorithm happens to batch best in Python.
* ``"measured"`` — the engine's measured per-task wall time; honest
  about *this* machine but noisy and vectorisation-biased.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.errors import ValidationError
from repro.mapreduce.counters import TUPLE_COMPARES
from repro.mapreduce.metrics import JobStats, PipelineStats, TaskStats


def schedule_makespan(durations: Sequence[float], slots: int) -> float:
    """Greedy in-order assignment of tasks to the least-loaded slot.

    This mirrors a FIFO Hadoop scheduler handing tasks to whichever
    slot frees first; returns the busiest slot's total load.
    """
    if slots < 1:
        raise ValidationError(f"slots must be >= 1, got {slots}")
    loads = [0.0] * min(slots, max(1, len(durations)))
    for duration in durations:
        if duration < 0:
            raise ValidationError("task durations must be >= 0")
        target = min(range(len(loads)), key=lambda s: loads[s])
        loads[target] += duration
    return max(loads) if loads else 0.0


@dataclass(frozen=True)
class SimulatedCluster:
    """Configuration of the modelled cluster.

    Defaults mirror the paper's testbed: 13 nodes, 100 Mbit/s LAN,
    one map slot per node, two reduce slots per node (Hadoop "allows
    utilizing the multiple cores in the nodes to implement multiple
    reducers on the same node" — Section 7.4, needed for 17 reducers
    on 13 machines).
    """

    num_nodes: int = 13
    map_slots_per_node: int = 1
    reduce_slots_per_node: int = 2
    bandwidth_bytes_per_s: float = 100e6 / 8  # 100 Mbit/s
    task_overhead_s: float = 0.05  # per-task startup (JVM-start analogue)
    cost_model: str = "work"  # "work" | "measured"
    compare_rate: float = 2e6  # tuple-pair dominance checks / second
    record_rate: float = 2e5  # records read+written / second

    def __post_init__(self):
        if self.num_nodes < 1:
            raise ValidationError(f"num_nodes must be >= 1, got {self.num_nodes}")
        if self.map_slots_per_node < 1 or self.reduce_slots_per_node < 1:
            raise ValidationError("slots per node must be >= 1")
        if self.bandwidth_bytes_per_s <= 0:
            raise ValidationError("bandwidth must be positive")
        if self.task_overhead_s < 0:
            raise ValidationError("task overhead must be >= 0")
        if self.cost_model not in ("work", "measured"):
            raise ValidationError(
                f"cost_model must be 'work' or 'measured', got {self.cost_model!r}"
            )
        if self.compare_rate <= 0 or self.record_rate <= 0:
            raise ValidationError("rates must be positive")

    @property
    def map_slots(self) -> int:
        return self.num_nodes * self.map_slots_per_node

    @property
    def reduce_slots(self) -> int:
        return self.num_nodes * self.reduce_slots_per_node

    @property
    def default_num_mappers(self) -> int:
        """One mapper wave by default."""
        return self.map_slots

    # -- makespan -------------------------------------------------------

    def _base_cost(self, task: TaskStats) -> float:
        """Modelled cost of one *attempt's* work, without the startup
        overhead (each attempt pays its own)."""
        if self.cost_model == "measured":
            return task.duration_s
        compares = task.counters[TUPLE_COMPARES]
        records = task.records_in + task.records_out
        return compares / self.compare_rate + records / self.record_rate

    def task_duration(self, task: TaskStats) -> float:
        """Modelled duration of the winning attempt, with overhead."""
        return self._base_cost(task) + self.task_overhead_s

    def attempt_duration(self, task: TaskStats, record) -> float:
        """Modelled duration of one recorded attempt of a task.

        Failed attempts are charged in full (the work ran and crashed
        at the end — the model's pessimistic bound); straggler attempts
        are charged at their injected ``slowdown``. A ``killed``
        straggler is charged only up to the point its speculative
        backup finished (slowdown clamped to 1.0), mirroring Hadoop
        killing the losing copy. Every attempt pays the per-task
        startup overhead.
        """
        base = self._base_cost(task)
        slowdown = record.slowdown if record.outcome != "killed" else 1.0
        return base * slowdown + self.task_overhead_s

    def attempt_durations(self, task: TaskStats) -> List[float]:
        """Modelled durations of every attempt the task cost the cluster.

        Hand-built stats without attempt history fall back to a single
        successful attempt, so pre-fault makespans are unchanged.
        """
        if not task.attempts:
            return [self.task_duration(task)]
        return [self.attempt_duration(task, a) for a in task.attempts]

    def job_makespan(self, stats: JobStats) -> float:
        """Simulated runtime of one job on this cluster.

        Every attempt — failed, killed, speculative, or winning — is a
        schedulable unit charged against the phase's slots, so fault
        injection lengthens the simulated makespan exactly as
        re-execution occupies a real cluster.
        """
        map_durs = [
            d for t in stats.map_tasks for d in self.attempt_durations(t)
        ]
        reduce_durs = [
            d for t in stats.reduce_tasks for d in self.attempt_durations(t)
        ]
        map_wave = schedule_makespan(map_durs, self.map_slots)
        reduce_wave = schedule_makespan(reduce_durs, self.reduce_slots)
        moved = stats.shuffle_bytes + stats.broadcast_bytes * self.num_nodes
        shuffle = moved / self.bandwidth_bytes_per_s
        return map_wave + shuffle + reduce_wave

    def pipeline_makespan(self, stats_list: Sequence[JobStats]) -> float:
        """Chained jobs run back to back (Section 2.1's job chaining)."""
        return sum(self.job_makespan(stats) for stats in stats_list)

    def annotate(self, pipeline: PipelineStats) -> PipelineStats:
        """Fill in ``simulated_s`` on a pipeline's stats."""
        pipeline.simulated_s = self.pipeline_makespan(pipeline.jobs)
        return pipeline

    def describe(self) -> dict:
        """The full configuration as a JSON-serializable dict (run
        reports embed this so a report pins the exact cluster model)."""
        return {
            "num_nodes": self.num_nodes,
            "map_slots_per_node": self.map_slots_per_node,
            "reduce_slots_per_node": self.reduce_slots_per_node,
            "bandwidth_bytes_per_s": self.bandwidth_bytes_per_s,
            "task_overhead_s": self.task_overhead_s,
            "cost_model": self.cost_model,
            "compare_rate": self.compare_rate,
            "record_rate": self.record_rate,
        }


#: The paper's testbed, as a ready-made constant.
PAPER_CLUSTER = SimulatedCluster()

#: A small localhost-scale cluster for examples and tests.
MINI_CLUSTER = SimulatedCluster(
    num_nodes=4, reduce_slots_per_node=2, task_overhead_s=0.01
)
