"""Per-task and per-job execution statistics.

Captured by the engines, consumed by the cluster makespan model and the
Figure-11 measurements (which need the per-task *maxima* of the
partition-comparison counter, not the sums).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import ValidationError
from repro.mapreduce.counters import Counters
from repro.mapreduce.types import TaskId

#: Attempt outcomes recorded by the engines.
#: ``success``     — the attempt finished and its output was used.
#: ``failed``      — the attempt crashed (real or injected) and was retried.
#: ``killed``      — a straggler attempt killed when its speculative
#:                   backup finished first (Hadoop kills the loser).
#: ``speculative`` — a backup copy of a straggler; when present it is
#:                   the winning attempt.
ATTEMPT_OUTCOMES = ("success", "failed", "killed", "speculative")


@dataclass(frozen=True)
class AttemptRecord:
    """One attempt of one task: what happened and what it cost.

    ``slowdown`` is the straggler factor the fault plan injected into
    this attempt (1.0 = normal); the cluster model charges the attempt
    at ``base_cost * slowdown``. ``node`` is the simulated home node
    when a fault plan placed the attempt, else ``None``.
    """

    attempt: int
    outcome: str
    duration_s: float = 0.0
    slowdown: float = 1.0
    error: Optional[str] = None
    node: Optional[int] = None

    def __post_init__(self):
        if self.outcome not in ATTEMPT_OUTCOMES:
            raise ValidationError(
                f"unknown attempt outcome {self.outcome!r}; "
                f"expected one of {ATTEMPT_OUTCOMES}"
            )


@dataclass
class TaskStats:
    """One task's execution record.

    ``attempts`` is the full per-attempt history (failed attempts,
    killed stragglers, speculative copies, and the winner — in that
    execution order, winner last). Engines always populate it; an empty
    list (hand-built stats) is treated as a single successful attempt
    by the cluster model.
    """

    task_id: TaskId
    duration_s: float
    records_in: int
    records_out: int
    bytes_out: int
    counters: Counters = field(default_factory=Counters)
    attempts: List[AttemptRecord] = field(default_factory=list)

    @property
    def num_attempts(self) -> int:
        return len(self.attempts) if self.attempts else 1

    @property
    def failed_attempts(self) -> int:
        return sum(1 for a in self.attempts if a.outcome == "failed")

    @property
    def speculative_attempts(self) -> int:
        return sum(1 for a in self.attempts if a.outcome == "speculative")


@dataclass
class JobStats:
    """Aggregated statistics of one MapReduce job."""

    job_name: str
    map_tasks: List[TaskStats] = field(default_factory=list)
    reduce_tasks: List[TaskStats] = field(default_factory=list)
    shuffle_bytes: int = 0
    broadcast_bytes: int = 0
    counters: Counters = field(default_factory=Counters)

    @property
    def num_map_tasks(self) -> int:
        return len(self.map_tasks)

    @property
    def num_reduce_tasks(self) -> int:
        return len(self.reduce_tasks)

    def map_durations(self) -> List[float]:
        return [t.duration_s for t in self.map_tasks]

    def reduce_durations(self) -> List[float]:
        return [t.duration_s for t in self.reduce_tasks]

    def total_cpu_s(self) -> float:
        return sum(self.map_durations()) + sum(self.reduce_durations())

    def max_task_counter(self, kind: str, name: str) -> int:
        """Maximum of counter ``name`` over tasks of ``kind``.

        Figure 11 plots exactly this: "the numbers from the real
        executions are recorded for the mapper and the reducer that have
        the highest number of comparisons".
        """
        tasks = self._tasks_of(kind)
        if not tasks:
            return 0
        return max(t.counters[name] for t in tasks)

    def sum_task_counter(self, kind: str, name: str) -> int:
        return sum(t.counters[name] for t in self._tasks_of(kind))

    def _tasks_of(self, kind: str) -> List[TaskStats]:
        if kind == "map":
            return self.map_tasks
        if kind == "reduce":
            return self.reduce_tasks
        raise ValidationError(
            f"unknown task kind {kind!r}; expected 'map' or 'reduce'"
        )

    def total_attempts(self, kind: str) -> int:
        """Total attempts (including failed and speculative) per phase."""
        return sum(t.num_attempts for t in self._tasks_of(kind))


@dataclass
class PipelineStats:
    """Statistics of a chain of jobs (e.g. bitstring job -> skyline job)."""

    jobs: List[JobStats] = field(default_factory=list)
    wall_s: float = 0.0
    simulated_s: Optional[float] = None

    def job(self, name: str) -> JobStats:
        for stats in self.jobs:
            if stats.job_name == name:
                return stats
        raise KeyError(f"no job named {name!r} in pipeline")

    def counters(self) -> Counters:
        merged = Counters()
        for stats in self.jobs:
            merged.merge(stats.counters)
        return merged

    def total_shuffle_bytes(self) -> int:
        return sum(stats.shuffle_bytes for stats in self.jobs)

    def total_cpu_s(self) -> float:
        return sum(stats.total_cpu_s() for stats in self.jobs)

    def summary(self) -> Dict[str, float]:
        """Headline numbers as a flat dict.

        ``simulated_s`` is present only when a cluster model annotated
        the run — absent means "no simulation", which a ``-1.0``
        sentinel (the old encoding) silently poisoned in downstream
        arithmetic.
        """
        summary = {
            "jobs": len(self.jobs),
            "wall_s": self.wall_s,
            "cpu_s": self.total_cpu_s(),
            "shuffle_bytes": self.total_shuffle_bytes(),
        }
        if self.simulated_s is not None:
            summary["simulated_s"] = self.simulated_s
        return summary
