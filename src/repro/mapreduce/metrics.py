"""Per-task and per-job execution statistics.

Captured by the engines, consumed by the cluster makespan model and the
Figure-11 measurements (which need the per-task *maxima* of the
partition-comparison counter, not the sums).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.mapreduce.counters import Counters
from repro.mapreduce.types import TaskId


@dataclass
class TaskStats:
    """One task's execution record."""

    task_id: TaskId
    duration_s: float
    records_in: int
    records_out: int
    bytes_out: int
    counters: Counters = field(default_factory=Counters)


@dataclass
class JobStats:
    """Aggregated statistics of one MapReduce job."""

    job_name: str
    map_tasks: List[TaskStats] = field(default_factory=list)
    reduce_tasks: List[TaskStats] = field(default_factory=list)
    shuffle_bytes: int = 0
    broadcast_bytes: int = 0
    counters: Counters = field(default_factory=Counters)

    @property
    def num_map_tasks(self) -> int:
        return len(self.map_tasks)

    @property
    def num_reduce_tasks(self) -> int:
        return len(self.reduce_tasks)

    def map_durations(self) -> List[float]:
        return [t.duration_s for t in self.map_tasks]

    def reduce_durations(self) -> List[float]:
        return [t.duration_s for t in self.reduce_tasks]

    def total_cpu_s(self) -> float:
        return sum(self.map_durations()) + sum(self.reduce_durations())

    def max_task_counter(self, kind: str, name: str) -> int:
        """Maximum of counter ``name`` over tasks of ``kind``.

        Figure 11 plots exactly this: "the numbers from the real
        executions are recorded for the mapper and the reducer that have
        the highest number of comparisons".
        """
        tasks = self.map_tasks if kind == "map" else self.reduce_tasks
        if not tasks:
            return 0
        return max(t.counters[name] for t in tasks)

    def sum_task_counter(self, kind: str, name: str) -> int:
        tasks = self.map_tasks if kind == "map" else self.reduce_tasks
        return sum(t.counters[name] for t in tasks)


@dataclass
class PipelineStats:
    """Statistics of a chain of jobs (e.g. bitstring job -> skyline job)."""

    jobs: List[JobStats] = field(default_factory=list)
    wall_s: float = 0.0
    simulated_s: Optional[float] = None

    def job(self, name: str) -> JobStats:
        for stats in self.jobs:
            if stats.job_name == name:
                return stats
        raise KeyError(f"no job named {name!r} in pipeline")

    def counters(self) -> Counters:
        merged = Counters()
        for stats in self.jobs:
            merged.merge(stats.counters)
        return merged

    def total_shuffle_bytes(self) -> int:
        return sum(stats.shuffle_bytes for stats in self.jobs)

    def total_cpu_s(self) -> float:
        return sum(stats.total_cpu_s() for stats in self.jobs)

    def summary(self) -> Dict[str, float]:
        return {
            "jobs": len(self.jobs),
            "wall_s": self.wall_s,
            "simulated_s": self.simulated_s if self.simulated_s is not None else -1.0,
            "cpu_s": self.total_cpu_s(),
            "shuffle_bytes": self.total_shuffle_bytes(),
        }
