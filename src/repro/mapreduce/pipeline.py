"""Running chains of MapReduce jobs.

"Several MapReduce jobs can be chained together, later phases being
able to refine and/or use the results from earlier phases"
(paper Section 2.1). Both proposed algorithms are two-job chains:
bitstring generation, then skyline computation with the bitstring in
the distributed cache.
"""

from __future__ import annotations

import time
from typing import Callable, List, Optional, Sequence

from repro.mapreduce.cluster import SimulatedCluster
from repro.mapreduce.engine import SerialEngine
from repro.mapreduce.job import JobResult, MapReduceJob
from repro.mapreduce.metrics import PipelineStats


class JobChain:
    """Execute jobs sequentially, collecting pipeline statistics.

    Jobs are supplied lazily (each stage is a callable receiving the
    previous :class:`JobResult`, or ``None`` for the first), because
    later jobs typically embed earlier outputs in their distributed
    cache.
    """

    def __init__(self, engine=None, cluster: Optional[SimulatedCluster] = None):
        self.engine = engine or SerialEngine()
        self.cluster = cluster

    def run(
        self, stages: Sequence[Callable[[Optional[JobResult]], MapReduceJob]]
    ) -> "ChainResult":
        results: List[JobResult] = []
        stats = PipelineStats()
        started = time.perf_counter()
        previous: Optional[JobResult] = None
        for stage in stages:
            job = stage(previous)
            result = self.engine.run(job)
            results.append(result)
            stats.jobs.append(result.stats)
            previous = result
        stats.wall_s = time.perf_counter() - started
        if self.cluster is not None:
            self.cluster.annotate(stats)
        return ChainResult(results=results, stats=stats)


class ChainResult:
    """All job results of a chain plus the aggregated statistics."""

    __slots__ = ("results", "stats")

    def __init__(self, results: List[JobResult], stats: PipelineStats):
        self.results = results
        self.stats = stats

    @property
    def final(self) -> JobResult:
        return self.results[-1]
