"""File-backed input: splitting on-disk datasets for mappers.

Hadoop jobs read HDFS blocks; the equivalent here is reading CSV or
``.npy`` datasets from disk and cutting them into per-mapper splits
without materialising (key, value) pair lists eagerly. Records are
``(row_id, row_values)`` like the in-memory splits, so every algorithm
runs unchanged on file input (the CLI's ``--input`` path uses this).
"""

from __future__ import annotations

import csv
import os
from typing import Iterator, List, Tuple

import numpy as np

from repro.core.pointset import PointSet
from repro.errors import DataError, ValidationError
from repro.mapreduce.types import BlockInputSplit, InputSplit


class CSVRecordReader:
    """Lazy (row_id, values) reader over a row range of a CSV file.

    Each iteration re-opens and scans the file to the range — exactly
    the access pattern of a record reader over a block — so splits
    hold no row data between uses.
    """

    def __init__(
        self,
        path: str,
        start_row: int,
        end_row: int,
        has_header: bool = True,
        label_column: bool = False,
    ):
        self.path = path
        self.start_row = start_row
        self.end_row = end_row
        self.has_header = has_header
        self.label_column = label_column

    def __len__(self) -> int:
        return max(0, self.end_row - self.start_row)

    def __iter__(self) -> Iterator[Tuple[int, np.ndarray]]:
        with open(self.path, newline="") as handle:
            reader = csv.reader(handle)
            if self.has_header:
                next(reader, None)
            for row_id, record in enumerate(reader):
                if row_id < self.start_row:
                    continue
                if row_id >= self.end_row:
                    break
                if not record:
                    continue
                if self.label_column:
                    record = record[1:]
                try:
                    values = np.asarray([float(v) for v in record])
                except ValueError as exc:
                    raise DataError(
                        f"{self.path}:{row_id}: non-numeric value ({exc})"
                    ) from None
                yield row_id, values


def count_csv_rows(path: str, has_header: bool = True) -> int:
    """Data rows in a CSV file (excluding the header and blank lines)."""
    if not os.path.exists(path):
        raise DataError(f"no such file: {path}")
    rows = 0
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        if has_header:
            next(reader, None)
        for record in reader:
            if record:
                rows += 1
    return rows


def csv_splits(
    path: str,
    num_splits: int,
    has_header: bool = True,
    label_column: bool = False,
) -> List[InputSplit]:
    """Cut a CSV file into contiguous row-range splits."""
    if num_splits < 1:
        raise ValidationError(f"num_splits must be >= 1, got {num_splits}")
    total = count_csv_rows(path, has_header=has_header)
    bounds = np.linspace(0, total, num_splits + 1).astype(np.int64)
    return [
        InputSplit(
            split_id=s,
            records=CSVRecordReader(
                path,
                int(bounds[s]),
                int(bounds[s + 1]),
                has_header=has_header,
                label_column=label_column,
            ),
        )
        for s in range(num_splits)
    ]


class NpyRecordReader:
    """Memory-mapped (row_id, values) reader over a row range."""

    def __init__(self, path: str, start_row: int, end_row: int):
        self.path = path
        self.start_row = start_row
        self.end_row = end_row

    def __len__(self) -> int:
        return max(0, self.end_row - self.start_row)

    def __iter__(self) -> Iterator[Tuple[int, np.ndarray]]:
        data = np.load(self.path, mmap_mode="r")
        for row_id in range(self.start_row, self.end_row):
            yield row_id, np.asarray(data[row_id], dtype=np.float64)


def npy_splits(path: str, num_splits: int) -> List[InputSplit]:
    """Cut a ``.npy`` dataset into memory-mapped row-range splits."""
    if not os.path.exists(path):
        raise DataError(f"no such file: {path}")
    if num_splits < 1:
        raise ValidationError(f"num_splits must be >= 1, got {num_splits}")
    shape = np.load(path, mmap_mode="r").shape
    if len(shape) != 2:
        raise DataError(f"{path} must hold a 2-D array, got shape {shape}")
    bounds = np.linspace(0, shape[0], num_splits + 1).astype(np.int64)
    return [
        InputSplit(
            split_id=s,
            records=NpyRecordReader(path, int(bounds[s]), int(bounds[s + 1])),
        )
        for s in range(num_splits)
    ]


def npy_block_splits(path: str, num_splits: int) -> List[BlockInputSplit]:
    """Cut a ``.npy`` dataset into columnar block splits.

    Each split's row range is read through the memory map in one slice
    (one bulk copy per split, no per-record Python loop) and carried as
    a :class:`PointSet`, so block-aware mappers get the fast path on
    file input too.
    """
    if not os.path.exists(path):
        raise DataError(f"no such file: {path}")
    if num_splits < 1:
        raise ValidationError(f"num_splits must be >= 1, got {num_splits}")
    data = np.load(path, mmap_mode="r")
    if data.ndim != 2:
        raise DataError(f"{path} must hold a 2-D array, got shape {data.shape}")
    bounds = np.linspace(0, data.shape[0], num_splits + 1).astype(np.int64)
    splits = []
    for s in range(num_splits):
        lo, hi = int(bounds[s]), int(bounds[s + 1])
        values = np.asarray(data[lo:hi], dtype=np.float64)
        ids = np.arange(lo, hi, dtype=np.int64)
        splits.append(BlockInputSplit(split_id=s, points=PointSet(ids, values)))
    return splits
