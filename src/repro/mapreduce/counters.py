"""Hierarchical job counters (the Hadoop counter facility).

Counter names are dotted strings, e.g. ``skyline.partition_compares``.
The Figure 11 reproduction reads the per-task maxima of
``skyline.partition_compares`` to obtain "the mapper and the reducer
that have the highest number of comparisons".
"""

from __future__ import annotations

import re
from typing import Dict, Iterator, Mapping, Pattern

from repro.errors import ValidationError


class Counters:
    """A mergeable bag of named monotonic integer counters."""

    __slots__ = ("_values",)

    def __init__(self, initial: Mapping[str, int] = None):
        self._values: Dict[str, int] = dict(initial or {})

    def inc(self, name: str, amount: int = 1) -> None:
        if not name:
            raise ValidationError("counter name must be non-empty")
        amount = int(amount)
        if amount < 0:
            raise ValidationError(
                f"counters are monotonic: cannot inc {name!r} by {amount}"
            )
        self._values[name] = self._values.get(name, 0) + amount

    def __getitem__(self, name: str) -> int:
        return self._values.get(name, 0)

    def get(self, name: str, default: int = 0) -> int:
        return self._values.get(name, default)

    def __contains__(self, name: str) -> bool:
        return name in self._values

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._values))

    def __len__(self) -> int:
        return len(self._values)

    def merge(self, other: "Counters") -> None:
        for name, value in other._values.items():
            self._values[name] = self._values.get(name, 0) + value

    def as_dict(self) -> Dict[str, int]:
        return dict(self._values)

    def group(self, prefix: str) -> Dict[str, int]:
        """All counters under a dotted prefix, prefix stripped."""
        dotted = prefix if prefix.endswith(".") else prefix + "."
        return {
            name[len(dotted):]: value
            for name, value in self._values.items()
            if name.startswith(dotted)
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{k}={v}" for k, v in sorted(self._values.items()))
        return f"Counters({inner})"


#: Canonical counter names used across the library.
RECORDS_IN = "mr.records_in"
RECORDS_OUT = "mr.records_out"
SHUFFLE_BYTES = "mr.shuffle_bytes"
TASK_RETRIES = "mr.task_retries"
SPECULATIVE_ATTEMPTS = "mr.speculative_attempts"
NODE_LOSS_REEXECS = "mr.node_loss_reexecs"
PARTITION_COMPARES = "skyline.partition_compares"
TUPLE_COMPARES = "skyline.tuple_compares"
TUPLES_PRUNED_BY_BITSTRING = "skyline.tuples_pruned_by_bitstring"
LOCAL_SKYLINE_SIZE = "skyline.local_skyline_size"

#: Zero-copy substrate counters (:mod:`repro.core.shm`), charged on the
#: engine's own bag — never into job stats, which must stay
#: byte-identical across engines.
SHM_SEGMENTS_CREATED = "mr.shm.segments_created"
SHM_SEGMENTS_UNLINKED = "mr.shm.segments_unlinked"
SHM_BLOCKS_SHARED = "mr.shm.blocks_shared"
SHM_BYTES_SHARED = "mr.shm.bytes_shared"
SHM_ATTACHES = "mr.shm.attaches"

#: Serving-layer counters (:mod:`repro.serve`).
SERVE_QUERIES = "serve.queries"
SERVE_CACHE_HITS = "serve.cache_hits"
SERVE_CACHE_MISSES = "serve.cache_misses"
SERVE_CACHE_EVICTIONS = "serve.cache_evictions"
SERVE_QUERIES_SHED = "serve.queries_shed"
SERVE_QUERIES_TIMED_OUT = "serve.queries_timed_out"
SERVE_INSERTS = "serve.inserts"
SERVE_DELETES = "serve.deletes"
SERVE_DELTA_REPAIRS = "serve.delta_repairs"
SERVE_BATCH_REFRESHES = "serve.batch_refreshes"

#: Sharded-fleet counters (:mod:`repro.serve.shard`).
SERVE_SHARD_QUERIES_FANNED = "serve.shard.queries_fanned_out"
SERVE_SHARD_DELTA_BATCHES = "serve.shard.delta_batches"
SERVE_SHARD_BATCHED_OPS = "serve.shard.batched_ops"
SERVE_SHARD_REPLICATED_POINTS = "serve.shard.replicated_points"
SERVE_SHARD_RESHARDS = "serve.shard.reshards"

#: Per-tenant serving counters are a *family*: one counter per
#: ``(tenant, field)`` pair, named through :func:`tenant_counter` so
#: every charge site produces a name matching the documented
#: ``serve.tenant.<tenant>.<field>`` template (the placeholder form is
#: what COUNTER_DOCS and the metric registry list — tenant ids are
#: data, not vocabulary).
TENANT_COUNTER_FIELDS = ("queries", "shed", "timed_out")

#: The documented placeholder spellings of the per-tenant family.
SERVE_TENANT_QUERIES = "serve.tenant.<tenant>.queries"
SERVE_TENANT_SHED = "serve.tenant.<tenant>.shed"
SERVE_TENANT_TIMED_OUT = "serve.tenant.<tenant>.timed_out"


def tenant_counter(tenant: str, field: str) -> str:
    """Dotted per-tenant counter name: ``serve.tenant.<tenant>.<field>``.

    ``field`` must come from :data:`TENANT_COUNTER_FIELDS`; the tenant
    id is free-form (it is workload data). Centralising the spelling
    keeps every charge site inside the documented family.
    """
    if field not in TENANT_COUNTER_FIELDS:
        raise ValidationError(
            f"tenant counter field must be one of "
            f"{TENANT_COUNTER_FIELDS}, got {field!r}"
        )
    if not tenant:
        raise ValidationError("tenant id must be non-empty")
    return f"serve.tenant.{tenant}.{field}"


#: BSP cost-model counters (:mod:`repro.bsp`), charged on the engine's
#: own bag — never into job stats, which must stay byte-identical
#: across engines. ``max_reducer_input_records`` is a monotone
#: high-water mark (charged by delta), everything else is additive.
COST_ROUNDS = "mr.cost.rounds"
COST_SUPERSTEPS = "mr.cost.supersteps"
COST_BARRIERS = "mr.cost.barriers"
COST_SOURCE_RECORDS = "mr.cost.source_records"
COST_DELIVERED_RECORDS = "mr.cost.delivered_records"
COST_DELIVERED_BYTES = "mr.cost.delivered_bytes"
COST_MAX_REDUCER_INPUT = "mr.cost.max_reducer_input_records"

#: Per-superstep h-relation counters are a *family*: one counter per
#: ``(superstep, field)`` pair, named through :func:`cost_counter` —
#: superstep indices are execution data, not vocabulary, exactly like
#: tenant ids in the ``serve.tenant.<tenant>.*`` family.
COST_SUPERSTEP_FIELDS = ("h_records", "h_bytes")

#: The documented placeholder spellings of the per-superstep family.
COST_SUPERSTEP_H_RECORDS = "mr.cost.superstep.<step>.h_records"
COST_SUPERSTEP_H_BYTES = "mr.cost.superstep.<step>.h_bytes"


def cost_counter(step: int, field: str) -> str:
    """Dotted per-superstep counter name: ``mr.cost.superstep.<step>.<field>``.

    ``field`` must come from :data:`COST_SUPERSTEP_FIELDS`; ``step`` is
    the engine's global superstep index (execution data). Centralising
    the spelling keeps every charge site inside the documented family.
    """
    if field not in COST_SUPERSTEP_FIELDS:
        raise ValidationError(
            f"cost counter field must be one of "
            f"{COST_SUPERSTEP_FIELDS}, got {field!r}"
        )
    step = int(step)
    if step < 0:
        raise ValidationError(f"superstep index must be >= 0, got {step}")
    return f"mr.cost.superstep.{step}.{field}"


#: Builder functions whose return values are instances of a documented
#: counter family. The REP003 lint accepts ``Counters.inc(<builder>(…))``
#: charge sites for exactly these callees — any other computed name is
#: flagged, so dynamic counters can't silently drift out of the
#: documented vocabulary.
COUNTER_FAMILY_BUILDERS = ("tenant_counter", "cost_counter")


def counter_family_regexes() -> Dict[str, Pattern[str]]:
    """Compiled regex per documented counter *family*.

    A :data:`COUNTER_DOCS` key containing ``<placeholder>`` segments
    documents a family rather than a single counter; each placeholder
    matches exactly one dotted-name segment, so
    ``serve.tenant.<tenant>.queries`` covers every concrete tenant id
    (tenant ids are workload data, not vocabulary). Keys without
    placeholders are not returned — they match exactly or not at all.
    """
    families: Dict[str, Pattern[str]] = {}
    for name in COUNTER_DOCS:
        if "<" not in name:
            continue
        pattern = re.sub(r"<[^<>]+>", r"[^.]+", re.escape(name))
        families[name] = re.compile(pattern)
    return families


def matches_counter_family(name: str) -> bool:
    """True when ``name`` instantiates a documented counter family."""
    return any(
        regex.fullmatch(name) for regex in counter_family_regexes().values()
    )


#: One-line documentation per canonical counter. The observability
#: metric registry (:mod:`repro.obs.metrics`) and ``repro-skyline list
#: --counters`` read this mapping, so the docs cannot drift from the
#: names the engines actually charge.
COUNTER_DOCS = {
    RECORDS_IN: "Records consumed by tasks (map inputs + reduce inputs).",
    RECORDS_OUT: "Records emitted by tasks (map outputs + reduce outputs).",
    SHUFFLE_BYTES: "Bytes of map output moved through the shuffle.",
    TASK_RETRIES: "Failed task attempts that were re-executed.",
    SPECULATIVE_ATTEMPTS: "Speculative backup copies that won their race.",
    NODE_LOSS_REEXECS: "Re-executions caused by simulated node losses.",
    PARTITION_COMPARES: (
        "Partition-pair comparisons (the Section 6 cost-model quantity; "
        "Figure 11 plots the per-task maxima)."
    ),
    TUPLE_COMPARES: "Tuple-pair dominance tests across all skyline stages.",
    TUPLES_PRUNED_BY_BITSTRING: (
        "Tuples discarded because their partition's bitstring bit was 0."
    ),
    LOCAL_SKYLINE_SIZE: "Tuples surviving into partition-local skylines.",
    SERVE_QUERIES: "Skyline queries admitted and answered by the frontend.",
    SERVE_CACHE_HITS: "Queries answered straight from the result cache.",
    SERVE_CACHE_MISSES: "Queries that had to consult the skyline index.",
    SERVE_CACHE_EVICTIONS: "Result-cache entries evicted (LRU or epoch).",
    SERVE_QUERIES_SHED: (
        "Queries rejected by admission control (bounded queue full)."
    ),
    SERVE_QUERIES_TIMED_OUT: (
        "Admitted queries dropped because their deadline passed in queue."
    ),
    SERVE_INSERTS: "Point inserts applied to the skyline index.",
    SERVE_DELETES: "Point deletes applied to the skyline index.",
    SERVE_DELTA_REPAIRS: (
        "Deletes of skyline members repaired from the dominated-region "
        "cells instead of a full recompute."
    ),
    SERVE_BATCH_REFRESHES: (
        "Full batch recomputes triggered by the staleness budget "
        "(MR-GPSRS/MR-GPMRS through the configured engine)."
    ),
    SHM_SEGMENTS_CREATED: (
        "Shared-memory segments created by the zero-copy substrate."
    ),
    SHM_SEGMENTS_UNLINKED: (
        "Shared-memory segments unlinked (lifecycle completed, no leak)."
    ),
    SHM_BLOCKS_SHARED: (
        "PointSet blocks re-homed into shared memory (splits + cache)."
    ),
    SHM_BYTES_SHARED: (
        "Bytes of block data placed in shared segments instead of being "
        "pickled per process hop."
    ),
    SHM_ATTACHES: (
        "Segment attachments performed when materialising block "
        "descriptors received from another process."
    ),
    SERVE_SHARD_QUERIES_FANNED: (
        "Per-shard sub-queries dispatched by the sharded router "
        "(fan-out; one query may touch several shards)."
    ),
    SERVE_SHARD_DELTA_BATCHES: (
        "Coalesced delta batches applied across the shard fleet."
    ),
    SERVE_SHARD_BATCHED_OPS: (
        "Individual insert/delete operations absorbed inside coalesced "
        "delta batches."
    ),
    SERVE_SHARD_REPLICATED_POINTS: (
        "Extra copies of points stored because their cell belongs to "
        "more than one independent-group shard (Figure 6 replication)."
    ),
    SERVE_SHARD_RESHARDS: (
        "Full fleet rebuilds triggered by a point landing in a cell no "
        "shard's group covers."
    ),
    SERVE_TENANT_QUERIES: (
        "Queries admitted and answered for one tenant (per-tenant "
        "family; names produced by tenant_counter())."
    ),
    SERVE_TENANT_SHED: (
        "Queries shed for one tenant — the global queue was full or "
        "the tenant exceeded its quota of queue slots."
    ),
    SERVE_TENANT_TIMED_OUT: (
        "Queries dropped for one tenant because their wait reached "
        "the timeout (at admission or in queue)."
    ),
    COST_ROUNDS: (
        "MapReduce rounds (jobs) the BSP engine executed for the "
        "pipeline (the round count of the rounds/replication frontier)."
    ),
    COST_SUPERSTEPS: "BSP supersteps executed (two per MapReduce round).",
    COST_BARRIERS: "BSP barrier synchronisations reached.",
    COST_SOURCE_RECORDS: (
        "Distinct source records entering communication phases "
        "(the denominator of the Afrati replication rate)."
    ),
    COST_DELIVERED_RECORDS: (
        "Record copies delivered through communication phases "
        "(the numerator of the Afrati replication rate)."
    ),
    COST_DELIVERED_BYTES: (
        "Bytes of record copies delivered through communication phases."
    ),
    COST_MAX_REDUCER_INPUT: (
        "Largest reduce-peer input observed (records) — the reducer "
        "memory bound q; a monotone high-water mark, charged by delta."
    ),
    COST_SUPERSTEP_H_RECORDS: (
        "h-relation record degree of one superstep: max over peers of "
        "max(records sent, records received) (per-superstep family; "
        "names produced by cost_counter())."
    ),
    COST_SUPERSTEP_H_BYTES: (
        "h-relation byte degree of one superstep: max over peers of "
        "max(bytes sent, bytes received)."
    ),
}
