"""Per-function control-flow graphs for the deep analyses.

The lint visitor (:mod:`repro.check.visitor`) judges single statements;
the deep rules (REP008-REP011) judge *paths* — "does this arena reach
``unlink()`` on every non-exceptional path", "is this lock held at this
read".  Both questions are asked of a :class:`CFG`: basic blocks of
*steps* connected by edges, built once per function and shared by every
:mod:`repro.check.dataflow` analysis.

Steps are either plain simple statements (``ast.Assign``, ``ast.Return``,
...) or pseudo-steps that surface sub-statement structure the analyses
need:

* :class:`TestExpr` — the test of an ``if``/``while`` or the iterable of
  a ``for``, evaluated in the block that branches on it.  Branch edges
  carry the test and its polarity so path-sensitive lattices can refine
  (``if ctx is not None: ...``).
* :class:`WithEnter` / :class:`WithExit` — one pair per ``with`` item,
  bracketing the managed region (the lock-discipline lattice toggles
  its lockset on these).

Structural choices, and what they trade:

* ``return`` / ``break`` / ``continue`` **inline the pending
  ``finally`` bodies** on their way to the jump target, so a release in
  a ``finally`` is seen on the return path (the classic
  ``try: return f() finally: arena.unlink()`` idiom checks out clean).
* every block of a ``try`` body gets an edge to each handler — an
  exception may fire anywhere in the body, so a handler joins over all
  of it (coarse but sound for the must-hold lock analysis; a ``with``
  released by an escaping exception joins against the pre-``with``
  state and correctly drops the lock).
* ``raise`` jumps straight to the dedicated :attr:`CFG.raise_exit`
  block.  The deep rules only judge **non-exceptional** exits, so
  raise paths are deliberately exempt (and ``finally`` bodies on pure
  raise paths are not re-inlined).
* nested ``def``/``lambda`` bodies are opaque: each function gets its
  own CFG; the enclosing CFG sees the definition as one simple step.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union


@dataclass(frozen=True)
class TestExpr:
    """Pseudo-step: a branch test (or loop iterable) being evaluated."""

    expr: ast.expr
    node: ast.stmt

    @property
    def lineno(self) -> int:
        return getattr(self.node, "lineno", 0)


@dataclass(frozen=True)
class WithEnter:
    """Pseudo-step: one ``with`` item's ``__enter__``."""

    item: ast.withitem
    node: ast.stmt

    @property
    def lineno(self) -> int:
        return getattr(self.item.context_expr, "lineno", 0)


@dataclass(frozen=True)
class WithExit:
    """Pseudo-step: one ``with`` item's ``__exit__`` (normal path)."""

    item: ast.withitem
    node: ast.stmt

    @property
    def lineno(self) -> int:
        return getattr(self.item.context_expr, "lineno", 0)


Step = Union[ast.stmt, TestExpr, WithEnter, WithExit]


@dataclass(frozen=True)
class Edge:
    """A directed edge; branch edges carry their test and polarity.

    ``exceptional`` edges model "an exception fired somewhere in this
    block": they deliver the block's *in*-state to the handler, because
    mid-block effects (a binding, an acquire) may or may not have
    happened when the exception fired — the entry state is the one
    join-safe approximation for every analysis here (a resource bound
    mid-block then thrown past is an *exceptional* leak, which REP008
    deliberately does not judge)."""

    src: int
    dst: int
    test: Optional[ast.expr] = None
    branch: Optional[bool] = None
    exceptional: bool = False


@dataclass
class Block:
    """A straight-line run of steps."""

    bid: int
    steps: List[Step] = field(default_factory=list)


class CFG:
    """Blocks + edges for one function body.

    ``entry`` starts the body, ``exit`` collects every non-exceptional
    way out (explicit ``return`` and falling off the end), and
    ``raise_exit`` collects explicit ``raise`` paths — analyses that
    only constrain non-exceptional behaviour simply never look at it.
    """

    def __init__(self) -> None:
        self.blocks: Dict[int, Block] = {}
        self.edges: List[Edge] = []
        self._succs: Dict[int, List[Edge]] = {}
        self._preds: Dict[int, List[Edge]] = {}
        self.entry = self._new_block().bid
        self.exit = self._new_block().bid
        self.raise_exit = self._new_block().bid

    def _new_block(self) -> Block:
        bid = len(self.blocks)
        block = Block(bid)
        self.blocks[bid] = block
        self._succs[bid] = []
        self._preds[bid] = []
        return block

    def add_edge(
        self,
        src: int,
        dst: int,
        test: Optional[ast.expr] = None,
        branch: Optional[bool] = None,
        exceptional: bool = False,
    ) -> None:
        edge = Edge(src, dst, test, branch, exceptional)
        self.edges.append(edge)
        self._succs[src].append(edge)
        self._preds[dst].append(edge)

    def succs(self, bid: int) -> Sequence[Edge]:
        return self._succs[bid]

    def preds(self, bid: int) -> Sequence[Edge]:
        return self._preds[bid]


class _Builder:
    """Recursive-descent CFG construction for one function."""

    def __init__(self) -> None:
        self.cfg = CFG()
        #: innermost-last pending ``finally`` bodies a jump must run
        self._finally: List[List[ast.stmt]] = []
        #: (break target, continue target, finally depth at loop entry)
        self._loops: List[Tuple[int, int, int]] = []

    # -- plumbing -------------------------------------------------------

    def _block(self) -> int:
        return self.cfg._new_block().bid

    def _seal(self, cur: Optional[int], dst: int) -> None:
        if cur is not None:
            self.cfg.add_edge(cur, dst)

    def _jump(self, cur: int, target: int, depth: int) -> None:
        """Route a jump through the finally bodies above ``depth``."""
        pending = self._finally[depth:]
        saved = self._finally
        frontier: Optional[int] = cur
        for i, body in enumerate(reversed(pending)):
            if frontier is None:
                break
            # Jumps inside this finally body resolve against the stack
            # *below* it.
            self._finally = saved[: len(saved) - i - 1]
            entry = self._block()
            self.cfg.add_edge(frontier, entry)
            frontier = self.body(body, entry)
        self._finally = saved
        if frontier is not None:
            self.cfg.add_edge(frontier, target)

    # -- statement dispatch ---------------------------------------------

    def body(self, stmts: Sequence[ast.stmt], cur: int) -> Optional[int]:
        """Build ``stmts`` starting in block ``cur``; returns the block
        where control falls out the end, or ``None`` if it never does."""
        frontier: Optional[int] = cur
        for stmt in stmts:
            if frontier is None:
                # Dead code after a jump still gets blocks (so its
                # functions are enumerable) but stays unreachable.
                frontier = self._block()
                frontier = self._stmt(stmt, frontier)
                frontier = None
                continue
            frontier = self._stmt(stmt, frontier)
        return frontier

    def _stmt(self, stmt: ast.stmt, cur: int) -> Optional[int]:
        if isinstance(stmt, ast.If):
            return self._if(stmt, cur)
        if isinstance(stmt, (ast.While,)):
            return self._while(stmt, cur)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return self._for(stmt, cur)
        if isinstance(stmt, ast.Try):
            return self._try(stmt, cur)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._with(stmt, cur)
        if isinstance(stmt, ast.Return):
            self.cfg.blocks[cur].steps.append(stmt)
            self._jump(cur, self.cfg.exit, 0)
            return None
        if isinstance(stmt, ast.Raise):
            self.cfg.blocks[cur].steps.append(stmt)
            self.cfg.add_edge(cur, self.cfg.raise_exit)
            return None
        if isinstance(stmt, ast.Break):
            if self._loops:
                target, _, depth = self._loops[-1]
                self._jump(cur, target, depth)
            return None
        if isinstance(stmt, ast.Continue):
            if self._loops:
                _, target, depth = self._loops[-1]
                self._jump(cur, target, depth)
            return None
        if hasattr(ast, "Match") and isinstance(stmt, ast.Match):
            return self._match(stmt, cur)
        # Simple statement (incl. nested def/class — opaque here).
        self.cfg.blocks[cur].steps.append(stmt)
        return cur

    # -- compound statements --------------------------------------------

    def _if(self, stmt: ast.If, cur: int) -> Optional[int]:
        self.cfg.blocks[cur].steps.append(TestExpr(stmt.test, stmt))
        join = self._block()
        then_entry = self._block()
        self.cfg.add_edge(cur, then_entry, stmt.test, True)
        self._seal(self.body(stmt.body, then_entry), join)
        if stmt.orelse:
            else_entry = self._block()
            self.cfg.add_edge(cur, else_entry, stmt.test, False)
            self._seal(self.body(stmt.orelse, else_entry), join)
        else:
            self.cfg.add_edge(cur, join, stmt.test, False)
        if not self.cfg.preds(join):
            return None
        return join

    def _while(self, stmt: ast.While, cur: int) -> Optional[int]:
        head = self._block()
        self.cfg.add_edge(cur, head)
        self.cfg.blocks[head].steps.append(TestExpr(stmt.test, stmt))
        after = self._block()
        body_entry = self._block()
        self.cfg.add_edge(head, body_entry, stmt.test, True)
        self._loops.append((after, head, len(self._finally)))
        body_exit = self.body(stmt.body, body_entry)
        self._loops.pop()
        self._seal(body_exit, head)
        if stmt.orelse:
            else_entry = self._block()
            self.cfg.add_edge(head, else_entry, stmt.test, False)
            self._seal(self.body(stmt.orelse, else_entry), after)
        else:
            self.cfg.add_edge(head, after, stmt.test, False)
        if not self.cfg.preds(after):
            return None
        return after

    def _for(self, stmt: Union[ast.For, ast.AsyncFor], cur: int) -> Optional[int]:
        self.cfg.blocks[cur].steps.append(TestExpr(stmt.iter, stmt))
        head = self._block()
        self.cfg.add_edge(cur, head)
        after = self._block()
        body_entry = self._block()
        self.cfg.add_edge(head, body_entry)
        # The loop variable is (re)bound each iteration; surface that as
        # a synthetic assignment so value-tracking lattices see it.
        bind = ast.Assign(targets=[stmt.target], value=stmt.iter)
        ast.copy_location(bind, stmt)
        self.cfg.blocks[body_entry].steps.append(bind)
        self._loops.append((after, head, len(self._finally)))
        body_exit = self.body(stmt.body, body_entry)
        self._loops.pop()
        self._seal(body_exit, head)
        if stmt.orelse:
            else_entry = self._block()
            self.cfg.add_edge(head, else_entry)
            self._seal(self.body(stmt.orelse, else_entry), after)
        else:
            self.cfg.add_edge(head, after)
        if not self.cfg.preds(after):
            return None
        return after

    def _with(
        self, stmt: Union[ast.With, ast.AsyncWith], cur: int
    ) -> Optional[int]:
        for item in stmt.items:
            self.cfg.blocks[cur].steps.append(WithEnter(item, stmt))
        body_exit = self.body(stmt.body, cur)
        if body_exit is None:
            return None
        for item in reversed(stmt.items):
            self.cfg.blocks[body_exit].steps.append(WithExit(item, stmt))
        return body_exit

    def _try(self, stmt: ast.Try, cur: int) -> Optional[int]:
        if stmt.finalbody:
            self._finally.append(stmt.finalbody)
        before = len(self.cfg.blocks)
        body_entry = self._block()
        self.cfg.add_edge(cur, body_entry)
        body_exit = self.body(stmt.body, body_entry)
        if stmt.orelse and body_exit is not None:
            body_exit = self.body(stmt.orelse, body_exit)
        try_blocks = [
            bid for bid in range(before, len(self.cfg.blocks))
        ]
        handler_exits: List[int] = []
        for handler in stmt.handlers:
            handler_entry = self._block()
            for bid in try_blocks:
                self.cfg.add_edge(bid, handler_entry, exceptional=True)
            handler_exit = self.body(handler.body, handler_entry)
            if handler_exit is not None:
                handler_exits.append(handler_exit)
        if stmt.finalbody:
            self._finally.pop()
            fin_entry = self._block()
            self._seal(body_exit, fin_entry)
            for bid in handler_exits:
                self.cfg.add_edge(bid, fin_entry)
            if not self.cfg.preds(fin_entry):
                return None
            return self.body(stmt.finalbody, fin_entry)
        join = self._block()
        self._seal(body_exit, join)
        for bid in handler_exits:
            self.cfg.add_edge(bid, join)
        if not self.cfg.preds(join):
            return None
        return join

    def _match(self, stmt: ast.AST, cur: int) -> Optional[int]:
        # Coarse: every case body is an unconditioned alternative.
        join = self._block()
        matched = False
        for case in stmt.cases:  # type: ignore[attr-defined]
            case_entry = self._block()
            self.cfg.add_edge(cur, case_entry)
            self._seal(self.body(case.body, case_entry), join)
            matched = True
        if not matched:
            return cur
        self.cfg.add_edge(cur, join)  # no case may match
        return join


FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def build_cfg(fn: FunctionNode) -> CFG:
    """Build the CFG of one function definition's body."""
    builder = _Builder()
    first = builder._block()
    builder.cfg.add_edge(builder.cfg.entry, first)
    frontier = builder.body(fn.body, first)
    if frontier is not None:
        builder.cfg.add_edge(frontier, builder.cfg.exit)
    return builder.cfg
