"""``python -m repro.check`` — the CI entry point of the checker."""

from __future__ import annotations

import sys

from repro.check.runner import main

if __name__ == "__main__":
    sys.exit(main())
