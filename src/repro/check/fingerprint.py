"""Deterministic structural fingerprints for contract checking.

:func:`fingerprint` hashes a value's *structure and content* — never
its identity — so two calls on an unmutated object always agree, and
any in-place mutation (an array write, a list append, a dict update)
changes the digest.  ``canonical=True`` additionally canonicalises
order-free containers (a :class:`~repro.core.pointset.PointSet` is
hashed with its rows sorted by id), which is the right equality for
comparing reducer outputs across value orderings: MapReduce only
promises the *set* of rows, not their physical order inside a block.
"""

from __future__ import annotations

import hashlib
import pickle
from typing import Any, Callable, List

import numpy as np

from repro.core.pointset import PointSet

_TAG_SEP = b"\x00"


def _hash_parts(*parts: bytes) -> bytes:
    h = hashlib.blake2b(digest_size=16)
    for part in parts:
        h.update(part)
        h.update(_TAG_SEP)
    return h.digest()


def _walk(value: Any, canonical: bool, emit: Callable[[bytes], None]) -> None:
    if value is None or isinstance(value, (bool, int, float, complex, str, bytes)):
        emit(f"{type(value).__name__}:{value!r}".encode())
        return
    if isinstance(value, (bytearray, memoryview)):
        emit(b"bytes:" + bytes(value))
        return
    if isinstance(value, PointSet):
        ids = np.asarray(value.ids)
        values = np.asarray(value.values)
        if canonical and ids.shape[0] > 1:
            order = np.argsort(ids, kind="stable")
            ids, values = ids[order], values[order]
        emit(
            b"PointSet:"
            + str(values.shape).encode()
            + ids.tobytes()
            + np.ascontiguousarray(values).tobytes()
        )
        return
    if isinstance(value, np.ndarray):
        emit(
            b"ndarray:"
            + str(value.dtype).encode()
            + str(value.shape).encode()
            + np.ascontiguousarray(value).tobytes()
        )
        return
    if isinstance(value, np.generic):
        emit(b"npscalar:" + str(value.dtype).encode() + value.tobytes())
        return
    if isinstance(value, (tuple, list)):
        emit(f"{type(value).__name__}:{len(value)}".encode())
        for item in value:
            _walk(item, canonical, emit)
        return
    if isinstance(value, (set, frozenset)):
        emit(f"set:{len(value)}".encode())
        digests: List[bytes] = []
        for item in value:
            sub: List[bytes] = []
            _walk(item, canonical, sub.append)
            digests.append(_hash_parts(*sub))
        for digest in sorted(digests):
            emit(digest)
        return
    if isinstance(value, dict):
        emit(f"dict:{len(value)}".encode())
        entries: List[bytes] = []
        for key, item in value.items():
            pair: List[bytes] = []
            _walk(key, canonical, pair.append)
            _walk(item, canonical, pair.append)
            entries.append(_hash_parts(*pair))
        for digest in sorted(entries):
            emit(digest)
        return
    # Library containers: a DistributedCache walks as its sorted items;
    # anything exposing as_dict() (counters, events) walks as a dict.
    items = getattr(value, "as_dict", None)
    if callable(items):
        _walk({"__type__": type(value).__name__, **items()}, canonical, emit)
        return
    if hasattr(value, "__getitem__") and hasattr(value, "__iter__") and hasattr(
        value, "__len__"
    ):
        try:
            keys = list(value)
            emit(f"{type(value).__name__}:{len(keys)}".encode())
            for key in keys:
                _walk(key, canonical, emit)
                _walk(value[key], canonical, emit)
            return
        except Exception:  # repro: allow[REP006]
            pass  # fall through to pickle/repr for non-mapping iterables
    try:
        emit(b"pickle:" + pickle.dumps(value, protocol=4))
    except (pickle.PicklingError, TypeError, AttributeError, RecursionError):
        emit(f"repr:{type(value).__name__}:{value!r}".encode())


def fingerprint(value: Any, canonical: bool = False) -> str:
    """Hex digest of ``value``'s structure and content.

    ``canonical=False`` (the default) is exact — any observable
    mutation, including a pure reordering, changes the digest.
    ``canonical=True`` ignores physical row order inside PointSets, the
    equality MapReduce actually guarantees for reducer output blocks.
    """
    parts: List[bytes] = []
    _walk(value, canonical, parts.append)
    return _hash_parts(*parts).hex()
