"""Run the REP rules over files/trees, honouring suppression pragmas.

The pragma contract is strict in both directions: a violation survives
unless a ``# repro: allow[RULE]`` pragma sits on the violating line or
the line directly above it, **and** every pragma must suppress at least
one violation — a pragma that suppresses nothing (because the code it
excused was fixed, moved, or never violated anything) is reported as
REP007 so suppressions cannot rot into permanent blind spots.  The one
exception: pragmas naming a deep rule (REP008-REP011) are only
staleness-checked when the deep analyses actually ran (``--deep``),
since a shallow run cannot tell whether they suppress anything.

``python -m repro.check src/`` (or ``repro-skyline check src/``) exits
0 only when the tree is entirely clean: zero violations *and* zero
unused pragmas.  ``--deep`` additionally runs the interprocedural
dataflow rules (REP008-REP011, :mod:`repro.check.deep`) over all the
checked files *as one program*, so cross-module facts (call graphs,
lock orders) resolve.
"""

from __future__ import annotations

import argparse
import ast
import io
import json
import re
import sys
import tokenize
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.check.rules import DEEP_RULES, RULES, Violation
from repro.check.visitor import CheckVisitor

#: Matches ``repro: allow[REP001]`` and ``repro: allow[REP002, REP006]``
#: inside comment tokens.
PRAGMA_RE = re.compile(r"#\s*repro:\s*allow\[([^\]]*)\]")


def iter_python_files(paths: Sequence[str]) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: Set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            out.update(p for p in path.rglob("*.py") if p.is_file())
        elif path.suffix == ".py" and path.is_file():
            out.add(path)
        else:
            raise FileNotFoundError(f"no such file or directory: {raw}")
    return sorted(out)


def parse_pragmas(
    source: str, path: str
) -> Tuple[Dict[int, Set[str]], Set[int], List[Violation]]:
    """Extract pragmas from *comments* as ``{line: {rule_ids}}``.

    Tokenizing (rather than regex-scanning raw lines) means pragma
    examples inside docstrings and string literals are inert — only a
    real ``#`` comment can suppress anything.  Malformed or unknown
    rule ids are reported immediately as REP007.

    Also returns the set of *standalone* pragma lines (comment-only
    lines): only those may excuse the line below them — a trailing
    pragma applies strictly to its own line, so one suppression can
    never silently leak onto the next statement.
    """
    pragmas: Dict[int, Set[str]] = {}
    standalone: Set[int] = set()
    bad: List[Violation] = []
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return {}, set(), []  # the ast pass reports the file as REP000
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = PRAGMA_RE.search(token.string)
        if match is None:
            continue
        lineno = token.start[0]
        ids = {part.strip() for part in match.group(1).split(",") if part.strip()}
        unknown = sorted(i for i in ids if i not in RULES)
        if not ids or unknown:
            bad.append(
                Violation(
                    rule_id="REP007",
                    path=path,
                    line=lineno,
                    col=token.start[1],
                    message=(
                        f"pragma names unknown rule(s) {unknown}"
                        if unknown
                        else "pragma names no rule"
                    ),
                )
            )
            continue
        pragmas.setdefault(lineno, set()).update(ids)
        if not token.line[: token.start[1]].strip():
            standalone.add(lineno)
    return pragmas, standalone, bad


def _parse_tree(
    source: str, path: str
) -> Tuple[Optional[ast.Module], List[Violation]]:
    try:
        return ast.parse(source, filename=path), []
    except SyntaxError as exc:
        return None, [
            Violation(
                rule_id="REP000",
                path=path,
                line=exc.lineno or 0,
                col=exc.offset or 0,
                message=f"file does not parse: {exc.msg}",
            )
        ]


def _apply_pragmas(
    raw: Iterable[Violation],
    pragmas: Dict[int, Set[str]],
    standalone: Set[int],
    bad: List[Violation],
    path: str,
    deep: bool,
) -> List[Violation]:
    """Suppress ``raw`` violations per the pragma contract, then report
    any pragma that excused nothing (REP007) — except deep-rule pragmas
    in a shallow run, which the run cannot judge."""
    violations = list(bad)
    used: Set[Tuple[int, str]] = set()
    for violation in raw:
        suppressed = False
        candidates = [violation.line]
        if violation.line - 1 in standalone:
            candidates.append(violation.line - 1)
        for line in candidates:
            if violation.rule_id in pragmas.get(line, ()):
                used.add((line, violation.rule_id))
                suppressed = True
                break
        if not suppressed:
            violations.append(violation)

    for line in sorted(pragmas):
        for rule_id in sorted(pragmas[line]):
            if (line, rule_id) in used:
                continue
            if rule_id in DEEP_RULES and not deep:
                continue
            violations.append(
                Violation(
                    rule_id="REP007",
                    path=path,
                    line=line,
                    col=0,
                    message=(
                        f"pragma allow[{rule_id}] suppresses nothing; "
                        "remove it (or it is masking a fixed rule)"
                    ),
                )
            )
    violations.sort(key=lambda v: (v.line, v.col, v.rule_id))
    return violations


def check_source(source: str, path: str, deep: bool = False) -> List[Violation]:
    """Check one module's source text; applies and verifies pragmas.

    With ``deep=True`` the module is also analysed by the dataflow
    rules, *in isolation* — use :func:`check_paths` to deep-check many
    modules as one program.
    """
    pragmas, standalone, bad = parse_pragmas(source, path)
    tree, parse_errors = _parse_tree(source, path)
    if tree is None:
        return bad + parse_errors

    visitor = CheckVisitor(path)
    visitor.visit(tree)
    raw: List[Violation] = list(visitor.violations)
    if deep:
        from repro.check.deep import analyze_modules

        raw.extend(analyze_modules([(path, source, tree)]))
    return _apply_pragmas(raw, pragmas, standalone, bad, path, deep)


def check_file(path: Path, deep: bool = False) -> List[Violation]:
    try:
        source = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        return [
            Violation(
                rule_id="REP000",
                path=str(path),
                line=0,
                col=0,
                message=f"file is unreadable: {exc}",
            )
        ]
    return check_source(source, str(path), deep=deep)


def check_paths(paths: Sequence[str], deep: bool = False) -> List[Violation]:
    """Check every ``.py`` file under ``paths``; sorted by location.

    In deep mode all parsed files form one analysis program: the call
    graph, entry locksets, and lock-order graph span every module given
    here, which is what lets REP009/REP011 reason across files.
    """
    results: List[Violation] = []
    parsed: List[Tuple[str, str, ast.Module]] = []
    per_file: List[
        Tuple[str, List[Violation], Dict[int, Set[str]], Set[int], List[Violation]]
    ] = []
    for path in iter_python_files(paths):
        try:
            source = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            results.append(
                Violation(
                    rule_id="REP000",
                    path=str(path),
                    line=0,
                    col=0,
                    message=f"file is unreadable: {exc}",
                )
            )
            continue
        name = str(path)
        pragmas, standalone, bad = parse_pragmas(source, name)
        tree, parse_errors = _parse_tree(source, name)
        if tree is None:
            results.extend(bad + parse_errors)
            continue
        visitor = CheckVisitor(name)
        visitor.visit(tree)
        parsed.append((name, source, tree))
        per_file.append((name, list(visitor.violations), pragmas, standalone, bad))

    deep_by_path: Dict[str, List[Violation]] = {}
    if deep and parsed:
        from repro.check.deep import analyze_modules

        for violation in analyze_modules(parsed):
            deep_by_path.setdefault(violation.path, []).append(violation)

    for name, raw, pragmas, standalone, bad in per_file:
        raw.extend(deep_by_path.get(name, []))
        results.extend(_apply_pragmas(raw, pragmas, standalone, bad, name, deep))
    results.sort(key=lambda v: (v.path, v.line, v.col, v.rule_id))
    return results


def render_text(violations: Iterable[Violation]) -> str:
    lines = [v.render() for v in violations]
    count = len(lines)
    lines.append(
        "clean: no violations, no unused pragmas"
        if count == 0
        else f"{count} violation(s)"
    )
    return "\n".join(lines)


def render_json(violations: Iterable[Violation]) -> str:
    """Machine-readable findings: one object per violation with
    ``file``/``line``/``col``/``rule``/``message`` keys (stable contract
    for CI annotation tooling)."""
    return json.dumps(
        [
            {
                "file": v.path,
                "line": v.line,
                "col": v.col,
                "rule": v.rule_id,
                "message": v.message,
            }
            for v in violations
        ],
        indent=2,
    )


def list_rules() -> str:
    lines = []
    for rule_id in sorted(RULES):
        rule = RULES[rule_id]
        lines.append(f"{rule.rule_id}  {rule.title}")
        lines.append(f"        {rule.description}")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-skyline check",
        description="Determinism & MapReduce-purity checker "
        "(rules REP001-REP007 always; REP008-REP011 with --deep; "
        "see docs/static_analysis.md)",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"], help="files or directories"
    )
    parser.add_argument(
        "--deep",
        action="store_true",
        help="also run the interprocedural dataflow analyses "
        "(REP008-REP011: resource lifecycles, lock discipline, "
        "fleet RPC conformance, call-graph purity)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text", dest="fmt"
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue"
    )
    args = parser.parse_args(argv)
    if args.list_rules:
        print(list_rules())
        return 0
    try:
        violations = check_paths(args.paths, deep=args.deep)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    output = (
        render_json(violations) if args.fmt == "json" else render_text(violations)
    )
    print(output)
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main())
