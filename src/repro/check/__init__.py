"""repro.check — determinism & MapReduce-purity checking.

Two complementary halves:

* a **static lint engine** (:mod:`repro.check.rules`,
  :mod:`repro.check.visitor`, :mod:`repro.check.runner`) with the
  repo-specific rules REP001-REP007, plus a **dataflow layer**
  (:mod:`repro.check.cfg`, :mod:`repro.check.dataflow`,
  :mod:`repro.check.callgraph`, :mod:`repro.check.deep`) behind
  ``--deep`` with the interprocedural rules REP008-REP011 — resource
  lifecycles, lock discipline, fleet RPC conformance, and call-graph
  purity; runnable as ``repro-skyline check src/`` or ``python -m
  repro.check src/`` and enforced by the CI check jobs;
* a **dynamic contract checker**
  (:class:`~repro.check.contracts.ContractCheckingEngine`) that any
  test or CLI run can opt into to prove mapper/reducer purity,
  reducer order-insensitivity, and partitioner determinism at run time.

See ``docs/static_analysis.md`` for the rule catalogue, the pragma
syntax, and the exact guarantees the contract checker certifies.
"""

from repro.check.contracts import ContractCheckingEngine
from repro.check.fingerprint import fingerprint
from repro.check.rules import DEEP_RULES, RULES, Rule, Violation
from repro.check.runner import check_paths, check_source, main

__all__ = [
    "DEEP_RULES",
    "RULES",
    "Rule",
    "Violation",
    "ContractCheckingEngine",
    "check_paths",
    "check_source",
    "fingerprint",
    "main",
]
