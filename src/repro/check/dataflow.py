"""Generic forward dataflow over :mod:`repro.check.cfg` graphs.

A :class:`Lattice` bundles everything one analysis needs: the state at
function entry, a join for merge points, a transfer function applied
step by step, and an optional edge refinement hook that narrows state
along branch edges (``if ctx is not None: ...``).  The engine itself is
the textbook worklist algorithm: run blocks until in-states stop
changing; termination is the lattice's responsibility (finite height or
widening inside ``join``).

States are treated as immutable values — ``transfer`` and ``refine``
must return fresh states (or the input unchanged), never mutate in
place, because one out-state fans into several successor in-states.

Beyond fixed points, analyses usually need the state *at* each step,
not just per block; :func:`run_forward` returns a :class:`FlowResult`
whose :meth:`~FlowResult.step_states` replays a block's transfer
sequence to recover them.
"""

from __future__ import annotations

from typing import Dict, Generic, Iterator, List, Optional, Tuple, TypeVar

import ast

from .cfg import CFG, Step

S = TypeVar("S")


class Lattice(Generic[S]):
    """One dataflow analysis: states, join, transfer, refinement."""

    def entry_state(self) -> S:
        raise NotImplementedError

    def join(self, a: S, b: S) -> S:
        raise NotImplementedError

    def transfer(self, step: Step, state: S) -> S:
        raise NotImplementedError

    def refine(self, test: ast.expr, branch: bool, state: S) -> S:
        """Narrow ``state`` along a branch edge; default is no-op."""
        return state

    def equal(self, a: S, b: S) -> bool:
        return bool(a == b)


class FlowResult(Generic[S]):
    """Fixed-point in-states plus per-step replay."""

    def __init__(self, cfg: CFG, lattice: Lattice[S], in_states: Dict[int, S]):
        self.cfg = cfg
        self.lattice = lattice
        self.in_states = in_states

    def block_in(self, bid: int) -> Optional[S]:
        """In-state of ``bid``, or ``None`` if the block is unreachable."""
        return self.in_states.get(bid)

    def block_out(self, bid: int) -> Optional[S]:
        state = self.in_states.get(bid)
        if state is None:
            return None
        for step in self.cfg.blocks[bid].steps:
            state = self.lattice.transfer(step, state)
        return state

    def step_states(self, bid: int) -> Iterator[Tuple[Step, S]]:
        """Yield ``(step, state-before-step)`` for a reachable block."""
        state = self.in_states.get(bid)
        if state is None:
            return
        for step in self.cfg.blocks[bid].steps:
            yield step, state
            state = self.lattice.transfer(step, state)

    def exit_state(self) -> Optional[S]:
        """Joined state over all non-exceptional exits, if reachable."""
        return self.block_in(self.cfg.exit)


def run_forward(cfg: CFG, lattice: Lattice[S]) -> FlowResult[S]:
    """Run ``lattice`` forward over ``cfg`` to a fixed point."""
    in_states: Dict[int, S] = {cfg.entry: lattice.entry_state()}
    worklist: List[int] = [cfg.entry]
    # Bound the total number of block visits; any real lattice converges
    # far earlier, and a buggy one should fail loudly, not spin.
    budget = 64 * (len(cfg.blocks) + 1) * (len(cfg.edges) + 1)
    while worklist:
        budget -= 1
        if budget < 0:
            raise RuntimeError("dataflow failed to converge (lattice bug?)")
        bid = worklist.pop()
        entry = in_states[bid]
        state = entry
        for step in cfg.blocks[bid].steps:
            state = lattice.transfer(step, state)
        for edge in cfg.succs(bid):
            # Exceptional edges deliver the block's in-state: the
            # exception may have fired before any step took effect.
            out = entry if edge.exceptional else state
            if edge.test is not None and edge.branch is not None:
                out = lattice.refine(edge.test, edge.branch, out)
            old = in_states.get(edge.dst)
            new = out if old is None else lattice.join(old, out)
            if old is None or not lattice.equal(old, new):
                in_states[edge.dst] = new
                if edge.dst not in worklist:
                    worklist.append(edge.dst)
    return FlowResult(cfg, lattice, in_states)
