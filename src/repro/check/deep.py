"""The deep (dataflow) rules: REP008-REP011.

Where :mod:`repro.check.visitor` judges single statements, these four
analyses judge *paths* and *call chains*, built on the shared engine
(:mod:`repro.check.cfg`, :mod:`repro.check.dataflow`,
:mod:`repro.check.callgraph`):

REP008
    Resource-lifecycle typestate.  Every local binding of a tracked
    constructor (``RESOURCE_PROTOCOLS`` in :mod:`repro.check.rules`)
    must reach a release call on **every non-exceptional CFG path** —
    or transfer ownership first (returned, yielded, stored into an
    object/container, passed to another call, captured by a nested
    function).  ``with``-managed resources are never tracked; neither
    is a constructor whose result goes straight into an attribute
    (``self._arena = SharedArena()`` hands the lifecycle to the
    object).  ``x = make() if cond else None`` is understood through
    branch refinement on ``x is (not) None``.

REP009
    Lock discipline.  ``# repro: guarded-by[lock]`` on an attribute or
    module-global assignment declares that every later access must
    happen while the named lock is statically held (``with`` block or
    ``.acquire()``/``.release()`` pair).  Locksets are a *must*
    analysis (intersection at joins); private helpers inherit the
    intersection of their call sites' locksets, public entry points and
    functions that escape as values (``Thread(target=self._run)``)
    start with nothing held.  ``__init__`` bodies and module-level
    initialisation are exempt (no concurrent sharing yet).  The same
    pass flags re-acquiring a held lock and any cycle in the
    cross-function lock-acquisition order graph.

REP010
    Fleet RPC conformance.  In any module containing a worker
    dispatcher (a loop over ``msg = conn.recv()`` switching on
    ``msg[0]``), every message tuple sent from outside the dispatcher
    (``conn.send((tag, ...))``, ``self._call(shard, (tag, ...))``) must
    name a handled tag with a compatible arity.  Handlers that unpack
    exactly (``_, row, pid, ctx = msg``) pin the arity; handlers that
    index defensively stay flexible.  Sends *inside* a dispatcher are
    its replies and exempt.

REP011
    Interprocedural purity.  REP004's task-purity contract extended
    through the call graph: a Mapper/Reducer/Combiner method must not
    reach a module-global write through any chain of (alias-resolved)
    helper calls, and must not pass a data input to a helper that
    mutates the corresponding parameter.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import (
    Dict,
    FrozenSet,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.check import rules as R
from repro.check.callgraph import (
    CallGraph,
    CallSite,
    FunctionInfo,
    build_call_graph,
)
from repro.check.cfg import (
    CFG,
    Step,
    TestExpr,
    WithEnter,
    WithExit,
    build_cfg,
)
from repro.check.dataflow import FlowResult, Lattice, run_forward
from repro.check.rules import Violation

#: ``# repro: guarded-by[lock]`` on an assignment line designates the
#: assigned attribute/global as lock-protected.
GUARDED_RE = re.compile(r"#\s*repro:\s*guarded-by\[([^\]]+)\]")

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: A lock identity: ("self", module, class, attr) or ("mod", module, name).
LockToken = Tuple[str, ...]


def _terminal_name(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _root_name(node: ast.expr) -> Optional[str]:
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def _value_names(expr: ast.expr) -> Set[str]:
    """Names whose *object* flows into ``expr``'s value position —
    through tuple/list/set literals, starred items, conditional arms
    and walrus bindings, but not through attribute access, subscripts
    or calls (those produce derived values, not the handle itself)."""
    if isinstance(expr, ast.Name):
        return {expr.id}
    if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
        out: Set[str] = set()
        for elt in expr.elts:
            out |= _value_names(elt)
        return out
    if isinstance(expr, ast.Starred):
        return _value_names(expr.value)
    if isinstance(expr, ast.IfExp):
        return _value_names(expr.body) | _value_names(expr.orelse)
    if isinstance(expr, ast.NamedExpr):
        return _value_names(expr.value)
    return set()


def _local_bindings(fn: FunctionNode) -> Set[str]:
    """Names bound locally in ``fn`` (params + assignment targets),
    minus anything declared ``global``/``nonlocal``."""
    bound: Set[str] = set()
    args = fn.args
    for a in args.posonlyargs + args.args + args.kwonlyargs:
        bound.add(a.arg)
    if args.vararg:
        bound.add(args.vararg.arg)
    if args.kwarg:
        bound.add(args.kwarg.arg)
    declared: Set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, (ast.Global, ast.Nonlocal)):
            declared.update(node.names)
        elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            bound.add(node.id)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            for sub in ast.walk(node.target):
                if isinstance(sub, ast.Name):
                    bound.add(sub.id)
    return bound - declared


def _walk_shallow(node: ast.AST) -> Iterator[ast.AST]:
    """``ast.walk`` that does not descend into nested function/class
    definitions or lambdas (their bodies run in another context)."""
    stack: List[ast.AST] = [node]
    while stack:
        cur = stack.pop()
        yield cur
        for child in ast.iter_child_nodes(cur):
            if isinstance(
                child,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda),
            ):
                continue
            stack.append(child)


def parse_guard_comments(source: str) -> Dict[int, str]:
    """``{line: lock_name}`` for every guarded-by comment in ``source``,
    keyed by the line it designates: its own line for a trailing
    comment, the line below for a standalone comment line (same
    placement contract as the suppression pragmas).

    Tokenize-based for the same reason as the pragmas: a guarded-by
    example inside a docstring must be inert.
    """
    guards: Dict[int, str] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = GUARDED_RE.search(token.string)
            if match is None:
                continue
            line = token.start[0]
            standalone = not token.line[: token.start[1]].strip()
            guards[line + 1 if standalone else line] = match.group(1).strip()
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return {}
    return guards


# ---------------------------------------------------------------------------
# The analysis driver
# ---------------------------------------------------------------------------


@dataclass
class _Module:
    path: str
    name: str
    source: str
    tree: ast.Module


class DeepAnalyzer:
    """Runs REP008-REP011 over a set of modules as one program."""

    def __init__(self) -> None:
        self._modules: List[_Module] = []
        self._cfgs: Dict[int, CFG] = {}

    def add_module(self, path: str, source: str, tree: ast.Module) -> None:
        from repro.check.callgraph import module_name_for

        self._modules.append(_Module(path, module_name_for(path), source, tree))

    def cfg_of(self, fn: FunctionNode) -> CFG:
        cached = self._cfgs.get(id(fn))
        if cached is None:
            cached = build_cfg(fn)
            self._cfgs[id(fn)] = cached
        return cached

    def run(self) -> List[Violation]:
        graph = build_call_graph([(m.path, m.tree) for m in self._modules])
        violations: List[Violation] = []
        _ResourceAnalysis(self, graph).run(violations)
        _LockAnalysis(self, graph, self._modules).run(violations)
        for module in self._modules:
            _check_rpc_conformance(module, violations)
        _PurityAnalysis(graph, self._modules).run(violations)
        violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule_id))
        return violations

    def iter_functions(
        self, graph: CallGraph
    ) -> Iterator[Tuple[_Module, FunctionInfo]]:
        by_path = {m.path: m for m in self._modules}
        for info in graph.iter_functions():
            module = by_path.get(info.path)
            if module is not None:
                yield module, info


def analyze_modules(
    modules: Sequence[Tuple[str, str, ast.Module]],
) -> List[Violation]:
    """Deep-check ``(path, source, tree)`` modules as one program."""
    analyzer = DeepAnalyzer()
    for path, source, tree in modules:
        analyzer.add_module(path, source, tree)
    return analyzer.run()


# ---------------------------------------------------------------------------
# REP008 — resource-lifecycle typestate
# ---------------------------------------------------------------------------

#: One tracked resource binding: (line, col, kind).
_Site = Tuple[int, int, str]


@dataclass(frozen=True)
class _RState:
    """Typestate: which creation sites still owe a release, and which
    local names currently refer to which sites."""

    #: site -> True if a release is still owed on this path
    sites: Tuple[Tuple[_Site, bool], ...] = ()
    #: name -> sites it may refer to
    env: Tuple[Tuple[str, FrozenSet[_Site]], ...] = ()

    def sites_dict(self) -> Dict[_Site, bool]:
        return dict(self.sites)

    def env_dict(self) -> Dict[str, FrozenSet[_Site]]:
        return dict(self.env)

    @staticmethod
    def make(
        sites: Dict[_Site, bool], env: Dict[str, FrozenSet[_Site]]
    ) -> "_RState":
        return _RState(
            tuple(sorted(sites.items())),
            tuple(sorted((k, v) for k, v in env.items() if v)),
        )


def _creation_kind(expr: ast.expr) -> Optional[str]:
    if isinstance(expr, ast.Call):
        name = _terminal_name(expr.func)
        if name is not None and name in R.RESOURCE_PROTOCOLS:
            return name
    return None


class _ResourceLattice(Lattice[_RState]):
    def entry_state(self) -> _RState:
        return _RState()

    def join(self, a: _RState, b: _RState) -> _RState:
        sites = a.sites_dict()
        for site, owed in b.sites:
            sites[site] = sites.get(site, False) or owed
        env = a.env_dict()
        for name, refs in b.env:
            env[name] = env.get(name, frozenset()) | refs
        return _RState.make(sites, env)

    # -- transfer -------------------------------------------------------

    def transfer(self, step: Step, state: _RState) -> _RState:
        if isinstance(step, (WithEnter, WithExit)):
            if isinstance(step, WithEnter):
                return self._scan_expr(step.item.context_expr, state)
            return state
        if isinstance(step, TestExpr):
            return self._scan_expr(step.expr, state)
        return self._transfer_stmt(step, state)

    def _transfer_stmt(self, stmt: ast.stmt, state: _RState) -> _RState:
        if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            value = stmt.value
            targets = (
                stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            )
            if value is not None:
                handled = self._creation(stmt, value, targets, state)
                if handled is not None:
                    return handled
                # Pure alias: b = a
                if (
                    len(targets) == 1
                    and isinstance(targets[0], ast.Name)
                    and isinstance(value, ast.Name)
                ):
                    env = state.env_dict()
                    refs = env.get(value.id)
                    if refs:
                        env[targets[0].id] = refs
                    else:
                        env.pop(targets[0].id, None)
                    return _RState.make(state.sites_dict(), env)
                state = self._scan_expr(value, state)
                # Storing a handle anywhere (attribute, subscript, a
                # container bound to another name) transfers ownership.
                state = self._escape_names(_value_names(value), state)
            env = state.env_dict()
            for target in targets:
                for sub in ast.walk(target):
                    if isinstance(sub, ast.Name):
                        env.pop(sub.id, None)
            return _RState.make(state.sites_dict(), env)
        # Generic statement: releases, call-argument escapes, returns.
        state = self._scan_stmt_exprs(stmt, state)
        if isinstance(stmt, ast.Return) and stmt.value is not None:
            state = self._escape_names(_value_names(stmt.value), state)
        return state

    def _creation(
        self,
        stmt: ast.stmt,
        value: ast.expr,
        targets: Sequence[ast.expr],
        state: _RState,
    ) -> Optional[_RState]:
        """Handle ``x = Creator()`` / ``a, b = ctx.Pipe()`` /
        ``x = Creator() if cond else None``; None if not a creation."""
        calls: List[ast.Call] = []
        kind: Optional[str] = None
        if _creation_kind(value) is not None:
            kind = _creation_kind(value)
            calls = [value]  # type: ignore[list-item]
        elif isinstance(value, ast.IfExp):
            for arm in (value.body, value.orelse):
                k = _creation_kind(arm)
                if k is not None:
                    kind = k
                    calls.append(arm)  # type: ignore[arg-type]
        if kind is None or len(targets) != 1:
            return None
        target = targets[0]
        sites = state.sites_dict()
        env = state.env_dict()
        # Arguments of the constructor escape into it.
        scanned = state
        for call in calls:
            scanned = self._scan_expr(call, scanned)
        sites = scanned.sites_dict()
        env = scanned.env_dict()
        if isinstance(target, ast.Name):
            site = (stmt.lineno, stmt.col_offset, kind)
            sites[site] = True
            env[target.id] = frozenset((site,))
            return _RState.make(sites, env)
        if isinstance(target, ast.Tuple) and all(
            isinstance(e, ast.Name) for e in target.elts
        ):
            # a, b = Pipe(): each end is its own resource.
            for elt in target.elts:
                assert isinstance(elt, ast.Name)
                site = (elt.lineno, elt.col_offset, kind)
                sites[site] = True
                env[elt.id] = frozenset((site,))
            return _RState.make(sites, env)
        # Attribute / subscript target: ownership moves into the object.
        return _RState.make(sites, env)

    # -- escapes & releases ---------------------------------------------

    def _escape_names(self, names: Set[str], state: _RState) -> _RState:
        if not names:
            return state
        env = state.env_dict()
        sites = state.sites_dict()
        changed = False
        for name in names:
            for site in env.get(name, ()):
                if sites.get(site):
                    sites[site] = False
                    changed = True
        if not changed:
            return state
        return _RState.make(sites, env)

    def _scan_stmt_exprs(self, stmt: ast.stmt, state: _RState) -> _RState:
        for node in _walk_shallow(stmt):
            if isinstance(node, ast.Call):
                state = self._apply_call(node, state)
            elif isinstance(node, (ast.Yield, ast.YieldFrom)):
                if node.value is not None:
                    state = self._escape_names(_value_names(node.value), state)
        # A handle captured by a nested function or lambda escapes.
        for node in ast.walk(stmt):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                captured: Set[str] = set()
                body = node.body if isinstance(node.body, list) else [node.body]
                for part in body:
                    for sub in ast.walk(part):
                        if isinstance(sub, ast.Name):
                            captured.add(sub.id)
                state = self._escape_names(captured, state)
        return state

    def _scan_expr(self, expr: ast.expr, state: _RState) -> _RState:
        for node in _walk_shallow(expr):
            if isinstance(node, ast.Call):
                state = self._apply_call(node, state)
        for node in ast.walk(expr):
            if isinstance(node, ast.Lambda):
                captured = {
                    sub.id
                    for sub in ast.walk(node.body)
                    if isinstance(sub, ast.Name)
                }
                state = self._escape_names(captured, state)
        return state

    def _apply_call(self, call: ast.Call, state: _RState) -> _RState:
        # Release: x.unlink() / conn.close() / fleet.stop().
        func = call.func
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            refs = state.env_dict().get(func.value.id)
            if refs:
                sites = state.sites_dict()
                hit = False
                for site in refs:
                    if func.attr in R.RESOURCE_PROTOCOLS.get(site[2], frozenset()):
                        sites[site] = False
                        hit = True
                if hit:
                    state = _RState.make(sites, state.env_dict())
        # Escape: any handle in a value position of an argument.
        escaping: Set[str] = set()
        for arg in call.args:
            escaping |= _value_names(arg)
        for kw in call.keywords:
            escaping |= _value_names(kw.value)
        return self._escape_names(escaping, state)

    # -- refinement -----------------------------------------------------

    def refine(self, test: ast.expr, branch: bool, state: _RState) -> _RState:
        name, is_none_when = self._none_test(test)
        if name is None:
            return state
        # On the branch where the name is known to be None, the binding
        # holds no resource: nothing is owed along this path.
        if branch is is_none_when:
            refs = state.env_dict().get(name)
            if refs:
                sites = state.sites_dict()
                for site in refs:
                    if sites.get(site):
                        sites[site] = False
                return _RState.make(sites, state.env_dict())
        return state

    @staticmethod
    def _none_test(test: ast.expr) -> Tuple[Optional[str], bool]:
        """Recognise ``x is None`` / ``x is not None`` / ``x`` /
        ``not x``; returns (name, polarity at which x is None)."""
        if isinstance(test, ast.Compare) and len(test.ops) == 1:
            left, op, right = test.left, test.ops[0], test.comparators[0]
            if isinstance(right, ast.Constant) and right.value is None:
                if isinstance(left, ast.Name) and isinstance(op, ast.Is):
                    return left.id, True
                if isinstance(left, ast.Name) and isinstance(op, ast.IsNot):
                    return left.id, False
        if isinstance(test, ast.Name):
            return test.id, False
        if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
            if isinstance(test.operand, ast.Name):
                return test.operand.id, True
        return None, False


class _ResourceAnalysis:
    def __init__(self, analyzer: DeepAnalyzer, graph: CallGraph) -> None:
        self.analyzer = analyzer
        self.graph = graph

    def run(self, violations: List[Violation]) -> None:
        lattice = _ResourceLattice()
        for module, info in self.analyzer.iter_functions(self.graph):
            cfg = self.analyzer.cfg_of(info.node)
            result = run_forward(cfg, lattice)
            exit_state = result.exit_state()
            if exit_state is None:
                continue
            for site, owed in exit_state.sites:
                if not owed:
                    continue
                line, col, kind = site
                releases = sorted(R.RESOURCE_PROTOCOLS[kind])
                how = (
                    f"call {'/'.join(releases)}()"
                    if releases
                    else "hand it to its committer"
                )
                violations.append(
                    Violation(
                        rule_id="REP008",
                        path=module.path,
                        line=line,
                        col=col,
                        message=(
                            f"{kind} created here can leak: {how} or "
                            "transfer ownership on every "
                            f"non-exceptional path of {info.name}()"
                        ),
                    )
                )


# ---------------------------------------------------------------------------
# REP009 — lock discipline
# ---------------------------------------------------------------------------


@dataclass
class _Guards:
    #: (module, class) -> {attr: lock_attr}
    attrs: Dict[Tuple[str, str], Dict[str, str]] = field(default_factory=dict)
    #: module -> {global_name: lock_name}
    globals: Dict[str, Dict[str, str]] = field(default_factory=dict)

    def empty(self) -> bool:
        return not self.attrs and not self.globals


def _collect_guards(modules: Sequence[_Module]) -> _Guards:
    guards = _Guards()
    for module in modules:
        lines = parse_guard_comments(module.source)
        if not lines:
            continue

        def visit(
            node: ast.AST, cls: Optional[str], depth: int, module: _Module = module,
            lines: Dict[int, str] = lines,
        ) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.ClassDef):
                    visit(child, child.name, depth + 1)
                elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    visit(child, cls, depth + 1)
                elif isinstance(child, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                    lock = lines.get(child.lineno)
                    if lock is None:
                        continue
                    targets = (
                        child.targets
                        if isinstance(child, ast.Assign)
                        else [child.target]
                    )
                    for target in targets:
                        if (
                            isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                            and cls is not None
                        ):
                            guards.attrs.setdefault(
                                (module.name, cls), {}
                            )[target.attr] = lock
                        elif isinstance(target, ast.Name) and depth == 0:
                            guards.globals.setdefault(module.name, {})[
                                target.id
                            ] = lock
                else:
                    visit(child, cls, depth)

        visit(module.tree, None, 0)
    return guards


class _LockLattice(Lattice[Optional[FrozenSet[LockToken]]]):
    """Must-hold lockset; ``None`` is unreachable-from-entry bottom is
    not needed — the engine only propagates along reached edges — so
    states are plain frozensets and join is intersection."""

    def __init__(self, analysis: "_LockAnalysis", info: FunctionInfo) -> None:
        self.analysis = analysis
        self.info = info
        self.entry: FrozenSet[LockToken] = frozenset()

    def entry_state(self) -> Optional[FrozenSet[LockToken]]:
        return self.entry

    def join(
        self,
        a: Optional[FrozenSet[LockToken]],
        b: Optional[FrozenSet[LockToken]],
    ) -> Optional[FrozenSet[LockToken]]:
        assert a is not None and b is not None
        return a & b

    def transfer(
        self, step: Step, state: Optional[FrozenSet[LockToken]]
    ) -> Optional[FrozenSet[LockToken]]:
        assert state is not None
        token_of = self.analysis.lock_token
        if isinstance(step, WithEnter):
            token = token_of(step.item.context_expr, self.info)
            if token is not None:
                return state | {token}
            return state
        if isinstance(step, WithExit):
            token = token_of(step.item.context_expr, self.info)
            if token is not None:
                return state - {token}
            return state
        if isinstance(step, TestExpr):
            return state
        for node in _walk_shallow(step):
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                if node.func.attr == "acquire":
                    token = token_of(node.func.value, self.info)
                    if token is not None:
                        state = state | {token}
                elif node.func.attr == "release":
                    token = token_of(node.func.value, self.info)
                    if token is not None:
                        state = state - {token}
        return state


class _LockAnalysis:
    def __init__(
        self,
        analyzer: DeepAnalyzer,
        graph: CallGraph,
        modules: Sequence[_Module],
    ) -> None:
        self.analyzer = analyzer
        self.graph = graph
        self.modules = modules
        self.guards = _collect_guards(modules)
        self._locals: Dict[str, Set[str]] = {}
        self._flows: Dict[str, FlowResult[Optional[FrozenSet[LockToken]]]] = {}
        self.entry: Dict[str, FrozenSet[LockToken]] = {}
        self.acquires: Dict[str, FrozenSet[LockToken]] = {}

    # -- token resolution -----------------------------------------------

    def lock_token(
        self, expr: ast.expr, info: FunctionInfo
    ) -> Optional[LockToken]:
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
            and info.cls is not None
        ):
            return ("self", info.module, info.cls, expr.attr)
        if isinstance(expr, ast.Name):
            if expr.id in self._fn_locals(info):
                return None
            if expr.id in self.graph.module_globals(info.module):
                return ("mod", info.module, expr.id)
        return None

    def _fn_locals(self, info: FunctionInfo) -> Set[str]:
        cached = self._locals.get(info.qualname)
        if cached is None:
            cached = _local_bindings(info.node)
            self._locals[info.qualname] = cached
        return cached

    @staticmethod
    def _token_label(token: LockToken) -> str:
        if token[0] == "self":
            return f"self.{token[3]}"
        return token[2]

    # -- interprocedural entry locksets ---------------------------------

    def _direct_acquires(self, info: FunctionInfo) -> FrozenSet[LockToken]:
        tokens: Set[LockToken] = set()
        for node in ast.walk(info.node):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    token = self.lock_token(item.context_expr, info)
                    if token is not None:
                        tokens.add(token)
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "acquire"
            ):
                token = self.lock_token(node.func.value, info)
                if token is not None:
                    tokens.add(token)
        return frozenset(tokens)

    @staticmethod
    def _translate(
        tokens: FrozenSet[LockToken], site: CallSite
    ) -> FrozenSet[LockToken]:
        """Map caller-frame tokens into the callee's frame (and back —
        the mapping is symmetric): module tokens always cross; ``self``
        tokens cross only a same-class method call."""
        out: Set[LockToken] = set()
        for token in tokens:
            if token[0] == "mod":
                out.add(token)
            elif (
                token[0] == "self"
                and site.is_method_call
                and site.callee.cls == site.caller.cls
                and site.callee.module == site.caller.module
            ):
                out.add(token)
        return frozenset(out)

    def _flow(
        self, info: FunctionInfo
    ) -> FlowResult[Optional[FrozenSet[LockToken]]]:
        cached = self._flows.get(info.qualname)
        if cached is None:
            lattice = _LockLattice(self, info)
            lattice.entry = self.entry.get(info.qualname, frozenset())
            cached = run_forward(self.analyzer.cfg_of(info.node), lattice)
            self._flows[info.qualname] = cached
        return cached

    def _lockset_at_call(self, site: CallSite) -> FrozenSet[LockToken]:
        result = self._flow(site.caller)
        for bid in result.cfg.blocks:
            for step, state in result.step_states(bid):
                if isinstance(step, (WithEnter, WithExit)):
                    continue
                target = step.expr if isinstance(step, TestExpr) else step
                for node in ast.walk(target):
                    if node is site.call:
                        assert state is not None
                        return state
        return frozenset()

    def _compute_entries(self) -> None:
        universe: Set[LockToken] = set()
        infos = list(self.graph.iter_functions())
        for info in infos:
            tokens = self._direct_acquires(info)
            self.acquires[info.qualname] = tokens
            universe |= tokens
        # Transitive acquires (for lock-order edges through calls).
        changed = True
        while changed:
            changed = False
            for info in infos:
                for site in self.graph.calls_from(info.qualname):
                    inherited = self._translate(
                        self.acquires.get(site.callee.qualname, frozenset()),
                        site,
                    )
                    merged = self.acquires[info.qualname] | inherited
                    if merged != self.acquires[info.qualname]:
                        self.acquires[info.qualname] = merged
                        changed = True
        # Entry locksets: optimistic top for eligible private helpers,
        # then shrink by call-site intersection to a fixed point.
        top = frozenset(universe)
        for info in infos:
            eligible = (
                info.is_private
                and info.name != "__init__"
                and info.qualname not in self.graph.escaped
                and bool(self.graph.calls_to(info.qualname))
            )
            self.entry[info.qualname] = top if eligible else frozenset()
        changed = True
        while changed:
            changed = False
            for info in infos:
                if not self.entry[info.qualname]:
                    continue
                if not self.graph.calls_to(info.qualname):
                    continue
                meet: Optional[FrozenSet[LockToken]] = None
                for site in self.graph.calls_to(info.qualname):
                    held = self._translate(self._lockset_at_call(site), site)
                    meet = held if meet is None else (meet & held)
                assert meet is not None
                if meet != self.entry[info.qualname]:
                    self.entry[info.qualname] = meet
                    self._flows.pop(info.qualname, None)
                    # Callers' flows depend only on *their* entries, but
                    # this callee's flow (and its callees' entries) must
                    # be recomputed against the smaller set.
                    changed = True

    # -- the reporting pass ---------------------------------------------

    def run(self, violations: List[Violation]) -> None:
        if self.guards.empty():
            has_locks = any(
                self._direct_acquires(info)
                for info in self.graph.iter_functions()
            )
            if not has_locks:
                return
        self._compute_entries()
        order_edges: Dict[
            Tuple[LockToken, LockToken], Tuple[str, int, int]
        ] = {}
        for module, info in self.analyzer.iter_functions(self.graph):
            if info.name == "__init__":
                continue
            self._report_function(module, info, order_edges, violations)
        self._report_cycles(order_edges, violations)

    def _report_function(
        self,
        module: _Module,
        info: FunctionInfo,
        order_edges: Dict[Tuple[LockToken, LockToken], Tuple[str, int, int]],
        violations: List[Violation],
    ) -> None:
        result = self._flow(info)
        attr_guards = self.guards.attrs.get((info.module, info.cls or ""), {})
        global_guards = self.guards.globals.get(info.module, {})
        fn_locals = self._fn_locals(info)
        seen: Set[Tuple[int, str]] = set()
        calls_reported: Set[int] = set()
        for bid in result.cfg.blocks:
            for step, state in result.step_states(bid):
                assert state is not None
                self._check_step(
                    module,
                    info,
                    step,
                    state,
                    attr_guards,
                    global_guards,
                    fn_locals,
                    seen,
                    calls_reported,
                    order_edges,
                    violations,
                )

    def _check_step(
        self,
        module: _Module,
        info: FunctionInfo,
        step: Step,
        state: FrozenSet[LockToken],
        attr_guards: Dict[str, str],
        global_guards: Dict[str, str],
        fn_locals: Set[str],
        seen: Set[Tuple[int, str]],
        calls_reported: Set[int],
        order_edges: Dict[Tuple[LockToken, LockToken], Tuple[str, int, int]],
        violations: List[Violation],
    ) -> None:
        def record_acquire(token: LockToken, node: ast.AST) -> None:
            line = getattr(node, "lineno", 0)
            col = getattr(node, "col_offset", 0)
            if token in state:
                key = (line, f"reacquire:{token}")
                if key not in seen:
                    seen.add(key)
                    violations.append(
                        Violation(
                            rule_id="REP009",
                            path=module.path,
                            line=line,
                            col=col,
                            message=(
                                f"lock {self._token_label(token)} is already "
                                f"held here; re-acquiring it deadlocks a "
                                "non-reentrant lock"
                            ),
                        )
                    )
            for held in sorted(state):
                if held != token:
                    order_edges.setdefault((held, token), (module.path, line, col))

        if isinstance(step, WithEnter):
            token = self.lock_token(step.item.context_expr, info)
            if token is not None:
                record_acquire(token, step.item.context_expr)
            return
        if isinstance(step, WithExit):
            return
        scan = step.expr if isinstance(step, TestExpr) else step
        for node in _walk_shallow(scan):
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                if node.func.attr == "acquire":
                    token = self.lock_token(node.func.value, info)
                    if token is not None:
                        record_acquire(token, node)
                        state = state | {token}
                        continue
                if node.func.attr == "release":
                    token = self.lock_token(node.func.value, info)
                    if token is not None:
                        state = state - {token}
                        continue
            if isinstance(node, ast.Call) and id(node) not in calls_reported:
                # Transitive acquisitions through a resolved call: each
                # held lock orders before whatever the callee takes.
                callee = self._resolve_step_call(node, info)
                if callee is not None:
                    calls_reported.add(id(node))
                    for acquired in self.acquires.get(
                        callee.callee.qualname, frozenset()
                    ):
                        back = self._translate(frozenset((acquired,)), callee)
                        for token in sorted(back):
                            line = getattr(node, "lineno", 0)
                            for held in sorted(state):
                                if held != token:
                                    order_edges.setdefault(
                                        (held, token),
                                        (module.path, line, node.col_offset),
                                    )
            if (
                isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"
                and node.attr in attr_guards
            ):
                lock = attr_guards[node.attr]
                required: LockToken = ("self", info.module, info.cls or "", lock)
                if required not in state:
                    self._unguarded(
                        module, node, node.attr, f"self.{lock}", state, seen,
                        violations,
                    )
            elif (
                isinstance(node, ast.Name)
                and node.id in global_guards
                and node.id not in fn_locals
            ):
                lock = global_guards[node.id]
                required = ("mod", info.module, lock)
                if required not in state:
                    self._unguarded(
                        module, node, node.id, lock, state, seen, violations
                    )

    def _resolve_step_call(
        self, call: ast.Call, info: FunctionInfo
    ) -> Optional[CallSite]:
        for site in self.graph.calls_from(info.qualname):
            if site.call is call:
                return site
        return None

    def _unguarded(
        self,
        module: _Module,
        node: ast.AST,
        name: str,
        lock: str,
        state: FrozenSet[LockToken],
        seen: Set[Tuple[int, str]],
        violations: List[Violation],
    ) -> None:
        line = getattr(node, "lineno", 0)
        key = (line, name)
        if key in seen:
            return
        seen.add(key)
        held = (
            ", ".join(sorted(self._token_label(t) for t in state)) or "none"
        )
        violations.append(
            Violation(
                rule_id="REP009",
                path=module.path,
                line=line,
                col=getattr(node, "col_offset", 0),
                message=(
                    f"{name!r} is guarded by {lock} but accessed without "
                    f"it (locks held: {held})"
                ),
            )
        )

    def _report_cycles(
        self,
        order_edges: Dict[Tuple[LockToken, LockToken], Tuple[str, int, int]],
        violations: List[Violation],
    ) -> None:
        if not order_edges:
            return
        adj: Dict[LockToken, Set[LockToken]] = {}
        for (a, b) in order_edges:
            adj.setdefault(a, set()).add(b)
            adj.setdefault(b, set())
        # Iterative Tarjan SCC.
        index: Dict[LockToken, int] = {}
        low: Dict[LockToken, int] = {}
        on_stack: Set[LockToken] = set()
        stack: List[LockToken] = []
        comp: Dict[LockToken, int] = {}
        counter = [0]
        comp_id = [0]

        def strongconnect(root: LockToken) -> None:
            work: List[Tuple[LockToken, Iterator[LockToken]]] = [
                (root, iter(adj[root]))
            ]
            index[root] = low[root] = counter[0]
            counter[0] += 1
            stack.append(root)
            on_stack.add(root)
            while work:
                node, it = work[-1]
                advanced = False
                for succ in it:
                    if succ not in index:
                        index[succ] = low[succ] = counter[0]
                        counter[0] += 1
                        stack.append(succ)
                        on_stack.add(succ)
                        work.append((succ, iter(adj[succ])))
                        advanced = True
                        break
                    if succ in on_stack:
                        low[node] = min(low[node], index[succ])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])
                if low[node] == index[node]:
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        comp[member] = comp_id[0]
                        if member == node:
                            break
                    comp_id[0] += 1

        for token in adj:
            if token not in index:
                strongconnect(token)
        comp_sizes: Dict[int, int] = {}
        for token, cid in comp.items():
            comp_sizes[cid] = comp_sizes.get(cid, 0) + 1
        for (a, b), (path, line, col) in sorted(
            order_edges.items(), key=lambda kv: (kv[1][0], kv[1][1])
        ):
            if comp[a] == comp[b] and comp_sizes[comp[a]] > 1:
                violations.append(
                    Violation(
                        rule_id="REP009",
                        path=path,
                        line=line,
                        col=col,
                        message=(
                            f"acquiring {self._token_label(b)} while holding "
                            f"{self._token_label(a)} participates in a "
                            "lock-order cycle (deadlock risk); pick one "
                            "global order"
                        ),
                    )
                )


# ---------------------------------------------------------------------------
# REP010 — fleet RPC protocol conformance
# ---------------------------------------------------------------------------

#: Call names that ship a message tuple over a pipe.
_SEND_NAMES = frozenset(("send", "_call"))


@dataclass
class _Handler:
    tag: str
    exact_arity: Optional[int]  # None = flexible (defensive indexing)
    line: int


def _find_dispatchers(tree: ast.Module) -> List[FunctionNode]:
    """Functions that loop on ``msg = conn.recv()`` and switch on the
    message's first element."""
    out: List[FunctionNode] = []
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        recv_vars = _recv_vars(node)
        if recv_vars and _switches_on_tag(node, recv_vars):
            out.append(node)
    return out


def _recv_vars(fn: FunctionNode) -> Set[str]:
    out: Set[str] = set()
    for node in ast.walk(fn):
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and isinstance(node.value, ast.Call)
            and _terminal_name(node.value.func) == "recv"
        ):
            out.add(node.targets[0].id)
    return out


def _tag_vars(fn: FunctionNode, recv_vars: Set[str]) -> Set[str]:
    """Locals assigned ``msg[0]``."""
    out: Set[str] = set()
    for node in ast.walk(fn):
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and _is_tag_subscript(node.value, recv_vars)
        ):
            out.add(node.targets[0].id)
    return out


def _is_tag_subscript(expr: ast.expr, recv_vars: Set[str]) -> bool:
    if not isinstance(expr, ast.Subscript):
        return False
    if not (isinstance(expr.value, ast.Name) and expr.value.id in recv_vars):
        return False
    index = expr.slice
    if isinstance(index, ast.Constant):
        return index.value == 0
    return False


def _switches_on_tag(fn: FunctionNode, recv_vars: Set[str]) -> bool:
    tag_vars = _tag_vars(fn, recv_vars)
    for node in ast.walk(fn):
        if isinstance(node, ast.Compare) and len(node.ops) == 1:
            if _tag_compare(node, recv_vars, tag_vars) is not None:
                return True
    return False


def _tag_compare(
    node: ast.Compare, recv_vars: Set[str], tag_vars: Set[str]
) -> Optional[List[str]]:
    """Tags tested by ``op == "tag"`` / ``msg[0] == "tag"`` /
    ``op in ("a", "b")``."""
    left = node.left
    named = (
        isinstance(left, ast.Name) and left.id in tag_vars
    ) or _is_tag_subscript(left, recv_vars)
    if not named:
        return None
    op = node.ops[0]
    comp = node.comparators[0]
    if isinstance(op, ast.Eq):
        if isinstance(comp, ast.Constant) and isinstance(comp.value, str):
            return [comp.value]
    if isinstance(op, ast.In) and isinstance(comp, (ast.Tuple, ast.Set, ast.List)):
        tags = [
            e.value
            for e in comp.elts
            if isinstance(e, ast.Constant) and isinstance(e.value, str)
        ]
        if tags:
            return tags
    return None


def _collect_handlers(fn: FunctionNode) -> Dict[str, _Handler]:
    recv_vars = _recv_vars(fn)
    tag_vars = _tag_vars(fn, recv_vars)
    handlers: Dict[str, _Handler] = {}
    for node in ast.walk(fn):
        if not isinstance(node, ast.If):
            continue
        if not isinstance(node.test, ast.Compare):
            continue
        tags = _tag_compare(node.test, recv_vars, tag_vars)
        if not tags:
            continue
        arity = _branch_arity(node.body, recv_vars)
        for tag in tags:
            handlers.setdefault(
                tag, _Handler(tag, arity, node.lineno)
            )
    return handlers


def _branch_arity(
    body: Sequence[ast.stmt], recv_vars: Set[str]
) -> Optional[int]:
    """Exact arity if the branch unpacks the whole message tuple
    (``_, row, pid, ctx = msg``); None (flexible) otherwise."""
    for stmt in body:
        for node in _walk_shallow(stmt):
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Tuple)
                and isinstance(node.value, ast.Name)
                and node.value.id in recv_vars
                and all(
                    isinstance(e, ast.Name) for e in node.targets[0].elts
                )
            ):
                return len(node.targets[0].elts)
    return None


def _check_rpc_conformance(
    module: _Module, violations: List[Violation]
) -> None:
    dispatchers = _find_dispatchers(module.tree)
    if not dispatchers:
        return
    handlers: Dict[str, _Handler] = {}
    for fn in dispatchers:
        handlers.update(_collect_handlers(fn))
    dispatcher_spans = [
        (fn.lineno, max(n.lineno for n in ast.walk(fn) if hasattr(n, "lineno")))
        for fn in dispatchers
    ]
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        if _terminal_name(node.func) not in _SEND_NAMES:
            continue
        line = node.lineno
        # Replies sent from inside a dispatcher are not routed messages.
        if any(lo <= line <= hi for lo, hi in dispatcher_spans):
            continue
        for arg in node.args:
            if not (
                isinstance(arg, ast.Tuple)
                and arg.elts
                and isinstance(arg.elts[0], ast.Constant)
                and isinstance(arg.elts[0].value, str)
            ):
                continue
            tag = arg.elts[0].value
            arity = len(arg.elts)
            handler = handlers.get(tag)
            if handler is None:
                known = ", ".join(sorted(handlers))
                violations.append(
                    Violation(
                        rule_id="REP010",
                        path=module.path,
                        line=line,
                        col=node.col_offset,
                        message=(
                            f"message tag {tag!r} has no worker handler "
                            f"(dispatcher handles: {known})"
                        ),
                    )
                )
            elif handler.exact_arity is not None and arity != handler.exact_arity:
                violations.append(
                    Violation(
                        rule_id="REP010",
                        path=module.path,
                        line=line,
                        col=node.col_offset,
                        message=(
                            f"message {tag!r} sent with {arity} element(s) "
                            f"but the handler unpacks exactly "
                            f"{handler.exact_arity}"
                        ),
                    )
                )


# ---------------------------------------------------------------------------
# REP011 — interprocedural purity
# ---------------------------------------------------------------------------


@dataclass
class _PuritySummary:
    writes_global: bool = False
    mutated_params: Set[int] = field(default_factory=set)


class _PurityAnalysis:
    def __init__(self, graph: CallGraph, modules: Sequence[_Module]) -> None:
        self.graph = graph
        self.modules = modules
        self.summaries: Dict[str, _PuritySummary] = {}

    # -- direct summaries -----------------------------------------------

    def _direct_summary(self, info: FunctionInfo) -> _PuritySummary:
        summary = _PuritySummary()
        params = info.arg_names
        param_index = {name: i for i, name in enumerate(params)}
        module_globals = self.graph.module_globals(info.module)
        fn_locals = _local_bindings(info.node)

        def classify(root: Optional[str]) -> None:
            if root is None:
                return
            if root in param_index:
                summary.mutated_params.add(param_index[root])
            elif root in module_globals and root not in fn_locals:
                summary.writes_global = True

        for node in ast.walk(info.node):
            if isinstance(node, (ast.Global, ast.Nonlocal)):
                summary.writes_global = True
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    if isinstance(target, (ast.Subscript, ast.Attribute)):
                        classify(_root_name(target))
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    if isinstance(target, (ast.Subscript, ast.Attribute)):
                        classify(_root_name(target))
            elif isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                if node.func.attr in R.MUTATOR_METHODS:
                    classify(_root_name(node.func.value))
        return summary

    # -- fixed point ----------------------------------------------------

    def _propagate(self) -> None:
        for info in self.graph.iter_functions():
            self.summaries[info.qualname] = self._direct_summary(info)
        changed = True
        while changed:
            changed = False
            for info in self.graph.iter_functions():
                caller = self.summaries[info.qualname]
                caller_params = {
                    name: i for i, name in enumerate(info.arg_names)
                }
                for site in self.graph.calls_from(info.qualname):
                    callee = self.summaries.get(site.callee.qualname)
                    if callee is None:
                        continue
                    if callee.writes_global and not caller.writes_global:
                        caller.writes_global = True
                        changed = True
                    for arg_expr, callee_idx in self._arg_map(site):
                        if callee_idx not in callee.mutated_params:
                            continue
                        root = _root_name(arg_expr)
                        if root in caller_params:
                            idx = caller_params[root]
                            if idx not in caller.mutated_params:
                                caller.mutated_params.add(idx)
                                changed = True

    @staticmethod
    def _arg_map(site: CallSite) -> List[Tuple[ast.expr, int]]:
        """(argument expression, callee parameter index) pairs."""
        offset = 1 if site.is_method_call else 0
        out: List[Tuple[ast.expr, int]] = []
        for i, arg in enumerate(site.call.args):
            if isinstance(arg, ast.Starred):
                continue
            out.append((arg, i + offset))
        names = site.callee.arg_names
        positions = {name: i for i, name in enumerate(names)}
        for kw in site.call.keywords:
            if kw.arg is not None and kw.arg in positions:
                out.append((kw.value, positions[kw.arg]))
        return out

    # -- findings -------------------------------------------------------

    def run(self, violations: List[Violation]) -> None:
        task_methods = self._task_methods()
        if not task_methods:
            return
        self._propagate()
        by_path = {m.path: m for m in self.modules}
        for info, is_pure_data_method in task_methods:
            module = by_path.get(info.path)
            if module is None:
                continue
            data_params = self._data_params(info) if is_pure_data_method else {}
            seen: Set[Tuple[int, str]] = set()
            for site in self.graph.calls_from(info.qualname):
                callee = self.summaries.get(site.callee.qualname)
                if callee is None:
                    continue
                line = site.call.lineno
                if callee.writes_global:
                    key = (line, f"global:{site.callee.qualname}")
                    if key not in seen:
                        seen.add(key)
                        violations.append(
                            Violation(
                                rule_id="REP011",
                                path=module.path,
                                line=line,
                                col=site.call.col_offset,
                                message=(
                                    f"{info.cls}.{info.name} calls "
                                    f"{site.callee.name}(), which writes "
                                    "module-global state (directly or "
                                    "transitively); tasks must stay pure"
                                ),
                            )
                        )
                for arg_expr, callee_idx in self._arg_map(site):
                    if callee_idx not in callee.mutated_params:
                        continue
                    root = _root_name(arg_expr)
                    if root in data_params:
                        key = (line, f"mut:{root}:{site.callee.qualname}")
                        if key not in seen:
                            seen.add(key)
                            violations.append(
                                Violation(
                                    rule_id="REP011",
                                    path=module.path,
                                    line=line,
                                    col=site.call.col_offset,
                                    message=(
                                        f"{info.cls}.{info.name} passes its "
                                        f"input {root!r} to "
                                        f"{site.callee.name}(), which "
                                        "mutates that parameter; task "
                                        "inputs are engine-owned"
                                    ),
                                )
                            )

    def _task_methods(self) -> List[Tuple[FunctionInfo, bool]]:
        """Methods of task classes; the flag marks PURE_TASK_METHODS
        (whose data parameters must additionally never be mutated)."""
        out: List[Tuple[FunctionInfo, bool]] = []
        for info in self.graph.iter_functions():
            if info.cls is None:
                continue
            bases = self.graph.class_bases.get((info.module, info.cls), ())
            if not any(
                b.endswith(("Mapper", "Reducer", "Combiner")) for b in bases
            ):
                continue
            out.append((info, info.name in R.PURE_TASK_METHODS))
        return out

    @staticmethod
    def _data_params(info: FunctionInfo) -> Dict[str, int]:
        names = info.arg_names
        return {
            name: i
            for i, name in enumerate(names)
            if i >= 1 and name not in ("ctx", "context")
        }
