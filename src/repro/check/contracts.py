"""Dynamic contract checking: the runtime assumptions, enforced.

The engines assume — and the cross-engine equivalence suite only
samples — four contracts that Afrati et al. formalise for MapReduce
computations:

1. **Input immutability.**  Mappers must not mutate their input splits,
   reducers must not mutate the shuffled values they receive, and no
   task may mutate the broadcast distributed-cache payloads: all three
   are shared (across retries, across tasks on the thread engine) and
   conceptually replicated (on the process engine and real Hadoop), so
   in-place writes diverge silently between engines.
2. **Reducer order-insensitivity.**  A reducer's output may depend only
   on the *multiset* of values per key, never on their arrival order —
   Hadoop guarantees key grouping, not value order.
3. **Usable keys.**  Emitted keys must be hashable (they index shuffle
   buckets) and mutually sortable when the job sorts keys.
4. **Deterministic partitioning.**  The partitioner must be a pure
   function of ``(key, num_reducers)``.

:class:`ContractCheckingEngine` enforces all four at run time while
executing jobs with normal serial semantics.  It fingerprints inputs
before and after every task (any in-place mutation changes the digest),
re-runs every reduce task with each key's value list deterministically
seed-shuffled and compares canonical outputs, and probes every
map-emitted key (reduce output is final — it never meets this job's
partitioner).  Any breach raises :class:`~repro.errors.ContractViolation`
(non-retryable, so it surfaces immediately instead of burning
attempts).

The engine is a drop-in ``engine=`` argument anywhere a
:class:`~repro.mapreduce.engine.SerialEngine` is accepted — tests opt
in per job or per pipeline, and ``repro-skyline compute
--engine contract`` runs a whole algorithm under it.  Checking is
strictly additive: a contract-clean job produces byte-identical
results, stats, and counters to ``SerialEngine``.
"""

from __future__ import annotations

import hashlib
import random
from typing import Any, Dict, List, Tuple

from repro.check.fingerprint import fingerprint
from repro.errors import ContractViolation
from repro.mapreduce.engine import SerialEngine, execute_reduce_attempt
from repro.mapreduce.job import JobResult, MapReduceJob
from repro.mapreduce.metrics import TaskStats
from repro.mapreduce.types import KeyValue, TaskId


def _derive_seed(*parts: Any) -> int:
    """Stable shuffle seed from structured parts (engine/run invariant)."""
    digest = hashlib.blake2b(
        "\x1f".join(repr(p) for p in parts).encode(), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big")


def _shuffled_bucket(bucket: List[KeyValue], seed: int) -> List[KeyValue]:
    """The same multiset of pairs with value order shuffled per key.

    Key first-appearance order is preserved (grouping is insensitive to
    it anyway); within each key the value list is permuted by a seeded
    RNG, which is exactly the degree of freedom Hadoop refuses to pin
    down.
    """
    grouped: Dict[Any, List[Any]] = {}
    order: List[Any] = []
    for key, value in bucket:
        if key not in grouped:
            grouped[key] = []
            order.append(key)
        grouped[key].append(value)
    rng = random.Random(seed)
    out: List[KeyValue] = []
    for key in order:
        values = grouped[key]
        if len(values) > 1:
            rng.shuffle(values)
        out.extend((key, value) for value in values)
    return out


def _split_payload(split: Any) -> Any:
    """What a mapper is handed: the block for block splits, else records."""
    points = getattr(split, "points", None)
    if points is not None:
        return points
    return tuple(split)


class ContractCheckingEngine(SerialEngine):
    """A :class:`SerialEngine` that proves the purity contracts hold.

    ``shuffle_seed`` varies which value permutation the
    order-insensitivity re-run sees; any single seed catches a
    first-value/last-value dependent reducer, and sweeping a few seeds
    strengthens the certificate.  All other constructor arguments are
    inherited (retry/faults/speculation/bus/block_path).
    """

    def __init__(self, shuffle_seed: int = 0, **kwargs: Any) -> None:
        super().__init__(**kwargs)
        self.shuffle_seed = int(shuffle_seed)

    def __repr__(self) -> str:
        base = super().__repr__()
        return f"{base[:-1]}, shuffle_seed={self.shuffle_seed})"

    # -- hooks ----------------------------------------------------------

    def run(self, job: MapReduceJob) -> JobResult:
        cache_before = {key: fingerprint(job.cache[key]) for key in job.cache}
        result = super().run(job)
        for key in job.cache:
            after = fingerprint(job.cache[key])
            if after != cache_before[key]:
                raise ContractViolation(
                    f"job {job.name!r}: a task mutated distributed-cache "
                    f"entry {key!r} in place; broadcast payloads are "
                    "read-only and shared by every task"
                )
        return result

    def _map_task(
        self, job: MapReduceJob, split: Any
    ) -> Tuple[TaskStats, List[KeyValue]]:
        payload = _split_payload(split)
        before = fingerprint(payload)
        stats, output = super()._map_task(job, split)
        if fingerprint(payload) != before:
            raise ContractViolation(
                f"job {job.name!r}: mapper for split {split.split_id} "
                "mutated its input split in place; splits are re-read "
                "on retry and shared with other engines"
            )
        self._validate_emissions(job, output, f"map split {split.split_id}")
        return stats, output

    def _reduce_task(
        self, job: MapReduceJob, r: int, bucket: List[KeyValue]
    ) -> Tuple[TaskStats, List[KeyValue]]:
        before = fingerprint(tuple(bucket))
        stats, output = super()._reduce_task(job, r, bucket)
        if fingerprint(tuple(bucket)) != before:
            raise ContractViolation(
                f"job {job.name!r}: reducer {r} mutated its input "
                "values in place; shuffled values are owned by the "
                "engine and re-used on retry"
            )
        self._check_order_insensitivity(job, r, bucket, output)
        # Reduce output is final (or re-partitioned by the *next* job's
        # partitioner in a chain): the emission probes apply only to
        # map-side output, which this engine's shuffle consumes.
        return stats, output

    # -- the contracts --------------------------------------------------

    def _check_order_insensitivity(
        self,
        job: MapReduceJob,
        r: int,
        bucket: List[KeyValue],
        output: List[KeyValue],
    ) -> None:
        """Re-run the reduce with seed-shuffled value lists; canonical
        outputs must agree (Hadoop never promises value order)."""
        seed = _derive_seed(self.shuffle_seed, job.name, r)
        shuffled = _shuffled_bucket(bucket, seed)
        # Identity comparison, not ==: values may be arrays/PointSets
        # whose __eq__ is elementwise, and the shuffle only rearranges
        # the original objects.
        if all(
            s[0] is b[0] and s[1] is b[1] for s, b in zip(shuffled, bucket)
        ):
            return  # permutation was a no-op: nothing to vary
        task_id = TaskId("reduce", r)
        shadow_ctx, _ = execute_reduce_attempt(job, shuffled, task_id)
        got = _canonical_output(shadow_ctx.output)
        want = _canonical_output(output)
        if got != want:
            raise ContractViolation(
                f"job {job.name!r}: reducer {r} is order-sensitive — "
                "re-running it with value lists shuffled "
                f"(seed {seed}) changed its output; reducers may "
                "depend only on the multiset of values per key"
            )

    def _validate_emissions(
        self, job: MapReduceJob, output: List[KeyValue], where: str
    ) -> None:
        seen_types: Dict[type, Any] = {}
        for key, _ in output:
            try:
                hash(key)
            except TypeError:
                raise ContractViolation(
                    f"job {job.name!r}: {where} emitted unhashable key "
                    f"of type {type(key).__name__}; keys index shuffle "
                    "buckets and must be hashable"
                ) from None
            first = job.partitioner(key, job.num_reducers)
            second = job.partitioner(key, job.num_reducers)
            if first != second:
                raise ContractViolation(
                    f"job {job.name!r}: partitioner is nondeterministic "
                    f"for key {key!r} ({first} != {second}); partition "
                    "choice must be a pure function of the key"
                )
            seen_types.setdefault(type(key), key)
        if job.sort_keys and len(seen_types) > 1:
            samples = list(seen_types.values())
            try:
                sorted(samples)
            except TypeError:
                names = sorted(t.__name__ for t in seen_types)
                raise ContractViolation(
                    f"job {job.name!r}: {where} emitted keys of "
                    f"mutually unsortable types {names}; sorted-key "
                    "grouping would fall back to repr order, which is "
                    "not stable across processes"
                ) from None


def _canonical_output(output: List[KeyValue]) -> List[Tuple[str, str]]:
    """Engine-guaranteed view of task output: a sorted multiset of
    (key fingerprint, canonical value fingerprint) pairs."""
    return sorted(
        (fingerprint(key), fingerprint(value, canonical=True))
        for key, value in output
    )
