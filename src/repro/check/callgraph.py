"""Alias-aware call graph over the analysed source tree.

The deep rules need three cross-function facts the lint visitor never
asks for: *who calls whom* (REP011 propagates purity summaries along
these edges), *with which locks already held* (REP009 seeds a private
helper's entry lockset from its call sites), and *which functions
escape as values* (``Thread(target=self._run)`` means ``_run`` starts
with no locks held, whatever its callers hold).

Resolution is deliberately conservative and only binds what it can see
statically:

* a bare ``Name`` call binds to a module-level function of the current
  module, a ``from``-import, or a *local alias* (``f = helper`` in the
  same body — one of REP011's fixture cases);
* ``self.m(...)`` binds within the calling method's own class (plus
  bases are out of scope — the repro tree barely inherits);
* ``mod.f(...)`` binds through ``import``/``from``-import aliases to
  another analysed module.

Anything else (computed attributes, instances of other classes, stdlib
calls) resolves to ``None`` and the analyses fall back to their
worst-case or best-case default, whichever keeps them sound for the
property at hand.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import PurePath
from typing import Dict, Iterator, List, Optional, Set, Tuple, Union

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def module_name_for(path: str) -> str:
    """Dotted module name for ``path``, anchored at the last ``repro``
    path component; free-standing files (fixtures) use their stem."""
    parts = PurePath(path).parts
    if "repro" in parts:
        idx = len(parts) - 1 - tuple(reversed(parts)).index("repro")
        rel = parts[idx:]
        stem = PurePath(rel[-1]).stem
        dotted = list(rel[:-1]) + ([] if stem == "__init__" else [stem])
        return ".".join(dotted)
    return PurePath(path).stem


@dataclass
class FunctionInfo:
    """One analysed function or method."""

    qualname: str  #: ``module.Class.method`` or ``module.func``
    module: str
    name: str
    cls: Optional[str]
    node: FunctionNode
    path: str

    @property
    def arg_names(self) -> List[str]:
        args = self.node.args
        names = [a.arg for a in args.posonlyargs + args.args]
        if args.vararg:
            names.append(args.vararg.arg)
        names.extend(a.arg for a in args.kwonlyargs)
        if args.kwarg:
            names.append(args.kwarg.arg)
        return names

    @property
    def is_private(self) -> bool:
        return self.name.startswith("_") and not self.name.startswith("__")


@dataclass
class _ModuleIndex:
    name: str
    tree: ast.Module
    path: str
    #: local symbol -> dotted module ("import x.y as z")
    import_aliases: Dict[str, str] = field(default_factory=dict)
    #: local symbol -> fully dotted target ("from m import f")
    from_imports: Dict[str, str] = field(default_factory=dict)
    #: "func" / "Class.method" -> info
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: module-level names bound to non-function values
    globals: Set[str] = field(default_factory=set)


@dataclass(frozen=True)
class CallSite:
    """A resolved call edge."""

    caller: FunctionInfo
    callee: FunctionInfo
    call: ast.Call
    #: True for ``self.m(...)`` — the receiver fills the first param.
    is_method_call: bool


def _resolve_relative(module: str, level: int, target: Optional[str]) -> str:
    parts = module.split(".")
    # level 1 = current package; the module name's last element is the
    # file itself, so strip it plus (level - 1) packages.
    keep = max(len(parts) - level, 0)
    base = parts[:keep]
    if target:
        base.extend(target.split("."))
    return ".".join(base)


class CallGraph:
    """Functions, resolved call edges, and value-escape facts for a set
    of parsed modules."""

    def __init__(self) -> None:
        self._modules: Dict[str, _ModuleIndex] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        #: (module, class) -> terminal names of the class's bases
        self.class_bases: Dict[Tuple[str, str], Tuple[str, ...]] = {}
        #: qualnames referenced as values (not called) anywhere
        self.escaped: Set[str] = set()
        self._calls: Dict[str, List[CallSite]] = {}
        self._callers: Dict[str, List[CallSite]] = {}

    # -- construction ---------------------------------------------------

    def add_module(self, path: str, tree: ast.Module) -> None:
        name = module_name_for(path)
        index = _ModuleIndex(name=name, tree=tree, path=path)
        self._modules[name] = index
        for stmt in tree.body:
            self._index_top(index, stmt)

    def _index_top(self, index: _ModuleIndex, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Import):
            for alias in stmt.names:
                local = alias.asname or alias.name.split(".")[0]
                index.import_aliases[local] = (
                    alias.name if alias.asname else alias.name.split(".")[0]
                )
        elif isinstance(stmt, ast.ImportFrom):
            base = (
                _resolve_relative(index.name, stmt.level, stmt.module)
                if stmt.level
                else (stmt.module or "")
            )
            for alias in stmt.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                index.from_imports[local] = f"{base}.{alias.name}" if base else alias.name
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self._add_function(index, stmt, cls=None)
        elif isinstance(stmt, ast.ClassDef):
            bases = []
            for base in stmt.bases:
                terminal = base.attr if isinstance(base, ast.Attribute) else (
                    base.id if isinstance(base, ast.Name) else None
                )
                if terminal is not None:
                    bases.append(terminal)
            self.class_bases[(index.name, stmt.name)] = tuple(bases)
            for member in stmt.body:
                if isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    self._add_function(index, member, cls=stmt.name)
        elif isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            targets = (
                stmt.targets
                if isinstance(stmt, ast.Assign)
                else [stmt.target]
            )
            for target in targets:
                if isinstance(target, ast.Name):
                    index.globals.add(target.id)
                elif isinstance(target, ast.Tuple):
                    for elt in target.elts:
                        if isinstance(elt, ast.Name):
                            index.globals.add(elt.id)
        elif isinstance(stmt, (ast.If, ast.Try)):
            # TYPE_CHECKING guards and import fallbacks.
            for sub in ast.walk(stmt):
                if isinstance(sub, (ast.Import, ast.ImportFrom)):
                    self._index_top_import(index, sub)

    def _index_top_import(
        self, index: _ModuleIndex, stmt: Union[ast.Import, ast.ImportFrom]
    ) -> None:
        if isinstance(stmt, ast.Import):
            self._index_top(index, stmt)
        else:
            self._index_top(index, stmt)

    def _add_function(
        self, index: _ModuleIndex, node: FunctionNode, cls: Optional[str]
    ) -> None:
        local = f"{cls}.{node.name}" if cls else node.name
        info = FunctionInfo(
            qualname=f"{index.name}.{local}",
            module=index.name,
            name=node.name,
            cls=cls,
            node=node,
            path=index.path,
        )
        index.functions[local] = info
        self.functions[info.qualname] = info

    def finalize(self) -> None:
        """Resolve call edges and escapes once all modules are added."""
        for index in self._modules.values():
            for info in index.functions.values():
                self._scan_function(index, info)
            self._scan_module_level(index)

    # -- resolution -----------------------------------------------------

    def _lookup_module_symbol(
        self, module: str, symbol: str
    ) -> Optional[FunctionInfo]:
        index = self._modules.get(module)
        if index is None:
            return None
        if symbol in index.functions:
            return index.functions[symbol]
        # Re-exported through a from-import chain (one hop).
        target = index.from_imports.get(symbol)
        if target and "." in target:
            mod, _, name = target.rpartition(".")
            hop = self._modules.get(mod)
            if hop is not None and name in hop.functions:
                return hop.functions[name]
        return None

    def resolve(
        self,
        func: ast.expr,
        caller: FunctionInfo,
        local_aliases: Dict[str, str],
    ) -> Tuple[Optional[FunctionInfo], bool]:
        """Resolve a call target; returns ``(info, is_method_call)``."""
        index = self._modules[caller.module]
        if isinstance(func, ast.Name):
            name = local_aliases.get(func.id, func.id)
            if name in index.functions:
                return index.functions[name], False
            target = index.from_imports.get(name)
            if target and "." in target:
                mod, _, sym = target.rpartition(".")
                found = self._lookup_module_symbol(mod, sym)
                if found is not None:
                    return found, False
            return None, False
        if isinstance(func, ast.Attribute):
            base = func.value
            if isinstance(base, ast.Name):
                if base.id == "self" and caller.cls is not None:
                    local = f"{caller.cls}.{func.attr}"
                    if local in index.functions:
                        return index.functions[local], True
                    return None, False
                mod = index.import_aliases.get(base.id)
                if mod is None:
                    target = index.from_imports.get(base.id)
                    if target is not None and target in self._modules:
                        mod = target
                if mod is not None:
                    found = self._lookup_module_symbol(mod, func.attr)
                    if found is not None:
                        return found, False
        return None, False

    # -- scanning -------------------------------------------------------

    def _local_aliases(self, info: FunctionInfo) -> Dict[str, str]:
        """``f = helper`` bindings inside one body (last write wins is
        good enough — the tree never rebinds these)."""
        index = self._modules[info.module]
        aliases: Dict[str, str] = {}
        for node in ast.walk(info.node):
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and isinstance(node.value, ast.Name)
            ):
                source = node.value.id
                if (
                    source in index.functions
                    or source in index.from_imports
                ):
                    aliases[node.targets[0].id] = source
        return aliases

    def _scan_function(self, index: _ModuleIndex, info: FunctionInfo) -> None:
        aliases = self._local_aliases(info)
        call_funcs: Set[int] = set()
        for node in ast.walk(info.node):
            if isinstance(node, ast.Call):
                call_funcs.add(id(node.func))
                callee, is_method = self.resolve(node.func, info, aliases)
                if callee is not None:
                    site = CallSite(info, callee, node, is_method)
                    self._calls.setdefault(info.qualname, []).append(site)
                    self._callers.setdefault(callee.qualname, []).append(site)
        # Value escapes: a reference to a known function that is not the
        # callee position of some call.
        for node in ast.walk(info.node):
            if id(node) in call_funcs:
                continue
            if isinstance(node, (ast.Name, ast.Attribute)):
                target, _ = self.resolve(node, info, aliases)
                if target is not None:
                    self.escaped.add(target.qualname)

    def _scan_module_level(self, index: _ModuleIndex) -> None:
        """Module-level references (registries, decorators) escape."""
        call_funcs: Set[int] = set()
        for stmt in index.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                for deco in stmt.decorator_list:
                    for node in ast.walk(deco):
                        if isinstance(node, ast.Name) and node.id in index.functions:
                            self.escaped.add(index.functions[node.id].qualname)
                continue
            for node in ast.walk(stmt):
                if isinstance(node, ast.Call):
                    call_funcs.add(id(node.func))
            for node in ast.walk(stmt):
                if id(node) in call_funcs:
                    continue
                if isinstance(node, ast.Name) and node.id in index.functions:
                    self.escaped.add(index.functions[node.id].qualname)

    # -- queries --------------------------------------------------------

    def calls_from(self, qualname: str) -> List[CallSite]:
        return self._calls.get(qualname, [])

    def calls_to(self, qualname: str) -> List[CallSite]:
        return self._callers.get(qualname, [])

    def iter_functions(self) -> Iterator[FunctionInfo]:
        return iter(self.functions.values())

    def module_globals(self, module: str) -> Set[str]:
        index = self._modules.get(module)
        return index.globals if index is not None else set()

    def local_aliases(self, info: FunctionInfo) -> Dict[str, str]:
        return self._local_aliases(info)


def build_call_graph(modules: List[Tuple[str, ast.Module]]) -> CallGraph:
    """Build and finalize a call graph from ``(path, tree)`` pairs."""
    graph = CallGraph()
    for path, tree in modules:
        graph.add_module(path, tree)
    graph.finalize()
    return graph
