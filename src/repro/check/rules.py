"""The rule vocabulary of ``repro.check``.

Each rule names one invariant the runtime's determinism story depends
on (see ``docs/static_analysis.md`` for the full contract each rule
protects, and :mod:`repro.check.visitor` for how it is detected):

========  ==============================================================
REP000    file does not parse (reported so a broken file cannot slip
          through the gate unchecked)
REP001    wall-clock reads or unseeded randomness on deterministic
          paths (``time.time``, ``datetime.now``, module-level
          ``random.*`` / legacy ``numpy.random.*`` calls, unseeded RNG
          construction, UUIDs, ``os.urandom``)
REP002    iteration over an unordered ``set``/``frozenset`` value that
          can flow into output ordering
REP003    counter names outside the documented ``COUNTER_DOCS``
          vocabulary
REP004    impure mapper/reducer/combiner code (``global``/``nonlocal``
          writes, mutation of input keys/values/blocks)
REP005    event emissions bypassing the typed ``repro.obs.events``
          vocabulary
REP006    broad ``except Exception``/bare ``except`` that can swallow
          ``ValidationError``
REP007    a ``# repro: allow[...]`` pragma that suppresses nothing
          (unused suppressions rot into silent blind spots)
REP008    a resource (SharedArena, shared-memory segment, pipe end,
          trace context, fleet) that can leak on a non-exceptional
          path — deep mode only
REP009    a ``# repro: guarded-by[lock]`` attribute accessed without
          the lock statically held, or a lock-order cycle — deep mode
          only
REP010    a fleet RPC send whose tag or arity has no matching worker
          handler — deep mode only
REP011    a mapper/reducer/combiner reaching impure code through a
          helper call — deep mode only
========  ==============================================================

Suppression pragma syntax: ``# repro: allow[REP001]`` (or a
comma-separated list ``allow[REP002, REP006]``) on the flagged line or
the line directly above it.  The runner verifies every pragma actually
suppresses a violation; an unused pragma is itself a violation
(REP007).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Mapping


@dataclass(frozen=True)
class Rule:
    """One named invariant the checker enforces."""

    rule_id: str
    title: str
    description: str


@dataclass(frozen=True)
class Violation:
    """One rule firing at one source location."""

    rule_id: str
    path: str
    line: int
    col: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"


RULES: Dict[str, Rule] = {
    rule.rule_id: rule
    for rule in (
        Rule(
            "REP000",
            "unparseable file",
            "The file failed to parse; the checker cannot vouch for it.",
        ),
        Rule(
            "REP001",
            "wall-clock or unseeded randomness on a deterministic path",
            "time.time()/datetime.now()-style wall-clock reads, "
            "module-level random.*/legacy numpy.random.* calls (global "
            "RNG state), unseeded RNG construction, uuid4, or "
            "os.urandom. Wall-clock belongs only in the report's "
            "'wall' fields (time.perf_counter is the one sanctioned "
            "probe); randomness must be seeded.",
        ),
        Rule(
            "REP002",
            "iteration over an unordered set",
            "Iterating a set/frozenset (directly, via list()/tuple()/"
            "enumerate()/join(), or through a set-typed local) feeds "
            "hash order into whatever consumes the loop; wrap the set "
            "in sorted() before any order-sensitive use.",
        ),
        Rule(
            "REP003",
            "undocumented counter name",
            "Counters.inc() must charge a name from the documented "
            "COUNTER_DOCS vocabulary (repro.mapreduce.counters) — "
            "either an exact documented name or an instance of a "
            "documented <placeholder> family built by a registered "
            "family builder; ad-hoc names silently fall out of "
            "reports, docs and the metric registry.",
        ),
        Rule(
            "REP004",
            "impure mapper/reducer/combiner",
            "Task code must not write module globals (global/nonlocal) "
            "or mutate its input keys/values/blocks in place; tasks "
            "may be re-run, re-ordered, and executed on any engine, so "
            "any such side effect breaks engine equivalence.",
        ),
        Rule(
            "REP005",
            "untyped event emission",
            "EventBus.emit() takes only the typed event classes of "
            "repro.obs.events; raw dicts/strings bypass the schema, "
            "the trace exporter, and the report writer.",
        ),
        Rule(
            "REP006",
            "broad exception handler",
            "except Exception / bare except can swallow "
            "ValidationError (and every other ReproError); catch the "
            "concrete types, or justify the catch-all with "
            "# repro: allow[REP006].",
        ),
        Rule(
            "REP007",
            "unused suppression pragma",
            "A # repro: allow[...] pragma must suppress at least one "
            "violation of the named rule on its line (or the line "
            "below); stale pragmas are silent blind spots.",
        ),
        Rule(
            "REP008",
            "resource may leak on a non-exceptional path",
            "A SharedArena/SharedMemory/pipe/TraceContext/fleet created "
            "here does not reach its release call (unlink/close/stop/"
            "commit) on every non-exceptional CFG path, and never "
            "transfers ownership (returned, stored, or passed onward). "
            "Leaked segments survive the process; leaked contexts drop "
            "spans from the trace.",
        ),
        Rule(
            "REP009",
            "unguarded access to a guarded-by attribute, or lock-order "
            "cycle",
            "An attribute annotated # repro: guarded-by[lock] is read "
            "or written on a path where the lock is not statically "
            "held, a held lock is re-acquired, or two locks are "
            "acquired in inconsistent order across functions (deadlock "
            "risk).",
        ),
        Rule(
            "REP010",
            "fleet RPC send without a conforming handler",
            "A message tuple sent over the fleet's pipes names a tag "
            "the worker dispatcher does not handle, or carries an "
            "arity the handler's unpack would reject; the worker "
            "would answer ('err', ...) at runtime — the checker "
            "refuses it statically.",
        ),
        Rule(
            "REP011",
            "interprocedural task impurity",
            "A mapper/reducer/combiner method calls (possibly through "
            "aliases and further helpers) a function that writes a "
            "module global or mutates the data argument the task "
            "passed it; REP004 purity must hold through the whole "
            "call graph, not just the task body.",
        ),
    )
}

#: Rules the AST visitor implements (REP000/REP007 belong to the runner).
VISITOR_RULES: FrozenSet[str] = frozenset(
    ("REP001", "REP002", "REP003", "REP004", "REP005", "REP006")
)

#: Rules implemented by the dataflow layer (:mod:`repro.check.deep`);
#: they only fire under ``check --deep``, so their pragmas are exempt
#: from staleness checking in shallow runs.
DEEP_RULES: FrozenSet[str] = frozenset(
    ("REP008", "REP009", "REP010", "REP011")
)


# ---------------------------------------------------------------------------
# REP001 vocabulary
# ---------------------------------------------------------------------------

#: Fully-qualified calls that read the wall clock. ``time.perf_counter``
#: is deliberately absent: it is the runtime's one sanctioned wall-clock
#: probe, and everything it feeds is isolated under wall-only report
#: fields (see docs/observability.md).
WALL_CLOCK_CALLS: FrozenSet[str] = frozenset(
    (
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.clock_gettime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    )
)

#: Other per-call entropy sources.
ENTROPY_CALLS: FrozenSet[str] = frozenset(
    (
        "uuid.uuid1",
        "uuid.uuid4",
        "os.urandom",
        "secrets.token_bytes",
        "secrets.token_hex",
        "secrets.token_urlsafe",
        "secrets.randbelow",
        "secrets.choice",
    )
)

#: ``random.<fn>()`` module-level calls share one ambient, seedable-
#: from-anywhere global RNG — never acceptable on deterministic paths.
STDLIB_RANDOM_FUNCS: FrozenSet[str] = frozenset(
    (
        "random",
        "randint",
        "randrange",
        "randbytes",
        "getrandbits",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "uniform",
        "triangular",
        "gauss",
        "normalvariate",
        "expovariate",
        "betavariate",
        "seed",
    )
)

#: Legacy ``numpy.random.<fn>()`` calls against the global NumPy state.
NUMPY_RANDOM_FUNCS: FrozenSet[str] = frozenset(
    (
        "rand",
        "randn",
        "randint",
        "random",
        "random_sample",
        "ranf",
        "sample",
        "choice",
        "shuffle",
        "permutation",
        "uniform",
        "normal",
        "standard_normal",
        "seed",
        "get_state",
        "set_state",
    )
)

#: RNG constructors that are deterministic *only when seeded*: a call
#: with no arguments (or an explicit ``None`` seed) draws OS entropy.
RNG_CONSTRUCTORS: FrozenSet[str] = frozenset(
    (
        "random.Random",
        "numpy.random.default_rng",
        "numpy.random.RandomState",
        "numpy.random.Generator",
    )
)

#: Always-entropy constructors (no seed parameter exists).
UNSEEDABLE_RNG_CONSTRUCTORS: FrozenSet[str] = frozenset(
    ("random.SystemRandom",)
)


# ---------------------------------------------------------------------------
# REP002 vocabulary
# ---------------------------------------------------------------------------

#: Builtins that materialise their argument *in iteration order*.
ORDER_SENSITIVE_CONSUMERS: FrozenSet[str] = frozenset(
    ("list", "tuple", "enumerate", "iter", "next", "reversed", "zip", "map")
)

#: Builtins whose result does not depend on argument order — a set
#: flowing straight into one of these is safe.
ORDER_INSENSITIVE_CONSUMERS: FrozenSet[str] = frozenset(
    (
        "sorted",
        "min",
        "max",
        "sum",
        "len",
        "any",
        "all",
        "set",
        "frozenset",
        "dict",
        "Counter",
    )
)


# ---------------------------------------------------------------------------
# REP004 vocabulary
# ---------------------------------------------------------------------------

#: Methods whose *data* parameters (everything but self/ctx) are engine-
#: owned inputs and must not be mutated.
PURE_TASK_METHODS: FrozenSet[str] = frozenset(("map", "map_block", "reduce"))

#: Method names that mutate their receiver in place.
MUTATOR_METHODS: FrozenSet[str] = frozenset(
    (
        "append",
        "extend",
        "insert",
        "remove",
        "pop",
        "popitem",
        "clear",
        "update",
        "add",
        "discard",
        "sort",
        "reverse",
        "setdefault",
        # NumPy in-place mutators reachable from PointSet payloads.
        "fill",
        "put",
        "itemset",
        "partition",
        "resize",
        "byteswap",
    )
)


# ---------------------------------------------------------------------------
# REP008 vocabulary
# ---------------------------------------------------------------------------

#: Resource constructors (matched by the *terminal* name of the call —
#: ``SharedArena()``, ``shm.SharedArena()``, ``ctx.Pipe()`` all match)
#: mapped to the method names that retire the resource.  An empty set
#: means the resource is only ever retired by handing it onward
#: (``TraceContext`` objects are committed by passing them to
#: ``tracer.commit_*`` — an ownership transfer, which always ends
#: tracking).  ``Pipe()`` binds *two* resources via tuple unpack; each
#: end must be closed (or escape) independently.
RESOURCE_PROTOCOLS: Mapping[str, FrozenSet[str]] = {
    "SharedArena": frozenset(("unlink",)),
    "SharedMemory": frozenset(("close", "unlink")),
    "Pipe": frozenset(("close",)),
    "SkylineFleet": frozenset(("stop",)),
    "begin_query": frozenset(),
    "begin_mutation": frozenset(),
}


# ---------------------------------------------------------------------------
# Dynamic vocabularies (resolved from the live package so the checker
# can never drift from what the runtime actually documents).
# ---------------------------------------------------------------------------


def counter_vocabulary() -> FrozenSet[str]:
    """Documented counter names (the COUNTER_DOCS keys)."""
    from repro.mapreduce.counters import COUNTER_DOCS

    return frozenset(COUNTER_DOCS)


def counter_constants() -> Mapping[str, str]:
    """UPPER_CASE constant name -> counter name, from the counters module."""
    from repro.mapreduce import counters

    return {
        name: value
        for name, value in vars(counters).items()
        if name.isupper() and isinstance(value, str)
    }


def counter_family_regexes():
    """Compiled regexes of documented counter families (the
    ``<placeholder>`` COUNTER_DOCS keys), for matching literal and
    f-string counter names."""
    from repro.mapreduce.counters import counter_family_regexes

    return tuple(
        regex for _name, regex in sorted(counter_family_regexes().items())
    )


def counter_family_builders() -> FrozenSet[str]:
    """Functions documented to build counter-family instances."""
    from repro.mapreduce.counters import COUNTER_FAMILY_BUILDERS

    return frozenset(COUNTER_FAMILY_BUILDERS)


def event_class_names() -> FrozenSet[str]:
    """Class names of the typed event vocabulary (EVENT_TYPES values)."""
    from repro.obs.events import EVENT_TYPES

    return frozenset(cls.__name__ for cls in EVENT_TYPES.values())
