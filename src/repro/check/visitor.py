"""The AST pass behind ``repro.check`` (rules REP001-REP006).

One :class:`CheckVisitor` walks a parsed module and collects
:class:`~repro.check.rules.Violation` objects.  The visitor is purely
syntactic plus a small amount of module-local inference:

* imports are tracked so dotted call targets resolve through aliases
  (``import numpy as np`` makes ``np.random.rand`` read as
  ``numpy.random.rand``);
* names assigned from a set expression in the same scope are treated as
  set-typed for REP002 (the ``seen = set()`` idiom);
* classes are classified as mapper/reducer/combiner by base-class name
  (``Mapper``/``Reducer``/``Combiner`` suffixes), which is exactly how
  the runtime's own hierarchy is spelled.

The visitor never imports the module under analysis, so it is safe on
code that would fail at import time.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set

from repro.check import rules as R
from repro.check.rules import Violation


def _terminal_name(node: ast.expr) -> Optional[str]:
    """Last attribute/name segment of an expression, if any."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _root_name(node: ast.expr) -> Optional[str]:
    """The base Name at the bottom of an Attribute/Subscript chain."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


class CheckVisitor(ast.NodeVisitor):
    """Collects violations of REP001-REP006 for one module."""

    def __init__(self, path: str) -> None:
        self.path = path
        self.violations: List[Violation] = []
        #: alias -> fully qualified module or attribute path
        self._imports: Dict[str, str] = {}
        #: names known to hold set values, per enclosing function scope
        self._set_names: List[Set[str]] = [set()]
        #: node ids exempt from REP002 (direct args of order-insensitive
        #: consumers, membership tests, ...)
        self._order_exempt: Set[int] = set()
        self._class_stack: List[ast.ClassDef] = []
        self._counter_vocab = R.counter_vocabulary()
        self._counter_constants = R.counter_constants()
        self._counter_families = R.counter_family_regexes()
        self._family_builders = R.counter_family_builders()
        self._event_classes = R.event_class_names()

    # -- helpers --------------------------------------------------------

    def _report(self, rule_id: str, node: ast.AST, message: str) -> None:
        self.violations.append(
            Violation(
                rule_id=rule_id,
                path=self.path,
                line=getattr(node, "lineno", 0),
                col=getattr(node, "col_offset", 0),
                message=message,
            )
        )

    def _dotted(self, node: ast.expr) -> Optional[str]:
        """Render a Name/Attribute chain as a dotted path, resolving
        import aliases at the root; None for anything else."""
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = self._imports.get(node.id, node.id)
        parts.append(root)
        return ".".join(reversed(parts))

    # -- imports --------------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self._imports[alias.asname or alias.name.split(".")[0]] = (
                alias.name if alias.asname else alias.name.split(".")[0]
            )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module and node.level == 0:
            for alias in node.names:
                self._imports[alias.asname or alias.name] = (
                    f"{node.module}.{alias.name}"
                )
        self.generic_visit(node)

    # -- scope tracking for set-typed names -----------------------------

    def _visit_function(self, node: ast.AST) -> None:
        self._set_names.append(set())
        self.generic_visit(node)
        self._set_names.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._visit_function(node)

    def _is_set_expr(self, node: ast.expr) -> bool:
        """Syntactically set-valued: literals, set()/frozenset() calls,
        set algebra over set-valued operands, and set-typed locals."""
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            name = self._dotted(node.func)
            if name in ("set", "frozenset", "builtins.set", "builtins.frozenset"):
                return True
            # set.union(...)-style methods returning sets
            if isinstance(node.func, ast.Attribute) and node.func.attr in (
                "union",
                "intersection",
                "difference",
                "symmetric_difference",
            ):
                return self._is_set_expr(node.func.value)
            return False
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return self._is_set_expr(node.left) or self._is_set_expr(node.right)
        if isinstance(node, ast.Name):
            return any(node.id in scope for scope in self._set_names)
        return False

    def visit_Assign(self, node: ast.Assign) -> None:
        if self._is_set_expr(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self._set_names[-1].add(target.id)
        else:
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self._set_names[-1].discard(target.id)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if (
            node.value is not None
            and isinstance(node.target, ast.Name)
            and self._is_set_expr(node.value)
        ):
            self._set_names[-1].add(node.target.id)
        self.generic_visit(node)

    # -- REP002 ---------------------------------------------------------

    def _check_iterable(self, node: ast.expr) -> None:
        if id(node) in self._order_exempt:
            return
        if self._is_set_expr(node):
            self._report(
                "REP002",
                node,
                "iteration over an unordered set; wrap in sorted() "
                "before any order-sensitive use",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iterable(node.iter)
        self.generic_visit(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._check_iterable(node.iter)
        self.generic_visit(node)

    def _visit_comprehension_node(self, node: ast.expr) -> None:
        for gen in getattr(node, "generators", []):
            self._check_iterable(gen.iter)
        self.generic_visit(node)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._visit_comprehension_node(node)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self._visit_comprehension_node(node)

    def visit_SetComp(self, node: ast.SetComp) -> None:
        # The result is itself unordered: iteration order cannot leak.
        for gen in node.generators:
            self._order_exempt.add(id(gen.iter))
        self._visit_comprehension_node(node)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        # Dict insertion order *does* leak (dicts preserve it), so dict
        # comprehensions over sets are real REP002 hazards.
        self._visit_comprehension_node(node)

    def visit_Compare(self, node: ast.Compare) -> None:
        # Membership tests do not iterate in order.
        if any(isinstance(op, (ast.In, ast.NotIn)) for op in node.ops):
            for comparator in node.comparators:
                self._order_exempt.add(id(comparator))
        self.generic_visit(node)

    # -- calls: REP001 / REP002 / REP003 / REP005 -----------------------

    def visit_Call(self, node: ast.Call) -> None:
        name = self._dotted(node.func)
        terminal = _terminal_name(node.func)

        # REP002 exemptions and consumer checks first, so generic_visit
        # sees the exemption marks.
        if name in R.ORDER_INSENSITIVE_CONSUMERS:
            for arg in node.args:
                self._order_exempt.add(id(arg))
                if isinstance(
                    arg,
                    (ast.GeneratorExp, ast.ListComp, ast.SetComp, ast.DictComp),
                ):
                    for gen in arg.generators:
                        self._order_exempt.add(id(gen.iter))
        elif name in R.ORDER_SENSITIVE_CONSUMERS and node.args:
            for arg in node.args:
                self._check_iterable(arg)
        elif terminal == "join" and node.args:
            self._check_iterable(node.args[0])

        self._check_rep001(node, name)
        self._check_rep003(node, terminal)
        self._check_rep005(node, terminal)
        self.generic_visit(node)

    def _check_rep001(self, node: ast.Call, name: Optional[str]) -> None:
        if name is None:
            return
        if name in R.WALL_CLOCK_CALLS:
            self._report(
                "REP001",
                node,
                f"wall-clock read {name}(); deterministic paths may "
                "only use time.perf_counter for wall-only fields",
            )
            return
        if name in R.ENTROPY_CALLS or name in R.UNSEEDABLE_RNG_CONSTRUCTORS:
            self._report("REP001", node, f"entropy source {name}()")
            return
        parts = name.split(".")
        if len(parts) == 2 and parts[0] == "random" and (
            parts[1] in R.STDLIB_RANDOM_FUNCS
        ):
            self._report(
                "REP001",
                node,
                f"call to the global RNG {name}(); use a seeded "
                "random.Random/numpy Generator instead",
            )
            return
        if (
            len(parts) == 3
            and parts[0] == "numpy"
            and parts[1] == "random"
            and parts[2] in R.NUMPY_RANDOM_FUNCS
        ):
            self._report(
                "REP001",
                node,
                f"call to NumPy's global RNG {name}(); use a seeded "
                "numpy.random.default_rng(seed) Generator",
            )
            return
        if name in R.RNG_CONSTRUCTORS:
            unseeded = not node.args and not node.keywords
            if node.args and isinstance(node.args[0], ast.Constant):
                unseeded = node.args[0].value is None
            if unseeded:
                self._report(
                    "REP001",
                    node,
                    f"unseeded RNG construction {name}(); pass an "
                    "explicit seed",
                )

    def _check_rep003(self, node: ast.Call, terminal: Optional[str]) -> None:
        if terminal != "inc" or not isinstance(node.func, ast.Attribute):
            return
        receiver = _terminal_name(node.func.value)
        if receiver != "counters":
            return
        if not node.args:
            return
        arg = node.args[0]
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            if arg.value not in self._counter_vocab and not any(
                regex.fullmatch(arg.value)
                for regex in self._counter_families
            ):
                self._report(
                    "REP003",
                    node,
                    f"counter {arg.value!r} is not in the documented "
                    "COUNTER_DOCS vocabulary "
                    "(repro.mapreduce.counters)",
                )
            return
        if isinstance(arg, ast.JoinedStr):
            # An f-string name is acceptable only when its literal
            # skeleton instantiates a documented <placeholder> family
            # (each interpolation standing for one name segment).
            template = "".join(
                str(part.value)
                if isinstance(part, ast.Constant)
                else "x"
                for part in arg.values
            )
            if not any(
                regex.fullmatch(template)
                for regex in self._counter_families
            ):
                self._report(
                    "REP003",
                    node,
                    f"f-string counter name (template {template!r}) "
                    "does not instantiate any documented COUNTER_DOCS "
                    "family",
                )
            return
        if isinstance(arg, ast.Call):
            builder = _terminal_name(arg.func)
            if builder is not None and builder not in self._family_builders:
                self._report(
                    "REP003",
                    node,
                    f"counter name computed by {builder}(); only the "
                    "documented family builders "
                    "(repro.mapreduce.counters.COUNTER_FAMILY_BUILDERS) "
                    "may mint counter names",
                )
            return
        if isinstance(arg, ast.Attribute):
            base = self._dotted(arg.value)
            if base is not None and base.endswith("counters"):
                value = self._counter_constants.get(arg.attr)
                if value is None:
                    self._report(
                        "REP003",
                        node,
                        f"counter constant {arg.attr!r} does not exist "
                        "in repro.mapreduce.counters",
                    )
                elif value not in self._counter_vocab:
                    self._report(
                        "REP003",
                        node,
                        f"counter constant {arg.attr!r} ({value!r}) is "
                        "missing from COUNTER_DOCS",
                    )

    def _check_rep005(self, node: ast.Call, terminal: Optional[str]) -> None:
        if terminal != "emit" or not isinstance(node.func, ast.Attribute):
            return
        receiver = _terminal_name(node.func.value)
        if receiver is None or "bus" not in receiver.lower():
            return
        if not node.args:
            return
        arg = node.args[0]
        if isinstance(
            arg, (ast.Constant, ast.Dict, ast.List, ast.Tuple, ast.JoinedStr, ast.Set)
        ):
            self._report(
                "REP005",
                node,
                "bus.emit() requires a typed event from "
                "repro.obs.events, not a raw literal",
            )
            return
        if isinstance(arg, ast.Call):
            event = _terminal_name(arg.func)
            if event is not None and event not in self._event_classes:
                self._report(
                    "REP005",
                    node,
                    f"bus.emit({event}(...)) is not in the typed event "
                    "vocabulary of repro.obs.events",
                )

    # -- REP004 ---------------------------------------------------------

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._class_stack.append(node)
        if self._is_task_class(node):
            self._check_task_class(node)
        self.generic_visit(node)
        self._class_stack.pop()

    @staticmethod
    def _is_task_class(node: ast.ClassDef) -> bool:
        for base in node.bases:
            name = _terminal_name(base)
            if name is None:
                continue
            if name.endswith(("Mapper", "Reducer", "Combiner")):
                return True
        return False

    def _check_task_class(self, node: ast.ClassDef) -> None:
        for item in node.body:
            if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for stmt in ast.walk(item):
                if isinstance(stmt, (ast.Global, ast.Nonlocal)):
                    self._report(
                        "REP004",
                        stmt,
                        f"task class {node.name}.{item.name} writes "
                        "non-local state; tasks must be pure",
                    )
            if item.name in R.PURE_TASK_METHODS:
                self._check_input_mutation(node.name, item)

    def _check_input_mutation(
        self, class_name: str, fn: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        params = [a.arg for a in fn.args.args]
        data_params = {
            p for p in params[1:] if p not in ("ctx", "context")
        }
        if not data_params:
            return

        def flag(stmt: ast.AST, root: str, what: str) -> None:
            self._report(
                "REP004",
                stmt,
                f"{class_name}.{fn.name} {what} its input {root!r}; "
                "task inputs are engine-owned and may be re-used by "
                "retries and other engines",
            )

        for stmt in ast.walk(fn):
            if isinstance(stmt, (ast.Assign, ast.AugAssign)):
                targets = (
                    stmt.targets
                    if isinstance(stmt, ast.Assign)
                    else [stmt.target]
                )
                for target in targets:
                    if isinstance(target, (ast.Subscript, ast.Attribute)):
                        root = _root_name(target)
                        if root in data_params:
                            flag(stmt, root, "writes into")
            elif isinstance(stmt, ast.Delete):
                for target in stmt.targets:
                    if isinstance(target, (ast.Subscript, ast.Attribute)):
                        root = _root_name(target)
                        if root in data_params:
                            flag(stmt, root, "deletes from")
            elif isinstance(stmt, ast.Call) and isinstance(
                stmt.func, ast.Attribute
            ):
                if stmt.func.attr in R.MUTATOR_METHODS:
                    root = _root_name(stmt.func.value)
                    if root in data_params:
                        flag(stmt, root, f"mutates (.{stmt.func.attr})")

    # -- REP006 ---------------------------------------------------------

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        broad = False
        if node.type is None:
            broad = True
        else:
            exprs = (
                list(node.type.elts)
                if isinstance(node.type, ast.Tuple)
                else [node.type]
            )
            for expr in exprs:
                if _terminal_name(expr) in ("Exception", "BaseException"):
                    broad = True
        if broad:
            self._report(
                "REP006",
                node,
                "broad exception handler can swallow ValidationError; "
                "catch concrete types or justify with "
                "# repro: allow[REP006]",
            )
        self.generic_visit(node)
