"""The paper's qualitative claims, as executable expectations.

Absolute runtimes cannot transfer from a 2007-era Hadoop cluster to a
simulated Python runtime, but the paper's *findings* — who wins, where
the crossovers sit, what blows up — can be checked mechanically. Each
:class:`Expectation` quotes the claim (with its section) and evaluates
it against a :class:`~repro.bench.experiments.FigureReport`.

``evaluate_report`` powers both the EXPERIMENTS.md generation and the
bench suite's shape assertions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.bench.experiments import FigureReport, Panel


@dataclass(frozen=True)
class Expectation:
    """One checkable claim from the paper."""

    exp_id: str
    claim: str
    check: Callable[[FigureReport], bool]


@dataclass
class Verdict:
    expectation: Expectation
    held: bool
    detail: str = ""

    def render(self) -> str:
        status = "HELD" if self.held else "NOT HELD"
        out = f"[{status:8s}] {self.expectation.exp_id}: {self.expectation.claim}"
        if self.detail:
            out += f"\n            {self.detail}"
        return out


def _series(panel: Panel, name: str) -> List[Optional[float]]:
    return [r.runtime_s for r in panel.series[name]]


def _last_panel(report: FigureReport) -> Panel:
    return report.panels[-1]


def _total(values: Sequence[Optional[float]]) -> float:
    return sum(v for v in values if v is not None)


def _all_dnf(values: Sequence[Optional[float]]) -> bool:
    return all(v is None for v in values)


# -- Figure 7 (independent dimensionality) --------------------------------


def _f7_grid_beats_baselines(report: FigureReport) -> bool:
    panel = _last_panel(report)  # (d): high dims, high cardinality
    gpsrs, gpmrs = _series(panel, "mr-gpsrs"), _series(panel, "mr-gpmrs")
    bnl, angle = _series(panel, "mr-bnl"), _series(panel, "mr-angle")
    for i in range(len(panel.x_values)):
        if gpsrs[i] >= angle[i] or gpmrs[i] >= angle[i]:
            return False
        if gpmrs[i] >= bnl[i]:
            return False
    return True


def _f7_baselines_deteriorate(report: FigureReport) -> bool:
    panel = _last_panel(report)
    angle = _series(panel, "mr-angle")
    gpmrs = _series(panel, "mr-gpmrs")
    if angle[0] is None or angle[-1] is None:
        return False
    return (angle[-1] / angle[0]) > 2.0 * (gpmrs[-1] / gpmrs[0])


def _f7_gpsrs_best_low_d(report: FigureReport) -> bool:
    panel = report.panels[2]  # (c): low dims, high cardinality
    gpsrs = _total(_series(panel, "mr-gpsrs"))
    others = [
        _total(_series(panel, name)) for name in ("mr-bnl", "mr-angle")
    ]
    return all(gpsrs <= o * 1.05 for o in others)


FIGURE7_EXPECTATIONS = [
    Expectation(
        "F7.1",
        "At d>=7 both grid algorithms significantly beat MR-BNL and "
        "MR-Angle on independent data (Sec. 7.2, Fig. 7(b)(d))",
        _f7_grid_beats_baselines,
    ),
    Expectation(
        "F7.2",
        "MR-BNL/MR-Angle deteriorate much faster with d than MR-GPMRS, "
        "which 'performs very steadily' (Sec. 7.2)",
        _f7_baselines_deteriorate,
    ),
    Expectation(
        "F7.3",
        "MR-GPSRS performs best (or ties) at low dimensionality on "
        "independent data (Sec. 7.2, Fig. 7(a)(c))",
        _f7_gpsrs_best_low_d,
    ),
]


# -- Figure 8 (anti-correlated dimensionality) -----------------------------


def _f8_gpmrs_best_high_d(report: FigureReport) -> bool:
    panel = _last_panel(report)
    gpsrs, gpmrs = _series(panel, "mr-gpsrs"), _series(panel, "mr-gpmrs")
    return all(
        g is not None and s is not None and g < s
        for g, s in zip(gpmrs, gpsrs)
    )


def _f8_baselines_dnf(report: FigureReport) -> bool:
    panel = _last_panel(report)
    return _all_dnf(_series(panel, "mr-bnl")) and _all_dnf(
        _series(panel, "mr-angle")
    )


def _f8_gpsrs_ok_low_d(report: FigureReport) -> bool:
    panel = report.panels[2]  # (c) low dims, high card
    gpsrs, gpmrs = _series(panel, "mr-gpsrs"), _series(panel, "mr-gpmrs")
    low = [i for i, d in enumerate(panel.x_values) if d < 4]
    return all(gpsrs[i] <= gpmrs[i] * 1.30 for i in low)


FIGURE8_EXPECTATIONS = [
    Expectation(
        "F8.1",
        "MR-GPMRS is the best algorithm at high dimensionality on "
        "anti-correlated data (Sec. 7.2, Fig. 8(b)(d))",
        _f8_gpmrs_best_high_d,
    ),
    Expectation(
        "F8.2",
        "MR-BNL and MR-Angle cannot terminate in reasonable time at "
        "d>=7 on anti-correlated data (Sec. 7.2)",
        _f8_baselines_dnf,
    ),
    Expectation(
        "F8.3",
        "MR-GPSRS is (marginally) competitive with MR-GPMRS at low "
        "dimensionality on anti-correlated data (Sec. 7.2, Fig. 8(a)(c); "
        "paper crossover d=5, ours sits at d=4 — see EXPERIMENTS.md)",
        _f8_gpsrs_ok_low_d,
    ),
]


# -- Figure 9 (cardinality) -------------------------------------------------


def _f9_gpmrs_wins_8d_anticorrelated(report: FigureReport) -> bool:
    panel = report.panels[3]  # 8-d anticorrelated
    gpsrs, gpmrs = _series(panel, "mr-gpsrs"), _series(panel, "mr-gpmrs")
    # wins at the two largest cardinalities, gap widening
    if gpmrs[-1] >= gpsrs[-1] or gpmrs[-2] >= gpsrs[-2]:
        return False
    return (gpsrs[-1] - gpmrs[-1]) >= (gpsrs[-2] - gpmrs[-2])


def _f9_runtime_grows(report: FigureReport) -> bool:
    for panel in report.panels:
        for name in ("mr-bnl",):
            series = [v for v in _series(panel, name) if v is not None]
            if len(series) >= 2 and series[-1] <= series[0]:
                return False
    return True


def _f9_grid_best_8d_independent(report: FigureReport) -> bool:
    panel = report.panels[1]  # 8-d independent
    gpsrs, gpmrs = _series(panel, "mr-gpsrs"), _series(panel, "mr-gpmrs")
    bnl, angle = _series(panel, "mr-bnl"), _series(panel, "mr-angle")
    i = len(panel.x_values) - 1
    return min(gpsrs[i], gpmrs[i]) < min(bnl[i], angle[i])


FIGURE9_EXPECTATIONS = [
    Expectation(
        "F9.1",
        "On 8-d anti-correlated data MR-GPMRS increasingly outperforms "
        "MR-GPSRS as cardinality grows (Sec. 7.3, Fig. 9(d))",
        _f9_gpmrs_wins_8d_anticorrelated,
    ),
    Expectation(
        "F9.2",
        "Runtimes grow with cardinality (Sec. 7.3)",
        _f9_runtime_grows,
    ),
    Expectation(
        "F9.3",
        "MR-GPMRS and MR-GPSRS run fastest at 8-d independent "
        "(Sec. 7.3, Fig. 9(b))",
        _f9_grid_best_8d_independent,
    ),
]


# -- Figure 10 (reducers) ----------------------------------------------------


def _f10_anticorrelated_improves(report: FigureReport) -> bool:
    panel = report.panels[1]
    series = _series(panel, "mr-gpmrs")
    return series[-1] < series[0] and series[1] < series[0]


def _f10_biggest_jump_first(report: FigureReport) -> bool:
    panel = report.panels[1]
    series = _series(panel, "mr-gpmrs")
    first_jump = series[0] - series[1]
    later = [series[i] - series[i + 1] for i in range(1, len(series) - 1)]
    return all(first_jump >= j - 1e-9 for j in later)


def _f10_independent_flat(report: FigureReport) -> bool:
    panel = report.panels[0]
    series = _series(panel, "mr-gpmrs")
    return abs(series[-1] - series[0]) <= 0.35 * series[0]


FIGURE10_EXPECTATIONS = [
    Expectation(
        "F10.1",
        "More reducers clearly shorten anti-correlated runtimes "
        "(Sec. 7.4)",
        _f10_anticorrelated_improves,
    ),
    Expectation(
        "F10.2",
        "The largest improvement occurs going from 1 reducer "
        "(MR-GPSRS) to 5 (Sec. 7.4)",
        _f10_biggest_jump_first,
    ),
    Expectation(
        "F10.3",
        "On independent data increasing reducers does not improve "
        "runtime much (Sec. 7.4)",
        _f10_independent_flat,
    ),
]


# -- Figure 11 (cost model) ---------------------------------------------------


def _f11_upper_bound(report: FigureReport) -> bool:
    from repro.grid.cost import kappa_mapper, kappa_reducer

    for panel, estimator, attr in (
        (report.panels[0], kappa_mapper, "max_mapper_compares"),
        (report.panels[1], kappa_reducer, "max_reducer_compares"),
    ):
        for results in panel.series.values():
            for r in results:
                n = r.artifacts["grid"].n
                d = r.cell.workload.dimensionality
                if getattr(r, attr) > estimator(n, d):
                    return False
    return True


def _f11_independent_tighter(report: FigureReport) -> bool:
    """Anti-correlated measurements sit at or below independent ones
    (the model assumes independence, Sec. 7.5)."""
    panel = report.panels[0]
    ind = [r.max_mapper_compares for r in panel.series["independent"]]
    anti = [r.max_mapper_compares for r in panel.series["anticorrelated"]]
    at_most = sum(1 for a, b in zip(anti, ind) if a <= b)
    return at_most >= len(ind) - 1


FIGURE11_EXPECTATIONS = [
    Expectation(
        "F11.1",
        "The estimated cost is an upper bound of the measured "
        "partition-wise comparisons in every case (Sec. 7.5)",
        _f11_upper_bound,
    ),
    Expectation(
        "F11.2",
        "Estimates match independent-data mappers more closely than "
        "anti-correlated ones (Sec. 7.5)",
        _f11_independent_tighter,
    ),
]


EXPECTATIONS: Dict[str, List[Expectation]] = {
    "fig7": FIGURE7_EXPECTATIONS,
    "fig8": FIGURE8_EXPECTATIONS,
    "fig9": FIGURE9_EXPECTATIONS,
    "fig10": FIGURE10_EXPECTATIONS,
    "fig11": FIGURE11_EXPECTATIONS,
}


def evaluate_report(
    figure_key: str, report: FigureReport
) -> List[Verdict]:
    """Evaluate every claim registered for ``figure_key``."""
    verdicts = []
    for expectation in EXPECTATIONS.get(figure_key, []):
        try:
            held = bool(expectation.check(report))
            detail = ""
        except Exception as exc:  # repro: allow[REP006]
            # Claims are arbitrary user lambdas over partial reports; a
            # non-evaluable claim (missing series, zero division, ...)
            # is a *verdict*, not a crash — and the error is surfaced
            # in the verdict detail, never swallowed silently.
            held = False
            detail = f"check errored: {exc!r}"
        verdicts.append(Verdict(expectation=expectation, held=held, detail=detail))
    return verdicts


def render_verdicts(verdicts: List[Verdict]) -> str:
    return "\n".join(v.render() for v in verdicts)
