"""Declarative reproductions of every figure in the paper's evaluation.

The evaluation (Section 7) contains five figures and no result tables:

* Figure 7  — runtime vs dimensionality, independent data
* Figure 8  — runtime vs dimensionality, anti-correlated data
* Figure 9  — runtime vs cardinality (3-d and 8-d, both distributions)
* Figure 10 — runtime vs number of reducers (8-d, both distributions)
* Figure 11 — cost-model estimates vs measured partition comparisons

Each ``run_figureN`` executes the sweep on the simulated cluster and
returns a :class:`FigureReport` whose ``render()`` prints the same
rows/series the paper plots. ``scale`` shrinks the paper's cardinalities
(default 1/100) so a laptop finishes; the paper's DNF entries — and a
handful of budget DNFs for the slowest baseline cells — are skipped and
rendered as ``DNF`` (run with ``include_dnf=True`` to force them).

The paper ran on a 13-node cluster with one reducer per node for
MR-GPMRS (Section 7.1); the default cluster and ``num_reducers=13``
mirror that.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.bench.harness import (
    Cell,
    CellResult,
    Workload,
    run_cell,
    run_cells,
    scaled_cardinality,
)
from repro.bench.reporting import format_series
from repro.grid.cost import kappa_mapper, kappa_reducer
from repro.mapreduce.cluster import SimulatedCluster

#: Paper cardinalities (Section 7.1).
PAPER_CARD_LOW = 100_000
PAPER_CARD_HIGH = 2_000_000
PAPER_CARD_SWEEP = (100_000, 500_000, 1_000_000, 2_000_000, 3_000_000)
PAPER_CARD_COST = 1_000_000

#: Default downscaling of the paper's cardinalities.
DEFAULT_SCALE = 0.01

#: The four algorithms every runtime figure compares.
FIGURE_ALGORITHMS: Tuple[Tuple[str, dict], ...] = (
    ("mr-gpsrs", {}),
    ("mr-gpmrs", {"num_reducers": 13}),
    ("mr-bnl", {}),
    ("mr-angle", {}),
)

#: Grid algorithms that take a TPP (tuples-per-partition) target.
_GRID_ALGORITHMS = frozenset({"mr-gpsrs", "mr-gpmrs", "mr-hybrid"})


def auto_tpp(cardinality: int, dimensionality: int) -> int:
    """A TPP target that keeps the grid meaningful at bench scale.

    Equation 4 rounds (c/TPP)^(1/d) to the nearest integer; with the
    paper's cardinalities a TPP of ~512 yields n in [2, 6], but on
    laptop-scaled cardinalities it collapses to n = 1 (a single
    partition, which degenerates both GP algorithms). Cap TPP so at
    least a 2-per-dimension grid survives — the same effect the paper's
    adaptive heuristic achieves by measuring occupancy.
    """
    cap = max(4, cardinality // (2 ** dimensionality))
    return min(512, cap)


@dataclass
class Panel:
    """One sub-figure: an x-sweep with one series per algorithm."""

    title: str
    x_name: str
    x_values: List
    series: Dict[str, List[CellResult]] = field(default_factory=dict)

    def runtime_series(self) -> Dict[str, List[Optional[float]]]:
        return {
            name: [r.runtime_s for r in results]
            for name, results in self.series.items()
        }

    def render(self, values: Optional[Dict[str, List]] = None) -> str:
        return format_series(
            self.x_name,
            self.x_values,
            values or self.runtime_series(),
            title=self.title,
        )


@dataclass
class FigureReport:
    """All panels of one reproduced figure."""

    figure_id: str
    title: str
    panels: List[Panel]
    notes: str = ""

    def render(self) -> str:
        parts = [f"=== {self.figure_id}: {self.title} ==="]
        for panel in self.panels:
            parts.append(panel.render())
            parts.append("")
        if self.notes:
            parts.append(self.notes)
        return "\n".join(parts)

    def to_csv(self, path: str) -> None:
        """Dump every panel's runtime series as CSV (one block per
        panel, blank-line separated; DNF cells are empty)."""
        import csv

        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow([self.figure_id, self.title])
            for panel in self.panels:
                writer.writerow([])
                series = panel.runtime_series()
                writer.writerow([panel.title])
                writer.writerow([panel.x_name] + list(series))
                for i, x in enumerate(panel.x_values):
                    row = [x]
                    for name in series:
                        value = series[name][i]
                        row.append("" if value is None else value)
                    writer.writerow(row)


def _paper_dnf(distribution: str, cardinality: int, d: int, algorithm: str) -> bool:
    """Cells the paper reported as non-terminating, plus budget skips.

    Paper: on anti-correlated data "MR-Angle and MR-BNL cannot terminate
    in a reasonable period of time for higher dimensionalities, and
    therefore they are excluded in Figures 8(b) and (d)" (d >= 7); the
    budget rule additionally skips MR-Angle's slowest anti-correlated
    cells (its single-reducer merge is 30-40x slower than MR-GPMRS
    there — see EXPERIMENTS.md).
    """
    if distribution != "anticorrelated":
        return False
    if algorithm in ("mr-bnl", "mr-angle") and d >= 7:
        return True
    if algorithm == "mr-angle" and d >= 6 and cardinality >= 15_000:
        return True
    return False


def _dimensionality_panel(
    title: str,
    distribution: str,
    cardinality: int,
    dims: Sequence[int],
    seed: int,
) -> Tuple[Panel, List[Cell]]:
    panel = Panel(title=title, x_name="dim", x_values=list(dims))
    cells: List[Cell] = []
    for name, options in FIGURE_ALGORITHMS:
        row = []
        for d in dims:
            workload = Workload(distribution, cardinality, d, seed=seed)
            extra = dict(options)
            if name in _GRID_ALGORITHMS:
                extra["tpp"] = auto_tpp(cardinality, d)
            row.append(
                Cell.make(
                    workload,
                    name,
                    dnf=_paper_dnf(distribution, cardinality, d, name),
                    **extra,
                )
            )
        panel.series[name] = row  # type: ignore[assignment]
        cells.extend(row)
    return panel, cells


def _execute_panels(
    panels_cells: List[Tuple[Panel, List[Cell]]],
    cluster: Optional[SimulatedCluster],
    engine,
    include_dnf: bool,
    verbose: bool,
) -> List[Panel]:
    panels = []
    for panel, _cells in panels_cells:
        for name, row in list(panel.series.items()):
            panel.series[name] = run_cells(
                row,
                cluster=cluster,
                engine=engine,
                include_dnf=include_dnf,
                verbose=verbose,
            )
        panels.append(panel)
    return panels


def _dimensionality_figure(
    figure_id: str,
    distribution: str,
    scale: float,
    quick: bool,
    cluster: Optional[SimulatedCluster],
    engine,
    include_dnf: bool,
    verbose: bool,
    seed: int,
) -> FigureReport:
    low = scaled_cardinality(PAPER_CARD_LOW, scale)
    high = scaled_cardinality(PAPER_CARD_HIGH, scale)
    low_dims = [2, 3, 4, 5, 6]
    high_dims = [7, 8, 9, 10]
    if quick:
        low_dims, high_dims = [2, 4, 6], [8]
    spec = [
        _dimensionality_panel(
            f"(a) dim {low_dims[0]}-{low_dims[-1]}, card {low}",
            distribution, low, low_dims, seed,
        ),
        _dimensionality_panel(
            f"(b) dim {high_dims[0]}-{high_dims[-1]}, card {low}",
            distribution, low, high_dims, seed,
        ),
        _dimensionality_panel(
            f"(c) dim {low_dims[0]}-{low_dims[-1]}, card {high}",
            distribution, high, low_dims, seed,
        ),
        _dimensionality_panel(
            f"(d) dim {high_dims[0]}-{high_dims[-1]}, card {high}",
            distribution, high, high_dims, seed,
        ),
    ]
    panels = _execute_panels(spec, cluster, engine, include_dnf, verbose)
    return FigureReport(
        figure_id=figure_id,
        title=f"Effect of dimensionality on {distribution} data "
        f"(runtime, simulated seconds)",
        panels=panels,
        notes=f"paper cardinalities {PAPER_CARD_LOW} and {PAPER_CARD_HIGH} "
        f"scaled by {scale}",
    )


def run_figure7(
    scale: float = DEFAULT_SCALE,
    quick: bool = False,
    cluster: Optional[SimulatedCluster] = None,
    engine=None,
    include_dnf: bool = False,
    verbose: bool = False,
    seed: int = 7,
) -> FigureReport:
    """Figure 7: runtime vs dimensionality, independent data."""
    return _dimensionality_figure(
        "Figure 7", "independent", scale, quick, cluster, engine,
        include_dnf, verbose, seed,
    )


def run_figure8(
    scale: float = DEFAULT_SCALE,
    quick: bool = False,
    cluster: Optional[SimulatedCluster] = None,
    engine=None,
    include_dnf: bool = False,
    verbose: bool = False,
    seed: int = 8,
) -> FigureReport:
    """Figure 8: runtime vs dimensionality, anti-correlated data."""
    return _dimensionality_figure(
        "Figure 8", "anticorrelated", scale, quick, cluster, engine,
        include_dnf, verbose, seed,
    )


def run_figure9(
    scale: float = DEFAULT_SCALE,
    quick: bool = False,
    cluster: Optional[SimulatedCluster] = None,
    engine=None,
    include_dnf: bool = False,
    verbose: bool = False,
    seed: int = 9,
) -> FigureReport:
    """Figure 9: runtime vs cardinality, 3-d and 8-d, both
    distributions."""
    cards = [scaled_cardinality(c, scale) for c in PAPER_CARD_SWEEP]
    if quick:
        cards = cards[::2]
    spec = []
    for dist in ("independent", "anticorrelated"):
        for d in (3, 8):
            panel = Panel(
                title=f"{d}-d {dist}", x_name="card", x_values=list(cards)
            )
            cells: List[Cell] = []
            for name, options in FIGURE_ALGORITHMS:
                row = []
                for c in cards:
                    workload = Workload(dist, c, d, seed=9)
                    extra = dict(options)
                    if name in _GRID_ALGORITHMS:
                        extra["tpp"] = auto_tpp(c, d)
                    row.append(
                        Cell.make(
                            workload,
                            name,
                            dnf=_paper_dnf(dist, c, d, name),
                            **extra,
                        )
                    )
                panel.series[name] = row  # type: ignore[assignment]
                cells.extend(row)
            spec.append((panel, cells))
    panels = _execute_panels(spec, cluster, engine, include_dnf, verbose)
    return FigureReport(
        figure_id="Figure 9",
        title="Effect of cardinality (runtime, simulated seconds)",
        panels=panels,
        notes=f"paper cardinalities {list(PAPER_CARD_SWEEP)} scaled by {scale}",
    )


def run_figure10(
    scale: float = DEFAULT_SCALE,
    quick: bool = False,
    cluster: Optional[SimulatedCluster] = None,
    engine=None,
    include_dnf: bool = False,
    verbose: bool = False,
    seed: int = 10,
) -> FigureReport:
    """Figure 10: runtime vs number of reducers in MR-GPMRS.

    1 reducer means MR-GPSRS, as in the paper ("vary the number of
    reducers from 1 (using MR-GPSRS) to 17").
    """
    card = scaled_cardinality(PAPER_CARD_HIGH, scale)
    reducer_counts = [1, 5, 9, 13, 17]
    if quick:
        reducer_counts = [1, 9, 17]
    spec = []
    for dist in ("independent", "anticorrelated"):
        panel = Panel(
            title=f"8-d {dist}, card {card}",
            x_name="reducers",
            x_values=list(reducer_counts),
        )
        workload = Workload(dist, card, 8, seed=seed)
        tpp = auto_tpp(card, 8)
        row = []
        for r in reducer_counts:
            if r == 1:
                row.append(Cell.make(workload, "mr-gpsrs", tpp=tpp))
            else:
                row.append(
                    Cell.make(workload, "mr-gpmrs", num_reducers=r, tpp=tpp)
                )
        panel.series["mr-gpmrs"] = row  # type: ignore[assignment]
        spec.append((panel, row))
    panels = _execute_panels(spec, cluster, engine, include_dnf, verbose)
    return FigureReport(
        figure_id="Figure 10",
        title="Effect of the number of reducers in MR-GPMRS "
        "(runtime, simulated seconds)",
        panels=panels,
        notes="x=1 runs MR-GPSRS, as in the paper",
    )


def run_figure11(
    scale: float = DEFAULT_SCALE,
    quick: bool = False,
    cluster: Optional[SimulatedCluster] = None,
    engine=None,
    include_dnf: bool = False,
    verbose: bool = False,
    seed: int = 11,
) -> FigureReport:
    """Figure 11: Section 6 cost estimates vs measured partition-wise
    comparisons, for the busiest mapper (a) and reducer (b)."""
    card = scaled_cardinality(PAPER_CARD_COST, scale)
    dims = [2, 3, 4, 5, 6, 7, 8, 9, 10]
    if quick:
        dims = [2, 4, 6, 8]
    mapper_panel = Panel(
        title="(a) Mappers: measured vs estimate",
        x_name="dim",
        x_values=list(dims),
    )
    reducer_panel = Panel(
        title="(b) Reducers: measured vs estimate",
        x_name="dim",
        x_values=list(dims),
    )
    mapper_values: Dict[str, List] = {}
    reducer_values: Dict[str, List] = {}
    for dist in ("independent", "anticorrelated"):
        cells = [
            Cell.make(
                Workload(dist, card, d, seed=seed),
                "mr-gpmrs",
                num_reducers=13,
                tpp=auto_tpp(card, d),
            )
            for d in dims
        ]
        results = run_cells(
            cells, cluster=cluster, engine=engine, verbose=verbose
        )
        mapper_values[f"measured({dist})"] = [
            r.max_mapper_compares for r in results
        ]
        reducer_values[f"measured({dist})"] = [
            r.max_reducer_compares for r in results
        ]
        estimates_map, estimates_red = [], []
        for r in results:
            n = r.artifacts["grid"].n
            d = r.cell.workload.dimensionality
            estimates_map.append(kappa_mapper(n, d))
            estimates_red.append(kappa_reducer(n, d))
        mapper_values[f"estimate({dist})"] = estimates_map
        reducer_values[f"estimate({dist})"] = estimates_red
        mapper_panel.series[dist] = results
        reducer_panel.series[dist] = results
    mapper_panel.render = lambda values=None, p=mapper_panel, v=mapper_values: (
        format_series(p.x_name, p.x_values, values or v, title=p.title)
    )
    reducer_panel.render = lambda values=None, p=reducer_panel, v=reducer_values: (
        format_series(p.x_name, p.x_values, values or v, title=p.title)
    )
    return FigureReport(
        figure_id="Figure 11",
        title="Cost estimation: partition-wise comparisons "
        "(measured max-task vs Section 6 estimates)",
        panels=[mapper_panel, reducer_panel],
        notes="estimates are worst-case upper bounds (paper Section 6 "
        "assumptions); expect measured <= estimate, tight for the "
        "independent mappers",
    )


# -- ablations (design choices DESIGN.md calls out) -----------------------


def run_ablation_merging(
    scale: float = DEFAULT_SCALE,
    cluster: Optional[SimulatedCluster] = None,
    engine=None,
    verbose: bool = False,
) -> FigureReport:
    """Section 5.4.1: computation-cost vs communication-cost vs the
    Section-8 balanced group merging.

    Merging only engages when there are more independent groups than
    reducers, so this ablation uses a fine 3-d grid (ppd=8 yields
    dozens of surface groups) with few reducers. The paper's
    preliminary tests preferred computation-cost merging; the
    'balanced' strategy is our implementation of the paper's stated
    future work."""
    card = scaled_cardinality(PAPER_CARD_HIGH, scale)
    strategies = ["computation", "communication", "balanced"]
    panel = Panel(
        title=f"3-d anticorrelated, card {card}, ppd 8, 4 reducers",
        x_name="strategy",
        x_values=strategies,
    )
    workload = Workload("anticorrelated", card, 3, seed=54)
    cells = [
        Cell.make(
            workload, "mr-gpmrs", num_reducers=4, merge_strategy=s, ppd=8
        )
        for s in strategies
    ]
    results = run_cells(cells, cluster=cluster, engine=engine, verbose=verbose)
    panel.series["mr-gpmrs"] = results
    values = {
        "runtime_s": [r.runtime_s for r in results],
        "shuffle_MB": [r.shuffle_bytes / 1e6 for r in results],
        "groups": [len(r.artifacts["independent_groups"]) for r in results],
    }
    panel.render = lambda v=None, p=panel, vals=values: format_series(
        p.x_name, p.x_values, v or vals, title=p.title
    )
    return FigureReport(
        figure_id="Ablation: merging",
        title="Independent-group merging strategy (Section 5.4.1 + "
        "Section 8 'balanced')",
        panels=[panel],
    )


def run_ablation_ppd(
    scale: float = DEFAULT_SCALE,
    cluster: Optional[SimulatedCluster] = None,
    engine=None,
    verbose: bool = False,
) -> FigureReport:
    """Section 3.3: PPD selection strategies."""
    card = scaled_cardinality(PAPER_CARD_LOW, scale * 10)
    strategies = ["equation4", "adaptive-target", "adaptive-literal"]
    panels = []
    for dist in ("independent", "anticorrelated"):
        for d in (3, 8):
            panel = Panel(
                title=f"{d}-d {dist}, card {card}",
                x_name="strategy",
                x_values=strategies,
            )
            workload = Workload(dist, card, d, seed=33)
            cells = [
                Cell.make(workload, "mr-gpmrs", num_reducers=13, ppd_strategy=s)
                for s in strategies
            ]
            results = run_cells(
                cells, cluster=cluster, engine=engine, verbose=verbose
            )
            panel.series["mr-gpmrs"] = results
            values = {
                "runtime_s": [r.runtime_s for r in results],
                "chosen_n": [r.artifacts["grid"].n for r in results],
            }
            panel.render = lambda v=None, p=panel, vals=values: format_series(
                p.x_name, p.x_values, v or vals, title=p.title
            )
            panels.append(panel)
    return FigureReport(
        figure_id="Ablation: PPD",
        title="Partitions-per-dimension selection (Section 3.3)",
        panels=panels,
    )


def run_ablation_pruning(
    scale: float = DEFAULT_SCALE,
    cluster: Optional[SimulatedCluster] = None,
    engine=None,
    verbose: bool = False,
) -> FigureReport:
    """Equation 2 vs Equation 1: value of bitstring dominance pruning."""
    card = scaled_cardinality(PAPER_CARD_HIGH, scale)
    panels = []
    for dist in ("independent", "anticorrelated"):
        # A fine low-d grid: Equation 2 prunes (n-1)^d of n^d cells, so
        # pruning bites hardest where n is large (ppd 8 at 3-d prunes
        # two-thirds of the occupied cells on uniform data).
        panel = Panel(
            title=f"3-d {dist}, card {card}, ppd 8",
            x_name="pruning",
            x_values=["on", "off"],
        )
        workload = Workload(dist, card, 3, seed=44)
        cells = [
            Cell.make(workload, "mr-gpsrs", prune_bitstring=flag, ppd=8)
            for flag in (True, False)
        ]
        results = run_cells(
            cells, cluster=cluster, engine=engine, verbose=verbose
        )
        panel.series["mr-gpsrs"] = results
        values = {
            "runtime_s": [r.runtime_s for r in results],
            "shuffle_MB": [r.shuffle_bytes / 1e6 for r in results],
        }
        panel.render = lambda v=None, p=panel, vals=values: format_series(
            p.x_name, p.x_values, v or vals, title=p.title
        )
        panels.append(panel)
    return FigureReport(
        figure_id="Ablation: pruning",
        title="Bitstring dominance pruning (Eq. 2) on vs off (Eq. 1)",
        panels=panels,
    )


def run_ablation_local(
    scale: float = DEFAULT_SCALE,
    cluster: Optional[SimulatedCluster] = None,
    engine=None,
    verbose: bool = False,
) -> FigureReport:
    """Section 8 future work: effect of the local skyline algorithm
    (BNL vs presorted SFS) inside the Zhang-style baselines."""
    card = scaled_cardinality(PAPER_CARD_HIGH, scale)
    panels = []
    for dist in ("independent", "anticorrelated"):
        panel = Panel(
            title=f"6-d {dist}, card {card}",
            x_name="local",
            x_values=["bnl", "sfs"],
        )
        workload = Workload(dist, card, 6, seed=55)
        cells = [
            Cell.make(workload, "mr-bnl"),
            Cell.make(workload, "mr-sfs"),
        ]
        results = run_cells(
            cells, cluster=cluster, engine=engine, verbose=verbose
        )
        panel.series["baseline"] = results
        panels.append(panel)
    return FigureReport(
        figure_id="Ablation: local skyline",
        title="Local skyline algorithm inside MR-BNL/MR-SFS",
        panels=panels,
    )


def run_cost_frontier(
    scale: float = DEFAULT_SCALE,
    cluster: Optional[SimulatedCluster] = None,
    engine=None,
    verbose: bool = False,
) -> FigureReport:
    """Rounds/replication cost frontier (Lemma 2 / Figure 6).

    Sweeps the reducer count of MR-GPMRS under the BSP engine and
    reads its :class:`~repro.bsp.cost.CostReport`: shrinking the
    max-reducer-input budget ``q`` buys parallelism at the price of a
    higher replication rate ``r``, the trade-off Afrati et al. bound
    by ``r >= n/q`` for all-pairs problems. The skyline's independent
    groups sit *below* that curve — the bound column is a reference
    line, not a target. A caller-supplied ``engine`` is ignored: the
    engine is the subject here, and each point needs a fresh one so
    cost reports do not blend across points.
    """
    del engine  # the sweep constructs its own BSPEngine per point
    from repro.bsp import BSPEngine, afrati_allpairs_bound

    card = scaled_cardinality(PAPER_CARD_LOW, scale * 4)
    d = 4
    reducers = [1, 2, 4, 8, 13]
    panels = []
    for dist in ("independent", "anticorrelated"):
        panel = Panel(
            title=f"{d}-d {dist}, card {card} (BSP engine)",
            x_name="reducers",
            x_values=list(reducers),
        )
        workload = Workload(dist, card, d, seed=7)
        results: List[CellResult] = []
        replication: List[float] = []
        max_q: List[int] = []
        bound: List[float] = []
        for nr in reducers:
            bsp = BSPEngine()
            cell = Cell.make(
                workload,
                "mr-gpmrs",
                num_reducers=nr,
                tpp=auto_tpp(card, d),
            )
            result = run_cell(cell, cluster=cluster, engine=bsp)
            cost = bsp.cost
            results.append(result)
            replication.append(round(cost.replication_rate, 4))
            max_q.append(cost.max_reducer_input_records)
            bound.append(
                round(
                    afrati_allpairs_bound(
                        cost.source_records, cost.max_reducer_input_records
                    ),
                    4,
                )
            )
            if verbose:
                print(
                    f"  {workload.label():34s} reducers={nr:<3d} "
                    f"q={max_q[-1]:<6d} r={replication[-1]:.4f}"
                )
        panel.series["mr-gpmrs"] = results
        values = {
            "runtime_s": [r.runtime_s for r in results],
            "replication_r": replication,
            "max_reducer_q": max_q,
            "allpairs_bound": bound,
        }
        panel.render = lambda v=None, p=panel, vals=values: format_series(
            p.x_name, p.x_values, v or vals, title=p.title
        )
        panels.append(panel)
    return FigureReport(
        figure_id="Cost frontier",
        title="Replication rate vs reducer-input budget (BSP cost model)",
        panels=panels,
        notes=(
            "allpairs_bound is Afrati's r >= n/q reference curve; the "
            "grid's independent groups stay below it. See "
            "docs/paper_mapping.md, 'Rounds & replication'."
        ),
    )


#: Experiment id -> runner, for the CLI.
EXPERIMENTS: Dict[str, Callable[..., FigureReport]] = {
    "fig7": run_figure7,
    "fig8": run_figure8,
    "fig9": run_figure9,
    "fig10": run_figure10,
    "fig11": run_figure11,
    "ablation-merging": run_ablation_merging,
    "ablation-ppd": run_ablation_ppd,
    "ablation-pruning": run_ablation_pruning,
    "ablation-local": run_ablation_local,
    "cost-frontier": run_cost_frontier,
}
