"""ASCII line plots for figure series.

The paper's figures are line charts; the tables the harness prints are
exact but shapeless. This renderer draws each series into a character
grid — linear or log y-axis — so crossovers and blow-ups are visible
in a terminal. DNF points are simply absent, as in the paper's plots.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

from repro.errors import ValidationError

#: Plot symbols assigned to series in order.
SYMBOLS = "ox+*#@%&"


def _finite(series: Dict[str, Sequence[Optional[float]]]) -> List[float]:
    values = []
    for row in series.values():
        values.extend(v for v in row if v is not None)
    return values


def ascii_plot(
    x_values: Sequence,
    series: Dict[str, Sequence[Optional[float]]],
    width: int = 60,
    height: int = 16,
    logy: bool = False,
    title: Optional[str] = None,
    y_label: str = "s",
) -> str:
    """Render series as an ASCII chart.

    ``series`` maps name -> y-values aligned with ``x_values``
    (``None`` = DNF, not drawn). ``logy`` uses a log10 y-axis —
    appropriate for the paper's exponential blow-ups.
    """
    if width < 16 or height < 4:
        raise ValidationError("plot needs width >= 16 and height >= 4")
    if not series:
        raise ValidationError("no series to plot")
    for name, row in series.items():
        if len(row) != len(x_values):
            raise ValidationError(
                f"series {name!r} has {len(row)} points for "
                f"{len(x_values)} x values"
            )
    finite = _finite(series)
    if not finite:
        return (title or "") + "\n(all points DNF)"
    lo, hi = min(finite), max(finite)
    if logy:
        if lo <= 0:
            raise ValidationError("log y-axis needs positive values")
        lo, hi = math.log10(lo), math.log10(hi)
    if hi - lo < 1e-12:
        hi = lo + 1.0

    def y_row(value: float) -> int:
        v = math.log10(value) if logy else value
        frac = (v - lo) / (hi - lo)
        return (height - 1) - int(round(frac * (height - 1)))

    def x_col(index: int) -> int:
        if len(x_values) == 1:
            return 0
        return int(round(index / (len(x_values) - 1) * (width - 1)))

    canvas = [[" "] * width for _ in range(height)]
    names = list(series)
    for s, name in enumerate(names):
        symbol = SYMBOLS[s % len(SYMBOLS)]
        points = [
            (x_col(i), y_row(v))
            for i, v in enumerate(series[name])
            if v is not None
        ]
        # connect consecutive points with interpolated marks
        for (x0, r0), (x1, r1) in zip(points, points[1:]):
            steps = max(abs(x1 - x0), abs(r1 - r0), 1)
            for t in range(steps + 1):
                x = round(x0 + (x1 - x0) * t / steps)
                r = round(r0 + (r1 - r0) * t / steps)
                if canvas[r][x] == " ":
                    canvas[r][x] = "."
        for x, r in points:
            canvas[r][x] = symbol

    lines = []
    if title:
        lines.append(title)
    top = 10 ** hi if logy else hi
    bottom = 10 ** lo if logy else lo
    axis_top = f"{top:.3g}{y_label}"
    axis_bot = f"{bottom:.3g}{y_label}"
    margin = max(len(axis_top), len(axis_bot))
    for r, row in enumerate(canvas):
        if r == 0:
            label = axis_top.rjust(margin)
        elif r == height - 1:
            label = axis_bot.rjust(margin)
        else:
            label = " " * margin
        lines.append(f"{label} |{''.join(row)}|")
    x_axis = f"{' ' * margin} +{'-' * width}+"
    lines.append(x_axis)
    first, last = str(x_values[0]), str(x_values[-1])
    gap = width - len(first) - len(last)
    lines.append(f"{' ' * margin}  {first}{' ' * max(1, gap)}{last}")
    legend = "   ".join(
        f"{SYMBOLS[s % len(SYMBOLS)]}={name}" for s, name in enumerate(names)
    )
    lines.append(f"{' ' * margin}  {legend}")
    if logy:
        lines.append(f"{' ' * margin}  (log y-axis)")
    return "\n".join(lines)


def plot_panel(panel, logy: bool = False, **kwargs) -> str:
    """Plot one :class:`~repro.bench.experiments.Panel`'s runtimes."""
    return ascii_plot(
        panel.x_values,
        panel.runtime_series(),
        title=panel.title,
        logy=logy,
        **kwargs,
    )
