"""Experiment harness: run one (workload, algorithm) cell, or a sweep.

A *cell* fixes the workload (distribution, cardinality, dimensionality,
seed) and the algorithm (+options); running it yields the metrics every
figure of the paper plots: simulated cluster runtime, skyline size, and
the partition-comparison counters (Figure 11).

Cells marked ``dnf=True`` reproduce the paper's "cannot terminate in a
reasonable period of time" entries: they are not executed and render as
DNF, exactly as the paper omits those series points. Pass
``include_dnf=True`` to force-run them anyway.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.algorithms.registry import make_algorithm
from repro.data.generators import generate
from repro.errors import ValidationError
from repro.mapreduce.cluster import SimulatedCluster
from repro.mapreduce.counters import PARTITION_COMPARES

#: Registry names whose constructors accept data-space ``bounds``.
BOUNDS_AWARE = frozenset(
    {"mr-gpsrs", "mr-gpmrs", "mr-bnl", "mr-sfs", "mr-angle", "mr-hybrid"}
)


@dataclass(frozen=True)
class Workload:
    """A synthetic dataset specification."""

    distribution: str
    cardinality: int
    dimensionality: int
    seed: int = 0

    def materialise(self) -> np.ndarray:
        return generate(
            self.distribution,
            self.cardinality,
            self.dimensionality,
            seed=self.seed,
        )

    def label(self) -> str:
        return (
            f"{self.distribution}-c{self.cardinality}-d{self.dimensionality}"
        )


@dataclass(frozen=True)
class Cell:
    """One figure data point: a workload run through one algorithm."""

    workload: Workload
    algorithm: str
    options: tuple = ()  # sorted (key, value) pairs; hashable
    dnf: bool = False

    @classmethod
    def make(cls, workload: Workload, algorithm: str, dnf: bool = False, **options):
        return cls(
            workload=workload,
            algorithm=algorithm,
            options=tuple(sorted(options.items())),
            dnf=dnf,
        )

    def option_dict(self) -> Dict[str, Any]:
        return dict(self.options)


@dataclass
class CellResult:
    """Metrics of one executed (or skipped-as-DNF) cell."""

    cell: Cell
    runtime_s: Optional[float]  # simulated makespan; None = DNF
    wall_s: float = 0.0
    skyline_size: int = 0
    max_mapper_compares: int = 0
    max_reducer_compares: int = 0
    shuffle_bytes: int = 0
    artifacts: Dict[str, Any] = field(default_factory=dict)
    #: Full run report (only populated by ``run_cell(report=True)``).
    report: Optional[Dict[str, Any]] = None

    @property
    def is_dnf(self) -> bool:
        return self.runtime_s is None


_DATA_CACHE: Dict[Workload, np.ndarray] = {}
_DATA_CACHE_LIMIT = 8


def workload_data(workload: Workload) -> np.ndarray:
    """Materialise a workload with a tiny LRU-ish cache (sweeps reuse
    the same dataset across algorithms)."""
    if workload not in _DATA_CACHE:
        if len(_DATA_CACHE) >= _DATA_CACHE_LIMIT:
            _DATA_CACHE.pop(next(iter(_DATA_CACHE)))
        _DATA_CACHE[workload] = workload.materialise()
    return _DATA_CACHE[workload]


def run_cell(
    cell: Cell,
    cluster: Optional[SimulatedCluster] = None,
    engine=None,
    include_dnf: bool = False,
    report: bool = False,
) -> CellResult:
    """Execute one cell and collect its metrics.

    With ``report=True``, a telemetry bus with a
    :class:`~repro.obs.metrics.MetricsCollector` observes the run and
    the full machine-readable run report lands in
    :attr:`CellResult.report` (an engine is created if the caller
    supplied none; a caller-supplied engine gets the bus attached for
    the duration of the cell).
    """
    if cell.dnf and not include_dnf:
        return CellResult(cell=cell, runtime_s=None)
    cluster = cluster or SimulatedCluster()
    data = workload_data(cell.workload)
    options = cell.option_dict()
    if cell.algorithm in BOUNDS_AWARE and "bounds" not in options:
        d = cell.workload.dimensionality
        options["bounds"] = (np.zeros(d), np.ones(d))
    algo = make_algorithm(cell.algorithm, **options)
    collector = None
    caller_engine = engine is not None
    if report:
        from repro.mapreduce.engine import SerialEngine
        from repro.obs import EventBus, MetricsCollector

        bus = EventBus()
        collector = bus.subscribe(MetricsCollector())
        if caller_engine:
            previous_bus = getattr(engine, "bus", None)
            engine.bus = bus
        else:
            engine = SerialEngine(bus=bus)
    started = time.perf_counter()
    try:
        result = algo.compute(data, cluster=cluster, engine=engine)
    finally:
        if report and caller_engine:
            engine.bus = previous_bus
    wall = time.perf_counter() - started
    max_map = 0
    max_red = 0
    for job in result.stats.jobs:
        max_map = max(max_map, job.max_task_counter("map", PARTITION_COMPARES))
        max_red = max(
            max_red, job.max_task_counter("reduce", PARTITION_COMPARES)
        )
    cell_report = None
    if report:
        from repro.obs import build_report

        options_json = {
            k: v if isinstance(v, (int, float, str, bool)) else repr(v)
            for k, v in cell.options
        }
        cell_report = build_report(
            result,
            data,
            cluster,
            engine=engine,
            collector=collector,
            config={
                "workload": cell.workload.label(),
                "workload_seed": cell.workload.seed,
                "options": options_json,
            },
        )
    return CellResult(
        cell=cell,
        runtime_s=result.stats.simulated_s,
        wall_s=wall,
        skyline_size=len(result),
        max_mapper_compares=max_map,
        max_reducer_compares=max_red,
        shuffle_bytes=result.stats.total_shuffle_bytes(),
        artifacts=result.artifacts,
        report=cell_report,
    )


def run_cells(
    cells: Sequence[Cell],
    cluster: Optional[SimulatedCluster] = None,
    engine=None,
    include_dnf: bool = False,
    verbose: bool = False,
) -> List[CellResult]:
    results = []
    for cell in cells:
        result = run_cell(
            cell, cluster=cluster, engine=engine, include_dnf=include_dnf
        )
        if verbose:
            status = (
                "DNF"
                if result.is_dnf
                else f"{result.runtime_s:8.3f}s sky={result.skyline_size}"
            )
            print(
                f"  {cell.workload.label():34s} {cell.algorithm:10s} {status}"
            )
        results.append(result)
    return results


def scaled_cardinality(paper_cardinality: int, scale: float) -> int:
    """Scale a paper cardinality down for laptop-sized runs."""
    if scale <= 0:
        raise ValidationError(f"scale must be positive, got {scale}")
    return max(64, int(round(paper_cardinality * scale)))
