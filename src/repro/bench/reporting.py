"""Plain-text rendering of experiment results.

The harness prints the same rows/series the paper's figures plot:
one row per x-axis value, one column per algorithm, cells in simulated
seconds (or comparison counts for Figure 11). "DNF" marks cells the
paper also reported as not terminating in reasonable time.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence


def format_cell(value, width: int = 10) -> str:
    if value is None:
        return "DNF".rjust(width)
    if isinstance(value, float):
        return f"{value:.3f}".rjust(width)
    return str(value).rjust(width)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    title: Optional[str] = None,
    col_width: int = 12,
) -> str:
    """Fixed-width table with a rule under the header."""
    lines: List[str] = []
    if title:
        lines.append(title)
    head = "".join(str(h).rjust(col_width) for h in headers)
    lines.append(head)
    lines.append("-" * len(head))
    for row in rows:
        lines.append("".join(format_cell(v, col_width) for v in row))
    return "\n".join(lines)


def format_series(
    x_name: str,
    x_values: Sequence,
    series: Dict[str, Sequence],
    title: Optional[str] = None,
    col_width: int = 12,
) -> str:
    """Figure-style layout: x on rows, one named series per column."""
    names = list(series)
    headers = [x_name] + names
    rows = []
    for i, x in enumerate(x_values):
        rows.append([x] + [series[name][i] for name in names])
    return format_table(headers, rows, title=title, col_width=col_width)


def ratio(a: Optional[float], b: Optional[float]) -> Optional[float]:
    """a/b, None-propagating (DNF beats everything by definition)."""
    if a is None or b is None or b == 0:
        return None
    return a / b
