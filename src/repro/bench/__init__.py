"""Benchmark harness reproducing the paper's evaluation figures."""

from repro.bench.asciiplot import ascii_plot, plot_panel
from repro.bench.expectations import evaluate_report, render_verdicts
from repro.bench.experiments import (
    EXPERIMENTS,
    FigureReport,
    Panel,
    run_ablation_local,
    run_ablation_merging,
    run_ablation_ppd,
    run_ablation_pruning,
    run_figure7,
    run_figure8,
    run_figure9,
    run_figure10,
    run_figure11,
)
from repro.bench.harness import (
    Cell,
    CellResult,
    Workload,
    run_cell,
    run_cells,
    scaled_cardinality,
)
from repro.bench.reporting import format_series, format_table, ratio

__all__ = [
    "Cell",
    "ascii_plot",
    "evaluate_report",
    "plot_panel",
    "render_verdicts",
    "CellResult",
    "EXPERIMENTS",
    "FigureReport",
    "Panel",
    "Workload",
    "format_series",
    "format_table",
    "ratio",
    "run_ablation_local",
    "run_ablation_merging",
    "run_ablation_ppd",
    "run_ablation_pruning",
    "run_cell",
    "run_cells",
    "run_figure7",
    "run_figure8",
    "run_figure9",
    "run_figure10",
    "run_figure11",
    "scaled_cardinality",
]
