"""repro — Efficient Skyline Computation in MapReduce (EDBT 2014).

A from-scratch reproduction of Mullesgaard, Pedersen, Lu & Zhou's
grid-partitioning skyline algorithms MR-GPSRS and MR-GPMRS, the
baselines they evaluate against (MR-BNL, MR-SFS, MR-Angle, MR-Bitmap),
the Section 6 cost model, the synthetic workloads of the evaluation,
and a simulated MapReduce runtime standing in for the paper's Hadoop
cluster.

Quickstart::

    import numpy as np
    from repro import skyline

    hotels = np.array([[120.0, 3.2], [95.0, 5.0], [200.0, 0.4]])
    result = skyline(hotels)          # minimise both dimensions
    print(result.indices)             # rows in the skyline

See README.md for the full tour and DESIGN.md for the paper mapping.
"""

from __future__ import annotations

from typing import Optional

from repro.algorithms import (
    SkylineAlgorithm,
    SkylineResult,
    available_algorithms,
    make_algorithm,
)
from repro.core.order import Preference
from repro.errors import ReproError
from repro.mapreduce.cluster import SimulatedCluster
from repro.verify import VerificationReport, verify_skyline

__version__ = "1.0.0"


def skyline(
    data,
    algorithm: str = "mr-gpmrs",
    prefs=None,
    cluster: Optional[SimulatedCluster] = None,
    engine=None,
    num_mappers: Optional[int] = None,
    **algorithm_options,
) -> SkylineResult:
    """Compute the skyline of ``data`` — the main entry point.

    Parameters
    ----------
    data:
        Anything convertible to a 2-D float array (rows = tuples,
        columns = criteria).
    algorithm:
        Registry name (see :func:`available_algorithms`); defaults to
        the paper's headline algorithm, MR-GPMRS.
    prefs:
        Per-dimension preference: ``"min"``/``"max"`` or a sequence of
        them. Default: minimise everything (the paper's convention).
    cluster / engine / num_mappers:
        Runtime environment; defaults to the paper's 13-node simulated
        cluster on the deterministic serial engine.
    algorithm_options:
        Forwarded to the algorithm constructor (e.g. ``num_reducers=17``
        for mr-gpmrs, ``ppd=4`` for the grid algorithms).

    Returns
    -------
    SkylineResult
        Skyline row indices/values plus execution statistics and
        algorithm artifacts.
    """
    algo = make_algorithm(algorithm, **algorithm_options)
    return algo.compute(
        data,
        prefs=prefs,
        cluster=cluster,
        engine=engine,
        num_mappers=num_mappers,
    )


__all__ = [
    "Preference",
    "ReproError",
    "SimulatedCluster",
    "SkylineAlgorithm",
    "SkylineResult",
    "VerificationReport",
    "__version__",
    "available_algorithms",
    "make_algorithm",
    "skyline",
    "verify_skyline",
]
