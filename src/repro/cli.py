"""Command-line interface: ``repro-skyline``.

Subcommands
-----------
``compute``     — compute a skyline of a CSV/NPY file or a generated
                  synthetic workload, with any registered algorithm.
``experiment``  — reproduce one of the paper's figures (or an
                  ablation) and print its series.
``list``        — list algorithms and experiments.

Examples::

    repro-skyline compute --distribution anticorrelated -c 10000 -d 5 \
        --algorithm mr-gpmrs
    repro-skyline compute --input hotels.csv --prefs min,min,max
    repro-skyline experiment fig7 --scale 0.005 --verbose
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

from repro import available_algorithms, skyline
from repro.bench.experiments import EXPERIMENTS
from repro.data import generate, load_csv, load_npy
from repro.errors import ReproError
from repro.mapreduce.cluster import SimulatedCluster
from repro.mapreduce.faults import FaultPlan, RetryPolicy


def _add_fault_args(parser) -> None:
    """Fault-injection flags shared by ``compute`` and ``gantt``."""
    parser.add_argument(
        "--fault-seed",
        type=int,
        default=0,
        help="seed of the deterministic fault schedule",
    )
    parser.add_argument(
        "--fault-rate",
        type=float,
        default=0.0,
        help="per-attempt task failure probability (0 disables injection)",
    )
    parser.add_argument(
        "--slow-rate",
        type=float,
        default=0.0,
        help="per-attempt straggler probability",
    )
    parser.add_argument(
        "--speculative",
        action="store_true",
        help="launch backup copies of straggler tasks (first finisher wins)",
    )
    parser.add_argument(
        "--max-attempts",
        type=int,
        default=None,
        help="task retry budget (default: 1, or enough to survive the "
        "fault plan when one is active)",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-skyline",
        description="Skyline computation in (simulated) MapReduce — "
        "EDBT 2014 reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    compute = sub.add_parser("compute", help="compute one skyline")
    source = compute.add_mutually_exclusive_group()
    source.add_argument("--input", help="CSV (with header) or .npy file")
    source.add_argument(
        "--distribution",
        choices=["independent", "correlated", "anticorrelated", "clustered"],
        help="generate a synthetic workload instead of reading a file",
    )
    compute.add_argument("-c", "--cardinality", type=int, default=10_000)
    compute.add_argument("-d", "--dimensionality", type=int, default=4)
    compute.add_argument("--seed", type=int, default=0)
    compute.add_argument(
        "--algorithm", default="mr-gpmrs", choices=available_algorithms()
    )
    compute.add_argument(
        "--prefs",
        help="comma-separated per-dimension preference, e.g. min,max,min",
    )
    compute.add_argument("--num-reducers", type=int, default=None)
    compute.add_argument("--ppd", type=int, default=None)
    compute.add_argument("--nodes", type=int, default=13)
    compute.add_argument(
        "--engine",
        default="serial",
        choices=["serial", "threads", "processes"],
        help="execution engine for the MapReduce runtime",
    )
    compute.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker count for the threads/processes engines",
    )
    compute.add_argument(
        "--show", type=int, default=10, help="print the first N skyline rows"
    )
    _add_fault_args(compute)

    experiment = sub.add_parser(
        "experiment", help="reproduce a figure of the paper"
    )
    experiment.add_argument("name", choices=sorted(EXPERIMENTS))
    experiment.add_argument("--scale", type=float, default=0.01)
    experiment.add_argument("--quick", action="store_true")
    experiment.add_argument("--include-dnf", action="store_true")
    experiment.add_argument("--verbose", action="store_true")
    experiment.add_argument("--nodes", type=int, default=13)
    experiment.add_argument("--csv", help="also write the series as CSV")
    experiment.add_argument(
        "--plot", action="store_true", help="render panels as ASCII charts"
    )
    experiment.add_argument(
        "--logy", action="store_true", help="log y-axis for --plot"
    )

    compare = sub.add_parser(
        "compare", help="run several algorithms on one workload"
    )
    compare.add_argument(
        "--algorithms",
        default="mr-gpsrs,mr-gpmrs,mr-bnl,mr-angle",
        help="comma-separated registry names",
    )
    compare.add_argument(
        "--distribution",
        default="anticorrelated",
        choices=["independent", "correlated", "anticorrelated", "clustered"],
    )
    compare.add_argument("-c", "--cardinality", type=int, default=10_000)
    compare.add_argument("-d", "--dimensionality", type=int, default=5)
    compare.add_argument("--seed", type=int, default=0)
    compare.add_argument("--nodes", type=int, default=13)

    gantt = sub.add_parser(
        "gantt", help="render the simulated schedule of one run"
    )
    gantt.add_argument(
        "--algorithm", default="mr-gpmrs", choices=available_algorithms()
    )
    gantt.add_argument(
        "--distribution",
        default="anticorrelated",
        choices=["independent", "correlated", "anticorrelated", "clustered"],
    )
    gantt.add_argument("-c", "--cardinality", type=int, default=10_000)
    gantt.add_argument("-d", "--dimensionality", type=int, default=5)
    gantt.add_argument("--seed", type=int, default=0)
    gantt.add_argument("--nodes", type=int, default=13)
    gantt.add_argument("--width", type=int, default=64)
    _add_fault_args(gantt)

    sub.add_parser("list", help="list algorithms and experiments")
    return parser


def _fault_plan(args) -> Optional[FaultPlan]:
    if args.fault_rate <= 0 and args.slow_rate <= 0:
        return None
    return FaultPlan(
        seed=args.fault_seed,
        fail_rate=args.fault_rate,
        slow_rate=args.slow_rate,
    )


def _make_engine(name: str, workers: Optional[int], args):
    faults = _fault_plan(args)
    max_attempts = args.max_attempts
    if max_attempts is None:
        # Hadoop's default budget, stretched if the plan needs more.
        max_attempts = max(4, faults.min_attempts()) if faults else 1
    retry = RetryPolicy(max_attempts=max_attempts)
    kwargs = dict(retry=retry, faults=faults, speculative=args.speculative)
    if name == "threads":
        from repro.mapreduce.parallel import ThreadPoolEngine

        return ThreadPoolEngine(max_workers=workers, **kwargs)
    if name == "processes":
        from repro.mapreduce.parallel import ProcessPoolEngine

        return ProcessPoolEngine(max_workers=workers, **kwargs)
    if faults is not None or args.speculative or args.max_attempts:
        from repro.mapreduce.engine import SerialEngine

        return SerialEngine(**kwargs)
    return None  # algorithm default: SerialEngine


def _cmd_compute(args) -> int:
    if args.input:
        if args.input.endswith(".npy"):
            data = load_npy(args.input)
        else:
            data = load_csv(args.input).values
    else:
        data = generate(
            args.distribution or "independent",
            args.cardinality,
            args.dimensionality,
            seed=args.seed,
        )
    prefs = args.prefs.split(",") if args.prefs else None
    options = {}
    if args.num_reducers is not None and args.algorithm in (
        "mr-gpmrs",
        "mr-bitmap",
    ):
        options["num_reducers"] = args.num_reducers
    if args.ppd is not None and args.algorithm in ("mr-gpsrs", "mr-gpmrs"):
        options["ppd"] = args.ppd
    cluster = SimulatedCluster(num_nodes=args.nodes)
    result = skyline(
        data,
        algorithm=args.algorithm,
        prefs=prefs,
        cluster=cluster,
        engine=_make_engine(args.engine, args.workers, args),
        **options,
    )
    print(
        f"{args.algorithm}: skyline of {data.shape[0]} x {data.shape[1]} "
        f"dataset has {len(result)} tuples "
        f"({100 * len(result) / max(1, data.shape[0]):.2f}%)"
    )
    print(
        f"simulated runtime {result.runtime_s:.3f}s on {args.nodes} nodes, "
        f"wall {result.stats.wall_s:.3f}s"
    )
    for i in range(min(args.show, len(result))):
        row = ", ".join(f"{v:.4g}" for v in result.values[i])
        print(f"  #{result.indices[i]}: [{row}]")
    if len(result) > args.show:
        print(f"  ... and {len(result) - args.show} more")
    return 0


def _cmd_experiment(args) -> int:
    runner = EXPERIMENTS[args.name]
    kwargs = dict(
        scale=args.scale,
        cluster=SimulatedCluster(num_nodes=args.nodes),
        verbose=args.verbose,
    )
    if args.name.startswith("fig"):
        kwargs["quick"] = args.quick
        kwargs["include_dnf"] = args.include_dnf
    report = runner(**kwargs)
    print(report.render())
    if args.plot:
        from repro.bench.asciiplot import plot_panel

        for panel in report.panels:
            try:
                print()
                print(plot_panel(panel, logy=args.logy))
            except Exception as exc:
                print(f"(cannot plot panel {panel.title!r}: {exc})")
    from repro.bench.expectations import evaluate_report, render_verdicts

    verdicts = evaluate_report(args.name, report)
    if verdicts:
        print("\npaper-claim verdicts:")
        print(render_verdicts(verdicts))
    if args.csv:
        report.to_csv(args.csv)
        print(f"\nseries written to {args.csv}")
    return 0


def _cmd_compare(args) -> int:
    from repro.bench.reporting import format_table

    data = generate(
        args.distribution,
        args.cardinality,
        args.dimensionality,
        seed=args.seed,
    )
    cluster = SimulatedCluster(num_nodes=args.nodes)
    rows = []
    reference = None
    for name in args.algorithms.split(","):
        name = name.strip()
        result = skyline(data, algorithm=name, cluster=cluster)
        ids = frozenset(result.indices.tolist())
        if reference is None:
            reference = ids
        rows.append(
            [
                name,
                round(result.runtime_s, 3),
                round(result.stats.wall_s, 3),
                len(result),
                "yes" if ids == reference else "NO",
            ]
        )
    print(
        format_table(
            ["algorithm", "sim_s", "wall_s", "skyline", "agrees"],
            rows,
            title=(
                f"{args.distribution}, {args.cardinality} x "
                f"{args.dimensionality}, {args.nodes} nodes"
            ),
        )
    )
    return 0


def _cmd_gantt(args) -> int:
    from repro.mapreduce.trace import render_pipeline_gantt

    data = generate(
        args.distribution,
        args.cardinality,
        args.dimensionality,
        seed=args.seed,
    )
    cluster = SimulatedCluster(num_nodes=args.nodes)
    result = skyline(
        data,
        algorithm=args.algorithm,
        cluster=cluster,
        engine=_make_engine("serial", None, args),
    )
    print(
        f"{args.algorithm}: skyline {len(result)}, "
        f"simulated {result.runtime_s:.3f}s\n"
    )
    print(render_pipeline_gantt(cluster, result.stats.jobs, width=args.width))
    return 0


def _cmd_list() -> int:
    print("algorithms:")
    for name in available_algorithms():
        print(f"  {name}")
    print("experiments:")
    for name in sorted(EXPERIMENTS):
        print(f"  {name}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "compute":
            return _cmd_compute(args)
        if args.command == "experiment":
            return _cmd_experiment(args)
        if args.command == "compare":
            return _cmd_compare(args)
        if args.command == "gantt":
            return _cmd_gantt(args)
        return _cmd_list()
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
