"""Command-line interface: ``repro-skyline``.

Subcommands
-----------
``compute``     — compute a skyline of a CSV/NPY file or a generated
                  synthetic workload, with any registered algorithm;
                  ``--trace-out`` exports a Perfetto-loadable Chrome
                  trace, ``--report-out`` a machine-readable run report.
``experiment``  — reproduce one of the paper's figures (or an
                  ablation) and print its series.
``report``      — pretty-print one run report, or diff two.
``check``       — run the determinism / MapReduce-purity lint
                  (see docs/static_analysis.md); the CI gate is
                  ``repro-skyline check src``.
``serve``       — replay a seeded serving workload through the
                  incremental skyline frontend (``--compare`` also runs
                  the recompute-per-query baseline and prints the
                  throughput ratio).
``list``        — list algorithms, experiments and serve workloads
                  (``--counters`` adds the documented
                  counter/histogram vocabulary).

Examples::

    repro-skyline compute --distribution anticorrelated -c 10000 -d 5 \
        --algorithm mr-gpmrs
    repro-skyline compute --input hotels.csv --prefs min,min,max
    repro-skyline compute --algo mr-gpmrs --trace-out t.json --report-out r.json
    repro-skyline report r.json
    repro-skyline report a.json b.json
    repro-skyline experiment fig7 --scale 0.005 --verbose
    repro-skyline serve mixed-anticorrelated --compare
    repro-skyline check src --format json
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


from repro import available_algorithms, skyline
from repro.bench.experiments import EXPERIMENTS
from repro.data import generate, load_csv, load_npy
from repro.errors import ReproError
from repro.mapreduce.cluster import SimulatedCluster
from repro.mapreduce.faults import FaultPlan, RetryPolicy

#: The engine registry: name -> (class name, execution model, shared
#: memory, fault injection). ``repro-skyline list --engines`` prints
#: it and docs/architecture.md carries the same matrix; ``--engine``
#: everywhere accepts exactly these names.
ENGINE_REGISTRY = (
    (
        "serial",
        "SerialEngine",
        "sequential tasks, modelled parallelism",
        "no",
        "yes",
    ),
    (
        "threads",
        "ThreadPoolEngine",
        "concurrent tasks in one process",
        "no",
        "yes",
    ),
    (
        "processes",
        "ProcessPoolEngine",
        "worker processes, zero-copy blocks",
        "yes",
        "yes",
    ),
    (
        "bsp",
        "BSPEngine",
        "supersteps: compute -> h-relation -> barrier",
        "no",
        "yes",
    ),
    (
        "contract",
        "ContractCheckingEngine",
        "serial + purity-contract certificate",
        "no",
        "yes",
    ),
)

ENGINE_CHOICES = [name for name, *_ in ENGINE_REGISTRY]


def _add_fault_args(parser) -> None:
    """Fault-injection flags shared by ``compute`` and ``gantt``."""
    parser.add_argument(
        "--fault-seed",
        type=int,
        default=0,
        help="seed of the deterministic fault schedule",
    )
    parser.add_argument(
        "--fault-rate",
        type=float,
        default=0.0,
        help="per-attempt task failure probability (0 disables injection)",
    )
    parser.add_argument(
        "--slow-rate",
        type=float,
        default=0.0,
        help="per-attempt straggler probability",
    )
    parser.add_argument(
        "--speculative",
        action="store_true",
        help="launch backup copies of straggler tasks (first finisher wins)",
    )
    parser.add_argument(
        "--max-attempts",
        type=int,
        default=None,
        help="task retry budget (default: 1, or enough to survive the "
        "fault plan when one is active)",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-skyline",
        description="Skyline computation in (simulated) MapReduce — "
        "EDBT 2014 reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    compute = sub.add_parser("compute", help="compute one skyline")
    source = compute.add_mutually_exclusive_group()
    source.add_argument("--input", help="CSV (with header) or .npy file")
    source.add_argument(
        "--distribution",
        choices=["independent", "correlated", "anticorrelated", "clustered"],
        help="generate a synthetic workload instead of reading a file",
    )
    compute.add_argument("-c", "--cardinality", type=int, default=10_000)
    compute.add_argument("-d", "--dimensionality", type=int, default=4)
    compute.add_argument("--seed", type=int, default=0)
    compute.add_argument(
        "--algorithm", default="mr-gpmrs", choices=available_algorithms()
    )
    compute.add_argument(
        "--prefs",
        help="comma-separated per-dimension preference, e.g. min,max,min",
    )
    compute.add_argument("--num-reducers", type=int, default=None)
    compute.add_argument("--ppd", type=int, default=None)
    compute.add_argument("--nodes", type=int, default=13)
    compute.add_argument(
        "--engine",
        default="serial",
        choices=ENGINE_CHOICES,
        help="execution engine for the MapReduce runtime ('bsp' runs "
        "superstep programs with cost-frontier accounting, 'contract' "
        "runs serially while asserting purity/determinism contracts; "
        "see `repro-skyline list --engines`)",
    )
    compute.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker count for the threads/processes engines",
    )
    compute.add_argument(
        "--show", type=int, default=10, help="print the first N skyline rows"
    )
    compute.add_argument(
        "--trace-out",
        help="write a Chrome trace-event JSON (Perfetto/chrome://tracing) "
        "with the simulated schedule and the measured wall-clock spans",
    )
    compute.add_argument(
        "--report-out",
        help="write a machine-readable run report (JSON); see "
        "docs/observability.md for the format",
    )
    _add_fault_args(compute)

    experiment = sub.add_parser(
        "experiment", help="reproduce a figure of the paper"
    )
    experiment.add_argument("name", choices=sorted(EXPERIMENTS))
    experiment.add_argument("--scale", type=float, default=0.01)
    experiment.add_argument("--quick", action="store_true")
    experiment.add_argument("--include-dnf", action="store_true")
    experiment.add_argument("--verbose", action="store_true")
    experiment.add_argument("--nodes", type=int, default=13)
    experiment.add_argument("--csv", help="also write the series as CSV")
    experiment.add_argument(
        "--plot", action="store_true", help="render panels as ASCII charts"
    )
    experiment.add_argument(
        "--logy", action="store_true", help="log y-axis for --plot"
    )

    compare = sub.add_parser(
        "compare", help="run several algorithms on one workload"
    )
    compare.add_argument(
        "--algorithms",
        default="mr-gpsrs,mr-gpmrs,mr-bnl,mr-angle",
        help="comma-separated registry names",
    )
    compare.add_argument(
        "--distribution",
        default="anticorrelated",
        choices=["independent", "correlated", "anticorrelated", "clustered"],
    )
    compare.add_argument("-c", "--cardinality", type=int, default=10_000)
    compare.add_argument("-d", "--dimensionality", type=int, default=5)
    compare.add_argument("--seed", type=int, default=0)
    compare.add_argument("--nodes", type=int, default=13)

    gantt = sub.add_parser(
        "gantt", help="render the simulated schedule of one run"
    )
    gantt.add_argument(
        "--algorithm", default="mr-gpmrs", choices=available_algorithms()
    )
    gantt.add_argument(
        "--distribution",
        default="anticorrelated",
        choices=["independent", "correlated", "anticorrelated", "clustered"],
    )
    gantt.add_argument("-c", "--cardinality", type=int, default=10_000)
    gantt.add_argument("-d", "--dimensionality", type=int, default=5)
    gantt.add_argument("--seed", type=int, default=0)
    gantt.add_argument("--nodes", type=int, default=13)
    gantt.add_argument("--width", type=int, default=64)
    gantt.add_argument(
        "--engine",
        default="serial",
        choices=ENGINE_CHOICES,
        help="'bsp' renders the superstep view: barriers ('=') "
        "distinct from the shuffle's h-relation ('~')",
    )
    gantt.add_argument("--workers", type=int, default=None)
    _add_fault_args(gantt)

    report = sub.add_parser(
        "report", help="pretty-print one run report, or diff two"
    )
    report.add_argument(
        "files",
        nargs="+",
        help="one report to render, or two reports to diff "
        "(wall-clock differences are ignored)",
    )

    check = sub.add_parser(
        "check",
        help="lint for determinism / MapReduce-purity violations",
        description="Static analysis gate: REP001-REP007 always, "
        "REP008-REP011 with --deep (see docs/static_analysis.md). "
        "Exit 0 means no violations and no unused suppression pragmas.",
    )
    check.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to check (default: src)",
    )
    check.add_argument(
        "--deep",
        action="store_true",
        help="also run the interprocedural dataflow analyses "
        "(resource lifecycles, lock discipline, fleet RPC "
        "conformance, call-graph purity)",
    )
    check.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="output format",
    )
    check.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )

    from repro.serve.workloads import SERVE_WORKLOADS

    serve = sub.add_parser(
        "serve",
        help="replay a serving workload through the incremental frontend",
    )
    serve.add_argument(
        "workload",
        nargs="?",
        default="read-heavy",
        choices=sorted(SERVE_WORKLOADS),
    )
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument(
        "--policy",
        default="delta",
        choices=["delta", "recompute"],
        help="'delta' serves from the maintained index; 'recompute' is "
        "the recompute-per-query baseline",
    )
    serve.add_argument(
        "--compare",
        action="store_true",
        help="run both policies and print the throughput ratio",
    )
    serve.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="scale the workload's cardinality and op count",
    )
    serve.add_argument(
        "--engine",
        default="serial",
        choices=ENGINE_CHOICES,
        help="engine for staleness-budget batch refreshes",
    )
    serve.add_argument("--workers", type=int, default=None)
    serve.add_argument(
        "--tenants",
        type=int,
        default=None,
        help="override the workload's tenant count (>1 attributes ops "
        "to Zipf-popular tenants under weighted-fair admission)",
    )
    serve.add_argument(
        "--shards",
        type=int,
        default=None,
        help="serve from a sharded index (independent reducer groups) "
        "with a batching router frontend",
    )
    serve.add_argument(
        "--fleet",
        action="store_true",
        help="serve the shards from real worker processes "
        "(requires --shards; implied by --trace-out with --shards > 1 "
        "so the trace shows genuine multi-process spans)",
    )
    serve.add_argument(
        "--trace-out",
        help="export the serving-path trace (frontend, per-shard, and "
        "fleet-worker spans stitched by request id) as Chrome "
        "trace-event JSON, loadable in Perfetto",
    )
    serve.add_argument(
        "--report-out",
        help="write the machine-readable serve run report (counters, "
        "latency histograms, SLO burn rates, flight-recorder dumps)",
    )

    lister = sub.add_parser(
        "list", help="list algorithms, engines, experiments and workloads"
    )
    lister.add_argument(
        "--counters",
        action="store_true",
        help="also list the documented counter/histogram/gauge vocabulary",
    )
    lister.add_argument(
        "--engines",
        action="store_true",
        help="also list the engine registry (execution model, "
        "shared-memory and fault-injection support)",
    )
    return parser


def _fault_plan(args) -> Optional[FaultPlan]:
    if args.fault_rate <= 0 and args.slow_rate <= 0:
        return None
    return FaultPlan(
        seed=args.fault_seed,
        fail_rate=args.fault_rate,
        slow_rate=args.slow_rate,
    )


def _make_engine(name: str, workers: Optional[int], args, bus=None):
    faults = _fault_plan(args)
    max_attempts = args.max_attempts
    if max_attempts is None:
        # Hadoop's default budget, stretched if the plan needs more.
        max_attempts = max(4, faults.min_attempts()) if faults else 1
    retry = RetryPolicy(max_attempts=max_attempts)
    kwargs = dict(
        retry=retry, faults=faults, speculative=args.speculative, bus=bus
    )
    if name == "threads":
        from repro.mapreduce.parallel import ThreadPoolEngine

        return ThreadPoolEngine(max_workers=workers, **kwargs)
    if name == "processes":
        from repro.mapreduce.parallel import ProcessPoolEngine

        return ProcessPoolEngine(max_workers=workers, **kwargs)
    if name == "bsp":
        from repro.bsp import BSPEngine

        return BSPEngine(**kwargs)
    if name == "contract":
        from repro.check.contracts import ContractCheckingEngine

        return ContractCheckingEngine(**kwargs)
    if (
        faults is not None
        or args.speculative
        or args.max_attempts
        or bus is not None
    ):
        from repro.mapreduce.engine import SerialEngine

        return SerialEngine(**kwargs)
    return None  # algorithm default: SerialEngine


def _cmd_compute(args) -> int:
    if args.input:
        if args.input.endswith(".npy"):
            data = load_npy(args.input)
        else:
            data = load_csv(args.input).values
    else:
        data = generate(
            args.distribution or "independent",
            args.cardinality,
            args.dimensionality,
            seed=args.seed,
        )
    prefs = args.prefs.split(",") if args.prefs else None
    options = {}
    if args.num_reducers is not None and args.algorithm in (
        "mr-gpmrs",
        "mr-bitmap",
    ):
        options["num_reducers"] = args.num_reducers
    if args.ppd is not None and args.algorithm in ("mr-gpsrs", "mr-gpmrs"):
        options["ppd"] = args.ppd
    cluster = SimulatedCluster(num_nodes=args.nodes)
    observing = bool(args.trace_out or args.report_out)
    bus = tracer = collector = None
    if observing:
        from repro.obs import EventBus, MetricsCollector, SpanTracer

        bus = EventBus()
        tracer = bus.subscribe(SpanTracer())
        collector = bus.subscribe(MetricsCollector())
    engine = _make_engine(args.engine, args.workers, args, bus=bus)
    result = skyline(
        data,
        algorithm=args.algorithm,
        prefs=prefs,
        cluster=cluster,
        engine=engine,
        **options,
    )
    print(
        f"{args.algorithm}: skyline of {data.shape[0]} x {data.shape[1]} "
        f"dataset has {len(result)} tuples "
        f"({100 * len(result) / max(1, data.shape[0]):.2f}%)"
    )
    print(
        f"simulated runtime {result.runtime_s:.3f}s on {args.nodes} nodes, "
        f"wall {result.stats.wall_s:.3f}s"
    )
    for i in range(min(args.show, len(result))):
        row = ", ".join(f"{v:.4g}" for v in result.values[i])
        print(f"  #{result.indices[i]}: [{row}]")
    if len(result) > args.show:
        print(f"  ... and {len(result) - args.show} more")
    cost = getattr(engine, "cost", None)
    if cost is not None and cost.rounds:
        print(f"bsp cost: {cost.describe()}")
    if args.trace_out:
        from repro.obs import write_chrome_trace

        if args.engine == "bsp":
            # Superstep-structured simulated clock: barriers visible.
            from repro.bsp import bsp_schedule_spans as simulated_spans
        else:
            from repro.mapreduce.trace import schedule_spans as simulated_spans

        write_chrome_trace(
            args.trace_out,
            {
                "simulated": simulated_spans(cluster, result.stats.jobs),
                "wall": tracer.wall_spans(),
            },
        )
        print(f"trace written to {args.trace_out} (open in Perfetto)")
    if args.report_out:
        from repro.obs import build_report, write_report

        report = build_report(
            result,
            data,
            cluster,
            engine=engine,
            collector=collector,
            config={
                "source": args.input or (args.distribution or "independent"),
                "seed": args.seed,
                "prefs": args.prefs,
            },
        )
        write_report(args.report_out, report)
        print(f"report written to {args.report_out}")
    return 0


def _cmd_experiment(args) -> int:
    runner = EXPERIMENTS[args.name]
    kwargs = dict(
        scale=args.scale,
        cluster=SimulatedCluster(num_nodes=args.nodes),
        verbose=args.verbose,
    )
    if args.name.startswith("fig"):
        kwargs["quick"] = args.quick
        kwargs["include_dnf"] = args.include_dnf
    report = runner(**kwargs)
    print(report.render())
    if args.plot:
        from repro.bench.asciiplot import plot_panel

        for panel in report.panels:
            try:
                print()
                print(plot_panel(panel, logy=args.logy))
            except (ReproError, ValueError, ArithmeticError, LookupError) as exc:
                # Degenerate series (empty, non-positive on --logy,
                # ragged) — plotting is cosmetic, the report already
                # printed. Anything else is a real bug and propagates.
                print(f"(cannot plot panel {panel.title!r}: {exc})")
    from repro.bench.expectations import evaluate_report, render_verdicts

    verdicts = evaluate_report(args.name, report)
    if verdicts:
        print("\npaper-claim verdicts:")
        print(render_verdicts(verdicts))
    if args.csv:
        report.to_csv(args.csv)
        print(f"\nseries written to {args.csv}")
    return 0


def _cmd_compare(args) -> int:
    from repro.bench.reporting import format_table

    data = generate(
        args.distribution,
        args.cardinality,
        args.dimensionality,
        seed=args.seed,
    )
    cluster = SimulatedCluster(num_nodes=args.nodes)
    rows = []
    reference = None
    for name in args.algorithms.split(","):
        name = name.strip()
        result = skyline(data, algorithm=name, cluster=cluster)
        ids = frozenset(result.indices.tolist())
        if reference is None:
            reference = ids
        rows.append(
            [
                name,
                round(result.runtime_s, 3),
                round(result.stats.wall_s, 3),
                len(result),
                "yes" if ids == reference else "NO",
            ]
        )
    print(
        format_table(
            ["algorithm", "sim_s", "wall_s", "skyline", "agrees"],
            rows,
            title=(
                f"{args.distribution}, {args.cardinality} x "
                f"{args.dimensionality}, {args.nodes} nodes"
            ),
        )
    )
    return 0


def _cmd_gantt(args) -> int:
    from repro.mapreduce.trace import render_pipeline_gantt

    data = generate(
        args.distribution,
        args.cardinality,
        args.dimensionality,
        seed=args.seed,
    )
    cluster = SimulatedCluster(num_nodes=args.nodes)
    engine = _make_engine(args.engine, args.workers, args)
    result = skyline(
        data,
        algorithm=args.algorithm,
        cluster=cluster,
        engine=engine,
    )
    print(
        f"{args.algorithm}: skyline {len(result)}, "
        f"simulated {result.runtime_s:.3f}s\n"
    )
    if args.engine == "bsp":
        from repro.bsp import render_bsp_gantt

        print(render_bsp_gantt(cluster, result.stats.jobs, width=args.width))
        print(f"\nbsp cost: {engine.cost.describe()}")
    else:
        print(
            render_pipeline_gantt(cluster, result.stats.jobs, width=args.width)
        )
    return 0


def _cmd_report(args) -> int:
    from repro.obs import diff_reports, load_report, render_report

    if len(args.files) == 1:
        print(render_report(load_report(args.files[0])))
        return 0
    if len(args.files) != 2:
        print("error: report takes one or two files", file=sys.stderr)
        return 2
    first, second = (load_report(path) for path in args.files)
    differences = diff_reports(first, second)
    if not differences:
        print(
            f"{args.files[0]} and {args.files[1]} are identical "
            "(wall-clock fields ignored)"
        )
        return 0
    print(f"{len(differences)} difference(s):")
    for line in differences:
        print(f"  {line}")
    return 1


def _cmd_check(args) -> int:
    from repro.check import runner

    if args.list_rules:
        print(runner.list_rules())
        return 0
    try:
        violations = runner.check_paths(args.paths, deep=args.deep)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(runner.render_json(violations))
    else:
        print(runner.render_text(violations))
    return 1 if violations else 0


def _serve_engine(name: str, workers: Optional[int]):
    if name == "threads":
        from repro.mapreduce.parallel import ThreadPoolEngine

        return ThreadPoolEngine(max_workers=workers)
    if name == "processes":
        from repro.mapreduce.parallel import ProcessPoolEngine

        return ProcessPoolEngine(max_workers=workers)
    if name == "bsp":
        from repro.bsp import BSPEngine

        return BSPEngine()
    if name == "contract":
        from repro.check.contracts import ContractCheckingEngine

        return ContractCheckingEngine()
    return None  # SkylineIndex default: SerialEngine


def _render_serve_report(report: dict) -> str:
    ops = report["ops"]
    shards = report.get("shards", 1)
    sharded = f", shards={shards}" if shards > 1 else ""
    lines = [
        f"serve workload {report['workload']!r} "
        f"(policy={report['policy']}, seed={report['seed']}{sharded})",
        f"  ops: {ops['query']} queries / {ops['insert']} inserts / "
        f"{ops['delete']} deletes",
        f"  served {report['queries_served']}, "
        f"shed {report['queries_shed']}, "
        f"timed out {report['queries_timed_out']}",
        f"  cache hit rate {100 * report['cache_hit_rate']:.1f}%",
        f"  latency p50 {1e6 * report['p50_latency_s']:.1f}us, "
        f"p99 {1e6 * report['p99_latency_s']:.1f}us",
        f"  throughput {report['queries_per_s']:.0f} queries/s "
        f"over {report['makespan_s']:.4f} virtual seconds",
        f"  final skyline {report['final_skyline_size']} tuples, "
        f"epoch {report['final_epoch']}, "
        f"batch refreshes {report['batch_refreshes']}",
    ]
    for tenant, stats in sorted(report.get("tenants", {}).items()):
        lines.append(
            f"  tenant {tenant}: {stats['served']}/{stats['submitted']} "
            f"served, shed {stats['shed']}, "
            f"timed out {stats['timed_out']}, "
            f"p99 {1e6 * stats['p99_latency_s']:.1f}us"
        )
    return "\n".join(lines)


def _cmd_serve(args) -> int:
    import time

    from repro.serve.workloads import resolve_workload, run_workload

    engine = _serve_engine(args.engine, args.workers)
    fleet = bool(
        args.fleet
        or (args.trace_out and args.shards is not None and args.shards > 1)
    )
    observing = bool(args.trace_out or args.report_out or fleet)
    bus = tracer = monitor = collector = None
    artifacts = {} if observing else None
    workload = resolve_workload(
        args.workload, scale=args.scale, tenants=args.tenants
    )
    if observing:
        from repro.obs import (
            EventBus,
            MetricsCollector,
            ServeTracer,
            SLOMonitor,
            default_objectives,
            default_window_s,
        )

        bus = EventBus()
        collector = bus.subscribe(MetricsCollector())
        monitor = bus.subscribe(
            SLOMonitor(
                default_objectives(workload),
                window_s=default_window_s(workload),
            )
        )
        tracer = ServeTracer()
    wall0 = time.perf_counter()
    report, _ = run_workload(
        workload,
        seed=args.seed,
        policy=args.policy,
        engine=engine,
        shards=args.shards,
        bus=bus,
        tracer=tracer,
        fleet=fleet,
        artifacts=artifacts,
    )
    wall_s = time.perf_counter() - wall0
    print(_render_serve_report(report))
    if monitor is not None:
        monitor.finalize()
        monitor.ingest_spans(tracer.serve_spans())
        monitor.ingest_spans(tracer.fleet_spans())
        summary = monitor.summary()
        for objective in summary["objectives"]:
            tripped = (
                f", {objective['tripped_windows']} window(s) TRIPPED"
                if objective["tripped_windows"]
                else ""
            )
            print(
                f"  slo {objective['name']}: worst burn "
                f"{objective['worst_burn']:.2f}x{tripped}"
            )
        dumps = summary["flight_recorder"]["dumps"]
        if dumps:
            print(f"  flight recorder: {len(dumps)} dump(s)")
    if args.trace_out:
        from repro.obs import write_chrome_trace

        write_chrome_trace(args.trace_out, tracer.clocks())
        print(f"trace written to {args.trace_out} (open in Perfetto)")
    if args.report_out:
        from repro.obs import build_serve_run_report, write_report

        run_report = build_serve_run_report(
            artifacts["stream"],
            report,
            artifacts["frontend"],
            skyline=artifacts["final_skyline"],
            monitor=monitor,
            collector=collector,
            config={
                "workload": workload.name,
                "seed": args.seed,
                "policy": args.policy,
                "shards": args.shards or 1,
                "fleet": fleet,
            },
            wall_s=wall_s,
        )
        write_report(args.report_out, run_report)
        print(f"report written to {args.report_out}")
    if args.compare:
        other_policy = "recompute" if args.policy == "delta" else "delta"
        other, _ = run_workload(
            args.workload,
            seed=args.seed,
            policy=other_policy,
            engine=engine,
            scale=args.scale,
            shards=args.shards,
            tenants=args.tenants,
        )
        print()
        print(_render_serve_report(other))
        delta_qps = (
            report if report["policy"] == "delta" else other
        )["queries_per_s"]
        recompute_qps = (
            other if report["policy"] == "delta" else report
        )["queries_per_s"]
        ratio = delta_qps / max(recompute_qps, 1e-12)
        print(
            f"\ndelta maintenance served {ratio:.1f}x more queries per "
            "virtual second than recompute-per-query"
        )
    return 0


def _cmd_list(args) -> int:
    from repro.serve.workloads import SERVE_WORKLOADS

    print("algorithms:")
    for name in available_algorithms():
        print(f"  {name}")
    if getattr(args, "engines", False):
        print("engines:")
        header = f"  {'name':10s} {'class':24s} {'shm':4s} {'faults':7s} execution model"
        print(header)
        for name, cls, model, shm, faults in ENGINE_REGISTRY:
            print(f"  {name:10s} {cls:24s} {shm:4s} {faults:7s} {model}")
    print("experiments:")
    for name in sorted(EXPERIMENTS):
        print(f"  {name}")
    print("serve workloads:")
    for name in sorted(SERVE_WORKLOADS):
        workload = SERVE_WORKLOADS[name]
        suffix = ""
        if workload.tenants > 1:
            suffix = (
                f" [tenants={workload.tenants}, "
                f"shape={workload.arrival_shape}, "
                f"quota={workload.tenant_quota:g}]"
            )
        print(f"  {name:24s} {workload.description}{suffix}")
    if getattr(args, "counters", False):
        from repro.obs import documented_metrics

        scopes = sorted({spec.scope for spec in documented_metrics()})
        for scope in scopes:
            print(f"{scope} metrics:")
            for spec in documented_metrics(scope):
                print(
                    f"  {spec.name:36s} {spec.kind:9s} [{spec.unit}] "
                    f"{spec.description}"
                )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "compute":
            return _cmd_compute(args)
        if args.command == "experiment":
            return _cmd_experiment(args)
        if args.command == "compare":
            return _cmd_compare(args)
        if args.command == "gantt":
            return _cmd_gantt(args)
        if args.command == "report":
            return _cmd_report(args)
        if args.command == "check":
            return _cmd_check(args)
        if args.command == "serve":
            return _cmd_serve(args)
        return _cmd_list(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
