"""Synthetic data generators (paper Section 7.1).

"For the tuple set R, we use synthetic data sets of independent and
anti-correlated distributions. The data are generated according to the
existing methods [4]" — i.e. Börzsönyi, Kossmann, Stocker, *The Skyline
Operator* (ICDE 2001). Implemented here:

* ``independent``     — uniform in the unit hypercube.
* ``correlated``      — points scattered tightly around the main
  diagonal; skylines are tiny.
* ``anticorrelated``  — points scattered around the anti-diagonal
  hyperplane Σx = d/2; points on the plane are mutually hard to
  dominate, so skylines are huge and grow quickly with d.
* ``clustered``       — (extra) Gaussian blobs; handy for the grid and
  PPD tests because occupancy is skewed.

All generators are deterministic under a seed and rejection-sample so
every point lies inside [0, 1]^d without clipping artefacts (clipping
would pile probability mass onto the faces of the cube and distort
skyline sizes).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Union

import numpy as np

from repro.errors import ValidationError

#: Jitter scales tuned to the Börzsönyi shapes.
_CORRELATED_SPREAD = 0.07
_ANTICORRELATED_JITTER = 0.08
_MAX_REJECTION_ROUNDS = 64


def _rng(seed: Union[None, int, np.random.Generator]) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def _check(cardinality: int, dimensionality: int) -> None:
    if cardinality < 0:
        raise ValidationError(f"cardinality must be >= 0, got {cardinality}")
    if dimensionality < 1:
        raise ValidationError(
            f"dimensionality must be >= 1, got {dimensionality}"
        )


def independent(cardinality: int, dimensionality: int, seed=None) -> np.ndarray:
    """Uniform i.i.d. points in [0, 1]^d."""
    _check(cardinality, dimensionality)
    rng = _rng(seed)
    return rng.random((cardinality, dimensionality))


def _rejection_fill(
    cardinality: int,
    dimensionality: int,
    rng: np.random.Generator,
    propose: Callable[[int], np.ndarray],
) -> np.ndarray:
    """Draw batches from ``propose`` keeping in-cube rows until full."""
    out = np.empty((cardinality, dimensionality))
    filled = 0
    for _ in range(_MAX_REJECTION_ROUNDS):
        if filled >= cardinality:
            break
        want = cardinality - filled
        batch = propose(max(want * 2, 64))
        ok = ((batch >= 0.0) & (batch <= 1.0)).all(axis=1)
        good = batch[ok][:want]
        out[filled : filled + good.shape[0]] = good
        filled += good.shape[0]
    if filled < cardinality:  # pragma: no cover - extremely unlikely
        raise ValidationError(
            "rejection sampling failed to fill the dataset; "
            "jitter parameters are too wide"
        )
    return out


def correlated(cardinality: int, dimensionality: int, seed=None) -> np.ndarray:
    """Points near the main diagonal: good on one dim => good on all."""
    _check(cardinality, dimensionality)
    rng = _rng(seed)

    def propose(k: int) -> np.ndarray:
        centre = rng.random((k, 1))
        jitter = rng.normal(0.0, _CORRELATED_SPREAD, (k, dimensionality))
        return centre + jitter

    if cardinality == 0:
        return np.empty((0, dimensionality))
    return _rejection_fill(cardinality, dimensionality, rng, propose)


def anticorrelated(cardinality: int, dimensionality: int, seed=None) -> np.ndarray:
    """Points near the anti-diagonal plane Σx = d/2: good on one dim
    => bad on others. The hard case for skylines."""
    _check(cardinality, dimensionality)
    rng = _rng(seed)
    d = dimensionality

    def propose(k: int) -> np.ndarray:
        base = rng.random((k, d))
        # Shift every coordinate equally so each row sums to d/2 ...
        shift = (d / 2.0 - base.sum(axis=1, keepdims=True)) / d
        plane = base + shift
        # ... then jitter off the plane.
        return plane + rng.normal(0.0, _ANTICORRELATED_JITTER, (k, d))

    if cardinality == 0:
        return np.empty((0, d))
    return _rejection_fill(cardinality, d, rng, propose)


def clustered(
    cardinality: int,
    dimensionality: int,
    seed=None,
    num_clusters: int = 5,
    spread: float = 0.05,
) -> np.ndarray:
    """Gaussian blobs around random centres (occupancy-skew workload)."""
    _check(cardinality, dimensionality)
    if num_clusters < 1:
        raise ValidationError(f"num_clusters must be >= 1, got {num_clusters}")
    rng = _rng(seed)
    if cardinality == 0:
        return np.empty((0, dimensionality))
    centres = rng.random((num_clusters, dimensionality))

    def propose(k: int) -> np.ndarray:
        picks = centres[rng.integers(0, num_clusters, k)]
        return picks + rng.normal(0.0, spread, (k, dimensionality))

    return _rejection_fill(cardinality, dimensionality, rng, propose)


#: Name -> generator mapping used by the CLI and the bench harness.
DISTRIBUTIONS: Dict[str, Callable[..., np.ndarray]] = {
    "independent": independent,
    "correlated": correlated,
    "anticorrelated": anticorrelated,
    "clustered": clustered,
}


def generate(
    distribution: str,
    cardinality: int,
    dimensionality: int,
    seed: Optional[int] = None,
    **kwargs,
) -> np.ndarray:
    """Dispatch by distribution name (see :data:`DISTRIBUTIONS`)."""
    try:
        generator = DISTRIBUTIONS[distribution]
    except KeyError:
        raise ValidationError(
            f"unknown distribution {distribution!r}; "
            f"available: {sorted(DISTRIBUTIONS)}"
        ) from None
    return generator(cardinality, dimensionality, seed=seed, **kwargs)
