"""Dataset persistence and realistic demo datasets.

The examples motivate skylines the way the literature does: hotels
(cheap and close to the beach) and basketball players (high on every
stat). Both demo datasets are synthetic but shaped to the domain, so
the examples run offline and deterministically.
"""

from __future__ import annotations

import csv
import os
from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.core.order import as_dataset
from repro.errors import DataError


@dataclass
class LabelledDataset:
    """A dataset with column names and optional row labels."""

    values: np.ndarray
    columns: Tuple[str, ...]
    labels: Tuple[str, ...] = ()

    def __post_init__(self):
        self.values = as_dataset(self.values)
        if len(self.columns) != self.values.shape[1]:
            raise DataError(
                f"{len(self.columns)} column names for "
                f"{self.values.shape[1]} columns"
            )
        if self.labels and len(self.labels) != self.values.shape[0]:
            raise DataError(
                f"{len(self.labels)} labels for {self.values.shape[0]} rows"
            )

    def __len__(self) -> int:
        return int(self.values.shape[0])

    def row_label(self, index: int) -> str:
        if self.labels:
            return self.labels[index]
        return f"row-{index}"


def save_csv(path: str, dataset: LabelledDataset) -> None:
    """Write a labelled dataset as CSV with a header row."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        header = (["label"] if dataset.labels else []) + list(dataset.columns)
        writer.writerow(header)
        for i, row in enumerate(dataset.values):
            prefix = [dataset.labels[i]] if dataset.labels else []
            writer.writerow(prefix + [repr(v) for v in row.tolist()])


def load_csv(path: str, has_labels: bool = False) -> LabelledDataset:
    """Read a CSV written by :func:`save_csv` (or compatible)."""
    if not os.path.exists(path):
        raise DataError(f"no such file: {path}")
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise DataError(f"{path} is empty") from None
        rows: List[List[float]] = []
        labels: List[str] = []
        for record in reader:
            if not record:
                continue
            if has_labels:
                labels.append(record[0])
                record = record[1:]
            rows.append([float(v) for v in record])
    columns = tuple(header[1:] if has_labels else header)
    values = np.asarray(rows, dtype=np.float64).reshape(len(rows), len(columns))
    return LabelledDataset(values=values, columns=columns, labels=tuple(labels))


def save_npy(path: str, data: np.ndarray) -> None:
    np.save(path, as_dataset(data))


def load_npy(path: str) -> np.ndarray:
    if not os.path.exists(path):
        raise DataError(f"no such file: {path}")
    return as_dataset(np.load(path))


def hotels(cardinality: int = 2000, seed: int = 7) -> LabelledDataset:
    """Synthetic hotel dataset: price vs distance-to-beach (+ rating).

    Price anti-correlates with distance (close hotels are expensive),
    which gives a healthy skyline — the classic skyline-query demo.
    Columns: price (minimise), distance_km (minimise),
    noise_db (minimise).
    """
    rng = np.random.default_rng(seed)
    distance = rng.gamma(2.0, 2.0, cardinality)  # km, skewed to close-by
    base_price = 260.0 / (1.0 + distance) + rng.normal(0, 18, cardinality)
    price = np.clip(base_price + rng.gamma(2.0, 12.0, cardinality), 25, None)
    noise = np.clip(
        55.0 - 2.2 * distance + rng.normal(0, 6, cardinality), 20, 90
    )
    values = np.column_stack([price, distance, noise])
    labels = tuple(f"hotel-{i:05d}" for i in range(cardinality))
    return LabelledDataset(
        values=values,
        columns=("price", "distance_km", "noise_db"),
        labels=labels,
    )


def players(cardinality: int = 1500, seed: int = 11) -> LabelledDataset:
    """Synthetic player-stats dataset (all columns to be *maximised*).

    Columns: points, rebounds, assists, steals. Stats correlate with a
    latent 'skill', with role trade-offs (scorers rebound less),
    producing a moderate skyline.
    """
    rng = np.random.default_rng(seed)
    skill = rng.beta(2.0, 5.0, cardinality)
    role = rng.random(cardinality)  # 0 = playmaker, 1 = big
    points = 30 * skill * (0.6 + 0.4 * role) + rng.normal(0, 1.5, cardinality)
    rebounds = 14 * skill * (0.3 + 0.7 * role) + rng.normal(0, 1.0, cardinality)
    assists = 11 * skill * (1.3 - role) + rng.normal(0, 0.8, cardinality)
    steals = 3 * skill + rng.normal(0, 0.3, cardinality)
    values = np.clip(
        np.column_stack([points, rebounds, assists, steals]), 0, None
    )
    labels = tuple(f"player-{i:05d}" for i in range(cardinality))
    return LabelledDataset(
        values=values,
        columns=("points", "rebounds", "assists", "steals"),
        labels=labels,
    )
