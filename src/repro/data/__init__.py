"""Synthetic workloads and dataset utilities."""

from repro.data.datasets import (
    LabelledDataset,
    hotels,
    load_csv,
    load_npy,
    players,
    save_csv,
    save_npy,
)
from repro.data.generators import (
    DISTRIBUTIONS,
    anticorrelated,
    clustered,
    correlated,
    generate,
    independent,
)

__all__ = [
    "DISTRIBUTIONS",
    "LabelledDataset",
    "anticorrelated",
    "clustered",
    "correlated",
    "generate",
    "hotels",
    "independent",
    "load_csv",
    "load_npy",
    "players",
    "save_csv",
    "save_npy",
]
