"""Occupancy and pruning analytics for a grid + bitstring.

Section 3.3's whole PPD discussion is about a trade-off that is easy
to state and hard to eyeball: finer grids prune more but cost more
partition comparisons. This module turns one (grid, data) pair into
the numbers behind that trade-off — occupancy, Equation-2 pruning
yield, tuples-per-partition distribution, group structure — for use by
examples, notebooks, and the PPD ablation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.core.order import as_dataset
from repro.errors import GridError
from repro.grid.bitstring import Bitstring
from repro.grid.cost import kappa_mapper, kappa_reducer, rho_rem
from repro.grid.grid import Grid
from repro.grid.groups import generate_independent_groups


@dataclass
class GridAnalysis:
    """All occupancy/pruning metrics of one grid over one dataset."""

    ppd: int
    dimensionality: int
    num_partitions: int
    cardinality: int
    occupied: int
    surviving: int
    pruned_partitions: int
    tuples_in_pruned: int
    tuples_per_occupied_mean: float
    tuples_per_occupied_max: int
    num_groups: int
    largest_group: int
    replicated_partitions: int
    predicted_surviving_upper: int  # rho_rem(n, d)
    kappa_mapper_bound: int
    kappa_reducer_bound: int

    @property
    def fill_factor(self) -> float:
        """Occupied cells / total cells."""
        return self.occupied / self.num_partitions

    @property
    def pruned_tuple_fraction(self) -> float:
        """Fraction of tuples eliminated before any dominance test."""
        if self.cardinality == 0:
            return 0.0
        return self.tuples_in_pruned / self.cardinality

    def render(self) -> str:
        lines = [
            f"grid n={self.ppd} d={self.dimensionality} "
            f"({self.num_partitions} cells), {self.cardinality} tuples",
            f"  occupied cells      : {self.occupied} "
            f"(fill {100 * self.fill_factor:.1f}%)",
            f"  after Eq.2 pruning  : {self.surviving} cells "
            f"({self.pruned_partitions} pruned; uniform-occupancy bound "
            f"{self.predicted_surviving_upper})",
            f"  tuples pruned       : {self.tuples_in_pruned} "
            f"({100 * self.pruned_tuple_fraction:.1f}% of data)",
            f"  tuples/occupied cell: mean {self.tuples_per_occupied_mean:.1f}, "
            f"max {self.tuples_per_occupied_max}",
            f"  independent groups  : {self.num_groups} "
            f"(largest {self.largest_group}, "
            f"{self.replicated_partitions} partitions replicated)",
            f"  cost bounds         : kappa_mapper {self.kappa_mapper_bound}, "
            f"kappa_reducer {self.kappa_reducer_bound}",
        ]
        return "\n".join(lines)


def analyze_grid(grid: Grid, data) -> GridAnalysis:
    """Compute the full :class:`GridAnalysis` of ``data`` under ``grid``."""
    arr = as_dataset(data)
    if arr.shape[1] != grid.d:
        raise GridError(
            f"data has {arr.shape[1]} dimensions, grid has {grid.d}"
        )
    cardinality = arr.shape[0]
    occupancy = Bitstring.from_data(grid, arr)
    pruned = occupancy.prune_dominated()
    cells = grid.cell_indices(arr) if cardinality else np.empty(0, np.int64)
    counts = np.bincount(cells, minlength=grid.num_partitions)
    tuples_in_pruned = int(counts[occupancy.bits & ~pruned.bits].sum())
    occupied_counts = counts[occupancy.bits]
    groups = generate_independent_groups(grid, pruned)
    membership: Dict[int, int] = {}
    for group in groups:
        for p in group.members:
            membership[p] = membership.get(p, 0) + 1
    return GridAnalysis(
        ppd=grid.n,
        dimensionality=grid.d,
        num_partitions=grid.num_partitions,
        cardinality=cardinality,
        occupied=occupancy.count(),
        surviving=pruned.count(),
        pruned_partitions=occupancy.count() - pruned.count(),
        tuples_in_pruned=tuples_in_pruned,
        tuples_per_occupied_mean=(
            float(occupied_counts.mean()) if occupied_counts.size else 0.0
        ),
        tuples_per_occupied_max=(
            int(occupied_counts.max()) if occupied_counts.size else 0
        ),
        num_groups=len(groups),
        largest_group=max((len(g.members) for g in groups), default=0),
        replicated_partitions=sum(1 for v in membership.values() if v > 1),
        predicted_surviving_upper=rho_rem(grid.n, grid.d),
        kappa_mapper_bound=kappa_mapper(grid.n, grid.d),
        kappa_reducer_bound=kappa_reducer(grid.n, grid.d),
    )


def ppd_sweep(
    data,
    candidates: List[int],
    bounds: Optional[tuple] = None,
) -> List[GridAnalysis]:
    """Analyse every candidate PPD over the same dataset."""
    arr = as_dataset(data)
    if bounds is not None:
        lows = np.asarray(bounds[0], dtype=np.float64)
        highs = np.asarray(bounds[1], dtype=np.float64)
    else:
        if arr.shape[0] == 0:
            raise GridError("cannot sweep PPDs over an empty dataset "
                            "without explicit bounds")
        lows, highs = arr.min(axis=0), arr.max(axis=0)
    return [
        analyze_grid(Grid(n, lows, highs), arr) for n in candidates
    ]
