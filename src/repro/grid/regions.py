"""Partition dominance, dominating/anti-dominating regions.

Paper Definitions 2-4 and 6, in the coordinate formulation that the
half-open cell geometry makes exact (see DESIGN.md Section 4):

* ``pi`` dominates ``pj``  ⇔  coords(pi) <  coords(pj) strictly on
  *every* axis (then every tuple of pi dominates every tuple of pj —
  Lemma 1).
* ``pj ∈ pi.ADR``  ⇔  coords(pj) ≤ coords(pi) on every axis and
  ``pj ≠ pi`` (only such partitions can hold tuples dominating tuples
  of pi).

Both match the paper's worked examples: in Figure 2's 3x3 grid,
``p4.DR = {p8}`` and ``p4.ADR = {p0, p1, p3}``, and |ADR| equals
Equation 6's ``∏ coords − 1`` with 1-based coordinates.
"""

from __future__ import annotations

import itertools
from typing import Iterator

import numpy as np

from repro.grid.grid import Grid


def partition_dominates(grid: Grid, i: int, j: int) -> bool:
    """Definition 2: does partition ``i`` dominate partition ``j``?"""
    ci = grid.coords_of(i)
    cj = grid.coords_of(j)
    return all(a < b for a, b in zip(ci, cj))


def in_anti_dominating_region(grid: Grid, member: int, of: int) -> bool:
    """Definition 4: is ``member`` in partition ``of``'s ADR?"""
    if member == of:
        return False
    cm = grid.coords_of(member)
    co = grid.coords_of(of)
    return all(a <= b for a, b in zip(cm, co))


def dominating_region(grid: Grid, index: int) -> Iterator[int]:
    """Definition 3: indices of partitions dominated by ``index``.

    These are the cells strictly greater on every axis; yielded in
    ascending index order.
    """
    coords = grid.coords_of(index)
    ranges = [range(c + 1, grid.n) for c in coords]
    for combo in itertools.product(*reversed(ranges)):
        yield grid.index_of(tuple(reversed(combo)))


def anti_dominating_region(grid: Grid, index: int) -> Iterator[int]:
    """Definition 4: indices of partitions in ``index``'s ADR.

    Cells less-or-equal on every axis, excluding the partition itself;
    yielded in ascending index order.
    """
    coords = grid.coords_of(index)
    ranges = [range(0, c + 1) for c in coords]
    for combo in itertools.product(*reversed(ranges)):
        candidate = tuple(reversed(combo))
        if candidate != coords:
            yield grid.index_of(candidate)


def adr_size(grid: Grid, index: int) -> int:
    """|ADR| without enumeration: ∏(coord_k + 1) − 1 (Equation 6 with
    1-based coordinates)."""
    coords = grid.coords_of(index)
    size = 1
    for c in coords:
        size *= c + 1
    return size - 1


def dr_size(grid: Grid, index: int) -> int:
    """|DR| without enumeration: ∏(n − 1 − coord_k)."""
    coords = grid.coords_of(index)
    size = 1
    for c in coords:
        size *= grid.n - 1 - c
    return size


def strictly_dominated_mask(grid: Grid, occupied: np.ndarray) -> np.ndarray:
    """For every cell: is it dominated by some *occupied* cell?

    Vectorised over the whole grid: a cell ``c`` is dominated iff some
    occupied cell is ≤ ``c − (1,…,1)`` componentwise. A running
    cumulative-OR along each axis gives "occupied anywhere ≤ here";
    shifting that tensor by +1 on every axis yields the strict test.
    O(d · n^d) instead of O(n^d · n^d).
    """
    occupied = np.asarray(occupied, dtype=bool).ravel()
    if occupied.shape[0] != grid.num_partitions:
        raise ValueError(
            f"occupancy vector has {occupied.shape[0]} cells, "
            f"grid has {grid.num_partitions}"
        )
    tensor = occupied.reshape(grid.shape(), order="F")
    cum = tensor.copy()
    for axis in range(grid.d):
        np.logical_or.accumulate(cum, axis=axis, out=cum)
    dominated = np.zeros_like(tensor)
    inner = tuple(slice(1, None) for _ in range(grid.d))
    shifted = tuple(slice(0, -1) for _ in range(grid.d))
    dominated[inner] = cum[shifted]
    return dominated.reshape(-1, order="F")


def weakly_covered_mask(grid: Grid, occupied: np.ndarray) -> np.ndarray:
    """For every cell: does some occupied cell lie ≤ it componentwise?

    (Includes the cell itself.) Used to find maximum partitions: an
    occupied cell ``p`` is *maximum* (Definition 6) iff no other
    occupied cell is ≥ it componentwise.
    """
    occupied = np.asarray(occupied, dtype=bool).ravel()
    tensor = occupied.reshape(grid.shape(), order="F")
    cum = tensor.copy()
    for axis in range(grid.d):
        np.logical_or.accumulate(cum, axis=axis, out=cum)
    return cum.reshape(-1, order="F")


def maximum_partitions(grid: Grid, occupied: np.ndarray) -> np.ndarray:
    """Indices of maximum partitions (Definition 6) among ``occupied``.

    A non-empty partition ``pm`` is maximum iff it is in no partition's
    ADR, i.e. no *other* occupied cell has coordinates ≥ pm's on every
    axis. Checked directly on the (usually small) occupied set.
    """
    occupied = np.asarray(occupied, dtype=bool).ravel()
    if occupied.shape[0] != grid.num_partitions:
        raise ValueError(
            f"occupancy vector has {occupied.shape[0]} cells, "
            f"grid has {grid.num_partitions}"
        )
    candidates = np.flatnonzero(occupied)
    coords = grid.coords_array()
    occupied_coords = coords[candidates]
    result = []
    for idx in candidates:
        geq = (occupied_coords >= coords[idx]).all(axis=1)
        # exactly one componentwise-≥ occupied cell (itself) -> maximum
        if int(geq.sum()) == 1:
            result.append(int(idx))
    return np.asarray(result, dtype=np.int64)
