"""Grid partitioning, bitstrings, independent groups, and the cost model.

This package implements Sections 3, 5.1-5.2 (group machinery) and 6 of
the paper; the MapReduce algorithms in :mod:`repro.algorithms` are thin
orchestrations over these primitives.
"""

from repro.grid.analysis import GridAnalysis, analyze_grid, ppd_sweep
from repro.grid.bitstring import Bitstring
from repro.grid.cost import (
    kappa,
    kappa_mapper,
    kappa_reducer,
    kappa_surface,
    rho_dom,
    rho_rem,
)
from repro.grid.grid import MAX_PARTITIONS, Grid
from repro.grid.groups import (
    IndependentGroup,
    ReducerGroup,
    generate_independent_groups,
    merge_groups,
    merge_groups_balanced,
    merge_groups_communication,
    merge_groups_computation,
)
from repro.grid.ppd import (
    DEFAULT_TPP,
    candidate_ppds,
    cap_ppd,
    ppd_from_equation4,
    select_ppd,
)
from repro.grid.regions import (
    adr_size,
    anti_dominating_region,
    dominating_region,
    dr_size,
    in_anti_dominating_region,
    maximum_partitions,
    partition_dominates,
    strictly_dominated_mask,
)

__all__ = [
    "Bitstring",
    "DEFAULT_TPP",
    "Grid",
    "GridAnalysis",
    "analyze_grid",
    "ppd_sweep",
    "IndependentGroup",
    "MAX_PARTITIONS",
    "ReducerGroup",
    "adr_size",
    "anti_dominating_region",
    "candidate_ppds",
    "cap_ppd",
    "dominating_region",
    "dr_size",
    "generate_independent_groups",
    "in_anti_dominating_region",
    "kappa",
    "kappa_mapper",
    "kappa_reducer",
    "kappa_surface",
    "maximum_partitions",
    "merge_groups",
    "merge_groups_balanced",
    "merge_groups_communication",
    "merge_groups_computation",
    "partition_dominates",
    "ppd_from_equation4",
    "rho_dom",
    "rho_rem",
    "select_ppd",
    "strictly_dominated_mask",
]
