"""The Section 6 cost model: partition-wise comparison estimates.

The model counts executions of the critical operation of
``ComparePartitions`` (Algorithm 5 line 3) — one execution per
(partition, ADR-member) pair — under two worst-case assumptions:
every partition of every mapper is non-empty, and comparing partitions
prunes tuples but never empties a partition. The estimates are therefore
upper bounds, which is exactly what the paper's Figure 11 shows.

Quantities (paper Equations 5-9; closed forms derived from the sums):

* ``rho_rem(n, d)``   — partitions surviving bitstring pruning:
  ``n^d − (n−1)^d`` (the pruned cells form an (n−1)^d grid).
* ``rho_dom(coords)`` — per-partition comparisons: ``∏ coords − 1``
  with 1-based coordinates (= |ADR|).
* ``kappa(n, d)``     — Equation 7's full-box sum.
* ``kappa_surface(n, d, j)`` — the j-th surface's sum after removing
  overlap with surfaces 1..j−1.
* ``kappa_mapper(n, d)``  — Σ_j of the above (Equation 8).
* ``kappa_reducer(n, d)`` — the largest single surface, κ₁
  (Equation 9: each reducer handles one independent surface).

With S1 = Σ_{i=1..n} i = n(n+1)/2 and S2 = S1 − 1 (= Σ_{i=2..n} i):

    κ_j(n, d) = S2^(j−1) · S1^(d−j) − (n−1)^(j−1) · n^(d−j)

(The surface fixes one coordinate at 1, leaving d−1 free axes; j−1 of
them start at 2 to exclude overlap with earlier surfaces; the second
term subtracts the "−1" once per summed cell.) Brute-force summations
are provided and tested to agree exactly.
"""

from __future__ import annotations

import itertools
from typing import Sequence

from repro.errors import ValidationError


def _check(n: int, d: int) -> None:
    if n < 1:
        raise ValidationError(f"PPD n must be >= 1, got {n}")
    if d < 1:
        raise ValidationError(f"dimensionality must be >= 1, got {d}")


def rho_rem(n: int, d: int) -> int:
    """Equation 5: partitions remaining after bitstring pruning."""
    _check(n, d)
    return n ** d - (n - 1) ** d


def rho_dom(coords_one_based: Sequence[int]) -> int:
    """Equation 6: partition-wise comparisons for one partition."""
    product = 1
    for c in coords_one_based:
        if c < 1:
            raise ValidationError("coordinates are 1-based in the cost model")
        product *= c
    return product - 1


def kappa(n: int, d: int) -> int:
    """Equation 7: Σ over the full n^d box of (∏ coords − 1).

    Closed form: (n(n+1)/2)^d − n^d.
    """
    _check(n, d)
    s1 = n * (n + 1) // 2
    return s1 ** d - n ** d


def kappa_surface(n: int, d: int, j: int) -> int:
    """κ_j: the j-th (d−1)-dimensional surface, overlap-free.

    Surfaces are the d faces of the grid touching the origin; surface j
    fixes dimension j's coordinate at 1. To avoid double counting, the
    first j−1 free axes start at coordinate 2.
    """
    _check(n, d)
    if not 1 <= j <= d:
        raise ValidationError(f"surface index must be in [1, {d}], got {j}")
    s1 = n * (n + 1) // 2
    s2 = s1 - 1
    free = d - 1
    lo = j - 1  # axes summed from 2..n
    hi = free - lo  # axes summed from 1..n
    if n == 1:
        # s2 = 0 only contributes when lo > 0; the count term also
        # vanishes ((n-1)^lo = 0), keeping the formula exact.
        pass
    return (s2 ** lo) * (s1 ** hi) - ((n - 1) ** lo) * (n ** hi)


def kappa_mapper(n: int, d: int) -> int:
    """Equation 8: partition-wise comparisons on a single mapper."""
    _check(n, d)
    return sum(kappa_surface(n, d, j) for j in range(1, d + 1))


def kappa_reducer(n: int, d: int) -> int:
    """Equation 9: comparisons for the busiest reducer — the biggest
    surface, κ₁ (no overlap subtracted)."""
    return kappa_surface(n, d, 1)


# -- brute-force references (used by the test-suite) --------------------


def kappa_bruteforce(n: int, d: int) -> int:
    """Equation 7 summed literally."""
    _check(n, d)
    total = 0
    for combo in itertools.product(range(1, n + 1), repeat=d):
        product = 1
        for c in combo:
            product *= c
        total += product - 1
    return total


def kappa_surface_bruteforce(n: int, d: int, j: int) -> int:
    """κ_j summed literally over the surface's free axes."""
    _check(n, d)
    if not 1 <= j <= d:
        raise ValidationError(f"surface index must be in [1, {d}], got {j}")
    free = d - 1
    lo = j - 1
    ranges = [range(2, n + 1)] * lo + [range(1, n + 1)] * (free - lo)
    total = 0
    for combo in itertools.product(*ranges):
        product = 1
        for c in combo:
            product *= c
        total += product - 1  # the fixed axis contributes a factor of 1
    return total


def kappa_mapper_bruteforce(n: int, d: int) -> int:
    return sum(kappa_surface_bruteforce(n, d, j) for j in range(1, d + 1))
