"""The bitstring representation of grid occupancy (paper Section 3.2).

``Bitstring`` holds one bit per grid cell: bit ``i`` is 1 iff partition
``p_i`` is non-empty w.r.t. the tuples seen so far (Equation 1). Local
bitstrings from mappers are merged with bitwise OR; the merged bitstring
is then *pruned* (Equation 2): any partition dominated by a non-empty
partition is cleared, because Lemma 1 guarantees it cannot contain a
skyline tuple.

The payload is a packed byte vector, so shuffle-size accounting sees the
same ~``n**d / 8`` bytes Hadoop would move.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.errors import GridError
from repro.grid.grid import Grid
from repro.grid.regions import strictly_dominated_mask


class Bitstring:
    """One bit per grid partition; value semantics, mutable in place."""

    __slots__ = ("grid", "bits")

    def __init__(self, grid: Grid, bits: np.ndarray = None):
        self.grid = grid
        if bits is None:
            bits = np.zeros(grid.num_partitions, dtype=bool)
        else:
            bits = np.asarray(bits, dtype=bool).ravel().copy()
            if bits.shape[0] != grid.num_partitions:
                raise GridError(
                    f"bitstring length {bits.shape[0]} != "
                    f"{grid.num_partitions} partitions"
                )
        self.bits = bits

    # -- construction ---------------------------------------------------

    @classmethod
    def from_data(cls, grid: Grid, data) -> "Bitstring":
        """Equation 1: set the bit of every partition holding a tuple.

        This is the body of the paper's Algorithm 1 (the bitstring
        mapper), vectorised.
        """
        bs = cls(grid)
        if np.asarray(data).size:
            bs.bits[np.unique(grid.cell_indices(data))] = True
        return bs

    @classmethod
    def union(cls, grid: Grid, bitstrings) -> "Bitstring":
        """Bitwise OR of local bitstrings (Algorithm 2, lines 1-3)."""
        out = cls(grid)
        for bs in bitstrings:
            if isinstance(bs, Bitstring):
                if bs.grid.num_partitions != grid.num_partitions:
                    raise GridError("cannot union bitstrings of different grids")
                out.bits |= bs.bits
            else:
                out.bits |= np.asarray(bs, dtype=bool).ravel()
        return out

    # -- packing (what actually travels through the shuffle) -------------

    def to_bytes(self) -> bytes:
        return np.packbits(self.bits).tobytes()

    @classmethod
    def from_bytes(cls, grid: Grid, payload: bytes) -> "Bitstring":
        unpacked = np.unpackbits(
            np.frombuffer(payload, dtype=np.uint8), count=grid.num_partitions
        )
        return cls(grid, unpacked.astype(bool))

    # -- queries ----------------------------------------------------------

    def __len__(self) -> int:
        return int(self.bits.shape[0])

    def __getitem__(self, index: int) -> bool:
        return bool(self.bits[index])

    def __setitem__(self, index: int, value: bool) -> None:
        self.bits[index] = bool(value)

    def count(self) -> int:
        """Number of set bits (ρ in the paper's PPD heuristic)."""
        return int(self.bits.sum())

    def set_indices(self) -> np.ndarray:
        """Ascending indices of set bits."""
        return np.flatnonzero(self.bits).astype(np.int64)

    def __iter__(self) -> Iterator[bool]:
        return iter(self.bits.tolist())

    def any(self) -> bool:
        return bool(self.bits.any())

    def copy(self) -> "Bitstring":
        return Bitstring(self.grid, self.bits)

    def __eq__(self, other) -> bool:
        if not isinstance(other, Bitstring):
            return NotImplemented
        return self.grid == other.grid and np.array_equal(self.bits, other.bits)

    def __hash__(self):
        raise TypeError("Bitstring is unhashable")

    def to01(self) -> str:
        """'0'/'1' string in index order — matches the paper's notation
        (Figure 2's example grid reads 011110100)."""
        return "".join("1" if b else "0" for b in self.bits)

    @classmethod
    def from01(cls, grid: Grid, text: str) -> "Bitstring":
        if len(text) != grid.num_partitions:
            raise GridError(
                f"bit text length {len(text)} != {grid.num_partitions}"
            )
        return cls(grid, np.frombuffer(text.encode(), dtype=np.uint8) == ord("1"))

    # -- pruning ----------------------------------------------------------

    def prune_dominated(self) -> "Bitstring":
        """Equation 2: clear every partition dominated by a set one.

        Equivalent to Algorithm 2 lines 4-7 (for each set bit, clear its
        whole dominating region), but computed with the O(d·n^d)
        cumulative-OR sweep instead of enumerating DRs.
        """
        dominated = strictly_dominated_mask(self.grid, self.bits)
        return Bitstring(self.grid, self.bits & ~dominated)

    def prune_dominated_naive(self) -> "Bitstring":
        """Algorithm 2 lines 4-7 exactly as written (for tests).

        Walks indices ascending; for every set bit clears its DR. The
        paper's in-place loop may clear a bit before visiting it, which
        is harmless (transitivity); we replicate that behaviour.
        """
        from repro.grid.regions import dominating_region

        bits = self.bits.copy()
        for i in range(self.grid.num_partitions):
            if bits[i]:
                for j in dominating_region(self.grid, i):
                    bits[j] = False
        return Bitstring(self.grid, bits)
