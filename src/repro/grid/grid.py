"""The n x n grid partitioning of the data space (paper Section 3.1).

A :class:`Grid` divides a d-dimensional bounding box into ``n`` parts
per dimension (PPD), yielding ``n**d`` partitions. Partitions are
addressed by a *column-major* linear index (the paper's choice,
Section 3.2): index = sum_k coord_k * n**k, so dimension 0 varies
fastest. Cells are half-open boxes ``[min, max)`` except that the last
cell on each axis is closed, so every in-bounds point maps to exactly
one cell.

The half-open geometry is what makes the coordinate formulation of
partition dominance exact (see :mod:`repro.grid.regions`).
"""

from __future__ import annotations

from typing import Iterable, Tuple

import numpy as np

from repro.core.order import as_dataset, minmax_bounds
from repro.errors import GridError

#: Refuse to build grids with more cells than this; the bitstring and
#: occupancy tensors are dense.
MAX_PARTITIONS = 1 << 24


class Grid:
    """An ``n**d``-cell grid over the bounding box ``[lows, highs]``."""

    __slots__ = ("n", "d", "lows", "highs", "widths", "num_partitions", "_weights")

    def __init__(self, n: int, lows, highs):
        if int(n) != n or n < 1:
            raise GridError(f"PPD n must be a positive integer, got {n!r}")
        self.n = int(n)
        self.lows = np.asarray(lows, dtype=np.float64).ravel()
        self.highs = np.asarray(highs, dtype=np.float64).ravel()
        if self.lows.shape != self.highs.shape:
            raise GridError("lows and highs must have the same length")
        self.d = int(self.lows.shape[0])
        if self.d < 1:
            raise GridError("grid needs at least one dimension")
        if np.any(self.highs < self.lows):
            raise GridError("highs must be >= lows on every dimension")
        if self.n ** self.d > MAX_PARTITIONS:
            raise GridError(
                f"grid of {self.n}**{self.d} cells exceeds MAX_PARTITIONS"
            )
        spans = self.highs - self.lows
        # Degenerate (zero-span) dimensions put every point in cell 0.
        spans = np.where(spans > 0, spans, 1.0)
        self.widths = spans / self.n
        self.num_partitions = self.n ** self.d
        self._weights = self.n ** np.arange(self.d, dtype=np.int64)

    @classmethod
    def fit(cls, data, n: int) -> "Grid":
        """Build a grid spanning the bounding box of ``data``."""
        lows, highs = minmax_bounds(data)
        return cls(n, lows, highs)

    @classmethod
    def unit(cls, n: int, d: int) -> "Grid":
        """Grid over the unit hypercube [0, 1]^d."""
        return cls(n, np.zeros(d), np.ones(d))

    # -- coordinates ----------------------------------------------------

    def coords_of(self, index: int) -> Tuple[int, ...]:
        """Column-major linear index -> per-dimension cell coordinates."""
        if not 0 <= index < self.num_partitions:
            raise GridError(f"partition index {index} out of range")
        coords = []
        for _ in range(self.d):
            coords.append(index % self.n)
            index //= self.n
        return tuple(coords)

    def index_of(self, coords: Iterable[int]) -> int:
        """Per-dimension cell coordinates -> column-major linear index."""
        coords = tuple(int(c) for c in coords)
        if len(coords) != self.d:
            raise GridError(f"expected {self.d} coordinates, got {len(coords)}")
        if any(c < 0 or c >= self.n for c in coords):
            raise GridError(f"coordinates {coords} out of range for n={self.n}")
        index = 0
        for k in reversed(range(self.d)):
            index = index * self.n + coords[k]
        return index

    def cell_coords(self, data) -> np.ndarray:
        """Per-row integer cell coordinates, shape (rows, d).

        Points outside the bounding box are clamped to the border cells
        (relevant when a grid fitted on one data subset is applied to
        another, as the distributed-cache bitstring flow does).
        """
        arr = as_dataset(data)
        if arr.shape[1] != self.d:
            raise GridError(
                f"data has {arr.shape[1]} dimensions, grid has {self.d}"
            )
        rel = (arr - self.lows) / self.widths
        cells = np.floor(rel).astype(np.int64)
        np.clip(cells, 0, self.n - 1, out=cells)
        return cells

    def cell_indices(self, data) -> np.ndarray:
        """Per-row column-major partition index, shape (rows,)."""
        return self.cell_coords(data) @ self._weights

    def cell_index(self, point) -> int:
        """Partition index of a single point."""
        return int(self.cell_indices(np.asarray(point).reshape(1, -1))[0])

    # -- geometry -------------------------------------------------------

    def min_corner(self, index: int) -> np.ndarray:
        """The cell's best corner (lowest value on every dimension)."""
        coords = np.asarray(self.coords_of(index), dtype=np.float64)
        return self.lows + coords * self.widths

    def max_corner(self, index: int) -> np.ndarray:
        """The cell's worst corner (highest value on every dimension)."""
        coords = np.asarray(self.coords_of(index), dtype=np.float64)
        return self.lows + (coords + 1.0) * self.widths

    def coords_array(self) -> np.ndarray:
        """All cell coordinates, shape (num_partitions, d), index order."""
        idx = np.arange(self.num_partitions, dtype=np.int64)
        out = np.empty((self.num_partitions, self.d), dtype=np.int64)
        for k in range(self.d):
            out[:, k] = idx % self.n
            idx = idx // self.n
        return out

    def shape(self) -> Tuple[int, ...]:
        """Occupancy-tensor shape: d axes of length n.

        Axis order matches coordinate order: axis k is dimension k, and
        reshaping a length-``n**d`` index-ordered vector with Fortran
        order ('F') makes element ``[c0, c1, ...]`` the cell with those
        coordinates.
        """
        return (self.n,) * self.d

    def describe(self) -> str:
        return (
            f"Grid(n={self.n}, d={self.d}, cells={self.num_partitions}, "
            f"box=[{self.lows.tolist()}, {self.highs.tolist()}])"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return self.describe()

    def __eq__(self, other) -> bool:
        if not isinstance(other, Grid):
            return NotImplemented
        return (
            self.n == other.n
            and self.d == other.d
            and np.array_equal(self.lows, other.lows)
            and np.array_equal(self.highs, other.highs)
        )

    def __hash__(self):
        return hash((self.n, self.d, self.lows.tobytes(), self.highs.tobytes()))
