"""Choosing the Partitions-Per-Dimension (PPD), paper Section 3.3.

PPD (``n``) controls tuples-per-partition (TPP): too few TPP and
partition-level dominance checks cost more than they save; too many and
the grid is too coarse to prune. The paper derives the closed form

    n = (c / TPP) ** (1/d)                                 (Equation 4)

and, because the ideal TPP is unknown, an adaptive scheme: mappers build
bitstrings for every candidate PPD j = 2..⌈c^(1/d)⌉, the reducer merges
them per-j, counts non-empty partitions ρ_j, estimates TPPe = c/ρ_j and
picks a j by comparing estimates.

Two selection rules are provided:

* ``literal`` — the paper's formula as printed: minimise
  ``|c/ρ_j − c/j**d|``. On uniform data every candidate grid is fully
  occupied, making the difference 0 for all j and degenerating the rule
  to the smallest candidate; kept for fidelity and for the ablation
  bench.
* ``target`` (default) — minimise ``|c/ρ_j − TPP_target|``: pick the
  grid whose *observed* tuples-per-non-empty-partition is closest to the
  desired TPP. This respects the section's stated goal (hit a good TPP)
  while using the same measured ρ_j.
"""

from __future__ import annotations

import math
from typing import Dict, Sequence

from repro.errors import GridError, ValidationError
from repro.grid.grid import MAX_PARTITIONS

#: Default desired tuples-per-partition for Equation 4 / target rule.
DEFAULT_TPP = 512

#: Never consider more candidate PPDs than this (mappers emit one
#: bitstring per candidate).
MAX_CANDIDATES = 64


def ppd_from_equation4(cardinality: int, dimensionality: int, tpp: int = DEFAULT_TPP) -> int:
    """Equation 4: n = (c / TPP)^(1/d), rounded, at least 1.

    The result is additionally capped so that ``n**d`` stays within
    :data:`repro.grid.grid.MAX_PARTITIONS`.
    """
    if cardinality < 0:
        raise ValidationError(f"cardinality must be >= 0, got {cardinality}")
    if dimensionality < 1:
        raise ValidationError(f"dimensionality must be >= 1, got {dimensionality}")
    if tpp < 1:
        raise ValidationError(f"TPP must be >= 1, got {tpp}")
    if cardinality == 0:
        return 1
    n = round((cardinality / tpp) ** (1.0 / dimensionality))
    n = max(1, int(n))
    return cap_ppd(n, dimensionality)


def cap_ppd(n: int, dimensionality: int) -> int:
    """Largest n' <= n with n'**d <= MAX_PARTITIONS."""
    n = max(1, int(n))
    while n > 1 and n ** dimensionality > MAX_PARTITIONS:
        n -= 1
    return n


def candidate_ppds(cardinality: int, dimensionality: int) -> Sequence[int]:
    """The paper's candidate set: j = 2 .. n_m with n_m = ⌈c^(1/d)⌉.

    Capped both by MAX_CANDIDATES and by the dense-bitstring budget.
    Returns ``[1]`` when the data is too small for any 2+ grid.
    """
    if cardinality < 1:
        return [1]
    if dimensionality < 1:
        raise ValidationError(f"dimensionality must be >= 1, got {dimensionality}")
    nm = int(math.ceil(cardinality ** (1.0 / dimensionality)))
    nm = min(nm, MAX_CANDIDATES + 1, cap_ppd(nm, dimensionality))
    if nm < 2:
        return [1]
    return list(range(2, nm + 1))


def select_ppd(
    cardinality: int,
    nonempty_counts: Dict[int, int],
    dimensionality: int,
    strategy: str = "target",
    tpp: int = DEFAULT_TPP,
) -> int:
    """Pick a PPD from measured non-empty partition counts ρ_j.

    ``nonempty_counts`` maps candidate j -> ρ_j (the reducer-side count
    of set bits in the merged bitstring for the j-grid).
    """
    if not nonempty_counts:
        raise GridError("no candidate PPDs to select from")
    if cardinality < 1:
        return min(nonempty_counts)

    def literal_error(j: int) -> float:
        rho = max(1, nonempty_counts[j])
        return abs(cardinality / rho - cardinality / (j ** dimensionality))

    def target_error(j: int) -> float:
        rho = max(1, nonempty_counts[j])
        return abs(cardinality / rho - tpp)

    if strategy == "literal":
        error = literal_error
    elif strategy == "target":
        error = target_error
    else:
        raise ValidationError(
            f"unknown PPD selection strategy {strategy!r}; "
            "expected 'literal' or 'target'"
        )
    # Deterministic tie-break: smallest error, then smallest j.
    return min(sorted(nonempty_counts), key=lambda j: (error(j), j))
