"""Independent partition groups (paper Section 5).

An *independent partition group* (Definition 5) is a set of partitions
closed under anti-dominating regions: every partition's ADR lies inside
the group. Lemma 2 then guarantees the local skyline of the group's
tuples is a subset of the global skyline — which is what lets MR-GPMRS
use multiple reducers that never talk to each other.

Generation (Algorithm 7): repeatedly seed on the remaining partition
with the largest index (always a maximum partition, Definition 6,
because the column-major index is monotone in every coordinate), take
``{pm} ∪ pm.ADR`` as a group — ADR always w.r.t. the *original*
non-empty set — and clear the group's bits from the scan bitstring.
Partitions may be replicated across groups (the paper's Figure 6
replicates p1 and p3); a *responsible group* per partition
(Section 5.4.2) later deduplicates the output.

Merging (Section 5.4.1): when there are more groups than reducers,
groups are merged either to minimise communication (merge pairs sharing
the most partitions) or to balance computation (LPT on the estimated
cost |pm.ADR|). The paper found computation-based merging better; both
are implemented and compared by an ablation bench.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.errors import GridError, ValidationError
from repro.grid.bitstring import Bitstring
from repro.grid.grid import Grid


@dataclass(frozen=True)
class IndependentGroup:
    """One ``{pm} ∪ pm.ADR`` group produced by Algorithm 7."""

    seed: int
    members: Tuple[int, ...]  # sorted ascending, includes the seed

    def __post_init__(self):
        # The sorted-ascending invariant is what keeps every downstream
        # iteration (merging, responsibility designation, reducer
        # routing) deterministic; constructing members from an
        # unordered set would silently poison all of it (REP002's
        # dynamic counterpart).
        if any(
            a >= b for a, b in zip(self.members, self.members[1:])
        ):
            raise ValidationError(
                f"group members must be strictly ascending, got "
                f"{self.members[:8]}..."
            )
        if self.seed not in self.members:
            raise ValidationError(
                f"group seed {self.seed} missing from its members"
            )

    @property
    def adr_size(self) -> int:
        """|pm.ADR ∩ non-empty| — the paper's computation-cost estimate."""
        return len(self.members) - 1

    def __contains__(self, partition: int) -> bool:
        return partition in self.members


@dataclass
class ReducerGroup:
    """A merged unit of work for one reducer.

    ``partitions`` is the union of member-group partitions;
    ``responsible`` is the subset this reducer must *output* (duplicate
    elimination, Section 5.4.2).
    """

    group_id: int
    groups: Tuple[IndependentGroup, ...]
    partitions: Tuple[int, ...] = field(default=())
    responsible: Tuple[int, ...] = field(default=())

    @property
    def cost(self) -> int:
        """Estimated computation cost: Σ |pm.ADR| over member groups."""
        return sum(g.adr_size for g in self.groups)


def generate_independent_groups(
    grid: Grid, bitstring: Bitstring
) -> List[IndependentGroup]:
    """Algorithm 7 over the pruned global bitstring.

    Deterministic: the same bitstring yields the same groups in the same
    order on every mapper (the consistency requirement of Algorithm 8,
    line 11).
    """
    if bitstring.grid.num_partitions != grid.num_partitions:
        raise GridError("bitstring does not match grid")
    occupied = bitstring.bits.copy()
    nonempty = np.flatnonzero(occupied)
    if nonempty.size == 0:
        return []
    coords = grid.coords_array()
    nonempty_coords = coords[nonempty]
    scan = occupied.copy()
    groups: List[IndependentGroup] = []
    while True:
        remaining = np.flatnonzero(scan)
        if remaining.size == 0:
            break
        seed = int(remaining[-1])  # largest index -> maximum partition
        # ADR w.r.t. the ORIGINAL non-empty partitions (not the scan
        # remnant): members are non-empty cells ≤ seed componentwise.
        leq = (nonempty_coords <= coords[seed]).all(axis=1)
        members = nonempty[leq]
        groups.append(IndependentGroup(seed=seed, members=tuple(members.tolist())))
        scan[members] = False
    return groups


def merge_groups_computation(
    groups: Sequence[IndependentGroup], num_reducers: int
) -> List[ReducerGroup]:
    """LPT bin-packing on |pm.ADR|: balance reducer computation load."""
    if num_reducers < 1:
        raise ValidationError(f"num_reducers must be >= 1, got {num_reducers}")
    bins = min(num_reducers, len(groups))
    buckets: List[List[IndependentGroup]] = [[] for _ in range(bins)]
    loads = [0] * bins
    # Largest cost first; stable tie-break on seed for determinism.
    for group in sorted(groups, key=lambda g: (-g.adr_size, g.seed)):
        target = min(range(bins), key=lambda b: (loads[b], b))
        buckets[target].append(group)
        loads[target] += group.adr_size
    return _finalize([tuple(b) for b in buckets if b])


def merge_groups_communication(
    groups: Sequence[IndependentGroup], num_reducers: int
) -> List[ReducerGroup]:
    """Greedy pairwise merging of the groups sharing most partitions.

    Minimises replicated partitions (communication cost) at the expense
    of balance; Section 5.4.1's first option.
    """
    if num_reducers < 1:
        raise ValidationError(f"num_reducers must be >= 1, got {num_reducers}")
    clusters: List[List[IndependentGroup]] = [[g] for g in groups]
    member_sets: List[set] = [set(g.members) for g in groups]
    while len(clusters) > num_reducers:
        best = None
        best_overlap = -1
        for a in range(len(clusters)):
            for b in range(a + 1, len(clusters)):
                overlap = len(member_sets[a] & member_sets[b])
                if overlap > best_overlap:
                    best_overlap = overlap
                    best = (a, b)
        a, b = best
        clusters[a].extend(clusters[b])
        member_sets[a] |= member_sets[b]
        del clusters[b], member_sets[b]
    return _finalize([tuple(c) for c in clusters if c])


def merge_groups_balanced(
    groups: Sequence[IndependentGroup],
    num_reducers: int,
    communication_weight: float = 0.5,
) -> List[ReducerGroup]:
    """Blend of the two costs — the paper's Section 8 future work
    ("a merging method that balances the two different costs").

    Greedy assignment in descending |pm.ADR| order; each group goes to
    the bucket minimising

        load_after / max_load  +  w * new_partitions / group_size

    i.e. the computation-balance objective of LPT, discounted when a
    bucket already holds most of the group's partitions (no new
    replication = no extra communication). ``communication_weight`` of
    0 reduces to pure LPT; large values approach overlap-greedy.
    """
    if num_reducers < 1:
        raise ValidationError(f"num_reducers must be >= 1, got {num_reducers}")
    if communication_weight < 0:
        raise ValidationError(
            f"communication_weight must be >= 0, got {communication_weight}"
        )
    bins = min(num_reducers, len(groups))
    buckets: List[List[IndependentGroup]] = [[] for _ in range(bins)]
    loads = [0] * bins
    held: List[set] = [set() for _ in range(bins)]
    ordered = sorted(groups, key=lambda g: (-g.adr_size, g.seed))
    total = sum(g.adr_size for g in ordered) or 1
    for group in ordered:
        size = max(1, len(group.members))

        def score(b: int) -> Tuple[float, int]:
            new = len(set(group.members) - held[b])
            balance = (loads[b] + group.adr_size) / total
            return (balance + communication_weight * new / size, b)

        target = min(range(bins), key=score)
        buckets[target].append(group)
        loads[target] += group.adr_size
        held[target] |= set(group.members)
    return _finalize([tuple(b) for b in buckets if b])


def merge_groups(
    groups: Sequence[IndependentGroup],
    num_reducers: int,
    strategy: str = "computation",
) -> List[ReducerGroup]:
    """Dispatch on merging strategy ('computation' is the paper's pick)."""
    if strategy == "computation":
        return merge_groups_computation(groups, num_reducers)
    if strategy == "communication":
        return merge_groups_communication(groups, num_reducers)
    if strategy == "balanced":
        return merge_groups_balanced(groups, num_reducers)
    raise ValidationError(
        f"unknown merge strategy {strategy!r}; "
        "expected 'computation', 'communication', or 'balanced'"
    )


def _finalize(clusters: Sequence[Tuple[IndependentGroup, ...]]) -> List[ReducerGroup]:
    """Build ReducerGroups: union partitions + responsibility designation.

    Responsibility (Section 5.4.2): for every partition replicated
    across groups, the group ``{pm} ∪ pm.ADR`` with the minimal
    |pm.ADR| is designated (tie-break: smallest seed), so the busiest
    reducers are not further burdened; that group's reducer alone
    outputs the partition's local skyline.
    """
    # partition -> designated original group (min adr_size, then seed)
    designated: Dict[int, IndependentGroup] = {}
    for cluster in clusters:
        for group in cluster:
            for p in group.members:
                cur = designated.get(p)
                if cur is None or (group.adr_size, group.seed) < (
                    cur.adr_size,
                    cur.seed,
                ):
                    designated[p] = group
    # original group -> reducer group id
    owner: Dict[int, int] = {}
    for gid, cluster in enumerate(clusters):
        for group in cluster:
            owner[group.seed] = gid
    out: List[ReducerGroup] = []
    for gid, cluster in enumerate(clusters):
        partitions = sorted({p for g in cluster for p in g.members})
        responsible = sorted(
            p for p in partitions if owner[designated[p].seed] == gid
        )
        out.append(
            ReducerGroup(
                group_id=gid,
                groups=cluster,
                partitions=tuple(partitions),
                responsible=tuple(responsible),
            )
        )
    return out
