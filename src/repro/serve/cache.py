"""LRU result cache keyed on (dataset epoch, constraint region).

The frontend's fast path: a query's answer depends only on the index
**epoch** (bumped by every insert/delete) and the **constraint region**
it asked for, so ``(epoch, region)`` is a sound cache key — a delta
arriving between two identical queries changes the epoch, and the stale
entry can never be returned. Eviction is two-pronged:

* **LRU** — the cache holds at most ``capacity`` entries; a hit
  refreshes the entry's recency, a put over capacity drops the least
  recently used entry;
* **epoch invalidation** — after a delta the frontend calls
  :meth:`invalidate_before`, dropping every entry from an older epoch
  in one sweep (they can never hit again; keeping them only displaces
  live entries).

All hits/misses/evictions are charged to the documented ``serve.*``
counters. Not thread-safe on its own — the frontend serialises access
(virtual mode is single-threaded; threaded mode holds a lock).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Hashable, Optional, Tuple

import numpy as np

from repro.errors import ValidationError
from repro.mapreduce import counters as counter_names
from repro.mapreduce.counters import Counters


def region_key(region: Optional[Tuple]) -> Optional[Tuple]:
    """Canonical hashable form of a constraint region (None = full)."""
    if region is None:
        return None
    lows = tuple(float(x) for x in np.asarray(region[0]).ravel())
    highs = tuple(float(x) for x in np.asarray(region[1]).ravel())
    return (lows, highs)


class ResultCache:
    """Bounded LRU of query results keyed on (epoch, region)."""

    def __init__(
        self, capacity: int = 128, counters: Optional[Counters] = None
    ):
        if capacity < 0:
            raise ValidationError(f"capacity must be >= 0, got {capacity}")
        self.capacity = int(capacity)
        self.counters = counters if counters is not None else Counters()
        self._entries: "OrderedDict[Tuple, Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def _key(self, epoch: int, region: Optional[Tuple]) -> Tuple:
        return (int(epoch), region_key(region))

    def get(self, epoch: int, region: Optional[Tuple] = None):
        """Cached result or None; a hit refreshes LRU recency."""
        key = self._key(epoch, region)
        if key in self._entries:
            self._entries.move_to_end(key)
            self.hits += 1
            self.counters.inc(counter_names.SERVE_CACHE_HITS)
            return self._entries[key]
        self.misses += 1
        self.counters.inc(counter_names.SERVE_CACHE_MISSES)
        return None

    def put(self, epoch: int, region: Optional[Tuple], value) -> None:
        if self.capacity == 0:
            return
        key = self._key(epoch, region)
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1
            self.counters.inc(counter_names.SERVE_CACHE_EVICTIONS)

    def invalidate_before(self, epoch: int) -> int:
        """Drop every entry whose epoch predates ``epoch``."""
        stale = [key for key in self._entries if key[0] < epoch]
        for key in stale:
            del self._entries[key]
            self.evictions += 1
            self.counters.inc(counter_names.SERVE_CACHE_EVICTIONS)
        return len(stale)

    def contains(self, epoch: int, region: Optional[Tuple] = None) -> bool:
        """Membership probe without touching recency or counters."""
        return self._key(epoch, region) in self._entries

    def keys(self) -> Tuple[Hashable, ...]:
        """Current keys, LRU-first (tests and debugging)."""
        return tuple(self._entries.keys())

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
