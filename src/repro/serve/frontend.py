"""The admission-controlled query frontend over a :class:`SkylineIndex`.

Two execution modes share one serving core (result cache in front of
the index, typed events, documented counters):

* :class:`QueryFrontend` — the **deterministic virtual-clock mode**.
  Requests carry explicit arrival times and are replayed through a
  single-server FIFO queueing model: a query starts at
  ``max(server_free, arrival)``, is **shed** at admission when the
  bounded queue is full, **times out** when it would wait longer than
  the timeout, and otherwise runs for a virtual service time
  proportional to the *measured* work (dominance pairs charged by the
  index, result tuples copied, cache probes). Given the same seeded
  request schedule the whole run — every latency, every shed, every
  cache hit — is byte-identical, which is what lets the serve-gate CI
  job enforce latency/throughput thresholds without wall-clock noise.

* :class:`ThreadedFrontend` — a thin **real-thread mode** (worker
  thread + bounded ``queue.Queue``) for demos and smoke tests. Same
  cache/admission semantics, but latencies come from
  ``time.perf_counter`` and are *not* deterministic; nothing in CI
  asserts on them beyond liveness.

Serving policies (virtual mode):

* ``delta`` — answer from the incrementally-maintained skyline (cache
  in front); mutations pay their measured repair work on the server's
  clock. This is the subsystem under test.
* ``recompute`` — the baseline the ISSUE's ≥10x claim is measured
  against: every cache-less query recomputes the skyline from scratch
  (the paper's sequential sort-filter over a snapshot) and pays the
  measured comparison work; mutations only pay the storage update.

Both policies run the *same* cost model, so the throughput ratio
reflects algorithmic work, not tuned constants.
"""

from __future__ import annotations

import math
import queue as queue_module
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.core.dominance import DominanceCounter
from repro.core.pointset import PointSet
from repro.errors import ValidationError
from repro.mapreduce import counters as counter_names
from repro.mapreduce.counters import Counters
from repro.obs.events import ServeQueryRejected, ServeQueryServed
from repro.serve.cache import ResultCache
from repro.serve.index import SkylineIndex

SERVING_POLICIES = ("delta", "recompute")

#: Response statuses (the rejection subset mirrors
#: :data:`repro.obs.events.SERVE_REJECT_REASONS`).
RESPONSE_STATUSES = ("ok", "shed", "timeout")


@dataclass(frozen=True)
class CostModel:
    """Virtual seconds charged per unit of measured work.

    The absolute scale is arbitrary (it cancels out of the
    delta-vs-recompute throughput ratio); the *relative* weights say
    that a dominance pair and a copied result tuple cost the same, a
    cache hit skips the index entirely, and every operation pays a
    fixed dispatch overhead.
    """

    seconds_per_pair: float = 1e-7
    per_result_tuple_s: float = 1e-7
    query_base_s: float = 1e-4
    cache_hit_s: float = 1e-5
    mutation_base_s: float = 2e-5
    # Sharded-fleet constants (trailing, defaulted: positional callers
    # of the original five fields are unaffected). A fanned-out query
    # pays dispatch per shard on the router plus the *slowest* shard
    # read; mutations pay the largest per-shard repair, which is how a
    # fleet turns divided repair work into served capacity.
    shard_dispatch_s: float = 2e-6
    shard_read_base_s: float = 2e-5


@dataclass(frozen=True)
class QueryResponse:
    """Outcome of one submitted query."""

    request_id: int
    status: str  # 'ok' | 'shed' | 'timeout'
    arrival_s: float
    finish_s: float
    latency_s: float
    cache_hit: bool = False
    result_size: int = 0
    result: Optional[PointSet] = None


def _bus_active(bus) -> bool:
    return bus is not None and bus.active


class _ServingCore:
    """Cache + index lookup shared by both frontends."""

    def __init__(
        self,
        index: SkylineIndex,
        policy: str,
        cache_capacity: int,
        counters: Counters,
        bus,
        cost: CostModel,
    ):
        if policy not in SERVING_POLICIES:
            raise ValidationError(
                f"policy must be one of {SERVING_POLICIES}, got {policy!r}"
            )
        self.index = index
        self.policy = policy
        self.counters = counters
        self.bus = bus
        self.cost = cost
        self.cache = ResultCache(cache_capacity, counters)

    def answer(self, region) -> Tuple[PointSet, bool, float]:
        """(result, cache_hit, virtual service seconds) for one query."""
        epoch = self.index.epoch
        if self.cache.capacity:
            cached = self.cache.get(epoch, region)
            if cached is not None:
                return cached, True, self.cost.cache_hit_s
        if self.policy == "delta":
            result = self.index.query(region)
            pairs = 0
        else:
            counter = DominanceCounter()
            snapshot = self.index.snapshot()
            sky = snapshot.local_skyline(counter)
            sky = sky.sort_by(sky.ids)  # the batch output convention
            self.counters.inc(counter_names.TUPLE_COMPARES, counter.pairs)
            result = _filter_region(sky, region)
            pairs = counter.pairs
        if self.cache.capacity:
            self.cache.put(epoch, region, result)
        duration = (
            self.cost.query_base_s
            + pairs * self.cost.seconds_per_pair
            + len(result) * self.cost.per_result_tuple_s
        )
        return result, False, duration


def _filter_region(sky: PointSet, region) -> PointSet:
    if region is None or len(sky) == 0:
        return sky
    lows = np.asarray(region[0], dtype=np.float64).ravel()
    highs = np.asarray(region[1], dtype=np.float64).ravel()
    inside = (sky.values >= lows).all(axis=1) & (sky.values <= highs).all(
        axis=1
    )
    return sky.select(inside)


class QueryFrontend:
    """Deterministic virtual-clock frontend (single-server FIFO).

    Calls must arrive in nondecreasing virtual time; every entry point
    first *drains* queued queries whose service would start at or
    before the new time — so a query always sees exactly the index
    state at its start instant, even with interleaved mutations — and
    then applies its own operation. :meth:`flush` drains the remainder
    (no further mutations can precede them) and returns all responses.
    """

    def __init__(
        self,
        index: SkylineIndex,
        *,
        policy: str = "delta",
        cache_capacity: int = 128,
        queue_capacity: int = 16,
        timeout_s: float = 0.05,
        cost_model: Optional[CostModel] = None,
        counters: Optional[Counters] = None,
        bus=None,
    ):
        if queue_capacity < 1:
            raise ValidationError(
                f"queue_capacity must be >= 1, got {queue_capacity}"
            )
        if timeout_s <= 0:
            raise ValidationError(f"timeout_s must be > 0, got {timeout_s}")
        self.index = index
        self.queue_capacity = int(queue_capacity)
        self.timeout_s = float(timeout_s)
        self.counters = counters if counters is not None else index.counters
        self.bus = bus if bus is not None else index.bus
        self.core = _ServingCore(
            index,
            policy,
            cache_capacity,
            self.counters,
            self.bus,
            cost_model if cost_model is not None else CostModel(),
        )
        self._queue: deque = deque()  # (request_id, arrival_s, region)
        self._now_s = 0.0
        self._server_free_s = 0.0
        self._next_request = 0
        self.responses: List[QueryResponse] = []

    @property
    def cache(self) -> ResultCache:
        return self.core.cache

    @property
    def policy(self) -> str:
        return self.core.policy

    # -- virtual-clock mechanics ---------------------------------------

    def _advance(self, at_s: float) -> None:
        if at_s < self._now_s - 1e-12:
            raise ValidationError(
                f"operations must be time-ordered: {at_s} < {self._now_s}"
            )
        self._now_s = max(self._now_s, float(at_s))
        self._drain()

    def _drain(self) -> None:
        while self._queue:
            request_id, arrival_s, region = self._queue[0]
            start_s = max(self._server_free_s, arrival_s)
            if start_s > self._now_s:
                break
            self._queue.popleft()
            if start_s - arrival_s > self.timeout_s:
                self._reject(
                    request_id, "timeout", arrival_s, arrival_s + self.timeout_s
                )
                continue
            result, cache_hit, duration = self.core.answer(region)
            finish_s = start_s + duration
            self._server_free_s = finish_s
            self._record_served(
                request_id, arrival_s, finish_s, cache_hit, result
            )

    def _record_served(
        self, request_id, arrival_s, finish_s, cache_hit, result
    ) -> None:
        latency_s = finish_s - arrival_s
        self.responses.append(
            QueryResponse(
                request_id=request_id,
                status="ok",
                arrival_s=arrival_s,
                finish_s=finish_s,
                latency_s=latency_s,
                cache_hit=cache_hit,
                result_size=len(result),
                result=result,
            )
        )
        self.counters.inc(counter_names.SERVE_QUERIES)
        if _bus_active(self.bus):
            self.bus.emit(
                ServeQueryServed(
                    request_id=request_id,
                    epoch=self.index.epoch,
                    cache_hit=cache_hit,
                    latency_s=latency_s,
                    result_size=len(result),
                    source="cache" if cache_hit else "index",
                )
            )

    def _reject(self, request_id, reason, arrival_s, decided_s) -> None:
        self.responses.append(
            QueryResponse(
                request_id=request_id,
                status=reason,
                arrival_s=arrival_s,
                finish_s=decided_s,
                latency_s=decided_s - arrival_s,
            )
        )
        name = (
            counter_names.SERVE_QUERIES_SHED
            if reason == "shed"
            else counter_names.SERVE_QUERIES_TIMED_OUT
        )
        self.counters.inc(name)
        if _bus_active(self.bus):
            self.bus.emit(
                ServeQueryRejected(
                    request_id=request_id,
                    reason=reason,
                    queue_depth=len(self._queue),
                )
            )

    # -- entry points ---------------------------------------------------

    def submit_query(self, at_s: float, region=None) -> int:
        """Submit one query at virtual time ``at_s``; returns its id."""
        self._advance(at_s)
        request_id = self._next_request
        self._next_request += 1
        busy = self._server_free_s > self._now_s
        if busy and len(self._queue) >= self.queue_capacity:
            self._reject(request_id, "shed", at_s, at_s)
            return request_id
        self._queue.append((request_id, float(at_s), region))
        self._drain()
        return request_id

    def apply_insert(self, at_s: float, point, point_id=None) -> int:
        """Insert at virtual time ``at_s``; pays measured repair work."""
        self._advance(at_s)
        pid = self._apply_mutation(
            at_s, lambda: self.index.insert(point, point_id)
        )
        return pid

    def apply_delete(self, at_s: float, point_id: int) -> None:
        """Delete at virtual time ``at_s``; pays measured repair work."""
        self._advance(at_s)
        self._apply_mutation(at_s, lambda: self.index.delete(point_id))

    def apply_batch(self, at_s: float, ops) -> None:
        """Apply a coalesced mutation batch in ONE repair pass.

        ``ops`` follows :meth:`SkylineIndex.apply_delta_batch` —
        ``("insert", point, point_id)`` / ``("delete", point_id)``.
        The whole burst pays one ``mutation_base_s`` plus its measured
        repair pairs (delta policy), and bumps the epoch once, so the
        result cache survives a write burst it would otherwise lose
        once per op. Single-process parity twin of the sharded
        frontend's batching, so capacity comparisons isolate sharding
        itself.
        """
        self._advance(at_s)
        self._apply_mutation(
            at_s, lambda: self.index.apply_delta_batch(list(ops))
        )

    def _apply_mutation(self, at_s: float, op):
        before = self.counters.get(counter_names.TUPLE_COMPARES)
        outcome = op()
        pairs = self.counters.get(counter_names.TUPLE_COMPARES) - before
        cost = self.core.cost
        duration = cost.mutation_base_s
        if self.core.policy == "delta":
            # The maintained index pays its repair work on the serving
            # clock; the recompute baseline stores the point and defers
            # all comparison work to query time.
            duration += pairs * cost.seconds_per_pair
        self._server_free_s = max(self._server_free_s, at_s) + duration
        self.core.cache.invalidate_before(self.index.epoch)
        return outcome

    def flush(self) -> List[QueryResponse]:
        """Serve every queued query and return responses by id."""
        self._now_s = math.inf
        self._drain()
        self._now_s = self._server_free_s
        return sorted(self.responses, key=lambda r: r.request_id)


class ThreadedFrontend:
    """Real-thread serving loop: one worker, bounded queue, wall clock.

    Same cache/admission/timeout semantics as the virtual mode, with
    ``time.perf_counter`` latencies (not deterministic — smoke tests
    assert liveness and bookkeeping, never exact timings).
    """

    _STOP = object()

    def __init__(
        self,
        index: SkylineIndex,
        *,
        policy: str = "delta",
        cache_capacity: int = 128,
        queue_capacity: int = 16,
        timeout_s: float = 5.0,
        counters: Optional[Counters] = None,
        bus=None,
    ):
        self.index = index
        self.timeout_s = float(timeout_s)
        self.counters = counters if counters is not None else index.counters
        self.bus = bus if bus is not None else index.bus
        self.core = _ServingCore(
            index, policy, cache_capacity, self.counters, self.bus, CostModel()
        )
        self._queue: "queue_module.Queue" = queue_module.Queue(
            maxsize=queue_capacity
        )
        self._lock = threading.Lock()
        self._next_request = 0
        self._worker: Optional[threading.Thread] = None
        self.responses: List[QueryResponse] = []

    def start(self) -> "ThreadedFrontend":
        if self._worker is not None:
            raise ValidationError("frontend already started")
        self._worker = threading.Thread(target=self._run, daemon=True)
        self._worker.start()
        return self

    def submit(self, region=None) -> int:
        """Enqueue one query; sheds immediately when the queue is full."""
        with self._lock:
            request_id = self._next_request
            self._next_request += 1
        arrival = time.perf_counter()
        try:
            self._queue.put_nowait((request_id, region, arrival))
        except queue_module.Full:
            self._record_reject(request_id, "shed", arrival, arrival)
        return request_id

    def apply_insert(self, point, point_id=None) -> int:
        pid = self.index.insert(point, point_id)
        with self._lock:
            self.core.cache.invalidate_before(self.index.epoch)
        return pid

    def apply_delete(self, point_id: int) -> None:
        self.index.delete(point_id)
        with self._lock:
            self.core.cache.invalidate_before(self.index.epoch)

    def stop(self) -> List[QueryResponse]:
        """Drain the queue, stop the worker, return responses by id."""
        self._queue.put(self._STOP)
        if self._worker is not None:
            self._worker.join()
            self._worker = None
        with self._lock:
            return sorted(self.responses, key=lambda r: r.request_id)

    def _run(self) -> None:
        while True:
            item = self._queue.get()
            if item is self._STOP:
                return
            request_id, region, arrival = item
            waited = time.perf_counter() - arrival
            if waited > self.timeout_s:
                self._record_reject(
                    request_id, "timeout", arrival, time.perf_counter()
                )
                continue
            with self._lock:
                result, cache_hit, _ = self.core.answer(region)
            finish = time.perf_counter()
            response = QueryResponse(
                request_id=request_id,
                status="ok",
                arrival_s=arrival,
                finish_s=finish,
                latency_s=finish - arrival,
                cache_hit=cache_hit,
                result_size=len(result),
                result=result,
            )
            with self._lock:
                self.responses.append(response)
                self.counters.inc(counter_names.SERVE_QUERIES)
            if _bus_active(self.bus):
                self.bus.emit(
                    ServeQueryServed(
                        request_id=request_id,
                        epoch=self.index.epoch,
                        cache_hit=cache_hit,
                        latency_s=finish - arrival,
                        result_size=len(result),
                        source="cache" if cache_hit else "index",
                    )
                )

    def _record_reject(self, request_id, reason, arrival, decided) -> None:
        response = QueryResponse(
            request_id=request_id,
            status=reason,
            arrival_s=arrival,
            finish_s=decided,
            latency_s=decided - arrival,
        )
        name = (
            counter_names.SERVE_QUERIES_SHED
            if reason == "shed"
            else counter_names.SERVE_QUERIES_TIMED_OUT
        )
        with self._lock:
            self.responses.append(response)
            self.counters.inc(name)
        if _bus_active(self.bus):
            self.bus.emit(
                ServeQueryRejected(
                    request_id=request_id,
                    reason=reason,
                    queue_depth=self._queue.qsize(),
                )
            )
