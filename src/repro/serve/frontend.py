"""The admission-controlled query frontend over a :class:`SkylineIndex`.

Two execution modes share one serving core (result cache in front of
the index, typed events, documented counters):

* :class:`QueryFrontend` — the **deterministic virtual-clock mode**.
  Requests carry explicit arrival times and are replayed through a
  single-server queueing model with **weighted-fair admission**: every
  query is stamped with virtual start/finish tags on the existing
  virtual clock (the VirtualClock discipline — per-tenant
  ``vc = max(arrival, vc) + nominal / weight``) and the server picks
  the smallest finish tag, so a flooding tenant's backlog is stamped
  far into virtual time and other tenants keep their latency. A query
  is **shed** at admission when the bounded queue is full *or* its
  tenant already holds its quota of queue slots
  (:class:`TenantPolicy`), **times out** when its wait reaches the
  timeout, and otherwise runs for a virtual service time proportional
  to the *measured* work (dominance pairs charged by the index, result
  tuples copied, cache probes). With a single tenant the finish tags
  are admission-ordered, so the schedule degenerates to exactly the
  old FIFO. Given the same seeded request schedule the whole run —
  every latency, every shed, every cache hit — is byte-identical,
  which is what lets the serve-gate CI job enforce latency/throughput
  and tenant-isolation thresholds without wall-clock noise.

* :class:`ThreadedFrontend` — a thin **real-thread mode** (worker
  thread + bounded ``queue.Queue``) for demos and smoke tests. Same
  cache/quota/timeout semantics (the queue itself stays FIFO — wall
  time cannot be re-ordered deterministically), but latencies come
  from ``time.perf_counter`` and are *not* deterministic; nothing in
  CI asserts on them beyond liveness.

Timeout convention (both frontends)
-----------------------------------
The wait budget is **half-open**: a query is served iff its queueing
wait ``w`` satisfies ``0 <= w < timeout_s``; a wait of *exactly*
``timeout_s`` is rejected. The virtual frontend additionally rejects
at admission time when the earliest possible start is already out of
budget (``max(server_free, arrival) - arrival >= timeout_s``) — a
doomed query must not occupy a queue slot it can only waste.

Serving policies (virtual mode):

* ``delta`` — answer from the incrementally-maintained skyline (cache
  in front); mutations pay their measured repair work on the server's
  clock. This is the subsystem under test.
* ``recompute`` — the baseline the ISSUE's ≥10x claim is measured
  against: every cache-less query recomputes the skyline from scratch
  (the paper's sequential sort-filter over a snapshot) and pays the
  measured comparison work; mutations only pay the storage update.

Both policies run the *same* cost model, so the throughput ratio
reflects algorithmic work, not tuned constants.
"""

from __future__ import annotations

import heapq
import math
import queue as queue_module
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.core.dominance import DominanceCounter
from repro.core.pointset import PointSet
from repro.errors import ValidationError
from repro.mapreduce import counters as counter_names
from repro.mapreduce.counters import Counters, tenant_counter
from repro.obs.events import (
    ServeQueryRejected,
    ServeQueryServed,
    ServeQuotaUpdate,
    ServeTenantShed,
)
from repro.serve.cache import ResultCache
from repro.serve.index import SkylineIndex

SERVING_POLICIES = ("delta", "recompute")

#: Response statuses (the rejection subset mirrors
#: :data:`repro.obs.events.SERVE_REJECT_REASONS`).
RESPONSE_STATUSES = ("ok", "shed", "timeout")

#: Tenant id used when a caller does not name one; with a single
#: tenant and the default policy the weighted-fair schedule reduces
#: exactly to the old FIFO.
DEFAULT_TENANT = "default"


class TenantPolicy:
    """Weights and queue quota for weighted-fair admission.

    ``weights`` maps tenant ids to relative service weights (a tenant
    with weight 2 accumulates virtual finish tags half as fast as a
    weight-1 tenant, so it gets twice the service share under
    contention). Unknown tenants fall back to ``default_weight``.

    ``quota_fraction`` bounds how much of the bounded queue any single
    tenant may occupy: a tenant already holding
    ``max(1, int(quota_fraction * queue_capacity))`` slots is shed at
    admission even when the global queue has room. The default of 1.0
    never binds, which is what keeps single-tenant replays
    byte-identical to the pre-tenancy frontend.
    """

    __slots__ = ("weights", "default_weight", "quota_fraction")

    def __init__(
        self,
        weights: Optional[Mapping[str, float]] = None,
        *,
        default_weight: float = 1.0,
        quota_fraction: float = 1.0,
    ):
        if default_weight <= 0:
            raise ValidationError(
                f"default_weight must be > 0, got {default_weight}"
            )
        if not 0.0 < quota_fraction <= 1.0:
            raise ValidationError(
                f"quota_fraction must be in (0, 1], got {quota_fraction}"
            )
        self.weights: Dict[str, float] = {}
        for tenant, weight in dict(weights or {}).items():
            if not tenant:
                raise ValidationError("tenant id must be non-empty")
            if weight <= 0:
                raise ValidationError(
                    f"tenant weight must be > 0, got {weight} for {tenant!r}"
                )
            self.weights[str(tenant)] = float(weight)
        self.default_weight = float(default_weight)
        self.quota_fraction = float(quota_fraction)

    def weight(self, tenant: str) -> float:
        return self.weights.get(tenant, self.default_weight)

    def quota_slots(self, queue_capacity: int) -> int:
        """Queue slots one tenant may hold (floored at one)."""
        return max(1, int(self.quota_fraction * queue_capacity))


@dataclass(frozen=True)
class CostModel:
    """Virtual seconds charged per unit of measured work.

    The absolute scale is arbitrary (it cancels out of the
    delta-vs-recompute throughput ratio); the *relative* weights say
    that a dominance pair and a copied result tuple cost the same, a
    cache hit skips the index entirely, and every operation pays a
    fixed dispatch overhead.
    """

    seconds_per_pair: float = 1e-7
    per_result_tuple_s: float = 1e-7
    query_base_s: float = 1e-4
    cache_hit_s: float = 1e-5
    mutation_base_s: float = 2e-5
    # Sharded-fleet constants (trailing, defaulted: positional callers
    # of the original five fields are unaffected). A fanned-out query
    # pays dispatch per shard on the router plus the *slowest* shard
    # read; mutations pay the largest per-shard repair, which is how a
    # fleet turns divided repair work into served capacity.
    shard_dispatch_s: float = 2e-6
    shard_read_base_s: float = 2e-5


@dataclass(frozen=True)
class QueryResponse:
    """Outcome of one submitted query."""

    request_id: int
    status: str  # 'ok' | 'shed' | 'timeout'
    arrival_s: float
    finish_s: float
    latency_s: float
    cache_hit: bool = False
    result_size: int = 0
    result: Optional[PointSet] = None
    tenant: str = DEFAULT_TENANT


def _bus_active(bus) -> bool:
    return bus is not None and bus.active


class _ServingCore:
    """Cache + index lookup shared by both frontends."""

    def __init__(
        self,
        index: SkylineIndex,
        policy: str,
        cache_capacity: int,
        counters: Counters,
        bus,
        cost: CostModel,
    ):
        if policy not in SERVING_POLICIES:
            raise ValidationError(
                f"policy must be one of {SERVING_POLICIES}, got {policy!r}"
            )
        self.index = index
        self.policy = policy
        self.counters = counters
        self.bus = bus
        self.cost = cost
        self.cache = ResultCache(cache_capacity, counters)
        # Optional ServeTracer: assigned by the owning frontend. The
        # core contributes *relative* phases (offsets from the op's
        # future start instant); the frontend commits them.
        self.tracer = None

    def answer(self, region) -> Tuple[PointSet, bool, float]:
        """(result, cache_hit, virtual service seconds) for one query."""
        epoch = self.index.epoch
        if self.cache.capacity:
            cached = self.cache.get(epoch, region)
            if cached is not None:
                if self.tracer is not None:
                    self.tracer.phase(
                        "cache_hit",
                        0.0,
                        self.cost.cache_hit_s,
                        track="cache",
                        epoch=epoch,
                    )
                return cached, True, self.cost.cache_hit_s
        if self.policy == "delta":
            result = self.index.query(region)
            pairs = 0
        else:
            counter = DominanceCounter()
            snapshot = self.index.snapshot()
            sky = snapshot.local_skyline(counter)
            sky = sky.sort_by(sky.ids)  # the batch output convention
            self.counters.inc(counter_names.TUPLE_COMPARES, counter.pairs)
            result = _filter_region(sky, region)
            pairs = counter.pairs
        if self.cache.capacity:
            self.cache.put(epoch, region, result)
        duration = (
            self.cost.query_base_s
            + pairs * self.cost.seconds_per_pair
            + len(result) * self.cost.per_result_tuple_s
        )
        if self.tracer is not None:
            self.tracer.phase(
                "index_read" if self.policy == "delta" else "recompute",
                0.0,
                duration,
                track="index",
                epoch=epoch,
                pairs=pairs,
                result_size=len(result),
            )
        return result, False, duration


def _filter_region(sky: PointSet, region) -> PointSet:
    if region is None or len(sky) == 0:
        return sky
    lows = np.asarray(region[0], dtype=np.float64).ravel()
    highs = np.asarray(region[1], dtype=np.float64).ravel()
    inside = (sky.values >= lows).all(axis=1) & (sky.values <= highs).all(
        axis=1
    )
    return sky.select(inside)


class QueryFrontend:
    """Deterministic virtual-clock frontend (single-server WFQ).

    Calls must arrive in nondecreasing virtual time; every entry point
    first *drains* queued queries whose service would start at or
    before the new time — so a query always sees exactly the index
    state at its start instant, even with interleaved mutations — and
    then applies its own operation. :meth:`flush` drains the remainder
    (no further mutations can precede them) and returns all responses.

    Queued queries are ordered by weighted-fair virtual finish tags
    (VirtualClock discipline): tenant ``t``'s clock advances
    ``vc_t = max(arrival, vc_t) + query_base_s / weight(t)`` per
    admitted query, and the server always picks the smallest
    ``(finish_tag, request_id)``. Because queries only queue while the
    server is busy, every queued entry could start at the same instant
    — the heap order *is* the fairness decision, and with one tenant
    it is admission order (the old FIFO), byte for byte.
    """

    def __init__(
        self,
        index: SkylineIndex,
        *,
        policy: str = "delta",
        cache_capacity: int = 128,
        queue_capacity: int = 16,
        timeout_s: float = 0.05,
        cost_model: Optional[CostModel] = None,
        tenant_policy: Optional[TenantPolicy] = None,
        counters: Optional[Counters] = None,
        bus=None,
        tracer=None,
    ):
        if queue_capacity < 1:
            raise ValidationError(
                f"queue_capacity must be >= 1, got {queue_capacity}"
            )
        if timeout_s <= 0:
            raise ValidationError(f"timeout_s must be > 0, got {timeout_s}")
        self.index = index
        self.tracer = tracer
        self.queue_capacity = int(queue_capacity)
        self.timeout_s = float(timeout_s)
        self.tenant_policy = (
            tenant_policy if tenant_policy is not None else TenantPolicy()
        )
        self.counters = counters if counters is not None else index.counters
        self.bus = bus if bus is not None else index.bus
        self.core = _ServingCore(
            index,
            policy,
            cache_capacity,
            self.counters,
            self.bus,
            cost_model if cost_model is not None else CostModel(),
        )
        self.core.tracer = tracer
        # Heap of (finish_tag, request_id, arrival_s, region, tenant).
        self._queue: list = []
        self._now_s = 0.0
        self._server_free_s = 0.0
        self._next_request = 0
        self._quota_slots = self.tenant_policy.quota_slots(
            self.queue_capacity
        )
        self._tenant_vc: Dict[str, float] = {}
        self._tenant_queued: Dict[str, int] = {}
        self.responses: List[QueryResponse] = []

    @property
    def cache(self) -> ResultCache:
        return self.core.cache

    @property
    def policy(self) -> str:
        return self.core.policy

    # -- virtual-clock mechanics ---------------------------------------

    def _advance(self, at_s: float) -> None:
        if at_s < self._now_s - 1e-12:
            raise ValidationError(
                f"operations must be time-ordered: {at_s} < {self._now_s}"
            )
        self._now_s = max(self._now_s, float(at_s))
        self._drain()

    def _drain(self) -> None:
        while self._queue:
            _, request_id, arrival_s, region, tenant = self._queue[0]
            start_s = max(self._server_free_s, arrival_s)
            if start_s > self._now_s:
                break
            heapq.heappop(self._queue)
            self._tenant_queued[tenant] -= 1
            if start_s - arrival_s >= self.timeout_s:
                self._reject(
                    request_id,
                    "timeout",
                    arrival_s,
                    arrival_s + self.timeout_s,
                    tenant,
                )
                continue
            tracer = self.tracer
            ctx = (
                tracer.begin_query(request_id, tenant)
                if tracer is not None
                else None
            )
            result, cache_hit, duration = self.core.answer(region)
            finish_s = start_s + duration
            self._server_free_s = finish_s
            if ctx is not None:
                tracer.commit_query(
                    ctx,
                    arrival_s,
                    start_s,
                    finish_s,
                    cache_hit=cache_hit,
                    result_size=len(result),
                    epoch=self.index.epoch,
                )
            self._record_served(
                request_id,
                arrival_s,
                start_s,
                finish_s,
                cache_hit,
                result,
                tenant,
            )

    def _record_served(
        self, request_id, arrival_s, start_s, finish_s, cache_hit, result,
        tenant,
    ) -> None:
        latency_s = finish_s - arrival_s
        self.responses.append(
            QueryResponse(
                request_id=request_id,
                status="ok",
                arrival_s=arrival_s,
                finish_s=finish_s,
                latency_s=latency_s,
                cache_hit=cache_hit,
                result_size=len(result),
                result=result,
                tenant=tenant,
            )
        )
        self.counters.inc(counter_names.SERVE_QUERIES)
        self.counters.inc(tenant_counter(tenant, "queries"))
        if _bus_active(self.bus):
            self.bus.emit(
                ServeQueryServed(
                    request_id=request_id,
                    epoch=self.index.epoch,
                    cache_hit=cache_hit,
                    latency_s=latency_s,
                    result_size=len(result),
                    source="cache" if cache_hit else "index",
                    tenant=tenant,
                    at_s=finish_s,
                    wait_s=start_s - arrival_s,
                )
            )

    def _reject(
        self, request_id, reason, arrival_s, decided_s, tenant
    ) -> None:
        self.responses.append(
            QueryResponse(
                request_id=request_id,
                status=reason,
                arrival_s=arrival_s,
                finish_s=decided_s,
                latency_s=decided_s - arrival_s,
                tenant=tenant,
            )
        )
        if reason == "shed":
            self.counters.inc(counter_names.SERVE_QUERIES_SHED)
            self.counters.inc(tenant_counter(tenant, "shed"))
        else:
            self.counters.inc(counter_names.SERVE_QUERIES_TIMED_OUT)
            self.counters.inc(tenant_counter(tenant, "timed_out"))
        if self.tracer is not None:
            self.tracer.reject_query(
                request_id, tenant, arrival_s, decided_s, reason
            )
        if _bus_active(self.bus):
            self.bus.emit(
                ServeQueryRejected(
                    request_id=request_id,
                    reason=reason,
                    queue_depth=len(self._queue),
                    tenant=tenant,
                    at_s=decided_s,
                )
            )

    def _note_tenant(self, tenant: str) -> None:
        if tenant in self._tenant_vc:
            return
        self._tenant_vc[tenant] = 0.0
        self._tenant_queued.setdefault(tenant, 0)
        if _bus_active(self.bus):
            self.bus.emit(
                ServeQuotaUpdate(
                    tenant=tenant,
                    weight=self.tenant_policy.weight(tenant),
                    quota_slots=self._quota_slots,
                )
            )

    # -- entry points ---------------------------------------------------

    def submit_query(
        self, at_s: float, region=None, tenant: str = DEFAULT_TENANT
    ) -> int:
        """Submit one query at virtual time ``at_s``; returns its id."""
        self._advance(at_s)
        tenant = str(tenant)
        if not tenant:
            raise ValidationError("tenant id must be non-empty")
        self._note_tenant(tenant)
        request_id = self._next_request
        self._next_request += 1
        busy = self._server_free_s > self._now_s
        if busy:
            if len(self._queue) >= self.queue_capacity:
                self._reject(request_id, "shed", at_s, at_s, tenant)
                return request_id
            queued = self._tenant_queued[tenant]
            if queued >= self._quota_slots:
                if _bus_active(self.bus):
                    self.bus.emit(
                        ServeTenantShed(
                            request_id=request_id,
                            tenant=tenant,
                            queued=queued,
                            quota_slots=self._quota_slots,
                            at_s=at_s,
                        )
                    )
                self._reject(request_id, "shed", at_s, at_s, tenant)
                return request_id
            if self._server_free_s - at_s >= self.timeout_s:
                # Doomed at admission: the earliest possible start is
                # already past the wait budget, so taking a queue slot
                # could only starve an in-time successor.
                self._reject(
                    request_id,
                    "timeout",
                    at_s,
                    at_s + self.timeout_s,
                    tenant,
                )
                return request_id
        arrival = float(at_s)
        start_tag = max(arrival, self._tenant_vc[tenant])
        finish_tag = start_tag + (
            self.core.cost.query_base_s / self.tenant_policy.weight(tenant)
        )
        self._tenant_vc[tenant] = finish_tag
        self._tenant_queued[tenant] += 1
        heapq.heappush(
            self._queue, (finish_tag, request_id, arrival, region, tenant)
        )
        self._drain()
        return request_id

    def apply_insert(self, at_s: float, point, point_id=None) -> int:
        """Insert at virtual time ``at_s``; pays measured repair work."""
        self._advance(at_s)
        pid = self._apply_mutation(
            at_s, lambda: self.index.insert(point, point_id), kind="insert"
        )
        return pid

    def apply_delete(self, at_s: float, point_id: int) -> None:
        """Delete at virtual time ``at_s``; pays measured repair work."""
        self._advance(at_s)
        self._apply_mutation(
            at_s, lambda: self.index.delete(point_id), kind="delete"
        )

    def apply_batch(self, at_s: float, ops) -> None:
        """Apply a coalesced mutation batch in ONE repair pass.

        ``ops`` follows :meth:`SkylineIndex.apply_delta_batch` —
        ``("insert", point, point_id)`` / ``("delete", point_id)``.
        The whole burst pays one ``mutation_base_s`` plus its measured
        repair pairs (delta policy), and bumps the epoch once, so the
        result cache survives a write burst it would otherwise lose
        once per op. Single-process parity twin of the sharded
        frontend's batching, so capacity comparisons isolate sharding
        itself.
        """
        self._advance(at_s)
        self._apply_mutation(
            at_s, lambda: self.index.apply_delta_batch(list(ops))
        )

    def _apply_mutation(self, at_s: float, op, kind: str = "batch"):
        tracer = self.tracer
        ctx = tracer.begin_mutation(kind) if tracer is not None else None
        before = self.counters.get(counter_names.TUPLE_COMPARES)
        outcome = op()
        pairs = self.counters.get(counter_names.TUPLE_COMPARES) - before
        cost = self.core.cost
        duration = cost.mutation_base_s
        if self.core.policy == "delta":
            # The maintained index pays its repair work on the serving
            # clock; the recompute baseline stores the point and defers
            # all comparison work to query time.
            duration += pairs * cost.seconds_per_pair
        start_s = max(self._server_free_s, at_s)
        self._server_free_s = start_s + duration
        self.core.cache.invalidate_before(self.index.epoch)
        if ctx is not None:
            tracer.commit_mutation(
                ctx,
                at_s,
                start_s,
                start_s + duration,
                pairs=pairs,
                epoch=self.index.epoch,
            )
        return outcome

    def flush(self) -> List[QueryResponse]:
        """Serve every queued query and return responses by id."""
        self._now_s = math.inf
        self._drain()
        self._now_s = self._server_free_s
        return sorted(self.responses, key=lambda r: r.request_id)


class ThreadedFrontend:
    """Real-thread serving loop: one worker, bounded queue, wall clock.

    Same cache/admission/timeout semantics as the virtual mode, with
    ``time.perf_counter`` latencies (not deterministic — smoke tests
    assert liveness and bookkeeping, never exact timings).
    """

    _STOP = object()

    def __init__(
        self,
        index: SkylineIndex,
        *,
        policy: str = "delta",
        cache_capacity: int = 128,
        queue_capacity: int = 16,
        timeout_s: float = 5.0,
        tenant_policy: Optional[TenantPolicy] = None,
        counters: Optional[Counters] = None,
        bus=None,
    ):
        self.index = index  # repro: guarded-by[_lock]
        self.timeout_s = float(timeout_s)
        self.tenant_policy = (
            tenant_policy if tenant_policy is not None else TenantPolicy()
        )
        self.counters = counters if counters is not None else index.counters
        self.bus = bus if bus is not None else index.bus
        # repro: guarded-by[_lock]
        self.core = _ServingCore(
            index, policy, cache_capacity, self.counters, self.bus, CostModel()
        )
        self._queue: "queue_module.Queue" = queue_module.Queue(
            maxsize=queue_capacity
        )
        self._quota_slots = self.tenant_policy.quota_slots(
            int(queue_capacity)
        )
        self._tenant_queued: Dict[str, int] = {}  # repro: guarded-by[_lock]
        self._lock = threading.Lock()
        self._next_request = 0  # repro: guarded-by[_lock]
        self._worker: Optional[threading.Thread] = None
        self.responses: List[QueryResponse] = []  # repro: guarded-by[_lock]

    def start(self) -> "ThreadedFrontend":
        if self._worker is not None:
            raise ValidationError("frontend already started")
        self._worker = threading.Thread(target=self._run, daemon=True)
        self._worker.start()
        return self

    def submit(self, region=None, tenant: str = DEFAULT_TENANT) -> int:
        """Enqueue one query; sheds immediately when the queue is full
        or the tenant already holds its quota of queue slots."""
        tenant = str(tenant)
        if not tenant:
            raise ValidationError("tenant id must be non-empty")
        with self._lock:
            request_id = self._next_request
            self._next_request += 1
            if tenant not in self._tenant_queued:
                self._tenant_queued[tenant] = 0
                if _bus_active(self.bus):
                    self.bus.emit(
                        ServeQuotaUpdate(
                            tenant=tenant,
                            weight=self.tenant_policy.weight(tenant),
                            quota_slots=self._quota_slots,
                        )
                    )
            queued = self._tenant_queued[tenant]
            over_quota = queued >= self._quota_slots
            if not over_quota:
                self._tenant_queued[tenant] = queued + 1
        arrival = time.perf_counter()
        if over_quota:
            if _bus_active(self.bus):
                self.bus.emit(
                    ServeTenantShed(
                        request_id=request_id,
                        tenant=tenant,
                        queued=queued,
                        quota_slots=self._quota_slots,
                        at_s=arrival,
                    )
                )
            self._record_reject(request_id, "shed", arrival, arrival, tenant)
            return request_id
        try:
            self._queue.put_nowait((request_id, region, arrival, tenant))
        except queue_module.Full:
            with self._lock:
                self._tenant_queued[tenant] -= 1
            self._record_reject(request_id, "shed", arrival, arrival, tenant)
        return request_id

    def apply_insert(self, point, point_id=None) -> int:
        # The worker thread reads the index under _lock (_run); the
        # mutation must hold the same lock or the two race.
        with self._lock:
            pid = self.index.insert(point, point_id)
            self.core.cache.invalidate_before(self.index.epoch)
        return pid

    def apply_delete(self, point_id: int) -> None:
        with self._lock:
            self.index.delete(point_id)
            self.core.cache.invalidate_before(self.index.epoch)

    def stop(self) -> List[QueryResponse]:
        """Drain the queue, stop the worker, return responses by id."""
        self._queue.put(self._STOP)
        if self._worker is not None:
            self._worker.join()
            self._worker = None
        with self._lock:
            return sorted(self.responses, key=lambda r: r.request_id)

    def _run(self) -> None:
        while True:
            item = self._queue.get()
            if item is self._STOP:
                return
            request_id, region, arrival, tenant = item
            with self._lock:
                self._tenant_queued[tenant] -= 1
            waited = time.perf_counter() - arrival
            if waited >= self.timeout_s:
                self._record_reject(
                    request_id, "timeout", arrival, time.perf_counter(), tenant
                )
                continue
            with self._lock:
                result, cache_hit, _ = self.core.answer(region)
                epoch = self.index.epoch
            finish = time.perf_counter()
            response = QueryResponse(
                request_id=request_id,
                status="ok",
                arrival_s=arrival,
                finish_s=finish,
                latency_s=finish - arrival,
                cache_hit=cache_hit,
                result_size=len(result),
                result=result,
                tenant=tenant,
            )
            with self._lock:
                self.responses.append(response)
                self.counters.inc(counter_names.SERVE_QUERIES)
                self.counters.inc(tenant_counter(tenant, "queries"))
            if _bus_active(self.bus):
                self.bus.emit(
                    ServeQueryServed(
                        request_id=request_id,
                        epoch=epoch,
                        cache_hit=cache_hit,
                        latency_s=finish - arrival,
                        result_size=len(result),
                        source="cache" if cache_hit else "index",
                        tenant=tenant,
                        at_s=finish,
                        wait_s=waited,
                    )
                )

    def _record_reject(
        self, request_id, reason, arrival, decided, tenant
    ) -> None:
        response = QueryResponse(
            request_id=request_id,
            status=reason,
            arrival_s=arrival,
            finish_s=decided,
            latency_s=decided - arrival,
            tenant=tenant,
        )
        field = "shed" if reason == "shed" else "timed_out"
        name = (
            counter_names.SERVE_QUERIES_SHED
            if reason == "shed"
            else counter_names.SERVE_QUERIES_TIMED_OUT
        )
        with self._lock:
            self.responses.append(response)
            self.counters.inc(name)
            self.counters.inc(tenant_counter(tenant, field))
        if _bus_active(self.bus):
            self.bus.emit(
                ServeQueryRejected(
                    request_id=request_id,
                    reason=reason,
                    queue_depth=self._queue.qsize(),
                    tenant=tenant,
                    at_s=decided,
                )
            )
