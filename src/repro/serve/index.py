"""The incremental skyline index: delta maintenance over the grid.

Batch runs of MR-GPSRS/MR-GPMRS answer "what is the skyline *now*";
serving heavy query traffic needs the answer *between* batch runs while
points arrive and leave. :class:`SkylineIndex` keeps the batch
pipeline's own substrate — the :class:`~repro.grid.grid.Grid`, the
global :class:`~repro.grid.bitstring.Bitstring`, per-cell point
buckets, and the current skyline — and maintains it under
:meth:`insert` / :meth:`delete` deltas:

* an **insert** flips the cell's occupancy bit if the cell was empty
  (re-running :meth:`~repro.grid.bitstring.Bitstring.prune_dominated`
  on the updated bitstring), then repairs the skyline with two
  vectorised dominance passes — the new point either loses against the
  current skyline (nothing else can change, by transitivity) or joins
  it and evicts the members it dominates (which covers every tuple of
  every cell the flipped bit newly prunes, by Lemma 1);
* a **delete** of a non-member only updates the bucket and occupancy;
  a delete of a skyline member triggers a *bounded local repair*: only
  the points of the member's dominated-region cells (cell coordinates
  ≥ the member's on every axis) whose pruned bit is set can surface,
  so the repair re-runs the local-skyline filter on exactly those
  candidates and screens the survivors against the remaining skyline.

Every delta bumps the **epoch** (the result cache's invalidation key)
and counts against the **staleness budget**: after ``staleness_budget``
deltas the index falls back to a full batch refresh that reuses the
paper's MR-GPSRS/MR-GPMRS pipelines through the configured engine and
re-fits the grid to the drifted data. The refresh is content-neutral —
the incremental skyline is already exact (the oracle suite asserts
byte-identical results against a from-scratch recompute after every
delta), so the refresh only re-optimises the *substrate* (grid bounds,
PPD, buckets) and resets the budget.

All-MIN preference convention (the paper's); normalise first for mixed
MIN/MAX criteria. Thread-safe: one re-entrant lock guards mutations
and snapshots, so the threaded frontend can query while a writer
inserts.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro import skyline as batch_skyline
from repro.core.dominance import (
    DominanceCounter,
    dominated_by_point,
    point_dominated_by,
)
from repro.core.order import as_dataset
from repro.core.pointset import PointSet
from repro.errors import ValidationError
from repro.grid.bitstring import Bitstring
from repro.grid.grid import Grid
from repro.grid.ppd import cap_ppd, ppd_from_equation4
from repro.mapreduce import counters as counter_names
from repro.mapreduce.counters import Counters
from repro.obs.events import (
    ServeBatchRefresh,
    ServeDeltaApplied,
    ServeDeltaBatch,
)

#: Algorithms the batch refresh may use: both expose the grid/bitstring
#: artifacts the index adopts after a refresh.
REFRESH_ALGORITHMS = ("mr-gpsrs", "mr-gpmrs")

#: Default delta budget before a batch refresh re-fits the substrate.
DEFAULT_STALENESS_BUDGET = 256


def _bus_active(bus) -> bool:
    return bus is not None and bus.active


class SkylineIndex:
    """Grid + bitstring + buckets + skyline, maintained under deltas."""

    def __init__(
        self,
        data=None,
        *,
        point_ids=None,
        dimensionality: Optional[int] = None,
        bounds: Optional[Tuple] = None,
        ppd: Optional[int] = None,
        staleness_budget: int = DEFAULT_STALENESS_BUDGET,
        refresh_algorithm: str = "mr-gpmrs",
        engine=None,
        cluster=None,
        counters: Optional[Counters] = None,
        bus=None,
    ):
        if refresh_algorithm not in REFRESH_ALGORITHMS:
            raise ValidationError(
                f"refresh_algorithm must be one of {REFRESH_ALGORITHMS}, "
                f"got {refresh_algorithm!r}"
            )
        if staleness_budget < 1:
            raise ValidationError(
                f"staleness_budget must be >= 1, got {staleness_budget}"
            )
        self.staleness_budget = int(staleness_budget)
        self.refresh_algorithm = refresh_algorithm
        self.engine = engine
        self.cluster = cluster
        self.counters = counters if counters is not None else Counters()
        self.bus = bus
        self.epoch = 0
        self.deltas_since_refresh = 0
        self.refreshes = 0
        self._lock = threading.RLock()

        if data is not None:
            values = as_dataset(data)
            dimensionality = values.shape[1]
        else:
            values = None
            if dimensionality is None and bounds is None:
                raise ValidationError(
                    "an empty SkylineIndex needs dimensionality or bounds"
                )
            if dimensionality is None:
                dimensionality = len(bounds[0])
        self._d = int(dimensionality)
        self._ppd = ppd
        self._next_id = 0

        # id -> row / cell; cell -> {id: None} (insertion-ordered).
        self._points: Dict[int, np.ndarray] = {}
        self._cells: Dict[int, int] = {}
        self._buckets: Dict[int, Dict[int, None]] = {}

        self._grid = self._fit_grid(values, bounds)
        self._occupancy = np.zeros(self._grid.num_partitions, dtype=np.int64)
        self._bitstring = Bitstring(self._grid)
        self._pruned = self._bitstring.copy()
        self._sky = PointSet.empty(self._d)

        if values is not None and values.shape[0]:
            if point_ids is None:
                ids = np.arange(values.shape[0], dtype=np.int64)
            else:
                # Sharded routers feed each shard a subset of a global
                # id space; the shard must preserve those ids so the
                # merged skyline is byte-identical to the unsharded one.
                ids = np.asarray(point_ids, dtype=np.int64).ravel()
                if ids.shape[0] != values.shape[0]:
                    raise ValidationError(
                        f"point_ids has {ids.shape[0]} entries for "
                        f"{values.shape[0]} points"
                    )
                if np.unique(ids).shape[0] != ids.shape[0]:
                    raise ValidationError("point_ids must be unique")
            self._next_id = int(ids.max()) + 1
            for i in range(values.shape[0]):
                self._points[int(ids[i])] = values[i].copy()
            self._rebuild_substrate(self._grid)
            self.batch_refresh()
        elif point_ids is not None:
            raise ValidationError("point_ids given without data")

    # -- construction helpers ------------------------------------------

    def _fit_grid(self, values, bounds) -> Grid:
        n = self._ppd
        if n is None:
            cardinality = values.shape[0] if values is not None else 0
            n = cap_ppd(
                ppd_from_equation4(max(cardinality, 2), self._d), self._d
            )
        if bounds is not None:
            return Grid(n, bounds[0], bounds[1])
        if values is not None and values.shape[0]:
            return Grid.fit(values, n)
        return Grid.unit(n, self._d)

    def _rebuild_substrate(self, grid: Grid) -> None:
        """Recompute cells/buckets/occupancy/bitstring on ``grid``."""
        self._grid = grid
        self._buckets = {}
        self._cells = {}
        self._occupancy = np.zeros(grid.num_partitions, dtype=np.int64)
        ids = sorted(self._points)
        if ids:
            values = np.vstack([self._points[i] for i in ids])
            cells = grid.cell_indices(values)
            for pos, pid in enumerate(ids):
                cell = int(cells[pos])
                self._cells[pid] = cell
                self._buckets.setdefault(cell, {})[pid] = None
                self._occupancy[cell] += 1
        self._bitstring = Bitstring(self._grid, self._occupancy > 0)
        self._pruned = self._bitstring.prune_dominated()

    # -- read side ------------------------------------------------------

    def __len__(self) -> int:
        return len(self._points)

    @property
    def grid(self) -> Grid:
        return self._grid

    @property
    def bitstring(self) -> Bitstring:
        """Occupancy bitstring (Equation 1 over the live buckets)."""
        return self._bitstring

    @property
    def pruned_bitstring(self) -> Bitstring:
        """Equation 2 applied to the live occupancy bitstring."""
        return self._pruned

    def skyline(self) -> PointSet:
        """The current skyline, ids ascending (batch output order)."""
        with self._lock:
            return self._sky

    def skyline_ids(self) -> np.ndarray:
        with self._lock:
            return self._sky.ids.copy()

    def snapshot(self) -> PointSet:
        """All live points, ids ascending (the batch recompute input)."""
        with self._lock:
            ids = sorted(self._points)
            if not ids:
                return PointSet.empty(self._d)
            return PointSet(
                np.asarray(ids, dtype=np.int64),
                np.vstack([self._points[i] for i in ids]),
            )

    def query(self, region: Optional[Tuple] = None) -> PointSet:
        """Skyline members, optionally restricted to a constraint box.

        ``region`` is ``(lows, highs)``; members with every coordinate
        inside the closed box are returned. This is a *view* over the
        global skyline — the skyline *of* the constrained subset (which
        can contain additional points) is a roadmap item.
        """
        with self._lock:
            sky = self._sky
            if region is None or len(sky) == 0:
                return sky
            lows = np.asarray(region[0], dtype=np.float64).ravel()
            highs = np.asarray(region[1], dtype=np.float64).ravel()
            if lows.shape[0] != self._d or highs.shape[0] != self._d:
                raise ValidationError(
                    f"region must have {self._d} dimensions"
                )
            inside = (sky.values >= lows).all(axis=1) & (
                sky.values <= highs
            ).all(axis=1)
            return sky.select(inside)

    # -- delta maintenance ---------------------------------------------

    def insert(self, point, point_id: Optional[int] = None) -> int:
        """Insert one point; returns its id. O(|skyline|) repair."""
        with self._lock:
            row = np.asarray(point, dtype=np.float64).ravel()
            if row.shape[0] != self._d:
                raise ValidationError(
                    f"point has {row.shape[0]} dimensions, index has {self._d}"
                )
            if point_id is None:
                point_id = self._next_id
            else:
                point_id = int(point_id)
            if point_id in self._points:
                raise ValidationError(f"point id {point_id} already present")
            self._next_id = max(self._next_id, point_id + 1)

            cell = self._grid.cell_index(row)
            self._points[point_id] = row
            self._cells[point_id] = cell
            self._buckets.setdefault(cell, {})[point_id] = None
            self._occupancy[cell] += 1
            bit_flipped = self._occupancy[cell] == 1
            if bit_flipped:
                self._bitstring[cell] = True
                self._pruned = self._bitstring.prune_dominated()

            counter = DominanceCounter()
            sky = self._sky
            if len(sky):
                counter.charge(len(sky), 1)
            if len(sky) and point_dominated_by(row, sky.values):
                pass  # dominated: the skyline cannot change
            else:
                if len(sky):
                    counter.charge(1, len(sky))
                    evicted = dominated_by_point(row, sky.values)
                    if evicted.any():
                        sky = sky.select(~evicted)
                pos = int(np.searchsorted(sky.ids, point_id))
                self._sky = PointSet(
                    np.insert(sky.ids, pos, point_id),
                    np.insert(sky.values, pos, row, axis=0),
                )
            self.counters.inc(counter_names.SERVE_INSERTS)
            self.counters.inc(counter_names.TUPLE_COMPARES, counter.pairs)
            self._after_delta("insert", point_id, cell, bit_flipped, 0)
            return point_id

    def delete(self, point_id: int) -> None:
        """Delete a point by id. Bounded local repair for members."""
        with self._lock:
            point_id = int(point_id)
            if point_id not in self._points:
                raise ValidationError(f"unknown point id {point_id}")
            row = self._points.pop(point_id)
            cell = self._cells.pop(point_id)
            del self._buckets[cell][point_id]
            if not self._buckets[cell]:
                del self._buckets[cell]
            self._occupancy[cell] -= 1
            bit_flipped = self._occupancy[cell] == 0
            if bit_flipped:
                self._bitstring[cell] = False
                self._pruned = self._bitstring.prune_dominated()

            repair_candidates = 0
            sky = self._sky
            pos = int(np.searchsorted(sky.ids, point_id))
            was_member = pos < len(sky) and int(sky.ids[pos]) == point_id
            if was_member:
                keep = np.ones(len(sky), dtype=bool)
                keep[pos] = False
                sky = sky.select(keep)
                candidates = self._repair_candidates(cell, sky)
                repair_candidates = len(candidates)
                if repair_candidates:
                    counter = DominanceCounter()
                    survivors = candidates.local_skyline(
                        counter
                    ).remove_dominated_by(sky, counter)
                    self.counters.inc(
                        counter_names.TUPLE_COMPARES, counter.pairs
                    )
                    if len(survivors):
                        merged = PointSet.concat([sky, survivors])
                        order = np.argsort(merged.ids, kind="stable")
                        sky = merged.select(order)
                self._sky = sky
                self.counters.inc(counter_names.SERVE_DELTA_REPAIRS)
            self.counters.inc(counter_names.SERVE_DELETES)
            self._after_delta(
                "delete", point_id, cell, bit_flipped, repair_candidates
            )

    def _repair_candidates(self, cell: int, sky: PointSet) -> PointSet:
        """Non-member points of the viable dominated-region cells.

        A point the deleted member exclusively dominated has cell
        coordinates ≥ the member's on every axis; cells whose pruned
        bit is clear are strictly dominated by an occupied cell and
        can never surface (Lemma 1), so they are skipped.
        """
        coords = self._grid.coords_array()
        region = (coords >= coords[cell]).all(axis=1) & self._pruned.bits
        member_ids = set(sky.ids.tolist())
        ids: List[int] = []
        for c in np.flatnonzero(region).tolist():
            bucket = self._buckets.get(c)
            if bucket:
                ids.extend(
                    pid for pid in bucket if pid not in member_ids
                )
        if not ids:
            return PointSet.empty(self._d)
        ids = sorted(ids)
        return PointSet(
            np.asarray(ids, dtype=np.int64),
            np.vstack([self._points[i] for i in ids]),
        )

    def apply_delta_batch(self, ops: List[Tuple]) -> int:
        """Absorb a burst of deltas in ONE repair pass; returns pairs.

        ``ops`` is a sequence of ``("insert", point, point_id)`` /
        ``("delete", point_id)`` tuples, applied to storage in order
        (so insert-then-delete of the same id within a batch is legal)
        but repaired *once*:

        1. storage (buckets/occupancy) absorbs every op sequentially;
        2. the bitstring and its pruned form are rebuilt once;
        3. the repair works from ``base`` = the old skyline minus
           deleted members. Candidates are the surviving inserted
           points plus — for each deleted member — the live points of
           its dominated-region cells whose (post-batch) pruned bit is
           set; the batch survivors are the candidates' local skyline
           screened against ``base``, and survivors can in turn evict
           ``base`` members (an insert may dominate an old member).

        Exactness: any point the batch can surface was exclusively
        dominated by some deleted member (→ in its repair region) or
        arrived in the batch (→ a candidate); any point the batch can
        evict is dominated by a surviving candidate (→ screened in
        step 3). The oracle suite asserts byte-identity against a
        from-scratch recompute after every batch.

        One epoch bump for the whole batch — this is what makes
        coalescing pay for result caches and sharded fan-out — but the
        staleness budget still advances by ``len(ops)``, so refresh
        cadence matches the op-by-op path. Returns the number of
        tuple-pair comparisons the repair charged (the serving cost
        model's service-time quantity).
        """
        with self._lock:
            if not ops:
                return 0
            sky0 = self._sky
            sky0_ids = set(sky0.ids.tolist())
            inserted: Dict[int, np.ndarray] = {}
            deleted_member_cells: List[int] = []
            deleted_ids: set = set()
            num_inserts = 0
            num_deletes = 0
            for op in ops:
                if op[0] == "insert":
                    _kind, point, point_id = op
                    row = np.asarray(point, dtype=np.float64).ravel()
                    if row.shape[0] != self._d:
                        raise ValidationError(
                            f"point has {row.shape[0]} dimensions, "
                            f"index has {self._d}"
                        )
                    if point_id is None:
                        point_id = self._next_id
                    else:
                        point_id = int(point_id)
                    if point_id in self._points:
                        raise ValidationError(
                            f"point id {point_id} already present"
                        )
                    self._next_id = max(self._next_id, point_id + 1)
                    cell = self._grid.cell_index(row)
                    self._points[point_id] = row
                    self._cells[point_id] = cell
                    self._buckets.setdefault(cell, {})[point_id] = None
                    self._occupancy[cell] += 1
                    inserted[point_id] = row
                    deleted_ids.discard(point_id)
                    num_inserts += 1
                elif op[0] == "delete":
                    point_id = int(op[1])
                    if point_id not in self._points:
                        raise ValidationError(
                            f"unknown point id {point_id}"
                        )
                    del self._points[point_id]
                    cell = self._cells.pop(point_id)
                    del self._buckets[cell][point_id]
                    if not self._buckets[cell]:
                        del self._buckets[cell]
                    self._occupancy[cell] -= 1
                    if point_id in inserted:
                        del inserted[point_id]
                    elif point_id in sky0_ids:
                        deleted_member_cells.append(cell)
                        deleted_ids.add(point_id)
                    else:
                        deleted_ids.add(point_id)
                    num_deletes += 1
                else:
                    raise ValidationError(f"unknown delta op {op[0]!r}")

            # One substrate rebuild for the whole burst.
            self._bitstring = Bitstring(self._grid, self._occupancy > 0)
            self._pruned = self._bitstring.prune_dominated()

            base = sky0
            if deleted_ids:
                keep = np.array(
                    [int(i) not in deleted_ids for i in sky0.ids],
                    dtype=bool,
                )
                base = sky0.select(keep)
            base_ids = set(base.ids.tolist())

            candidate_rows: Dict[int, np.ndarray] = dict(inserted)
            if deleted_member_cells:
                coords = self._grid.coords_array()
                region = np.zeros(len(self._pruned.bits), dtype=bool)
                for cell in deleted_member_cells:
                    region |= (coords >= coords[cell]).all(axis=1)
                region &= self._pruned.bits
                for c in np.flatnonzero(region).tolist():
                    bucket = self._buckets.get(c)
                    if bucket:
                        for pid in bucket:
                            if pid not in base_ids:
                                candidate_rows[pid] = self._points[pid]

            counter = DominanceCounter()
            sky = base
            if candidate_rows:
                cand_ids = sorted(candidate_rows)
                candidates = PointSet(
                    np.asarray(cand_ids, dtype=np.int64),
                    np.vstack([candidate_rows[i] for i in cand_ids]),
                )
                survivors = candidates.local_skyline(
                    counter
                ).remove_dominated_by(base, counter)
                if len(survivors):
                    # Screening the base against survivors is only
                    # needed when the batch inserted points: a
                    # delete-only survivor dominating a base member
                    # would contradict base ⊆ old skyline. Skipping it
                    # keeps one-op delete batches pair-identical to
                    # the single-op delete path.
                    if len(base) and inserted:
                        base = base.remove_dominated_by(survivors, counter)
                    merged = PointSet.concat([base, survivors])
                    order = np.argsort(merged.ids, kind="stable")
                    sky = merged.select(order)
                else:
                    sky = base
            self._sky = sky

            self.counters.inc(counter_names.SERVE_INSERTS, num_inserts)
            self.counters.inc(counter_names.SERVE_DELETES, num_deletes)
            self.counters.inc(
                counter_names.SERVE_DELTA_REPAIRS,
                len(deleted_member_cells),
            )
            self.counters.inc(counter_names.TUPLE_COMPARES, counter.pairs)

            self.epoch += 1
            self.deltas_since_refresh += len(ops)
            if _bus_active(self.bus):
                self.bus.emit(
                    ServeDeltaBatch(
                        ops=len(ops),
                        inserts=num_inserts,
                        deletes=num_deletes,
                        epoch=self.epoch,
                        shards_touched=1,
                        max_shard_pairs=counter.pairs,
                        skyline_size=len(self._sky),
                    )
                )
            if self.deltas_since_refresh >= self.staleness_budget:
                self.batch_refresh()
            return counter.pairs

    def _after_delta(
        self,
        op: str,
        point_id: int,
        cell: int,
        bit_flipped: bool,
        repair_candidates: int,
    ) -> None:
        self.epoch += 1
        self.deltas_since_refresh += 1
        if _bus_active(self.bus):
            self.bus.emit(
                ServeDeltaApplied(
                    op=op,
                    point_id=point_id,
                    cell=cell,
                    epoch=self.epoch,
                    bit_flipped=bool(bit_flipped),
                    repair_candidates=repair_candidates,
                    skyline_size=len(self._sky),
                )
            )
        if self.deltas_since_refresh >= self.staleness_budget:
            self.batch_refresh()

    # -- batch refresh --------------------------------------------------

    def batch_refresh(self) -> None:
        """Full recompute through the configured MapReduce pipeline.

        Re-fits the grid to the current data (the batch job's own PPD
        and bounds logic), rebuilds buckets/bitstring on it, and
        replaces the skyline with the batch output. Content-neutral by
        construction — asserted byte-identical by the oracle suite —
        so the epoch (and with it every cached result) stays valid.
        """
        with self._lock:
            absorbed = self.deltas_since_refresh
            snap = self.snapshot()
            if len(snap):
                result = batch_skyline(
                    snap.values,
                    algorithm=self.refresh_algorithm,
                    cluster=self.cluster,
                    engine=self.engine,
                )
                self._sky = PointSet(
                    snap.ids[result.indices], result.values
                )
                grid = result.artifacts.get("grid")
                if grid is not None:
                    self._rebuild_substrate(grid)
            else:
                self._sky = PointSet.empty(self._d)
                self._rebuild_substrate(self._fit_grid(None, None))
            self.deltas_since_refresh = 0
            self.refreshes += 1
            self.counters.inc(counter_names.SERVE_BATCH_REFRESHES)
            if _bus_active(self.bus):
                self.bus.emit(
                    ServeBatchRefresh(
                        epoch=self.epoch,
                        deltas_absorbed=absorbed,
                        algorithm=self.refresh_algorithm,
                        skyline_size=len(self._sky),
                    )
                )

    def describe(self) -> str:
        return (
            f"SkylineIndex(points={len(self)}, skyline={len(self._sky)}, "
            f"epoch={self.epoch}, grid={self._grid.describe()}, "
            f"budget={self.deltas_since_refresh}/{self.staleness_budget})"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return self.describe()
