"""A process-backed shard fleet: one OS process per skyline shard.

:class:`~repro.serve.shard.ShardedSkylineIndex` proves the routing and
exactness story in one process; :class:`SkylineFleet` is the same plan
(:func:`~repro.serve.shard.plan_shards` — identical grid, groups, and
owner tie-breaks) stretched across real worker processes:

* each worker hosts one :class:`~repro.serve.index.SkylineIndex` and
  talks to the router over a duplex :class:`multiprocessing.Pipe`
  (synchronous request/response — the router is the only client, so a
  queue buys nothing but reordering hazards);
* the initial per-shard datasets travel as **zero-copy shared-memory
  blocks** (:meth:`repro.core.shm.SharedArena.share_blocks`): the
  router packs every shard's ids+values into one segment and pickles
  only descriptors into the spawn args — workers map the segment
  read-only and copy their slice exactly once, into their own index
  storage. The arena is retired on :meth:`stop`, and the lifecycle
  tests assert no segment outlives the fleet;
* deltas route to covering shards exactly like the in-process index; a
  batch becomes at most one repair RPC per shard. Inserts outside
  every group's coverage raise
  :class:`~repro.serve.shard.UncoveredCellError` by default — tearing
  down live workers mid-stream is a deployment event, not a data-path
  one. Pass ``reshard=True`` to opt into in-place resharding (the
  serving pipeline does: the fleet snapshots itself, respawns around
  the new coverage, and emits :class:`~repro.obs.events.ServeReshard`);
* every data RPC carries the router's current
  :class:`~repro.obs.serve_trace.TraceContext` (or ``None`` when no
  tracer is attached). Workers **batch span records** —
  ``(rpc_seq, op, ctx, work)`` — locally and hand them back over the
  same pipe when the router drains them
  (:meth:`drain_span_records` / ``("spans",)``), so a
  :class:`~repro.obs.serve_trace.ServeTracer` can stitch worker spans
  into the one multi-process trace by request id.

The fleet is wall-clock real (no virtual time): it exists to prove the
sharded serving plan survives process boundaries and to host the
lifecycle tests; capacity claims are made by the deterministic
virtual-clock :class:`~repro.serve.shard.ShardedFrontend` — which can
drive a fleet directly (the fleet duck-types the sharded index's read
and delta surface: ``query``/``snapshot``/``shard_contributions``/
``last_shard_pairs``/``refreshes``).
"""

from __future__ import annotations

import multiprocessing
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.order import as_dataset
from repro.core.pointset import PointSet
from repro.core.shm import SharedArena
from repro.errors import ValidationError
from repro.mapreduce import counters as counter_names
from repro.mapreduce.counters import Counters
from repro.obs.events import ServeReshard
from repro.serve.index import SkylineIndex
from repro.serve.shard import (
    ShardPlan,
    UncoveredCellError,
    plan_shards,
)


def _shard_worker(
    conn, block, dimensionality: int, staleness_budget: Optional[int]
) -> None:
    """Worker loop: build the shard index, answer RPCs until 'stop'.

    ``block`` arrives as a :class:`~repro.core.shm.ShmBlock` descriptor
    (or ``None`` for an empty shard) — unpickling it maps the shared
    segment; the index constructor copies the slice into private
    storage, so the segment's pages are never needed again (the cached
    mapping simply dies with the process; the router owns the name).

    Data RPCs carry a trailing trace context. The worker has no clock
    of its own — it appends ``(rpc_seq, op, ctx, work)`` to a local
    batch in RPC order and ships the batch back when the router sends
    ``("spans",)``; the router rebases the records onto the virtual
    interval it registered for the same context.
    """
    kwargs = {}
    if staleness_budget is not None:
        kwargs["staleness_budget"] = staleness_budget
    if block is not None:
        index = SkylineIndex(
            np.array(block.values, dtype=np.float64),
            point_ids=np.array(block.ids, dtype=np.int64),
            **kwargs,
        )
    else:
        index = SkylineIndex(dimensionality=dimensionality, **kwargs)
    del block  # drop the shared mapping; the index owns its copies
    records: List[Tuple] = []
    rpc_seq = 0
    while True:
        try:
            msg = conn.recv()
        except EOFError:  # router died; nothing left to serve
            return
        op = msg[0]
        try:
            if op == "stop":
                conn.send(("ok", None))
                return
            elif op == "spans":
                conn.send(("ok", records))
                records = []
                continue
            elif op == "stats":
                conn.send(
                    (
                        "ok",
                        {
                            "refreshes": index.refreshes,
                            "points": len(index),
                            "skyline": len(index.skyline()),
                        },
                    )
                )
                continue
            rpc_seq += 1
            if op == "insert":
                _, row, pid, ctx = msg
                before = index.counters.get(counter_names.TUPLE_COMPARES)
                index.insert(row, pid)
                work = (
                    index.counters.get(counter_names.TUPLE_COMPARES)
                    - before
                )
                if ctx is not None:
                    records.append((rpc_seq, "insert", ctx, work))
                conn.send(("ok", work))
            elif op == "delete":
                _, pid, ctx = msg
                before = index.counters.get(counter_names.TUPLE_COMPARES)
                index.delete(pid)
                work = (
                    index.counters.get(counter_names.TUPLE_COMPARES)
                    - before
                )
                if ctx is not None:
                    records.append((rpc_seq, "delete", ctx, work))
                conn.send(("ok", work))
            elif op == "batch":
                _, ops, ctx = msg
                pairs = index.apply_delta_batch(ops)
                if ctx is not None:
                    records.append((rpc_seq, "batch", ctx, pairs))
                conn.send(("ok", pairs))
            elif op == "skyline":
                ctx = msg[1] if len(msg) > 1 else None
                sky = index.skyline()
                if ctx is not None:
                    records.append((rpc_seq, "skyline", ctx, len(sky)))
                conn.send(("ok", (sky.ids.copy(), sky.values.copy())))
            elif op == "snapshot":
                ctx = msg[1] if len(msg) > 1 else None
                snap = index.snapshot()
                if ctx is not None:
                    records.append((rpc_seq, "snapshot", ctx, len(snap)))
                conn.send(("ok", (snap.ids.copy(), snap.values.copy())))
            else:
                conn.send(("err", f"unknown op {op!r}"))
        except Exception as exc:  # repro: allow[REP006] - relayed to router
            conn.send(("err", f"{type(exc).__name__}: {exc}"))


class FleetError(RuntimeError):
    """A worker reported a failure or died mid-request."""


class SkylineFleet:
    """Router + one shard process per reducer group.

    Mirrors the :class:`~repro.serve.shard.ShardedSkylineIndex` data
    path (same plan, same covering/owner routing, same id-ordered
    merge) over real processes. Use as a context manager — workers and
    the shared-memory arena are released on :meth:`stop`.
    """

    def __init__(
        self,
        data,
        *,
        num_shards: int,
        ppd: Optional[int] = None,
        start_method: Optional[str] = None,
        counters: Optional[Counters] = None,
        bus=None,
        tracer=None,
        staleness_budget: Optional[int] = None,
        reshard: bool = False,
    ):
        if num_shards < 1:
            raise ValidationError(
                f"num_shards must be >= 1, got {num_shards}"
            )
        values = as_dataset(data)
        if values.shape[0] == 0:
            raise ValidationError(
                "SkylineFleet needs a non-empty initial dataset"
            )
        self.counters = counters if counters is not None else Counters()
        self.bus = bus
        self.tracer = tracer
        self.staleness_budget = staleness_budget
        self._reshard_enabled = bool(reshard)
        self._start_method = start_method
        self._ppd = ppd
        self._requested_shards = int(num_shards)
        self._d = int(values.shape[1])
        self.epoch = 0
        #: Per-shard repair pairs of the last mutating call — the same
        #: duck-typed attribute :class:`ShardedSkylineIndex` exposes,
        #: so the sharded frontend's cost model (charge the *largest*
        #: per-shard repair) works over a process fleet too.
        self.last_shard_pairs: Dict[int, int] = {}
        self._stopped = False
        self._conns: List = []
        self._procs: List = []
        self._sky_cache: Optional[PointSet] = None
        self._sky_cache_epoch = -1
        self._contributions: List[int] = []
        self._refreshes_cache = 0
        ids = np.arange(values.shape[0], dtype=np.int64)
        self._build(ids, values)

    def _build(self, ids: np.ndarray, values: np.ndarray) -> None:
        """Plan shards, pack the arena, spawn one worker per shard."""
        self._plan: ShardPlan = plan_shards(
            values, self._requested_shards, ppd=self._ppd
        )
        self._next_id = int(ids.max()) + 1 if len(ids) else 0
        self._sky_cache = None
        self._sky_cache_epoch = -1
        self._contributions = []

        cells = self._plan.grid.cell_indices(values)
        n_shards = self._plan.num_shards
        shard_ids: List[List[int]] = [[] for _ in range(n_shards)]
        shard_rows: List[List[np.ndarray]] = [[] for _ in range(n_shards)]
        self._owner: Dict[int, int] = {}
        self._members: Dict[int, Tuple[int, ...]] = {}
        route_cache: Dict[int, Tuple[Tuple[int, ...], int]] = {}
        replicated = 0
        for pos in range(values.shape[0]):
            pid = int(ids[pos])
            cell = int(cells[pos])
            route = route_cache.get(cell)
            if route is None:
                route = self._plan.route_cell(cell)
                route_cache[cell] = route
            shards, owner = route
            self._owner[pid] = owner
            self._members[pid] = shards
            replicated += len(shards) - 1
            for s in shards:
                shard_ids[s].append(pid)
                shard_rows[s].append(values[pos])
        self.counters.inc(
            counter_names.SERVE_SHARD_REPLICATED_POINTS, replicated
        )

        # Ship every shard's dataset through ONE shared segment: the
        # pickled spawn args carry descriptors, not arrays.
        self._arena = SharedArena()
        payload: List[Optional[PointSet]] = []
        blocks = []
        for s in range(n_shards):
            if shard_ids[s]:
                blocks.append(
                    PointSet(
                        np.asarray(shard_ids[s], dtype=np.int64),
                        np.vstack(shard_rows[s]),
                    )
                )
            else:
                blocks.append(None)
        shared = self._arena.share_blocks([b for b in blocks if b is not None])
        it = iter(shared)
        for b in blocks:
            payload.append(next(it) if b is not None else None)

        ctx = (
            multiprocessing.get_context(self._start_method)
            if self._start_method
            else multiprocessing.get_context()
        )
        self._conns = []
        self._procs = []
        try:
            for s in range(n_shards):
                parent, child = ctx.Pipe()
                proc = ctx.Process(
                    target=_shard_worker,
                    args=(child, payload[s], self._d, self.staleness_budget),
                    daemon=True,
                )
                proc.start()
                child.close()
                self._conns.append(parent)
                self._procs.append(proc)
        except BaseException:  # repro: allow[REP006] - cleanup, re-raised
            self.stop()
            raise

    # -- lifecycle ------------------------------------------------------

    @property
    def num_shards(self) -> int:
        return len(self._procs)

    def __len__(self) -> int:
        return len(self._owner)

    def __enter__(self) -> "SkylineFleet":
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    def stop(self) -> None:
        """Stop every worker and release the shared-memory arena."""
        if self._stopped:
            return
        self._stopped = True
        self._shutdown_workers()

    def _shutdown_workers(self) -> None:
        for conn in self._conns:
            try:
                conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for conn in self._conns:
            try:
                if conn.poll(5.0):
                    conn.recv()
            except (EOFError, OSError):
                pass
            conn.close()
        for proc in self._procs:
            proc.join(timeout=5.0)
            if proc.is_alive():  # pragma: no cover - defensive
                proc.terminate()
                proc.join(timeout=5.0)
        self._conns = []
        self._procs = []
        self._arena.unlink()

    def _call(self, shard: int, msg: Tuple):
        if self._stopped:
            raise FleetError("fleet is stopped")
        conn = self._conns[shard]
        try:
            conn.send(msg)
            status, payload = conn.recv()
        except (EOFError, BrokenPipeError, OSError) as exc:
            raise FleetError(
                f"shard {shard} worker died during {msg[0]!r}"
            ) from exc
        if status != "ok":
            raise FleetError(f"shard {shard}: {payload}")
        return payload

    def _ctx(self):
        return self.tracer.current_ctx if self.tracer is not None else None

    # -- reshard --------------------------------------------------------

    def _reshard_with(self, extra: Tuple[int, np.ndarray]) -> None:
        """Respawn the fleet around current live points + one new one."""
        if self.tracer is not None:
            # The outgoing workers hold span records for committed ops;
            # stitch them in now or the respawn drops them.
            for s, recs in self.drain_span_records().items():
                self.tracer.ingest_fleet_records(s, recs)
        snap = self.snapshot()
        pid, row = extra
        ids = np.append(snap.ids, np.int64(pid))
        values = (
            np.vstack([snap.values, row[None, :]])
            if len(snap)
            else row[None, :]
        )
        order = np.argsort(ids, kind="stable")
        self._refreshes_cache = self.refreshes
        self._shutdown_workers()
        self._build(ids[order], values[order])
        self.last_shard_pairs = {}
        self.counters.inc(counter_names.SERVE_SHARD_RESHARDS)
        if self.bus is not None and self.bus.active:
            self.bus.emit(
                ServeReshard(
                    reason="uncovered",
                    shards=self.num_shards,
                    groups=self._plan.num_shards,
                    epoch=self.epoch + 1,
                )
            )

    # -- data path ------------------------------------------------------

    def insert(self, point, point_id: Optional[int] = None) -> int:
        row = np.asarray(point, dtype=np.float64).ravel()
        if row.shape[0] != self._d:
            raise ValidationError(
                f"point has {row.shape[0]} dimensions, fleet has {self._d}"
            )
        pid = self._next_id if point_id is None else int(point_id)
        if pid in self._owner:
            raise ValidationError(f"point id {pid} already present")
        cell = self._plan.grid.cell_index(row)
        try:
            shards, owner = self._plan.route_cell(cell)
        except UncoveredCellError:
            if not self._reshard_enabled:
                raise
            self._reshard_with((pid, row))
            self.counters.inc(counter_names.SERVE_INSERTS)
            self.epoch += 1
            return pid
        self._next_id = max(self._next_id, pid + 1)
        ctx = self._ctx()
        pairs: Dict[int, int] = {}
        for s in shards:
            pairs[s] = int(self._call(s, ("insert", row, pid, ctx)))
        self.last_shard_pairs = {s: p for s, p in pairs.items() if p}
        self._owner[pid] = owner
        self._members[pid] = shards
        self.counters.inc(counter_names.SERVE_INSERTS)
        self.counters.inc(
            counter_names.SERVE_SHARD_REPLICATED_POINTS, len(shards) - 1
        )
        self.epoch += 1
        return pid

    def delete(self, point_id: int) -> None:
        pid = int(point_id)
        if pid not in self._owner:
            raise ValidationError(f"unknown point id {pid}")
        ctx = self._ctx()
        pairs: Dict[int, int] = {}
        for s in self._members.pop(pid):
            pairs[s] = int(self._call(s, ("delete", pid, ctx)))
        self.last_shard_pairs = {s: p for s, p in pairs.items() if p}
        del self._owner[pid]
        self.counters.inc(counter_names.SERVE_DELETES)
        self.epoch += 1

    def apply_delta_batch(self, ops: List[Tuple]) -> Dict[int, int]:
        """One repair RPC per touched shard; per-shard pairs returned."""
        if not ops:
            return {}
        per_shard: Dict[int, List[Tuple]] = {}
        routed: List[Tuple] = []
        for op in ops:
            if op[0] == "insert":
                _k, point, pid = op
                row = np.asarray(point, dtype=np.float64).ravel()
                if row.shape[0] != self._d:
                    raise ValidationError(
                        f"point has {row.shape[0]} dimensions, fleet "
                        f"has {self._d}"
                    )
                if pid is None:
                    pid = self._next_id
                pid = int(pid)
                cell = self._plan.grid.cell_index(row)
                try:
                    shards, owner = self._plan.route_cell(cell)
                except UncoveredCellError:
                    if not self._reshard_enabled:
                        raise
                    return self._sequential_fallback(ops)
                self._next_id = max(self._next_id, pid + 1)
                for s in shards:
                    per_shard.setdefault(s, []).append(("insert", row, pid))
                routed.append(("insert", pid, shards, owner))
            elif op[0] == "delete":
                pid = int(op[1])
                members = self._members.get(pid)
                if members is None:
                    entry = next(
                        (
                            r
                            for r in reversed(routed)
                            if r[0] == "insert" and r[1] == pid
                        ),
                        None,
                    )
                    if entry is None:
                        raise ValidationError(f"unknown point id {pid}")
                    members = entry[2]
                for s in members:
                    per_shard.setdefault(s, []).append(("delete", pid))
                routed.append(("delete", pid, members, None))
            else:
                raise ValidationError(f"unknown delta op {op[0]!r}")
        ctx = self._ctx()
        pairs: Dict[int, int] = {}
        for s in sorted(per_shard):
            pairs[s] = int(self._call(s, ("batch", per_shard[s], ctx)))
        self.last_shard_pairs = dict(pairs)
        inserts = deletes = 0
        for entry in routed:
            if entry[0] == "insert":
                _k, pid, shards, owner = entry
                self._owner[pid] = owner
                self._members[pid] = shards
                self.counters.inc(
                    counter_names.SERVE_SHARD_REPLICATED_POINTS,
                    len(shards) - 1,
                )
                inserts += 1
            else:
                _k, pid, _shards, _owner = entry
                self._members.pop(pid, None)
                self._owner.pop(pid, None)
                deletes += 1
        self.counters.inc(counter_names.SERVE_INSERTS, inserts)
        self.counters.inc(counter_names.SERVE_DELETES, deletes)
        self.counters.inc(counter_names.SERVE_SHARD_DELTA_BATCHES)
        self.counters.inc(counter_names.SERVE_SHARD_BATCHED_OPS, len(ops))
        self.epoch += 1
        return pairs

    def _sequential_fallback(self, ops: List[Tuple]) -> Dict[int, int]:
        """Apply a batch op-by-op (an insert needs a reshard mid-batch)."""
        merged: Dict[int, int] = {}
        for op in ops:
            if op[0] == "insert":
                self.insert(op[1], op[2])
            else:
                self.delete(op[1])
            for s, p in self.last_shard_pairs.items():
                merged[s] = max(merged.get(s, 0), p)
        self.last_shard_pairs = merged
        return merged

    # -- read side ------------------------------------------------------

    def skyline(self) -> PointSet:
        """Fan out, filter to owned ids, merge in id order.

        Memoized per epoch, like the in-process sharded index: repeat
        queries between deltas reuse the merged result (and the cached
        per-shard contribution sizes the cost model reads).
        """
        if self._sky_cache_epoch == self.epoch:
            return self._sky_cache
        ctx = self._ctx()
        parts: List[PointSet] = []
        contributions: List[int] = []
        for s in range(self.num_shards):
            ids, values = self._call(s, ("skyline", ctx))
            if len(ids):
                owned = np.fromiter(
                    (self._owner.get(int(pid)) == s for pid in ids),
                    dtype=bool,
                    count=len(ids),
                )
                parts.append(PointSet(ids, values).select(owned))
            else:
                parts.append(PointSet(ids, values))
            contributions.append(len(parts[-1]))
        self.counters.inc(
            counter_names.SERVE_SHARD_QUERIES_FANNED, self.num_shards
        )
        merged = PointSet.concat(parts)
        self._sky_cache = merged.select(
            np.argsort(merged.ids, kind="stable")
        )
        self._sky_cache_epoch = self.epoch
        self._contributions = contributions
        return self._sky_cache

    def skyline_ids(self) -> np.ndarray:
        return self.skyline().ids.copy()

    def shard_contributions(self) -> List[int]:
        """Owned skyline members per shard (current epoch)."""
        self.skyline()
        return list(self._contributions)

    def query(self, region: Optional[Tuple] = None) -> PointSet:
        """Skyline members inside a constraint box (router merge)."""
        sky = self.skyline()
        if region is None or len(sky) == 0:
            return sky
        lows = np.asarray(region[0], dtype=np.float64).ravel()
        highs = np.asarray(region[1], dtype=np.float64).ravel()
        if lows.shape[0] != self._d or highs.shape[0] != self._d:
            raise ValidationError(f"region must have {self._d} dimensions")
        inside = (sky.values >= lows).all(axis=1) & (
            sky.values <= highs
        ).all(axis=1)
        return sky.select(inside)

    def snapshot(self) -> PointSet:
        """All live points (deduplicated via ownership), ids ascending."""
        ctx = self._ctx()
        rows: Dict[int, np.ndarray] = {}
        for s in range(self.num_shards):
            ids, values = self._call(s, ("snapshot", ctx))
            for pos in range(len(ids)):
                pid = int(ids[pos])
                if self._owner.get(pid) == s:
                    rows[pid] = values[pos]
        if not rows:
            return PointSet.empty(self._d)
        sorted_ids = sorted(rows)
        return PointSet(
            np.asarray(sorted_ids, dtype=np.int64),
            np.vstack([rows[i] for i in sorted_ids]),
        )

    @property
    def refreshes(self) -> int:
        """Sum of worker-side batch refreshes (RPC; cached once stopped)."""
        if self._stopped or not self._conns:
            return self._refreshes_cache
        total = 0
        for s in range(self.num_shards):
            total += int(self._call(s, ("stats",))["refreshes"])
        self._refreshes_cache = total
        return total

    # -- trace plumbing -------------------------------------------------

    def drain_span_records(self) -> Dict[int, List[Tuple]]:
        """Collect every worker's batched span records (and clear them).

        Feed the result to
        :meth:`repro.obs.serve_trace.ServeTracer.ingest_fleet_records`
        per shard; do this before :meth:`stop`.
        """
        drained: Dict[int, List[Tuple]] = {}
        for s in range(self.num_shards):
            records = self._call(s, ("spans",))
            if records:
                drained[s] = list(records)
        return drained
