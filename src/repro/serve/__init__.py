"""repro.serve — the incremental skyline serving layer.

The batch pipelines answer "what is the skyline of this dataset";
``repro.serve`` keeps answering while the dataset changes and queries
arrive concurrently:

* :class:`SkylineIndex` (:mod:`repro.serve.index`) — the batch
  substrate (grid, global bitstring, per-cell buckets, skyline) kept
  exact under ``insert``/``delete`` deltas, with a bounded local
  repair for deletes and a staleness-budget batch refresh that reuses
  MR-GPSRS/MR-GPMRS through the existing engines;
* :class:`ResultCache` (:mod:`repro.serve.cache`) — LRU results keyed
  on (dataset epoch, constraint region), epoch-invalidated on deltas;
* :class:`QueryFrontend` / :class:`ThreadedFrontend`
  (:mod:`repro.serve.frontend`) — admission control with a bounded
  weighted-fair queue (per-tenant virtual start/finish tags and
  quotas via :class:`TenantPolicy`), timeouts, and load shedding;
  deterministic under a seeded schedule on the virtual clock, with a
  real-thread mode for demos;
* :data:`SERVE_WORKLOADS` (:mod:`repro.serve.workloads`) — seeded
  load generators + the replay driver behind ``repro-skyline serve``
  and ``benchmarks/bench_serve.py``;
* :class:`ShardedSkylineIndex` / :class:`ShardedFrontend`
  (:mod:`repro.serve.shard`) — the index partitioned by independent
  groups (Lemma 2) across shards behind a router with one global
  epoch and delta batching; exact by construction, scales write-heavy
  capacity with the shard count;
* :class:`SkylineFleet` (:mod:`repro.serve.fleet`) — the same shard
  plan across real worker processes, initial shard datasets shipped
  zero-copy through :mod:`repro.core.shm`.

See ``docs/serving.md`` for the design and the correctness argument.
"""

from repro.serve.cache import ResultCache, region_key
from repro.serve.frontend import (
    DEFAULT_TENANT,
    RESPONSE_STATUSES,
    SERVING_POLICIES,
    CostModel,
    QueryFrontend,
    QueryResponse,
    TenantPolicy,
    ThreadedFrontend,
)
from repro.serve.fleet import FleetError, SkylineFleet
from repro.serve.index import (
    DEFAULT_STALENESS_BUDGET,
    REFRESH_ALGORITHMS,
    SkylineIndex,
)
from repro.serve.shard import (
    ShardedFrontend,
    ShardedSkylineIndex,
    ShardPlan,
    UncoveredCellError,
    plan_shards,
)
from repro.serve.workloads import (
    ARRIVAL_SHAPES,
    SERVE_WORKLOADS,
    OpStream,
    ServeWorkload,
    build_serve_report,
    exact_percentile,
    generate_ops,
    op_tenant,
    replay,
    run_workload,
    serve_stream,
    tenant_name,
)

__all__ = [
    "ARRIVAL_SHAPES",
    "CostModel",
    "DEFAULT_STALENESS_BUDGET",
    "DEFAULT_TENANT",
    "FleetError",
    "OpStream",
    "QueryFrontend",
    "QueryResponse",
    "REFRESH_ALGORITHMS",
    "RESPONSE_STATUSES",
    "ResultCache",
    "SERVE_WORKLOADS",
    "SERVING_POLICIES",
    "ServeWorkload",
    "ShardPlan",
    "ShardedFrontend",
    "ShardedSkylineIndex",
    "SkylineFleet",
    "SkylineIndex",
    "TenantPolicy",
    "ThreadedFrontend",
    "UncoveredCellError",
    "build_serve_report",
    "exact_percentile",
    "generate_ops",
    "op_tenant",
    "plan_shards",
    "region_key",
    "replay",
    "run_workload",
    "serve_stream",
    "tenant_name",
]
