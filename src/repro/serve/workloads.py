"""Seeded serve workloads: op-stream generators and the replay driver.

A workload is a *recipe* — initial dataset distribution, op mix,
arrival process, admission limits — and :func:`generate_ops` turns it
into a concrete, fully deterministic op stream under a seed: every
arrival time, query region, inserted point, and deleted id is drawn
from one ``numpy`` generator, so the same ``(workload, seed)`` pair
replays byte-identically (the property the oracle tests and the
serve-gate CI job rely on).

:func:`replay` feeds a stream through a frontend and
:func:`build_serve_report` reduces the responses to the headline
serving numbers (throughput, exact p50/p99 latency, cache hit rate,
shed/timeout rates) that ``repro-skyline serve`` prints and
``benchmarks/bench_serve.py`` writes to ``BENCH_serve.json``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.generators import generate
from repro.errors import ValidationError
from repro.serve.frontend import (
    DEFAULT_TENANT,
    QueryFrontend,
    QueryResponse,
    TenantPolicy,
)
from repro.serve.index import SkylineIndex

#: Op-stream entries: ("query", t, region) / ("insert", t, point, id) /
#: ("delete", t, id); multi-tenant workloads append the tenant id as a
#: trailing element on every op (single-tenant streams keep the bare
#: shapes, so pre-tenancy replays stay byte-identical).
Op = Tuple

#: Arrival processes a workload can request. ``poisson`` is the flat
#: exponential process; ``diurnal`` modulates the rate sinusoidally
#: over the stream (the day/night curve, compressed to virtual time);
#: ``flash-crowd`` multiplies the rate by ``flash_factor`` inside a
#: fractional window of the stream while the tenant mixture collapses
#: toward the hot tenant. The ``burst`` square wave composes on top.
ARRIVAL_SHAPES = ("poisson", "diurnal", "flash-crowd")


def tenant_name(index: int) -> str:
    """Canonical tenant id for position ``index``: ``t0``, ``t1``, …

    ``t0`` is always the most popular (and, in flash-crowd traces, the
    hot) tenant — Zipf popularity is assigned in index order.
    """
    return f"t{index}"


@dataclass(frozen=True)
class ServeWorkload:
    """One named serving scenario (see :data:`SERVE_WORKLOADS`)."""

    name: str
    description: str
    distribution: str = "independent"
    cardinality: int = 500
    dimensionality: int = 2
    num_ops: int = 400
    query_fraction: float = 0.9
    region_fraction: float = 0.5
    region_pool: int = 8
    mean_interarrival_s: float = 2e-4
    burst: bool = False
    queue_capacity: int = 16
    timeout_s: float = 0.05
    cache_capacity: int = 64
    staleness_budget: int = 128
    #: Multi-tenancy: ops are attributed to ``tenants`` ids whose
    #: popularity follows a Zipf law with exponent ``tenant_skew``
    #: (tenant ``t0`` most popular). ``tenant_quota`` is the fraction
    #: of the bounded queue any one tenant may occupy (1.0 = quotas
    #: never bind); ``shed_bound`` is the aggregate shed rate the
    #: serve-gate allows for this workload.
    tenants: int = 1
    tenant_skew: float = 1.1
    tenant_quota: float = 1.0
    arrival_shape: str = "poisson"
    diurnal_amplitude: float = 0.8
    diurnal_cycles: float = 2.0
    flash_factor: float = 8.0
    flash_window: Tuple[float, float] = (0.4, 0.6)
    hot_tenant_share: float = 0.9
    shed_bound: float = 1.0

    def scaled(self, factor: float) -> "ServeWorkload":
        """Shrink/grow the workload (``--quick`` benchmark runs).

        The admission knobs scale *with* the op volume — a quarter-size
        replay against a full-size queue, cache, and staleness budget
        would report distorted shed and hit rates — floored so scaling
        never produces a degenerate frontend (a zero-slot queue or an
        instantly-stale index).
        """
        return replace(
            self,
            cardinality=max(16, int(self.cardinality * factor)),
            num_ops=max(32, int(self.num_ops * factor)),
            queue_capacity=max(2, int(self.queue_capacity * factor)),
            cache_capacity=(
                max(2, int(self.cache_capacity * factor))
                if self.cache_capacity > 0
                else 0
            ),
            staleness_budget=max(16, int(self.staleness_budget * factor)),
        )

    def tenant_policy(self) -> TenantPolicy:
        """The frontend admission policy this workload implies."""
        return TenantPolicy(quota_fraction=self.tenant_quota)


#: The registry `repro-skyline list` enumerates and the bench loads.
SERVE_WORKLOADS: Dict[str, ServeWorkload] = {
    workload.name: workload
    for workload in (
        ServeWorkload(
            name="read-heavy",
            description=(
                "95% queries over a slowly-drifting independent dataset; "
                "the cache does most of the serving."
            ),
            query_fraction=0.95,
            region_fraction=0.6,
        ),
        ServeWorkload(
            name="write-heavy",
            description=(
                "Half the stream is inserts/deletes; exercises the delta "
                "path, epoch invalidation, and the staleness budget."
            ),
            query_fraction=0.5,
            region_fraction=0.4,
            staleness_budget=64,
        ),
        ServeWorkload(
            name="mixed-anticorrelated",
            description=(
                "80/20 read/write over anticorrelated data (large "
                "skylines): the hard case for delete repair."
            ),
            distribution="anticorrelated",
            dimensionality=3,
            query_fraction=0.8,
            region_fraction=0.5,
            mean_interarrival_s=5e-4,
        ),
        ServeWorkload(
            name="bursty-shed",
            description=(
                "Square-wave arrival bursts against a short queue and a "
                "tight timeout; exercises load shedding."
            ),
            query_fraction=0.97,
            region_fraction=0.3,
            cache_capacity=4,
            queue_capacity=4,
            timeout_s=2e-3,
            mean_interarrival_s=1e-4,
            burst=True,
        ),
        ServeWorkload(
            name="multi-tenant-diurnal",
            description=(
                "Eight Zipf-popular tenants on a diurnal arrival curve "
                "behind per-tenant quotas; exercises weighted-fair "
                "admission under a production-shaped day/night load."
            ),
            query_fraction=0.9,
            region_fraction=0.5,
            mean_interarrival_s=2e-4,
            tenants=8,
            tenant_skew=1.1,
            tenant_quota=0.5,
            arrival_shape="diurnal",
            shed_bound=0.5,
        ),
        ServeWorkload(
            name="flash-crowd",
            description=(
                "One hot Zipfian tenant flash-crowds the middle of the "
                "trace at 8x rate against a short queue and tight "
                "quotas; the fairness gate pins the cold tenants' p99."
            ),
            query_fraction=0.95,
            region_fraction=0.4,
            cache_capacity=8,
            queue_capacity=8,
            timeout_s=4e-3,
            mean_interarrival_s=2e-4,
            tenants=6,
            tenant_skew=1.2,
            tenant_quota=0.25,
            arrival_shape="flash-crowd",
            flash_factor=8.0,
            flash_window=(0.4, 0.6),
            hot_tenant_share=0.9,
            shed_bound=0.6,
        ),
    )
}


@dataclass
class OpStream:
    """A generated workload instance: initial data + timed operations."""

    workload: ServeWorkload
    seed: int
    initial_data: np.ndarray
    ops: List[Op] = field(default_factory=list)

    def counts(self) -> Dict[str, int]:
        out = {"query": 0, "insert": 0, "delete": 0}
        for op in self.ops:
            out[op[0]] += 1
        return out


def _region_pool(
    rng: np.random.Generator, workload: ServeWorkload
) -> List[Tuple[Tuple[float, ...], Tuple[float, ...]]]:
    pool = []
    for _ in range(workload.region_pool):
        centre = rng.random(workload.dimensionality)
        half = 0.15 + 0.2 * rng.random()
        lows = np.clip(centre - half, 0.0, 1.0)
        highs = np.clip(centre + half, 0.0, 1.0)
        pool.append((tuple(lows.tolist()), tuple(highs.tolist())))
    return pool


def _zipf_cumprobs(workload: ServeWorkload) -> np.ndarray:
    """Cumulative Zipf popularity over tenants ``t0`` … ``tN-1``."""
    ranks = np.arange(1, workload.tenants + 1, dtype=np.float64)
    raw = ranks ** -workload.tenant_skew
    return np.cumsum(raw / raw.sum())


def _flash_cumprobs(workload: ServeWorkload) -> np.ndarray:
    """In-window mixture: the hot tenant ``t0`` takes
    ``hot_tenant_share``; the rest split the remainder by their base
    Zipf popularity, renormalised."""
    cum = _zipf_cumprobs(workload)
    probs = np.diff(cum, prepend=0.0)
    cold = probs[1:]
    cold = cold / cold.sum() * (1.0 - workload.hot_tenant_share)
    return np.cumsum(
        np.concatenate(([workload.hot_tenant_share], cold))
    )


def generate_ops(workload: ServeWorkload, seed: int = 0) -> OpStream:
    """Materialise a workload into a deterministic op stream.

    Single-tenant workloads draw exactly the same random sequence as
    before tenancy existed (no tenant draws at all), so their streams
    are byte-identical across versions; multi-tenant workloads spend
    one extra uniform per op on the tenant and append it to the op
    tuple.
    """
    if workload.num_ops < 1:
        raise ValidationError("workload needs at least one operation")
    if workload.arrival_shape not in ARRIVAL_SHAPES:
        raise ValidationError(
            f"arrival_shape must be one of {ARRIVAL_SHAPES}, "
            f"got {workload.arrival_shape!r}"
        )
    if workload.tenants < 1:
        raise ValidationError(
            f"tenants must be >= 1, got {workload.tenants}"
        )
    if not 0.0 < workload.hot_tenant_share < 1.0:
        raise ValidationError(
            f"hot_tenant_share must be in (0, 1), "
            f"got {workload.hot_tenant_share}"
        )
    lo, hi = workload.flash_window
    if not 0.0 <= lo < hi <= 1.0:
        raise ValidationError(
            f"flash_window must satisfy 0 <= lo < hi <= 1, "
            f"got {workload.flash_window}"
        )
    rng = np.random.default_rng(seed)
    initial = generate(
        workload.distribution,
        workload.cardinality,
        workload.dimensionality,
        seed=rng,
    )
    pool = _region_pool(rng, workload)
    live: List[int] = list(range(workload.cardinality))
    next_id = workload.cardinality
    write_fraction = 1.0 - workload.query_fraction
    multi_tenant = workload.tenants > 1
    base_cum = _zipf_cumprobs(workload) if multi_tenant else None
    flash_cum = (
        _flash_cumprobs(workload)
        if multi_tenant and workload.arrival_shape == "flash-crowd"
        else base_cum
    )

    ops: List[Op] = []
    now = 0.0
    for position in range(workload.num_ops):
        gap = workload.mean_interarrival_s
        if workload.burst:
            # Square wave: 50-op bursts at 10x rate, then 50 slow ops.
            gap = gap / 10.0 if (position // 50) % 2 == 0 else gap * 2.0
        frac = position / workload.num_ops
        in_flash = (
            workload.arrival_shape == "flash-crowd" and lo <= frac < hi
        )
        if workload.arrival_shape == "diurnal":
            # Sinusoidal rate modulation — the day/night curve; the
            # amplitude stays < 1 so the rate never hits zero.
            gap /= 1.0 + workload.diurnal_amplitude * math.sin(
                2.0 * math.pi * workload.diurnal_cycles * frac
            )
        elif in_flash:
            gap /= workload.flash_factor
        now += float(rng.exponential(gap))
        tenant = None
        if multi_tenant:
            cum = flash_cum if in_flash else base_cum
            idx = int(np.searchsorted(cum, rng.random(), side="right"))
            tenant = tenant_name(min(idx, workload.tenants - 1))
        draw = rng.random()
        if draw < workload.query_fraction or len(live) < 2:
            region = None
            if rng.random() < workload.region_fraction:
                region = pool[int(rng.integers(0, len(pool)))]
            op: Op = ("query", now, region)
        elif draw < workload.query_fraction + write_fraction / 2.0:
            point = generate(
                workload.distribution, 1, workload.dimensionality, seed=rng
            )[0]
            op = ("insert", now, tuple(point.tolist()), next_id)
            live.append(next_id)
            next_id += 1
        else:
            victim = live.pop(int(rng.integers(0, len(live))))
            op = ("delete", now, victim)
        ops.append(op + (tenant,) if tenant is not None else op)
    return OpStream(workload=workload, seed=seed, initial_data=initial, ops=ops)


#: Bare op-tuple arity per kind; a longer tuple carries the tenant id.
_OP_ARITY = {"query": 3, "insert": 4, "delete": 3}


def op_tenant(op: Op) -> str:
    """The tenant an op is attributed to (default for bare tuples)."""
    arity = _OP_ARITY.get(op[0])
    if arity is None:
        raise ValidationError(f"unknown op kind {op[0]!r}")
    return op[arity] if len(op) > arity else DEFAULT_TENANT


def replay(frontend: QueryFrontend, stream: OpStream) -> List[QueryResponse]:
    """Feed an op stream through a virtual-clock frontend and flush.

    Queries carry their tenant into admission; mutations are not
    admission-controlled (their tenant attribution exists for trace
    filtering, e.g. the fairness gate's no-hot-tenant baseline).
    """
    for op in stream.ops:
        kind = op[0]
        if kind == "query":
            frontend.submit_query(op[1], op[2], op_tenant(op))
        elif kind == "insert":
            frontend.apply_insert(op[1], op[2], op[3])
        elif kind == "delete":
            frontend.apply_delete(op[1], op[2])
        else:
            raise ValidationError(f"unknown op kind {kind!r}")
    return frontend.flush()


def exact_percentile(samples: Sequence[float], q: float) -> float:
    """Exact order statistic (nearest-rank): no interpolation, so the
    value is always one of the observed samples."""
    if not samples:
        return 0.0
    if not 0.0 <= q <= 1.0:
        raise ValidationError(f"quantile must be in [0, 1], got {q}")
    ordered = sorted(samples)
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[rank - 1]


def build_serve_report(
    stream: OpStream,
    frontend: QueryFrontend,
    responses: Sequence[QueryResponse],
) -> Dict:
    """Headline serving numbers for one replayed stream."""
    ok = [r for r in responses if r.status == "ok"]
    shed = sum(1 for r in responses if r.status == "shed")
    timed_out = sum(1 for r in responses if r.status == "timeout")
    latencies = [r.latency_s for r in ok]
    if responses:
        first_arrival = min(r.arrival_s for r in responses)
        last_finish = max(r.finish_s for r in ok) if ok else max(
            r.finish_s for r in responses
        )
        makespan = max(last_finish - first_arrival, 1e-12)
    else:
        makespan = 1e-12
    index = frontend.index
    report = {
        "workload": stream.workload.name,
        "seed": stream.seed,
        "policy": frontend.policy,
        "shards": getattr(index, "num_shards", 1),
        "ops": stream.counts(),
        "queries_submitted": len(responses),
        "queries_served": len(ok),
        "queries_shed": shed,
        "queries_timed_out": timed_out,
        "cache_hit_rate": round(frontend.cache.hit_rate(), 6),
        "p50_latency_s": exact_percentile(latencies, 0.50),
        "p99_latency_s": exact_percentile(latencies, 0.99),
        "makespan_s": makespan,
        "queries_per_s": len(ok) / makespan,
        "final_epoch": index.epoch,
        "final_skyline_size": len(index.skyline()),
        "batch_refreshes": index.refreshes,
    }
    tenants = sorted({r.tenant for r in responses})
    if stream.workload.tenants > 1 or tenants not in ([], [DEFAULT_TENANT]):
        per_tenant: Dict[str, Dict] = {}
        for t in tenants:
            mine = [r for r in responses if r.tenant == t]
            served = [r.latency_s for r in mine if r.status == "ok"]
            per_tenant[t] = {
                "submitted": len(mine),
                "served": len(served),
                "shed": sum(1 for r in mine if r.status == "shed"),
                "timed_out": sum(
                    1 for r in mine if r.status == "timeout"
                ),
                "p50_latency_s": exact_percentile(served, 0.50),
                "p99_latency_s": exact_percentile(served, 0.99),
            }
        report["tenants"] = per_tenant
    return report


def resolve_workload(
    workload,
    *,
    scale: float = 1.0,
    tenants: Optional[int] = None,
) -> ServeWorkload:
    """Resolve a workload name/object plus the CLI-style overrides.

    Exposed so observability callers (the CLI's SLO monitor needs the
    *effective* workload before the replay starts) resolve overrides
    exactly the way :func:`run_workload` does.
    """
    if isinstance(workload, str):
        if workload not in SERVE_WORKLOADS:
            raise ValidationError(
                f"unknown serve workload {workload!r}; "
                f"available: {sorted(SERVE_WORKLOADS)}"
            )
        workload = SERVE_WORKLOADS[workload]
    if scale != 1.0:
        workload = workload.scaled(scale)
    if tenants is not None:
        workload = replace(workload, tenants=int(tenants))
    return workload


def run_workload(
    workload,
    *,
    seed: int = 0,
    policy: str = "delta",
    shards: Optional[int] = None,
    engine=None,
    cluster=None,
    counters=None,
    bus=None,
    scale: float = 1.0,
    tenants: Optional[int] = None,
    tracer=None,
    fleet: bool = False,
    batch_window_s: Optional[float] = None,
    artifacts: Optional[Dict] = None,
) -> Tuple[Dict, QueryFrontend]:
    """Build index + frontend for a workload, replay it, report.

    ``workload`` is a name from :data:`SERVE_WORKLOADS` or a
    :class:`ServeWorkload`. The ``recompute`` policy disables the cache
    (a recompute-per-query baseline has nothing sound to cache between
    deltas at these write rates; the comparison stays work-vs-work).
    With ``shards`` set, the same stream is served by a
    :class:`~repro.serve.shard.ShardedSkylineIndex` behind the batching
    :class:`~repro.serve.shard.ShardedFrontend` — results stay exact
    (the shard oracle tests pin this), only capacity changes.
    """
    workload = resolve_workload(workload, scale=scale, tenants=tenants)
    stream = generate_ops(workload, seed)
    return serve_stream(
        stream,
        policy=policy,
        shards=shards,
        engine=engine,
        cluster=cluster,
        counters=counters,
        bus=bus,
        tracer=tracer,
        fleet=fleet,
        batch_window_s=batch_window_s,
        artifacts=artifacts,
    )


def serve_stream(
    stream: OpStream,
    *,
    policy: str = "delta",
    shards: Optional[int] = None,
    engine=None,
    cluster=None,
    counters=None,
    bus=None,
    tracer=None,
    fleet: bool = False,
    batch_window_s: Optional[float] = None,
    artifacts: Optional[Dict] = None,
) -> Tuple[Dict, QueryFrontend]:
    """Serve an already-materialised op stream; report + frontend.

    The split from :func:`run_workload` exists so callers (the bench's
    fairness gate) can *edit* a generated stream — e.g. drop the hot
    tenant's queries to build a no-hot-tenant baseline — and replay the
    result under identical frontend configuration.

    ``tracer`` attaches a :class:`~repro.obs.serve_trace.ServeTracer`
    (pure observer — virtual timings are unchanged). With ``fleet``
    (requires ``shards``), the sharded frontend drives a real
    :class:`~repro.serve.fleet.SkylineFleet` instead of the in-process
    index: worker span records are drained into the tracer and the
    fleet is stopped before returning (the returned frontend's index
    answers no further RPCs). ``batch_window_s`` overrides the sharded
    frontend's coalescing window (0 disables batching — the
    shards=1-parity configuration). ``artifacts``, when given, is
    filled with the intermediate objects (``stream``, ``responses``,
    ``frontend``, ``final_skyline``) observability callers need —
    ``final_skyline`` matters for fleet runs, where the index stops
    answering once this function returns.
    """
    workload = stream.workload
    if fleet and shards is None:
        raise ValidationError("fleet serving requires shards")
    if shards is not None:
        from repro.serve.shard import ShardedFrontend, ShardedSkylineIndex

        if fleet:
            from repro.serve.fleet import SkylineFleet

            index = SkylineFleet(
                stream.initial_data,
                num_shards=shards,
                staleness_budget=workload.staleness_budget,
                counters=counters,
                bus=bus,
                tracer=tracer,
                reshard=True,
            )
        else:
            index = ShardedSkylineIndex(
                stream.initial_data,
                num_shards=shards,
                staleness_budget=workload.staleness_budget,
                engine=engine,
                cluster=cluster,
                counters=counters,
                bus=bus,
            )
    else:
        index = SkylineIndex(
            stream.initial_data,
            staleness_budget=workload.staleness_budget,
            engine=engine,
            cluster=cluster,
            counters=counters,
            bus=bus,
        )
    # From here on a fleet (worker processes + shared arena) may be
    # live: everything that can raise — including frontend
    # construction, which validates its policy/queue configuration —
    # must run inside the try so the finally always retires it.
    try:
        if shards is not None:
            shard_kwargs = {}
            if batch_window_s is not None:
                shard_kwargs["batch_window_s"] = batch_window_s
            frontend = ShardedFrontend(
                index,
                policy=policy,
                cache_capacity=(
                    workload.cache_capacity if policy == "delta" else 0
                ),
                queue_capacity=workload.queue_capacity,
                timeout_s=workload.timeout_s,
                tenant_policy=workload.tenant_policy(),
                tracer=tracer,
                **shard_kwargs,
            )
        else:
            frontend = QueryFrontend(
                index,
                policy=policy,
                cache_capacity=(
                    workload.cache_capacity if policy == "delta" else 0
                ),
                queue_capacity=workload.queue_capacity,
                timeout_s=workload.timeout_s,
                tenant_policy=workload.tenant_policy(),
                tracer=tracer,
            )
        responses = replay(frontend, stream)
        report = build_serve_report(stream, frontend, responses)
        # Snapshot before the fleet (if any) is stopped; skyline() is
        # memoized at the final epoch so this costs nothing extra.
        final_skyline = index.skyline()
    finally:
        if fleet:
            if tracer is not None:
                for s, recs in index.drain_span_records().items():
                    tracer.ingest_fleet_records(s, recs)
            index.stop()
    if artifacts is not None:
        artifacts["stream"] = stream
        artifacts["responses"] = responses
        artifacts["frontend"] = frontend
        artifacts["final_skyline"] = final_skyline
    return report, frontend
