"""Seeded serve workloads: op-stream generators and the replay driver.

A workload is a *recipe* — initial dataset distribution, op mix,
arrival process, admission limits — and :func:`generate_ops` turns it
into a concrete, fully deterministic op stream under a seed: every
arrival time, query region, inserted point, and deleted id is drawn
from one ``numpy`` generator, so the same ``(workload, seed)`` pair
replays byte-identically (the property the oracle tests and the
serve-gate CI job rely on).

:func:`replay` feeds a stream through a frontend and
:func:`build_serve_report` reduces the responses to the headline
serving numbers (throughput, exact p50/p99 latency, cache hit rate,
shed/timeout rates) that ``repro-skyline serve`` prints and
``benchmarks/bench_serve.py`` writes to ``BENCH_serve.json``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.data.generators import generate
from repro.errors import ValidationError
from repro.serve.frontend import QueryFrontend, QueryResponse
from repro.serve.index import SkylineIndex

#: Op-stream entries: ("query", t, region) / ("insert", t, point, id) /
#: ("delete", t, id).
Op = Tuple


@dataclass(frozen=True)
class ServeWorkload:
    """One named serving scenario (see :data:`SERVE_WORKLOADS`)."""

    name: str
    description: str
    distribution: str = "independent"
    cardinality: int = 500
    dimensionality: int = 2
    num_ops: int = 400
    query_fraction: float = 0.9
    region_fraction: float = 0.5
    region_pool: int = 8
    mean_interarrival_s: float = 2e-4
    burst: bool = False
    queue_capacity: int = 16
    timeout_s: float = 0.05
    cache_capacity: int = 64
    staleness_budget: int = 128

    def scaled(self, factor: float) -> "ServeWorkload":
        """Shrink/grow the workload (``--quick`` benchmark runs)."""
        return replace(
            self,
            cardinality=max(16, int(self.cardinality * factor)),
            num_ops=max(32, int(self.num_ops * factor)),
        )


#: The registry `repro-skyline list` enumerates and the bench loads.
SERVE_WORKLOADS: Dict[str, ServeWorkload] = {
    workload.name: workload
    for workload in (
        ServeWorkload(
            name="read-heavy",
            description=(
                "95% queries over a slowly-drifting independent dataset; "
                "the cache does most of the serving."
            ),
            query_fraction=0.95,
            region_fraction=0.6,
        ),
        ServeWorkload(
            name="write-heavy",
            description=(
                "Half the stream is inserts/deletes; exercises the delta "
                "path, epoch invalidation, and the staleness budget."
            ),
            query_fraction=0.5,
            region_fraction=0.4,
            staleness_budget=64,
        ),
        ServeWorkload(
            name="mixed-anticorrelated",
            description=(
                "80/20 read/write over anticorrelated data (large "
                "skylines): the hard case for delete repair."
            ),
            distribution="anticorrelated",
            dimensionality=3,
            query_fraction=0.8,
            region_fraction=0.5,
            mean_interarrival_s=5e-4,
        ),
        ServeWorkload(
            name="bursty-shed",
            description=(
                "Square-wave arrival bursts against a short queue and a "
                "tight timeout; exercises load shedding."
            ),
            query_fraction=0.97,
            region_fraction=0.3,
            cache_capacity=4,
            queue_capacity=4,
            timeout_s=2e-3,
            mean_interarrival_s=1e-4,
            burst=True,
        ),
    )
}


@dataclass
class OpStream:
    """A generated workload instance: initial data + timed operations."""

    workload: ServeWorkload
    seed: int
    initial_data: np.ndarray
    ops: List[Op] = field(default_factory=list)

    def counts(self) -> Dict[str, int]:
        out = {"query": 0, "insert": 0, "delete": 0}
        for op in self.ops:
            out[op[0]] += 1
        return out


def _region_pool(
    rng: np.random.Generator, workload: ServeWorkload
) -> List[Tuple[Tuple[float, ...], Tuple[float, ...]]]:
    pool = []
    for _ in range(workload.region_pool):
        centre = rng.random(workload.dimensionality)
        half = 0.15 + 0.2 * rng.random()
        lows = np.clip(centre - half, 0.0, 1.0)
        highs = np.clip(centre + half, 0.0, 1.0)
        pool.append((tuple(lows.tolist()), tuple(highs.tolist())))
    return pool


def generate_ops(workload: ServeWorkload, seed: int = 0) -> OpStream:
    """Materialise a workload into a deterministic op stream."""
    if workload.num_ops < 1:
        raise ValidationError("workload needs at least one operation")
    rng = np.random.default_rng(seed)
    initial = generate(
        workload.distribution,
        workload.cardinality,
        workload.dimensionality,
        seed=rng,
    )
    pool = _region_pool(rng, workload)
    live: List[int] = list(range(workload.cardinality))
    next_id = workload.cardinality
    write_fraction = 1.0 - workload.query_fraction

    ops: List[Op] = []
    now = 0.0
    for position in range(workload.num_ops):
        gap = workload.mean_interarrival_s
        if workload.burst:
            # Square wave: 50-op bursts at 10x rate, then 50 slow ops.
            gap = gap / 10.0 if (position // 50) % 2 == 0 else gap * 2.0
        now += float(rng.exponential(gap))
        draw = rng.random()
        if draw < workload.query_fraction or len(live) < 2:
            region = None
            if rng.random() < workload.region_fraction:
                region = pool[int(rng.integers(0, len(pool)))]
            ops.append(("query", now, region))
        elif draw < workload.query_fraction + write_fraction / 2.0:
            point = generate(
                workload.distribution, 1, workload.dimensionality, seed=rng
            )[0]
            ops.append(("insert", now, tuple(point.tolist()), next_id))
            live.append(next_id)
            next_id += 1
        else:
            victim = live.pop(int(rng.integers(0, len(live))))
            ops.append(("delete", now, victim))
    return OpStream(workload=workload, seed=seed, initial_data=initial, ops=ops)


def replay(frontend: QueryFrontend, stream: OpStream) -> List[QueryResponse]:
    """Feed an op stream through a virtual-clock frontend and flush."""
    for op in stream.ops:
        kind = op[0]
        if kind == "query":
            frontend.submit_query(op[1], op[2])
        elif kind == "insert":
            frontend.apply_insert(op[1], op[2], op[3])
        elif kind == "delete":
            frontend.apply_delete(op[1], op[2])
        else:
            raise ValidationError(f"unknown op kind {kind!r}")
    return frontend.flush()


def exact_percentile(samples: Sequence[float], q: float) -> float:
    """Exact order statistic (nearest-rank): no interpolation, so the
    value is always one of the observed samples."""
    if not samples:
        return 0.0
    if not 0.0 <= q <= 1.0:
        raise ValidationError(f"quantile must be in [0, 1], got {q}")
    ordered = sorted(samples)
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[rank - 1]


def build_serve_report(
    stream: OpStream,
    frontend: QueryFrontend,
    responses: Sequence[QueryResponse],
) -> Dict:
    """Headline serving numbers for one replayed stream."""
    ok = [r for r in responses if r.status == "ok"]
    shed = sum(1 for r in responses if r.status == "shed")
    timed_out = sum(1 for r in responses if r.status == "timeout")
    latencies = [r.latency_s for r in ok]
    if responses:
        first_arrival = min(r.arrival_s for r in responses)
        last_finish = max(r.finish_s for r in ok) if ok else max(
            r.finish_s for r in responses
        )
        makespan = max(last_finish - first_arrival, 1e-12)
    else:
        makespan = 1e-12
    index = frontend.index
    return {
        "workload": stream.workload.name,
        "seed": stream.seed,
        "policy": frontend.policy,
        "shards": getattr(index, "num_shards", 1),
        "ops": stream.counts(),
        "queries_submitted": len(responses),
        "queries_served": len(ok),
        "queries_shed": shed,
        "queries_timed_out": timed_out,
        "cache_hit_rate": round(frontend.cache.hit_rate(), 6),
        "p50_latency_s": exact_percentile(latencies, 0.50),
        "p99_latency_s": exact_percentile(latencies, 0.99),
        "makespan_s": makespan,
        "queries_per_s": len(ok) / makespan,
        "final_epoch": index.epoch,
        "final_skyline_size": len(index.skyline()),
        "batch_refreshes": index.refreshes,
    }


def run_workload(
    workload,
    *,
    seed: int = 0,
    policy: str = "delta",
    shards: Optional[int] = None,
    engine=None,
    cluster=None,
    counters=None,
    bus=None,
    scale: float = 1.0,
) -> Tuple[Dict, QueryFrontend]:
    """Build index + frontend for a workload, replay it, report.

    ``workload`` is a name from :data:`SERVE_WORKLOADS` or a
    :class:`ServeWorkload`. The ``recompute`` policy disables the cache
    (a recompute-per-query baseline has nothing sound to cache between
    deltas at these write rates; the comparison stays work-vs-work).
    With ``shards`` set, the same stream is served by a
    :class:`~repro.serve.shard.ShardedSkylineIndex` behind the batching
    :class:`~repro.serve.shard.ShardedFrontend` — results stay exact
    (the shard oracle tests pin this), only capacity changes.
    """
    if isinstance(workload, str):
        if workload not in SERVE_WORKLOADS:
            raise ValidationError(
                f"unknown serve workload {workload!r}; "
                f"available: {sorted(SERVE_WORKLOADS)}"
            )
        workload = SERVE_WORKLOADS[workload]
    if scale != 1.0:
        workload = workload.scaled(scale)
    stream = generate_ops(workload, seed)
    if shards is not None:
        from repro.serve.shard import ShardedFrontend, ShardedSkylineIndex

        index = ShardedSkylineIndex(
            stream.initial_data,
            num_shards=shards,
            staleness_budget=workload.staleness_budget,
            engine=engine,
            cluster=cluster,
            counters=counters,
            bus=bus,
        )
        frontend = ShardedFrontend(
            index,
            policy=policy,
            cache_capacity=(
                workload.cache_capacity if policy == "delta" else 0
            ),
            queue_capacity=workload.queue_capacity,
            timeout_s=workload.timeout_s,
        )
    else:
        index = SkylineIndex(
            stream.initial_data,
            staleness_budget=workload.staleness_budget,
            engine=engine,
            cluster=cluster,
            counters=counters,
            bus=bus,
        )
        frontend = QueryFrontend(
            index,
            policy=policy,
            cache_capacity=(
                workload.cache_capacity if policy == "delta" else 0
            ),
            queue_capacity=workload.queue_capacity,
            timeout_s=workload.timeout_s,
        )
    responses = replay(frontend, stream)
    return build_serve_report(stream, frontend, responses), frontend
