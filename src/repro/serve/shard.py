"""Sharded serving: partition the skyline index by independent groups.

One :class:`~repro.serve.index.SkylineIndex` eventually saturates on
repair work — every insert/delete burst pays its dominance comparisons
on a single server's clock. Lemma 2 says where the parallelism is: an
*independent partition group* (Definition 5) is closed under
anti-dominating regions, so the local skyline of its tuples is a subset
of the global skyline and can be maintained with **no cross-group
communication**. :class:`ShardedSkylineIndex` exploits exactly that:

* the initial dataset is gridded once, Algorithm 7 generates
  independent groups over the occupancy bitstring, and the groups are
  LPT-merged (Section 5.4.1, ``computation`` strategy) into
  ``num_shards`` reducer groups — one :class:`SkylineIndex` shard each;
* a point lives in every shard whose group *covers* its cell (some
  group seed's coordinates ≥ the cell's on every axis — the geometric
  form of ADR membership, which also admits cells that were empty at
  build time). Coverage is downward closed, so **every dominator of a
  point shares all of that point's shards**: a shard's local skyline
  decision is globally correct, and the global skyline is simply the
  concatenation of per-shard skylines filtered to each shard's *owned*
  ids (the responsibility tie-break of Section 5.4.2: the covering
  group with the smallest ``(|ADR|, seed)``), merged in id order —
  byte-identical to the unsharded index's answer;
* deltas route only to covering shards; a coalesced burst becomes at
  most one :meth:`SkylineIndex.apply_delta_batch` repair per shard,
  and the *service time* of the burst is bounded by the **largest**
  per-shard repair — which is the whole point: repair pairs divide
  across shards, so write-heavy capacity scales with the fleet;
* a point whose cell no group covers (data drifted past every seed)
  triggers a full **reshard** — regrid, regroup, rebuild — which is
  rare by construction (the grid is refit to the data at build time)
  and counted/evented so benches can see it.

:class:`ShardedFrontend` is the admission-controlled router on top:
the same deterministic virtual-clock FIFO as
:class:`~repro.serve.frontend.QueryFrontend`, plus **delta batching**
(mutations inside a batch window coalesce into one fleet-wide repair
pass; a query first flushes the pending batch, so it always sees every
mutation submitted before it) and a shard-aware cost model
(per-shard dispatch on the router, the slowest shard's read, the
largest shard's repair).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.order import as_dataset
from repro.core.pointset import PointSet
from repro.errors import ValidationError
from repro.grid.bitstring import Bitstring
from repro.grid.grid import Grid
from repro.grid.groups import (
    IndependentGroup,
    generate_independent_groups,
    merge_groups,
)
from repro.grid.ppd import cap_ppd, ppd_from_equation4
from repro.mapreduce import counters as counter_names
from repro.mapreduce.counters import Counters
from repro.obs.events import ServeDeltaBatch, ServeReshard
from repro.serve.frontend import DEFAULT_TENANT, QueryFrontend, _ServingCore
from repro.serve.index import DEFAULT_STALENESS_BUDGET, SkylineIndex

#: Ceiling for the adaptive partitions-per-dimension search: doubling
#: stops here even if the group count never reaches the shard count
#: (a dataset can be too concentrated to split further).
MAX_SHARD_PPD = 64


def _covering_seeds(
    cell_coords: np.ndarray, seed_coords: np.ndarray
) -> np.ndarray:
    """Boolean mask over seeds: which groups cover this cell.

    Group ``{pm} ∪ pm.ADR`` covers every cell with coordinates ≤ the
    seed's on all axes. Downward closed: if a cell is covered, so is
    every cell of its anti-dominating region — the property that makes
    per-shard skyline decisions globally correct.
    """
    return (cell_coords <= seed_coords).all(axis=1)


class UncoveredCellError(Exception):
    """A cell no group's seed covers (routing signal → reshard)."""

    def __init__(self, cell: int):
        super().__init__(f"cell {cell} is outside every group's coverage")
        self.cell = cell


@dataclass(frozen=True)
class ShardPlan:
    """A fitted partition plan: grid, groups, and shard routing.

    Shared by the in-process :class:`ShardedSkylineIndex` and the
    process fleet in :mod:`repro.serve.fleet` so both route points the
    same way.
    """

    grid: Grid
    groups: Tuple[IndependentGroup, ...]
    reducer_groups: Tuple
    seed_to_shard: Dict[int, int]
    seed_coords: np.ndarray
    coords: np.ndarray

    @property
    def num_shards(self) -> int:
        return len(self.reducer_groups)

    def route_cell(self, cell: int) -> Tuple[Tuple[int, ...], int]:
        """(covering shards, owner shard) for a cell.

        The owner is the covering *original* group minimising
        ``(|ADR|, seed)`` — the exact responsibility tie-break the
        batch pipeline's Section 5.4.2 designation uses — mapped to
        its reducer group. Raises :class:`UncoveredCellError` when no
        seed covers the cell (data drifted past the fitted grid).
        """
        mask = _covering_seeds(self.coords[cell], self.seed_coords)
        if not mask.any():
            raise UncoveredCellError(cell)
        covering = [self.groups[i] for i in np.flatnonzero(mask).tolist()]
        shards = tuple(
            sorted({self.seed_to_shard[g.seed] for g in covering})
        )
        owner_group = min(covering, key=lambda g: (g.adr_size, g.seed))
        return shards, self.seed_to_shard[owner_group.seed]


def plan_shards(
    values: np.ndarray, num_shards: int, ppd: Optional[int] = None
) -> ShardPlan:
    """Fit a grid to the data and plan ``num_shards`` shard groups.

    A coarse grid can yield a single group covering everything (one
    seed dominates all occupied cells), which would collapse the fleet
    to one shard; when ``ppd`` is not pinned, the partitions-per-
    dimension double until at least ``num_shards`` independent groups
    exist (or :data:`MAX_SHARD_PPD` says the data will not split).
    Groups are then LPT-merged by |ADR| (the ``computation`` strategy
    of Section 5.4.1) into at most ``num_shards`` reducer groups.
    """
    values = np.asarray(values, dtype=np.float64)
    d = int(values.shape[1])
    n = ppd
    if n is None:
        n = cap_ppd(ppd_from_equation4(max(values.shape[0], 2), d), d)
    while True:
        grid = Grid.fit(values, n)
        cells = grid.cell_indices(values)
        occupancy = np.zeros(grid.num_partitions, dtype=np.int64)
        np.add.at(occupancy, cells, 1)
        groups = generate_independent_groups(
            grid, Bitstring(grid, occupancy > 0)
        )
        if (
            len(groups) >= num_shards
            or n >= MAX_SHARD_PPD
            or ppd is not None
        ):
            break
        n = min(2 * n, MAX_SHARD_PPD)
    reducer_groups = merge_groups(groups, num_shards, strategy="computation")
    seed_to_shard: Dict[int, int] = {}
    for shard_idx, rg in enumerate(reducer_groups):
        for g in rg.groups:
            seed_to_shard[g.seed] = shard_idx
    coords = grid.coords_array()
    return ShardPlan(
        grid=grid,
        groups=tuple(groups),
        reducer_groups=tuple(reducer_groups),
        seed_to_shard=seed_to_shard,
        seed_coords=coords[[g.seed for g in groups]],
        coords=coords,
    )


class ShardedSkylineIndex:
    """A fleet of :class:`SkylineIndex` shards behind one router.

    Duck-compatible with :class:`SkylineIndex` where the frontends
    need it (``epoch`` / ``skyline()`` / ``query()`` / ``snapshot()`` /
    ``apply_delta_batch()`` / ``counters`` / ``bus``), so the serving
    stack above does not care whether it talks to one index or many.
    """

    def __init__(
        self,
        data,
        *,
        num_shards: int,
        ppd: Optional[int] = None,
        staleness_budget: int = DEFAULT_STALENESS_BUDGET,
        refresh_algorithm: str = "mr-gpmrs",
        engine=None,
        cluster=None,
        counters: Optional[Counters] = None,
        bus=None,
    ):
        if num_shards < 1:
            raise ValidationError(
                f"num_shards must be >= 1, got {num_shards}"
            )
        values = as_dataset(data)
        if values.shape[0] == 0:
            raise ValidationError(
                "ShardedSkylineIndex needs a non-empty initial dataset "
                "(the grid and groups are fitted to it)"
            )
        self.requested_shards = int(num_shards)
        self._requested_ppd = ppd
        self.staleness_budget = int(staleness_budget)
        self.refresh_algorithm = refresh_algorithm
        self.engine = engine
        self.cluster = cluster
        self.counters = counters if counters is not None else Counters()
        self.bus = bus
        self.epoch = 0
        self._d = int(values.shape[1])
        self._lock = threading.RLock()
        #: Per-shard repair pairs of the last mutating call (the
        #: frontend's service-time quantity).
        self.last_shard_pairs: Dict[int, int] = {}
        self._sky_cache: Optional[PointSet] = None
        self._sky_cache_epoch = -1
        self._contributions: List[int] = []
        ids = np.arange(values.shape[0], dtype=np.int64)
        self._next_id = int(values.shape[0])
        self._build(ids, values)

    # -- construction ---------------------------------------------------

    def _build(self, ids: np.ndarray, values: np.ndarray) -> None:
        """(Re)build grid, groups, shard indexes, and routing maps."""
        plan = plan_shards(
            values, self.requested_shards, ppd=self._requested_ppd
        )
        self._plan = plan
        self._grid = plan.grid
        self._groups = plan.groups

        cells = plan.grid.cell_indices(values)
        num_shards = plan.num_shards
        shard_ids: List[List[int]] = [[] for _ in range(num_shards)]
        shard_rows: List[List[np.ndarray]] = [[] for _ in range(num_shards)]
        self._cells: Dict[int, int] = {}
        self._owner: Dict[int, int] = {}
        self._members: Dict[int, Tuple[int, ...]] = {}
        replicated = 0
        cell_route: Dict[int, Tuple[Tuple[int, ...], int]] = {}
        for pos in range(values.shape[0]):
            pid = int(ids[pos])
            cell = int(cells[pos])
            route = cell_route.get(cell)
            if route is None:
                route = self._route_cell(cell)
                cell_route[cell] = route
            shards, owner = route
            self._cells[pid] = cell
            self._owner[pid] = owner
            self._members[pid] = shards
            replicated += len(shards) - 1
            for s in shards:
                shard_ids[s].append(pid)
                shard_rows[s].append(values[pos])
        self.counters.inc(
            counter_names.SERVE_SHARD_REPLICATED_POINTS, replicated
        )

        self._shards: List[SkylineIndex] = []
        for s in range(num_shards):
            if shard_ids[s]:
                shard = SkylineIndex(
                    np.vstack(shard_rows[s]),
                    point_ids=np.asarray(shard_ids[s], dtype=np.int64),
                    staleness_budget=self.staleness_budget,
                    refresh_algorithm=self.refresh_algorithm,
                    engine=self.engine,
                    cluster=self.cluster,
                    counters=Counters(),
                )
            else:  # a merged group of empty coverage (possible post-drift)
                shard = SkylineIndex(
                    dimensionality=self._d,
                    staleness_budget=self.staleness_budget,
                    refresh_algorithm=self.refresh_algorithm,
                    engine=self.engine,
                    cluster=self.cluster,
                    counters=Counters(),
                )
            self._shards.append(shard)
        self._sky_cache = None
        self._sky_cache_epoch = -1

    def _route_cell(
        self, cell: int
    ) -> Tuple[Tuple[int, ...], int]:
        """(covering shards, owner shard) — see :meth:`ShardPlan.route_cell`."""
        return self._plan.route_cell(cell)

    # -- read side ------------------------------------------------------

    @property
    def num_shards(self) -> int:
        return len(self._shards)

    @property
    def shards(self) -> Tuple[SkylineIndex, ...]:
        return tuple(self._shards)

    def __len__(self) -> int:
        return len(self._owner)

    @property
    def refreshes(self) -> int:
        return sum(s.refreshes for s in self._shards)

    def skyline(self) -> PointSet:
        """Global skyline: owned per-shard members, merged in id order.

        Memoized per epoch; the per-shard fan-out (and the owned
        contribution sizes the cost model reads) is recomputed only
        when a delta has actually moved the epoch.
        """
        with self._lock:
            if self._sky_cache_epoch == self.epoch:
                return self._sky_cache
            parts: List[PointSet] = []
            contributions: List[int] = []
            for s, shard in enumerate(self._shards):
                sky = shard.skyline()
                if len(sky):
                    owned = np.fromiter(
                        (self._owner.get(int(pid)) == s for pid in sky.ids),
                        dtype=bool,
                        count=len(sky),
                    )
                    part = sky.select(owned)
                else:
                    part = sky
                parts.append(part)
                contributions.append(len(part))
            merged = PointSet.concat(parts)
            order = np.argsort(merged.ids, kind="stable")
            self._sky_cache = merged.select(order)
            self._sky_cache_epoch = self.epoch
            self._contributions = contributions
            self.counters.inc(
                counter_names.SERVE_SHARD_QUERIES_FANNED,
                len(self._shards),
            )
            return self._sky_cache

    def shard_contributions(self) -> List[int]:
        """Owned skyline members per shard (current epoch)."""
        with self._lock:
            self.skyline()
            return list(self._contributions)

    def skyline_ids(self) -> np.ndarray:
        return self.skyline().ids.copy()

    def query(self, region: Optional[Tuple] = None) -> PointSet:
        """Skyline members inside a constraint box (router merge)."""
        with self._lock:
            sky = self.skyline()
            if region is None or len(sky) == 0:
                return sky
            lows = np.asarray(region[0], dtype=np.float64).ravel()
            highs = np.asarray(region[1], dtype=np.float64).ravel()
            if lows.shape[0] != self._d or highs.shape[0] != self._d:
                raise ValidationError(
                    f"region must have {self._d} dimensions"
                )
            inside = (sky.values >= lows).all(axis=1) & (
                sky.values <= highs
            ).all(axis=1)
            return sky.select(inside)

    def snapshot(self) -> PointSet:
        """All live points (deduplicated via ownership), ids ascending."""
        with self._lock:
            rows: Dict[int, np.ndarray] = {}
            for s, shard in enumerate(self._shards):
                snap = shard.snapshot()
                for pos in range(len(snap)):
                    pid = int(snap.ids[pos])
                    if self._owner.get(pid) == s:
                        rows[pid] = snap.values[pos]
            if not rows:
                return PointSet.empty(self._d)
            ids = sorted(rows)
            return PointSet(
                np.asarray(ids, dtype=np.int64),
                np.vstack([rows[i] for i in ids]),
            )

    # -- delta maintenance ----------------------------------------------

    def insert(self, point, point_id: Optional[int] = None) -> int:
        """Insert one point into every covering shard."""
        with self._lock:
            row = np.asarray(point, dtype=np.float64).ravel()
            if row.shape[0] != self._d:
                raise ValidationError(
                    f"point has {row.shape[0]} dimensions, index has "
                    f"{self._d}"
                )
            pid = self._next_id if point_id is None else int(point_id)
            if pid in self._owner:
                raise ValidationError(f"point id {pid} already present")
            self._next_id = max(self._next_id, pid + 1)
            cell = self._grid.cell_index(row)
            try:
                shards, owner = self._route_cell(cell)
            except UncoveredCellError:
                self._reshard_with(extra=(pid, row), reason="uncovered")
                self.epoch += 1
                return pid
            before = self._pairs_snapshot()
            for s in shards:
                self._shards[s].insert(row, pid)
            self.last_shard_pairs = self._pairs_delta(before)
            self._cells[pid] = cell
            self._owner[pid] = owner
            self._members[pid] = shards
            self.counters.inc(counter_names.SERVE_INSERTS)
            self.counters.inc(
                counter_names.SERVE_SHARD_REPLICATED_POINTS,
                len(shards) - 1,
            )
            self.epoch += 1
            return pid

    def delete(self, point_id: int) -> None:
        """Delete a point from every shard that holds it."""
        with self._lock:
            pid = int(point_id)
            if pid not in self._owner:
                raise ValidationError(f"unknown point id {pid}")
            before = self._pairs_snapshot()
            for s in self._members.pop(pid):
                self._shards[s].delete(pid)
            self.last_shard_pairs = self._pairs_delta(before)
            del self._owner[pid]
            del self._cells[pid]
            self.counters.inc(counter_names.SERVE_DELETES)
            self.epoch += 1

    def apply_delta_batch(self, ops: List[Tuple]) -> Dict[int, int]:
        """Absorb a burst: at most ONE repair pass per shard.

        Ops are partitioned to their covering shards in arrival order
        and each shard absorbs its sub-batch with a single
        :meth:`SkylineIndex.apply_delta_batch`; the router's epoch
        bumps once. Returns repair pairs per touched shard — the
        *maximum* is the burst's parallel service time, the quantity
        the sharded cost model charges. Falls back to the sequential
        path when an insert lands outside every group's coverage (the
        reshard case).
        """
        with self._lock:
            if not ops:
                self.last_shard_pairs = {}
                return {}
            per_shard: Dict[int, List[Tuple]] = {}
            routed: List[Tuple] = []  # (kind, pid, cell, shards, owner)
            try:
                for op in ops:
                    if op[0] == "insert":
                        _k, point, pid = op
                        row = np.asarray(point, dtype=np.float64).ravel()
                        if row.shape[0] != self._d:
                            raise ValidationError(
                                f"point has {row.shape[0]} dimensions, "
                                f"index has {self._d}"
                            )
                        if pid is None:
                            pid = self._next_id
                        pid = int(pid)
                        cell = self._grid.cell_index(row)
                        shards, owner = self._route_cell(cell)
                        self._next_id = max(self._next_id, pid + 1)
                        for s in shards:
                            per_shard.setdefault(s, []).append(
                                ("insert", row, pid)
                            )
                        routed.append(("insert", pid, cell, shards, owner))
                    elif op[0] == "delete":
                        pid = int(op[1])
                        members = self._members.get(pid)
                        if members is None:
                            # Inserted earlier in this same batch.
                            entry = next(
                                (
                                    r
                                    for r in reversed(routed)
                                    if r[0] == "insert" and r[1] == pid
                                ),
                                None,
                            )
                            if entry is None:
                                raise ValidationError(
                                    f"unknown point id {pid}"
                                )
                            members = entry[3]
                        for s in members:
                            per_shard.setdefault(s, []).append(
                                ("delete", pid)
                            )
                        routed.append(("delete", pid, None, members, None))
                    else:
                        raise ValidationError(
                            f"unknown delta op {op[0]!r}"
                        )
            except UncoveredCellError:
                # Data drifted past every seed: replay sequentially so
                # insert() can reshard, then report pairs pessimistically
                # (the reshard dominates service time anyway).
                for op in ops:
                    if op[0] == "insert":
                        self.insert(op[1], op[2])
                    else:
                        self.delete(op[1])
                self.counters.inc(counter_names.SERVE_SHARD_DELTA_BATCHES)
                self.counters.inc(
                    counter_names.SERVE_SHARD_BATCHED_OPS, len(ops)
                )
                return dict(self.last_shard_pairs)

            before = self._pairs_snapshot()
            for s in sorted(per_shard):
                self._shards[s].apply_delta_batch(per_shard[s])
            pairs = self._pairs_delta(before)
            self.last_shard_pairs = {
                s: pairs.get(s, 0) for s in sorted(per_shard)
            }
            num_inserts = 0
            num_deletes = 0
            for entry in routed:
                if entry[0] == "insert":
                    _k, pid, cell, shards, owner = entry
                    self._cells[pid] = cell
                    self._owner[pid] = owner
                    self._members[pid] = shards
                    self.counters.inc(
                        counter_names.SERVE_SHARD_REPLICATED_POINTS,
                        len(shards) - 1,
                    )
                    num_inserts += 1
                else:
                    _k, pid, _cell, _shards, _owner = entry
                    self._members.pop(pid, None)
                    self._owner.pop(pid, None)
                    self._cells.pop(pid, None)
                    num_deletes += 1
            self.counters.inc(counter_names.SERVE_INSERTS, num_inserts)
            self.counters.inc(counter_names.SERVE_DELETES, num_deletes)
            self.counters.inc(counter_names.SERVE_SHARD_DELTA_BATCHES)
            self.counters.inc(
                counter_names.SERVE_SHARD_BATCHED_OPS, len(ops)
            )
            self.epoch += 1
            if self.bus is not None and self.bus.active:
                self.bus.emit(
                    ServeDeltaBatch(
                        ops=len(ops),
                        inserts=num_inserts,
                        deletes=num_deletes,
                        epoch=self.epoch,
                        shards_touched=len(per_shard),
                        max_shard_pairs=max(
                            self.last_shard_pairs.values(), default=0
                        ),
                        skyline_size=len(self.skyline()),
                    )
                )
            return dict(self.last_shard_pairs)

    # -- reshard --------------------------------------------------------

    def _reshard_with(self, extra: Tuple[int, np.ndarray], reason: str):
        """Rebuild the whole fleet around the current live points."""
        snap = self.snapshot()
        pid, row = extra
        ids = np.append(snap.ids, np.int64(pid))
        values = (
            np.vstack([snap.values, row[None, :]])
            if len(snap)
            else row[None, :]
        )
        order = np.argsort(ids, kind="stable")
        self._build(ids[order], values[order])
        self.last_shard_pairs = {}
        self.counters.inc(counter_names.SERVE_INSERTS)
        self.counters.inc(counter_names.SERVE_SHARD_RESHARDS)
        if self.bus is not None and self.bus.active:
            self.bus.emit(
                ServeReshard(
                    reason=reason,
                    shards=len(self._shards),
                    groups=len(self._groups),
                    epoch=self.epoch + 1,
                )
            )

    # -- instrumentation helpers ----------------------------------------

    def _pairs_snapshot(self) -> List[int]:
        return [
            s.counters.get(counter_names.TUPLE_COMPARES)
            for s in self._shards
        ]

    def _pairs_delta(self, before: List[int]) -> Dict[int, int]:
        return {
            s: self._shards[s].counters.get(counter_names.TUPLE_COMPARES)
            - before[s]
            for s in range(len(self._shards))
            if self._shards[s].counters.get(counter_names.TUPLE_COMPARES)
            > before[s]
        }

    def shard_counters(self) -> List[Dict[str, int]]:
        """Each shard's own counter bag (repair-pair accounting)."""
        return [s.counters.as_dict() for s in self._shards]

    def describe(self) -> str:
        sizes = [len(s) for s in self._shards]
        return (
            f"ShardedSkylineIndex(shards={len(self._shards)}, "
            f"points={len(self)}, sizes={sizes}, "
            f"groups={len(self._groups)}, epoch={self.epoch}, "
            f"grid={self._grid.describe()})"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return self.describe()


class _ShardServingCore(_ServingCore):
    """Shard-aware query costing on top of the shared serving core.

    Cache probes and the recompute baseline are priced exactly like
    the single-index core; a delta-policy miss replaces the flat query
    cost with router dispatch per shard + the *slowest* shard read +
    the merge copy — the parallel-read model of a fan-out query.
    """

    def answer(self, region) -> Tuple[PointSet, bool, float]:
        result, cache_hit, duration = super().answer(region)
        if cache_hit or self.policy != "delta":
            return result, cache_hit, duration
        if self.index.num_shards <= 1:
            # A one-shard index has no fan-out: flat pricing, identical
            # to the single-index core (the shards=1 parity anchor).
            return result, cache_hit, duration
        contributions = self.index.shard_contributions()
        slowest = max(
            (
                self.cost.shard_read_base_s
                + c * self.cost.per_result_tuple_s
                for c in contributions
            ),
            default=self.cost.shard_read_base_s,
        )
        duration = (
            self.cost.query_base_s
            + len(contributions) * self.cost.shard_dispatch_s
            + slowest
            + len(result) * self.cost.per_result_tuple_s
        )
        if self.tracer is not None:
            # Replace the flat index_read phase the parent recorded
            # with the fan-out's real shape: dispatch, parallel
            # per-shard reads, merge — they tile [0, duration].
            self.tracer.clear_phases()
            dispatch_end = (
                self.cost.query_base_s
                + len(contributions) * self.cost.shard_dispatch_s
            )
            self.tracer.phase(
                "dispatch",
                0.0,
                dispatch_end,
                track="router",
                shards=len(contributions),
            )
            for s, c in enumerate(contributions):
                read_s = (
                    self.cost.shard_read_base_s
                    + c * self.cost.per_result_tuple_s
                )
                self.tracer.phase(
                    "read",
                    dispatch_end,
                    dispatch_end + read_s,
                    track=f"shard-{s}",
                    contribution=int(c),
                )
            self.tracer.phase(
                "merge",
                dispatch_end + slowest,
                duration,
                track="router",
                result_size=len(result),
            )
        return result, cache_hit, duration


class ShardedFrontend(QueryFrontend):
    """Virtual-clock router frontend over a :class:`ShardedSkylineIndex`.

    Identical admission control (bounded weighted-fair queue, tenant
    quotas, shed, timeout) and determinism guarantees as
    :class:`QueryFrontend`, plus:

    * **delta batching** — mutations arriving within
      ``batch_window_s`` of the pending batch's first op (and below
      ``max_batch`` ops) coalesce; the batch flushes as ONE
      per-shard repair pass when the window closes, the batch fills,
      a query arrives (a query submitted after a mutation always
      sees it — the batch flushes before the query is admitted), or
      :meth:`flush` runs;
    * **shard-aware service times** — queries pay dispatch per shard
      and the slowest shard's read; a flushed batch pays one mutation
      base plus the *largest* per-shard repair, so divided repair
      work shows up as served capacity.
    """

    def __init__(
        self,
        index: ShardedSkylineIndex,
        *,
        batch_window_s: float = 0.002,
        max_batch: int = 64,
        **kwargs,
    ):
        super().__init__(index, **kwargs)
        if batch_window_s < 0:
            raise ValidationError(
                f"batch_window_s must be >= 0, got {batch_window_s}"
            )
        if max_batch < 1:
            raise ValidationError(
                f"max_batch must be >= 1, got {max_batch}"
            )
        self.batch_window_s = float(batch_window_s)
        self.max_batch = int(max_batch)
        self._pending: List[Tuple] = []
        self._pending_start_s = 0.0
        self._pending_last_s = 0.0
        # Same construction args as the parent's core, shard-aware
        # costing swapped in.
        self.core = _ShardServingCore(
            index,
            self.core.policy,
            self.core.cache.capacity,
            self.counters,
            self.bus,
            self.core.cost,
        )
        self.core.tracer = self.tracer

    # -- batching -------------------------------------------------------

    def _enqueue_op(self, at_s: float, op: Tuple) -> None:
        self._advance(at_s)
        if self.batch_window_s == 0.0:
            # Window zero disables coalescing entirely: every op is its
            # own one-op batch, applied at its own arrival instant —
            # the configuration that replays byte-identically against
            # an unsharded QueryFrontend.
            self._apply_mutation(
                at_s,
                lambda: self.index.apply_delta_batch([op]),
                kind=str(op[0]),
            )
            return
        if self._pending and (
            at_s - self._pending_start_s > self.batch_window_s
            or len(self._pending) >= self.max_batch
        ):
            self._flush_batch(at_s)
        if not self._pending:
            self._pending_start_s = at_s
        self._pending.append(op)
        self._pending_last_s = at_s

    def _flush_batch(self, at_s: float) -> None:
        if not self._pending:
            return
        ops = self._pending
        self._pending = []
        self._apply_mutation(at_s, lambda: self.index.apply_delta_batch(ops))

    def _apply_mutation(self, at_s: float, op, kind: str = "batch"):
        """Charge the *largest* per-shard repair, not the sum.

        The router's own counter bag never carries ``TUPLE_COMPARES``
        (each shard accounts its pairs in its own bag), so the parent's
        counter-delta measurement would read zero; the index reports
        per-shard pairs from the last mutating call instead.
        """
        tracer = self.tracer
        ctx = tracer.begin_mutation(kind) if tracer is not None else None
        outcome = op()
        cost = self.core.cost
        duration = cost.mutation_base_s
        per_shard = {}
        if self.core.policy == "delta":
            per_shard = dict(self.index.last_shard_pairs)
            duration += (
                max(per_shard.values(), default=0) * cost.seconds_per_pair
            )
        start_s = max(self._server_free_s, at_s)
        self._server_free_s = start_s + duration
        self.core.cache.invalidate_before(self.index.epoch)
        if ctx is not None:
            tracer.commit_mutation(
                ctx,
                at_s,
                start_s,
                start_s + duration,
                pairs=max(per_shard.values(), default=0),
                epoch=self.index.epoch,
                # At one shard there is no fan-out to show (and the
                # trace stays span-identical to an unsharded replay).
                per_shard_pairs=(
                    per_shard if self.index.num_shards > 1 else None
                ),
                seconds_per_pair=cost.seconds_per_pair,
            )
        return outcome

    # -- entry points ---------------------------------------------------

    def submit_query(
        self, at_s: float, region=None, tenant: str = DEFAULT_TENANT
    ) -> int:
        self._advance(at_s)
        self._flush_batch(at_s)
        return super().submit_query(at_s, region, tenant)

    def apply_insert(self, at_s: float, point, point_id=None) -> int:
        if point_id is None:
            # No id to hand back until the op runs: flush and go direct.
            self._advance(at_s)
            self._flush_batch(at_s)
            return self._apply_mutation(
                at_s, lambda: self.index.insert(point, None), kind="insert"
            )
        row = np.asarray(point, dtype=np.float64).ravel()
        self._enqueue_op(at_s, ("insert", row, int(point_id)))
        return int(point_id)

    def apply_delete(self, at_s: float, point_id: int) -> None:
        self._enqueue_op(at_s, ("delete", int(point_id)))

    def apply_batch(self, at_s: float, ops) -> None:
        self._advance(at_s)
        self._flush_batch(at_s)
        self._apply_mutation(
            at_s, lambda: self.index.apply_delta_batch(list(ops))
        )

    def flush(self):
        self._flush_batch(max(self._pending_last_s, self._now_s))
        return super().flush()
