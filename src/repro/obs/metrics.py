"""Metric registry, fixed-bucket histograms, and the bus collector.

Layered *on top of* the existing hierarchical
:class:`~repro.mapreduce.counters.Counters` (which stay the source of
truth for totals): this module adds **distributions** — how dominance
tests spread over tasks, how records and bytes spread over shuffle
partitions, how long attempts took — plus gauges, and a registry of
documented metric names that the CLI (``repro-skyline list
--counters``) and the run report both read, so documentation can never
drift from collection.

Determinism: histograms use *fixed* bucket boundaries (powers of two
for counts/bytes, decades for seconds) and order-insensitive state
(count / total / min / max / bucket tallies), so the same pipeline
yields byte-identical summaries on the serial, thread-pool, and
process-pool engines regardless of completion order. Wall-clock
distributions are flagged ``wall_clock=True`` and are segregated into
the run report's single wall-clock key.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import ValidationError
from repro.mapreduce.counters import COUNTER_DOCS
from repro.obs.events import (
    Event,
    JobEnd,
    PipelineEnd,
    ServeDeltaApplied,
    ServeQueryServed,
    Shuffle,
    TaskAttemptEnd,
)

#: Fixed power-of-two upper bounds for count/byte histograms.
POW2_BOUNDS: Tuple[int, ...] = tuple(2 ** k for k in range(0, 41))

#: Fixed decade upper bounds (seconds) for duration histograms.
DECADE_BOUNDS: Tuple[float, ...] = tuple(
    10.0 ** k for k in range(-6, 4)
)


@dataclass(frozen=True)
class MetricSpec:
    """One documented metric name: what it is and who emits it."""

    name: str
    kind: str  # 'counter' | 'histogram' | 'gauge'
    unit: str
    description: str
    #: Dotted-prefix scope: 'mr.' metrics apply to every algorithm,
    #: 'skyline.' to the skyline computations, 'obs.' to the layer
    #: itself. ``repro-skyline list --counters`` groups by this.
    scope: str = "mr"
    wall_clock: bool = False

    def __post_init__(self):
        if self.kind not in ("counter", "histogram", "gauge"):
            raise ValidationError(f"unknown metric kind {self.kind!r}")


class Histogram:
    """A fixed-bucket histogram with deterministic summaries."""

    __slots__ = ("name", "bounds", "_buckets", "count", "total", "min", "max")

    def __init__(self, name: str, bounds: Tuple[float, ...] = POW2_BOUNDS):
        if list(bounds) != sorted(bounds) or len(bounds) < 1:
            raise ValidationError(
                f"histogram bounds must be ascending, got {bounds!r}"
            )
        self.name = name
        self.bounds = tuple(bounds)
        self._buckets: Dict[float, int] = {}
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        for bound in self.bounds:
            if value <= bound:
                self._buckets[bound] = self._buckets.get(bound, 0) + 1
                return
        self._buckets[float("inf")] = self._buckets.get(float("inf"), 0) + 1

    def summary(self) -> Dict:
        """Order-insensitive summary; buckets keyed by upper bound.

        Only occupied buckets appear (keeps reports small); keys are
        strings so the summary round-trips through JSON unchanged.
        """
        def num(x: float):
            return int(x) if float(x).is_integer() and x != float("inf") else x

        buckets = {
            str(num(bound)): self._buckets[bound]
            for bound in sorted(self._buckets)
        }
        return {
            "count": self.count,
            "total": num(self.total),
            "min": num(self.min) if self.min is not None else None,
            "max": num(self.max) if self.max is not None else None,
            "buckets": buckets,
        }


#: The documented metric vocabulary. Counter entries are sourced from
#: the canonical names in :mod:`repro.mapreduce.counters` — one source
#: of truth, surfaced here with kind/unit metadata.
METRICS: Dict[str, MetricSpec] = {}


def register(spec: MetricSpec) -> MetricSpec:
    if spec.name in METRICS:
        raise ValidationError(f"metric {spec.name!r} already registered")
    METRICS[spec.name] = spec
    return spec


_COUNTER_UNITS = {
    "mr.shuffle_bytes": "bytes",
}

for _name, _doc in COUNTER_DOCS.items():
    register(
        MetricSpec(
            name=_name,
            kind="counter",
            unit=_COUNTER_UNITS.get(_name, "count"),
            description=_doc,
            scope=_name.split(".", 1)[0],
        )
    )

#: Histogram/gauge names (module constants so call sites can't typo).
H_TUPLE_COMPARES_PER_TASK = register(
    MetricSpec(
        "obs.tuple_compares_per_task",
        "histogram",
        "comparisons",
        "Distribution of tuple-dominance tests over tasks (the skew "
        "behind Figure 11's per-task maxima).",
        scope="obs",
    )
).name
H_SHUFFLE_PARTITION_RECORDS = register(
    MetricSpec(
        "obs.shuffle_partition_records",
        "histogram",
        "records",
        "Records per shuffle partition (reducer bucket) per job.",
        scope="obs",
    )
).name
H_SHUFFLE_PARTITION_BYTES = register(
    MetricSpec(
        "obs.shuffle_partition_bytes",
        "histogram",
        "bytes",
        "Bytes per shuffle partition (reducer bucket) per job.",
        scope="obs",
    )
).name
H_ATTEMPT_DURATION = register(
    MetricSpec(
        "obs.attempt_duration_s",
        "histogram",
        "seconds",
        "Measured wall-clock duration of every task attempt.",
        scope="obs",
        wall_clock=True,
    )
).name
G_BROADCAST_BYTES = register(
    MetricSpec(
        "obs.broadcast_bytes",
        "gauge",
        "bytes",
        "Distributed-cache payload of the largest job's broadcast.",
        scope="obs",
    )
).name
G_SKYLINE_SIZE = register(
    MetricSpec(
        "obs.skyline_size",
        "gauge",
        "tuples",
        "Size of the computed skyline (set at pipeline end).",
        scope="obs",
    )
).name
H_SERVE_QUERY_LATENCY = register(
    MetricSpec(
        "serve.query_latency_s",
        "histogram",
        "seconds",
        "Per-query latency on the serving frontend's clock (virtual "
        "time under a replayed schedule, so deterministic; the serve "
        "report derives exact p50/p99 from the raw samples).",
        scope="serve",
    )
).name
H_SERVE_QUEUE_WAIT = register(
    MetricSpec(
        "serve.queue_wait_s",
        "histogram",
        "seconds",
        "Per-query admission-to-start wait on the serving frontend's "
        "virtual clock (the queueing share of each served query's "
        "latency under WFQ).",
        scope="serve",
    )
).name
H_SERVE_REPAIR_CANDIDATES = register(
    MetricSpec(
        "serve.repair_candidates",
        "histogram",
        "tuples",
        "Candidate tuples re-examined per delete-repair (the points "
        "of the deleted member's dominated-region cells).",
        scope="serve",
    )
).name


def documented_metrics(scope: Optional[str] = None) -> List[MetricSpec]:
    """All registered metric specs, sorted by name."""
    specs = sorted(METRICS.values(), key=lambda s: s.name)
    if scope is not None:
        specs = [s for s in specs if s.scope == scope]
    return specs


class MetricsCollector:
    """Bus subscriber populating the registry's histograms and gauges.

    Histogram state is order-insensitive, so concurrent engines
    produce byte-identical :meth:`summaries` for the same pipeline;
    the single wall-clock histogram is reported separately so reports
    can isolate nondeterminism in one key.
    """

    def __init__(self):
        from repro.mapreduce.counters import TUPLE_COMPARES

        self._tuple_compares = TUPLE_COMPARES
        self.histograms: Dict[str, Histogram] = {
            H_TUPLE_COMPARES_PER_TASK: Histogram(H_TUPLE_COMPARES_PER_TASK),
            H_SHUFFLE_PARTITION_RECORDS: Histogram(
                H_SHUFFLE_PARTITION_RECORDS
            ),
            H_SHUFFLE_PARTITION_BYTES: Histogram(H_SHUFFLE_PARTITION_BYTES),
            H_ATTEMPT_DURATION: Histogram(
                H_ATTEMPT_DURATION, bounds=DECADE_BOUNDS
            ),
            H_SERVE_QUERY_LATENCY: Histogram(
                H_SERVE_QUERY_LATENCY, bounds=DECADE_BOUNDS
            ),
            H_SERVE_QUEUE_WAIT: Histogram(
                H_SERVE_QUEUE_WAIT, bounds=DECADE_BOUNDS
            ),
            H_SERVE_REPAIR_CANDIDATES: Histogram(H_SERVE_REPAIR_CANDIDATES),
        }
        self.gauges: Dict[str, float] = {}

    def set_gauge(self, name: str, value) -> None:
        if name not in METRICS or METRICS[name].kind != "gauge":
            raise ValidationError(f"{name!r} is not a registered gauge")
        self.gauges[name] = value

    def on_event(self, event: Event) -> None:
        if isinstance(event, TaskAttemptEnd):
            self.histograms[H_ATTEMPT_DURATION].observe(event.duration_s)
        elif isinstance(event, Shuffle):
            records_hist = self.histograms[H_SHUFFLE_PARTITION_RECORDS]
            for records in event.partition_records:
                records_hist.observe(records)
            bytes_hist = self.histograms[H_SHUFFLE_PARTITION_BYTES]
            for size in event.partition_bytes:
                bytes_hist.observe(size)
        elif isinstance(event, JobEnd) and event.stats is not None:
            compares = self.histograms[H_TUPLE_COMPARES_PER_TASK]
            for task in list(event.stats.map_tasks) + list(
                event.stats.reduce_tasks
            ):
                compares.observe(task.counters[self._tuple_compares])
            self.gauges[G_BROADCAST_BYTES] = max(
                self.gauges.get(G_BROADCAST_BYTES, 0),
                event.stats.broadcast_bytes,
            )
        elif isinstance(event, PipelineEnd):
            if event.skyline_size is not None:
                self.gauges[G_SKYLINE_SIZE] = event.skyline_size
        elif isinstance(event, ServeQueryServed):
            self.histograms[H_SERVE_QUERY_LATENCY].observe(event.latency_s)
            self.histograms[H_SERVE_QUEUE_WAIT].observe(event.wait_s)
        elif isinstance(event, ServeDeltaApplied):
            if event.op == "delete":
                self.histograms[H_SERVE_REPAIR_CANDIDATES].observe(
                    event.repair_candidates
                )

    def summaries(self, wall_clock: bool) -> Dict[str, Dict]:
        """Histogram summaries for one clock domain, sorted by name."""
        return {
            name: hist.summary()
            for name, hist in sorted(self.histograms.items())
            if METRICS[name].wall_clock == wall_clock and hist.count
        }

    def gauge_values(self) -> Dict[str, float]:
        return dict(sorted(self.gauges.items()))
