"""Spans and their exporters: Chrome trace-event JSON + ASCII rows.

A :class:`Span` is one named interval on one named *track* (a simulated
slot, a worker thread, a job lane). Spans come from two clocks:

* **simulated cluster time** — reconstructed from the deterministic
  schedule (:func:`repro.mapreduce.trace.schedule_spans`), one track
  per simulated map/reduce slot plus a shuffle track;
* **real wall time** — assembled live from bus events by
  :class:`repro.obs.tracer.SpanTracer`, one track per emitting thread.

Both clocks export into one Chrome trace-event JSON file (the
"JSON Array Format" with ``"X"`` complete events and ``"M"`` metadata
records) that loads directly in Perfetto or ``chrome://tracing`` —
each clock appears as a separate process, each track as a thread. The
ASCII Gantt (:func:`render_span_rows`, consumed by
``repro.mapreduce.trace.render_gantt``) renders the *same* simulated
spans, so the two views can never drift apart.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Sequence, Tuple

from repro.errors import ValidationError

#: Gantt cell per span outcome: failed attempts and killed stragglers
#: render as ``x``, speculative backup copies as ``+``, shuffle as
#: ``~``, BSP barriers as ``=``, everything else as ``#``.
OUTCOME_CELLS = {"failed": "x", "killed": "x", "speculative": "+"}

#: Gantt cell per span *category* (categories win over outcomes): the
#: shuffle's communication wait and a BSP barrier must never render
#: alike — one is data movement, the other is synchronisation.
CATEGORY_CELLS = {"shuffle": "~", "barrier": "="}


@dataclass(frozen=True)
class Span:
    """One named interval on one track of one clock."""

    name: str
    track: str
    start_s: float
    end_s: float
    category: str = "task"  # 'task' | 'shuffle' | 'barrier' | 'job' | 'pipeline'
    outcome: str = "success"
    args: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self):
        if self.end_s < self.start_s:
            raise ValidationError(
                f"span {self.name!r} ends ({self.end_s}) before it "
                f"starts ({self.start_s})"
            )

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s


def _cell_for(span: Span) -> str:
    cell = CATEGORY_CELLS.get(span.category)
    if cell is not None:
        return cell
    return OUTCOME_CELLS.get(span.outcome, "#")


def span_columns(
    start_s: float, end_s: float, total_s: float, width: int
) -> Tuple[int, int]:
    """Half-open column range ``[first, last]`` of an interval.

    The cell containing the exact end instant belongs to whatever
    starts there: a task ending at time ``t`` and a task starting at
    ``t`` never paint the same column (the old inclusive-end painting
    overdrew it, merging adjacent bars on dense schedules).
    """
    first = min(width - 1, int(start_s / total_s * width))
    # ceil(end * width / total) - 1 without float-noise from math.ceil
    scaled = end_s / total_s * width
    last = int(scaled) - 1 if scaled == int(scaled) else int(scaled)
    return first, max(first, min(width - 1, last))


def render_span_rows(
    spans: Sequence[Span],
    tracks: Sequence[str],
    total_s: float,
    width: int,
    min_label: int = 14,
) -> List[str]:
    """One ASCII row per track, proportional to ``total_s``.

    Zero-duration spans are skipped (an instantaneous shuffle renders
    as an empty row rather than pretending to occupy a column).
    """
    if width < 8:
        raise ValidationError(f"width must be >= 8, got {width}")
    by_track: Dict[str, List[Span]] = {track: [] for track in tracks}
    for span in spans:
        if span.track in by_track:
            by_track[span.track].append(span)
    rows = []
    for track in tracks:
        row = [" "] * width
        for span in by_track[track]:
            if span.duration_s <= 0 or total_s <= 0:
                continue
            first, last = span_columns(
                span.start_s, span.end_s, total_s, width
            )
            cell = _cell_for(span)
            for i in range(first, last + 1):
                row[i] = cell
        rows.append(f"{track:>{min_label}s} |{''.join(row)}|")
    return rows


# -- Chrome trace-event export -------------------------------------------


def chrome_trace_events(
    clocks: Mapping[str, Sequence[Span]]
) -> List[Dict[str, Any]]:
    """Flatten clocks of spans into Chrome trace-event records.

    ``clocks`` maps a clock name (e.g. ``"simulated"``, ``"wall"``) to
    its spans. Each clock becomes one process (``pid``), each distinct
    track one thread (``tid``); ``"M"`` metadata records name both so
    Perfetto shows human-readable lanes. Timestamps are microseconds,
    per the trace-event spec.
    """
    records: List[Dict[str, Any]] = []
    for pid, (clock, spans) in enumerate(sorted(clocks.items()), start=1):
        records.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": f"{clock} time"},
            }
        )
        tracks: List[str] = []
        for span in spans:
            if span.track not in tracks:
                tracks.append(span.track)
        tids = {track: tid for tid, track in enumerate(tracks, start=1)}
        for track, tid in tids.items():
            records.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": track},
                }
            )
        for span in spans:
            args = dict(span.args)
            args["outcome"] = span.outcome
            records.append(
                {
                    "name": span.name,
                    "cat": span.category,
                    "ph": "X",
                    "pid": pid,
                    "tid": tids[span.track],
                    "ts": round(span.start_s * 1e6, 3),
                    "dur": round(span.duration_s * 1e6, 3),
                    "args": args,
                }
            )
    return records


def chrome_trace(clocks: Mapping[str, Sequence[Span]]) -> Dict[str, Any]:
    """The full Chrome trace JSON object for a set of clocks."""
    return {
        "traceEvents": chrome_trace_events(clocks),
        "displayTimeUnit": "ms",
        "otherData": {"producer": "repro.obs"},
    }


def write_chrome_trace(
    path: str, clocks: Mapping[str, Sequence[Span]]
) -> Dict[str, Any]:
    """Write a Perfetto/chrome://tracing-loadable trace file."""
    payload = chrome_trace(clocks)
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=1)
        handle.write("\n")
    return payload
