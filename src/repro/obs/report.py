"""Machine-readable run reports: build, write, load, render, diff.

One JSON artifact per pipeline run, capturing everything the paper's
evaluation sections ask of an execution — configuration, dataset
fingerprint, per-job counters and shuffle/broadcast traffic, per-task
attempt histories, the reconstructed simulated schedule, histogram
summaries, and a skyline checksum — in a layout with one hard rule:

    **every wall-clock quantity lives under the single top-level
    "wall" key; everything else is deterministic.**

Identical (data, seed, configuration) runs therefore produce
byte-identical reports outside ``"wall"`` on every engine — the
property ``tests/test_report.py`` pins and ``repro-skyline report a b``
exploits: diffing two reports ignores ``"wall"`` by default, so a real
regression is never drowned in timing noise.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, List, Optional

import numpy as np

from repro.errors import ValidationError
from repro.obs.schema import REPORT_SCHEMA_VERSION

#: Decimal places kept for simulated-clock floats. Simulated times are
#: pure functions of counters and cluster rates, hence deterministic;
#: rounding only keeps the JSON compact and stable across platforms.
_SIM_DECIMALS = 9


def _round(value: Optional[float]) -> Optional[float]:
    return None if value is None else round(float(value), _SIM_DECIMALS)


def dataset_fingerprint(data) -> Dict[str, Any]:
    """Shape + content hash of the input array."""
    array = np.ascontiguousarray(np.asarray(data, dtype=np.float64))
    digest = hashlib.sha256()
    digest.update(str(array.shape).encode())
    digest.update(array.tobytes())
    return {
        "cardinality": int(array.shape[0]),
        "dimensionality": int(array.shape[1]) if array.ndim > 1 else 1,
        "sha256": digest.hexdigest(),
    }


def skyline_checksum(result) -> Dict[str, Any]:
    """Size + content hash of a SkylineResult (indices and values)."""
    digest = hashlib.sha256()
    digest.update(np.ascontiguousarray(result.indices).tobytes())
    digest.update(np.ascontiguousarray(result.values).tobytes())
    return {"size": len(result), "sha256": digest.hexdigest()}


def pointset_checksum(points) -> Dict[str, Any]:
    """Size + content hash of a PointSet (ids and values) — the serving
    layer's skyline fingerprint (point ids, not positional indices)."""
    digest = hashlib.sha256()
    digest.update(np.ascontiguousarray(points.ids).tobytes())
    digest.update(np.ascontiguousarray(points.values).tobytes())
    return {"size": len(points), "sha256": digest.hexdigest()}


def _task_entry(task) -> Dict[str, Any]:
    """One task's deterministic record (durations live under 'wall')."""
    return {
        "task": str(task.task_id),
        "records_in": task.records_in,
        "records_out": task.records_out,
        "bytes_out": task.bytes_out,
        "counters": task.counters.as_dict(),
        "attempts": [
            {
                "attempt": a.attempt,
                "outcome": a.outcome,
                "slowdown": a.slowdown,
                "error": a.error,
                "node": a.node,
            }
            for a in task.attempts
        ],
    }


def _schedule_entry(schedule) -> Dict[str, Any]:
    """A JobSchedule serialized on the simulated clock."""
    return {
        "makespan_s": _round(schedule.makespan_s),
        "phases": [
            {
                "phase": phase.phase,
                "start_s": _round(phase.start_s),
                "end_s": _round(phase.end_s),
                "tasks": [
                    {
                        "name": t.name,
                        "slot": t.slot,
                        "start_s": _round(t.start_s),
                        "end_s": _round(t.end_s),
                        "outcome": t.outcome,
                    }
                    for t in phase.tasks
                ],
            }
            for phase in schedule.phases
        ],
    }


def build_report(
    result,
    data,
    cluster,
    engine=None,
    collector=None,
    config: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Assemble the run report for one SkylineResult.

    ``collector`` is the optional
    :class:`~repro.obs.metrics.MetricsCollector` that observed the run;
    its deterministic histogram summaries land in ``"histograms"`` and
    its wall-clock ones under ``"wall"``. ``config`` carries
    caller-known context (CLI flags, workload spec, seeds).
    """
    from repro.mapreduce.trace import build_schedule

    stats = result.stats
    engine_config: Dict[str, Any] = {}
    if engine is not None:
        engine_config["engine"] = type(engine).__name__
        faults = getattr(engine, "faults", None)
        if faults is not None:
            engine_config["faults"] = faults.describe()
        if getattr(engine, "speculative", False):
            engine_config["speculative"] = True
        retry = getattr(engine, "retry", None)
        if retry is not None and retry.max_attempts != 1:
            engine_config["max_attempts"] = retry.max_attempts
    jobs: List[Dict[str, Any]] = []
    for job_stats in stats.jobs:
        jobs.append(
            {
                "name": job_stats.job_name,
                "num_map_tasks": job_stats.num_map_tasks,
                "num_reduce_tasks": job_stats.num_reduce_tasks,
                "shuffle_bytes": job_stats.shuffle_bytes,
                "broadcast_bytes": job_stats.broadcast_bytes,
                "counters": job_stats.counters.as_dict(),
                "tasks": [
                    _task_entry(t)
                    for t in list(job_stats.map_tasks)
                    + list(job_stats.reduce_tasks)
                ],
                "schedule": _schedule_entry(
                    build_schedule(cluster, job_stats)
                ),
            }
        )
    report: Dict[str, Any] = {
        "schema_version": REPORT_SCHEMA_VERSION,
        "algorithm": result.algorithm,
        "config": {
            "cluster": cluster.describe(),
            **engine_config,
            **(config or {}),
        },
        "dataset": dataset_fingerprint(data),
        "skyline": skyline_checksum(result),
        "jobs": jobs,
        "counters": stats.counters().as_dict(),
        "histograms": collector.summaries(wall_clock=False)
        if collector is not None
        else {},
        "gauges": collector.gauge_values() if collector is not None else {},
        "simulated": {
            "makespan_s": _round(stats.simulated_s),
            "job_makespans_s": [
                _round(cluster.job_makespan(j)) for j in stats.jobs
            ],
        },
        "wall": {
            "wall_s": stats.wall_s,
            "cpu_s": stats.total_cpu_s(),
            "histograms": collector.summaries(wall_clock=True)
            if collector is not None
            else {},
        },
    }
    # Engines with a cost model (the BSP engine) contribute the
    # rounds/replication frontier. Deterministic — a pure function of
    # job definitions and data — so it lives outside "wall".
    cost = getattr(engine, "cost", None)
    if cost is not None and getattr(cost, "rounds", 0):
        report["cost"] = cost.as_dict()
    return report


#: Counters a serve run report keeps: request-level names whose values
#: are identical between the unsharded frontend and a shards=1 sharded
#: replay of the same stream (the byte-identical-report contract).
#: Shard-internal work counters (``serve.shard.*``, repair/refresh/
#: compare totals) legitimately differ between those twins and are
#: deliberately excluded. The ``serve.tenant.<tenant>.*`` family is
#: kept wholesale — tenant attribution is request-level.
SERVE_REPORT_COUNTERS = frozenset(
    (
        "serve.queries",
        "serve.cache_hits",
        "serve.cache_misses",
        "serve.cache_evictions",
        "serve.queries_shed",
        "serve.queries_timed_out",
        "serve.inserts",
        "serve.deletes",
    )
)

#: Histograms a serve run report keeps (same contract: request-level).
SERVE_REPORT_HISTOGRAMS = ("serve.query_latency_s", "serve.queue_wait_s")


def build_serve_run_report(
    stream,
    headline: Dict[str, Any],
    frontend,
    *,
    skyline,
    monitor=None,
    collector=None,
    config: Optional[Dict[str, Any]] = None,
    wall_s: float = 0.0,
) -> Dict[str, Any]:
    """Assemble the run report for one served op stream.

    The serving twin of :func:`build_report` (``"kind": "serve"``,
    validated by ``repro.obs.schema``): ``headline`` is the
    :func:`repro.serve.workloads.build_serve_report` summary, ``stream``
    fingerprints the inputs, ``skyline`` is the final skyline
    :class:`~repro.core.pointset.PointSet`, ``monitor`` the optional
    :class:`~repro.obs.slo.SLOMonitor` (its summary lands under
    ``"slo"``), and ``collector`` the optional metrics collector (only
    the request-level serve histograms are kept). Everything outside
    ``"wall"`` is deterministic, and at ``shards=1`` with batching
    disabled the sharded and unsharded frontends produce byte-identical
    reports for the same stream.
    """
    counters = {
        name: value
        for name, value in sorted(frontend.counters.as_dict().items())
        if name in SERVE_REPORT_COUNTERS
        or name.startswith("serve.tenant.")
    }
    histograms: Dict[str, Any] = {}
    if collector is not None:
        summaries = collector.summaries(wall_clock=False)
        histograms = {
            name: summaries[name]
            for name in SERVE_REPORT_HISTOGRAMS
            if name in summaries
        }
    return {
        "schema_version": REPORT_SCHEMA_VERSION,
        "kind": "serve",
        "workload": headline,
        "config": dict(config or {}),
        "dataset": dataset_fingerprint(stream.initial_data),
        "skyline": pointset_checksum(skyline),
        "counters": counters,
        "histograms": histograms,
        "slo": monitor.summary() if monitor is not None else {},
        "wall": {"wall_s": wall_s},
    }


def write_report(path: str, report: Dict[str, Any]) -> None:
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_report(path: str) -> Dict[str, Any]:
    with open(path) as handle:
        report = json.load(handle)
    if not isinstance(report, dict) or "schema_version" not in report:
        raise ValidationError(f"{path} is not a run report")
    return report


def canonical_json(report: Dict[str, Any], ignore=("wall",)) -> str:
    """The report's deterministic content as a canonical JSON string."""
    trimmed = {k: v for k, v in report.items() if k not in ignore}
    return json.dumps(trimmed, sort_keys=True, separators=(",", ":"))


def render_report(report: Dict[str, Any]) -> str:
    """Human-readable summary of one report."""
    if report.get("kind") == "serve":
        return _render_serve_report(report)
    lines = [
        f"algorithm:  {report.get('algorithm')}",
        f"dataset:    {report['dataset']['cardinality']} x "
        f"{report['dataset']['dimensionality']}  "
        f"(sha256 {report['dataset']['sha256'][:12]}…)",
        f"skyline:    {report['skyline']['size']} tuples  "
        f"(sha256 {report['skyline']['sha256'][:12]}…)",
        f"simulated:  {report['simulated']['makespan_s']}s makespan",
        f"wall:       {report['wall']['wall_s']:.3f}s "
        f"(cpu {report['wall']['cpu_s']:.3f}s)",
        "jobs:",
    ]
    cost = report.get("cost")
    if cost:
        lines.insert(
            4,
            f"cost:       {cost['rounds']} rounds / "
            f"{cost['supersteps']} supersteps, replication "
            f"{cost['replication_rate']:.3f}x, max reducer input "
            f"{cost['max_reducer_input_records']} records",
        )
    for job in report.get("jobs", ()):
        lines.append(
            f"  {job['name']}: {job['num_map_tasks']} map + "
            f"{job['num_reduce_tasks']} reduce tasks, "
            f"shuffle {job['shuffle_bytes']} B, "
            f"broadcast {job['broadcast_bytes']} B"
        )
    counters = report.get("counters", {})
    if counters:
        lines.append("counters:")
        for name in sorted(counters):
            lines.append(f"  {name:40s} {counters[name]}")
    histograms = report.get("histograms", {})
    if histograms:
        lines.append("histograms:")
        for name in sorted(histograms):
            summary = histograms[name]
            lines.append(
                f"  {name:40s} n={summary['count']} "
                f"min={summary['min']} max={summary['max']}"
            )
    return "\n".join(lines)


def _render_serve_report(report: Dict[str, Any]) -> str:
    headline = report.get("workload", {})
    lines = [
        f"workload:   {headline.get('workload')} "
        f"(seed {headline.get('seed')}, policy {headline.get('policy')}, "
        f"shards {headline.get('shards')})",
        f"dataset:    {report['dataset']['cardinality']} x "
        f"{report['dataset']['dimensionality']}  "
        f"(sha256 {report['dataset']['sha256'][:12]}…)",
        f"skyline:    {report['skyline']['size']} tuples  "
        f"(sha256 {report['skyline']['sha256'][:12]}…)",
        f"served:     {headline.get('queries_served')} ok, "
        f"{headline.get('queries_shed')} shed, "
        f"{headline.get('queries_timed_out')} timed out  "
        f"(p99 {headline.get('p99_latency_s')}s)",
        f"wall:       {report['wall']['wall_s']:.3f}s",
    ]
    slo = report.get("slo") or {}
    for objective in slo.get("objectives", ()):
        lines.append(
            f"slo {objective['name']}: worst burn "
            f"{objective['worst_burn']} over {slo.get('windows_closed')} "
            f"windows, {objective.get('tripped_windows', 0)} tripped"
        )
    recorder = slo.get("flight_recorder") or {}
    if recorder:
        lines.append(
            f"flight recorder: {len(recorder.get('dumps', ()))} dumps "
            f"(+{recorder.get('suppressed_dumps', 0)} suppressed)"
        )
    counters = report.get("counters", {})
    if counters:
        lines.append("counters:")
        for name in sorted(counters):
            lines.append(f"  {name:40s} {counters[name]}")
    return "\n".join(lines)


def diff_reports(
    a: Dict[str, Any], b: Dict[str, Any], ignore=("wall",)
) -> List[str]:
    """Paths where two reports disagree (wall-clock ignored by default)."""
    differences: List[str] = []

    def walk(left, right, path):
        if type(left) is not type(right):
            differences.append(
                f"{path}: {type(left).__name__} != {type(right).__name__}"
            )
            return
        if isinstance(left, dict):
            for key in sorted(set(left) | set(right)):
                if key not in left:
                    differences.append(f"{path}.{key}: only in second")
                elif key not in right:
                    differences.append(f"{path}.{key}: only in first")
                else:
                    walk(left[key], right[key], f"{path}.{key}")
        elif isinstance(left, list):
            if len(left) != len(right):
                differences.append(
                    f"{path}: length {len(left)} != {len(right)}"
                )
                return
            for index, (lv, rv) in enumerate(zip(left, right)):
                walk(lv, rv, f"{path}[{index}]")
        elif left != right:
            differences.append(f"{path}: {left!r} != {right!r}")

    for key in sorted((set(a) | set(b)) - set(ignore)):
        if key not in a:
            differences.append(f"{key}: only in second")
        elif key not in b:
            differences.append(f"{key}: only in first")
        else:
            walk(a[key], b[key], key)
    return differences
