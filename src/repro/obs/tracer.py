"""The span tracer: a bus subscriber assembling wall-clock spans.

Subscribes to the :class:`~repro.obs.events.EventBus` and turns the
event stream into nested :class:`~repro.obs.spans.Span` intervals on
the **real wall clock** (time zero = tracer construction):

* one ``pipeline`` span per algorithm run,
* one ``job`` span per MapReduce job (on the ``jobs`` track),
* one ``task`` span per task *attempt*, tracked per emitting thread —
  so the thread-pool engine's genuine concurrency is visible as
  parallel lanes, while the serial engine shows one sequential lane.
  Replayed events (process-pool workers can't stream live) synthesize
  back-to-back spans on a per-job ``replay`` lane from the recorded
  attempt durations.

The simulated-clock counterpart lives in
:func:`repro.mapreduce.trace.schedule_spans`; both clocks export into
one Chrome trace file via
:func:`repro.obs.spans.write_chrome_trace` (see ``repro-skyline
compute --trace-out``).
"""

from __future__ import annotations

import threading
import time
from typing import Dict, List, Tuple

from repro.obs.events import (
    Event,
    FaultInjected,
    JobEnd,
    JobStart,
    PipelineEnd,
    PipelineStart,
    ServeBatchRefresh,
    ServeReshard,
    Shuffle,
    SpeculationLaunched,
    TaskAttemptEnd,
    TaskAttemptStart,
)
from repro.obs.spans import Span


class SpanTracer:
    """Assemble bus events into wall-clock spans (thread-safe)."""

    def __init__(self):
        self._t0 = time.perf_counter()
        self._lock = threading.Lock()
        self.spans: List[Span] = []
        self.events: List[Event] = []
        self._open_tasks: Dict[
            Tuple[str, str, int, bool], Tuple[float, str]
        ] = {}
        self._open_jobs: Dict[str, float] = {}
        self._open_pipelines: Dict[str, float] = {}
        self._replay_cursor: Dict[str, float] = {}
        self._thread_names: Dict[int, str] = {}

    # -- clock helpers ---------------------------------------------------

    def _now(self) -> float:
        return time.perf_counter() - self._t0

    def _thread_track(self) -> str:
        ident = threading.get_ident()
        name = self._thread_names.get(ident)
        if name is None:
            name = f"thread-{len(self._thread_names)}"
            self._thread_names[ident] = name
        return name

    # -- subscriber protocol ---------------------------------------------

    def on_event(self, event: Event) -> None:
        with self._lock:
            self.events.append(event)
            if isinstance(event, TaskAttemptStart):
                self._task_start(event)
            elif isinstance(event, TaskAttemptEnd):
                self._task_end(event)
            elif isinstance(event, JobStart):
                self._open_jobs[event.job] = self._now()
            elif isinstance(event, JobEnd):
                self._close(
                    self._open_jobs,
                    event.job,
                    name=event.job,
                    track="jobs",
                    category="job",
                )
            elif isinstance(event, PipelineStart):
                self._open_pipelines[event.algorithm] = self._now()
            elif isinstance(event, PipelineEnd):
                self._close(
                    self._open_pipelines,
                    event.algorithm,
                    name=event.algorithm,
                    track="pipeline",
                    category="pipeline",
                    args={"jobs": event.jobs},
                )
            elif isinstance(
                event,
                (
                    Shuffle,
                    SpeculationLaunched,
                    FaultInjected,
                    # Serving landmarks: a staleness-budget recompute or
                    # a fleet rebuild mid-stream is exactly the kind of
                    # cliff a wall-clock trace should pin an instant on.
                    ServeBatchRefresh,
                    ServeReshard,
                ),
            ):
                now = self._now()
                self.spans.append(
                    Span(
                        name=event.kind,
                        track="markers",
                        start_s=now,
                        end_s=now,
                        category="marker",
                        args={"job": getattr(event, "job", None) or ""},
                    )
                )

    def _close(self, table, key, *, name, track, category, args=None):
        started = table.pop(key, None)
        if started is None:
            return
        self.spans.append(
            Span(
                name=name,
                track=track,
                start_s=started,
                end_s=self._now(),
                category=category,
                args=args or {},
            )
        )

    def _task_start(self, event: TaskAttemptStart) -> None:
        if event.replay:
            return  # replayed ends carry the duration; starts are noise
        # A speculative backup shares (task, attempt) with the straggler
        # it races; the flag keeps their open spans distinct.
        key = (event.job or "", event.task_id, event.attempt, event.speculative)
        self._open_tasks[key] = (self._now(), self._thread_track())

    def _task_end(self, event: TaskAttemptEnd) -> None:
        args = {
            "job": event.job or "",
            "attempt": event.attempt,
            "slowdown": event.slowdown,
        }
        if event.node is not None:
            args["node"] = event.node
        if event.replay:
            # Synthetic back-to-back placement on a per-job replay lane.
            track = f"replay/{event.job or 'job'}"
            cursor = self._replay_cursor.get(track, 0.0)
            self.spans.append(
                Span(
                    name=f"{event.task_id}@{event.attempt}",
                    track=track,
                    start_s=cursor,
                    end_s=cursor + max(0.0, event.duration_s),
                    outcome=event.outcome,
                    args=args,
                )
            )
            self._replay_cursor[track] = cursor + max(0.0, event.duration_s)
            return
        key = (
            event.job or "",
            event.task_id,
            event.attempt,
            event.speculative,
        )
        opened = self._open_tasks.pop(key, None)
        now = self._now()
        if opened is None:
            opened = (max(0.0, now - event.duration_s), self._thread_track())
        started, track = opened
        self.spans.append(
            Span(
                name=f"{event.task_id}@{event.attempt}",
                track=track,
                start_s=started,
                end_s=max(started, now),
                outcome=event.outcome,
                args=args,
            )
        )

    # -- results ---------------------------------------------------------

    def wall_spans(self) -> List[Span]:
        """All closed spans, ordered by start time (stable)."""
        with self._lock:
            return sorted(self.spans, key=lambda s: (s.start_s, s.track))

    def event_kinds(self) -> List[str]:
        with self._lock:
            return [e.kind for e in self.events]
