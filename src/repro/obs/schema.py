"""The documented wire schemas: events, Chrome traces, run reports.

Three validators, used by the test suite and the CI trace-smoke job:

* :func:`validate_events` — a stream of bus events against the typed
  vocabulary of :mod:`repro.obs.events` (field presence, outcome and
  kind vocabularies, non-negative quantities);
* :func:`validate_chrome_trace` — an exported trace JSON object (or
  file) against the Chrome trace-event format subset we emit: ``"X"``
  complete events with microsecond ``ts``/``dur`` and named
  pid/tid lanes, plus ``"M"`` metadata records — the contract that
  makes the file loadable in Perfetto / ``chrome://tracing``;
* :func:`validate_report` — a run report against the structure
  documented in ``docs/observability.md`` (schema version, required
  top-level keys, wall-clock isolation).

Each returns a list of human-readable problems (empty = valid); the
module doubles as a command-line checker::

    python -m repro.obs.schema trace.json --kind trace
    python -m repro.obs.schema report.json --kind report
"""

from __future__ import annotations

import json
from typing import Any, List, Sequence

from repro.obs.events import (
    ATTEMPT_EVENT_OUTCOMES,
    EVENT_TYPES,
    SERVE_REJECT_REASONS,
    Event,
)

#: Report keys whose contents are deterministic for a fixed
#: (data, config, engine-semantics) triple; everything wall-clock
#: lives under the single "wall" key.
REPORT_REQUIRED_KEYS = (
    "schema_version",
    "algorithm",
    "config",
    "dataset",
    "skyline",
    "jobs",
    "counters",
    "histograms",
    "simulated",
    "wall",
)

REPORT_SCHEMA_VERSION = 1

#: Required keys of a *serving* run report (``"kind": "serve"``): the
#: batch pipeline's jobs/schedule sections have no serving analogue,
#: and the SLO monitor's summary takes the place of ``simulated``.
SERVE_REPORT_REQUIRED_KEYS = (
    "schema_version",
    "kind",
    "workload",
    "config",
    "dataset",
    "skyline",
    "counters",
    "histograms",
    "slo",
    "wall",
)


def validate_events(events: Sequence[Event]) -> List[str]:
    problems: List[str] = []
    for position, event in enumerate(events):
        kind = getattr(event, "kind", None)
        if kind not in EVENT_TYPES:
            problems.append(f"event {position}: unknown kind {kind!r}")
            continue
        if not isinstance(event, EVENT_TYPES[kind]):
            problems.append(
                f"event {position}: kind {kind!r} carried by "
                f"{type(event).__name__}"
            )
        if kind == "task_attempt_end":
            if event.outcome not in ATTEMPT_EVENT_OUTCOMES:
                problems.append(
                    f"event {position}: outcome {event.outcome!r} not in "
                    f"{ATTEMPT_EVENT_OUTCOMES}"
                )
            if event.duration_s < 0:
                problems.append(f"event {position}: negative duration")
            if event.slowdown < 1.0:
                problems.append(f"event {position}: slowdown < 1")
        if kind == "shuffle":
            if any(r < 0 for r in event.partition_records):
                problems.append(f"event {position}: negative record count")
            if sum(event.partition_bytes) != event.total_bytes:
                problems.append(
                    f"event {position}: partition bytes do not sum to total"
                )
        if kind in ("task_attempt_start", "task_attempt_end") and (
            event.attempt < 0
        ):
            problems.append(f"event {position}: negative attempt index")
        if kind == "serve_query_served":
            if event.latency_s < 0:
                problems.append(f"event {position}: negative latency")
            if event.result_size < 0:
                problems.append(f"event {position}: negative result size")
            if event.wait_s < 0 or event.wait_s > event.latency_s:
                problems.append(
                    f"event {position}: wait_s outside [0, latency_s]"
                )
        if kind == "serve_query_rejected" and (
            event.reason not in SERVE_REJECT_REASONS
        ):
            problems.append(
                f"event {position}: reason {event.reason!r} not in "
                f"{SERVE_REJECT_REASONS}"
            )
        if kind in (
            "serve_query_served",
            "serve_query_rejected",
            "serve_tenant_shed",
        ) and event.at_s < 0:
            problems.append(f"event {position}: negative at_s")
        if kind == "serve_delta_applied" and event.op not in (
            "insert",
            "delete",
        ):
            problems.append(f"event {position}: unknown delta op {event.op!r}")
        if kind == "serve_delta_batch":
            if event.inserts + event.deletes != event.ops:
                problems.append(
                    f"event {position}: inserts + deletes != ops"
                )
            if event.shards_touched < 0 or event.max_shard_pairs < 0:
                problems.append(
                    f"event {position}: negative shard quantities"
                )
        if kind == "serve_tenant_shed":
            if not event.tenant:
                problems.append(f"event {position}: empty tenant id")
            if event.queued < 0 or event.quota_slots < 1:
                problems.append(
                    f"event {position}: bad tenant-shed quantities"
                )
        if kind == "serve_quota_update":
            if not event.tenant:
                problems.append(f"event {position}: empty tenant id")
            if event.weight <= 0:
                problems.append(f"event {position}: non-positive weight")
            if event.quota_slots < 1:
                problems.append(f"event {position}: quota_slots < 1")
        if kind == "shm_blocks_shared" and (
            event.segments < 0 or event.blocks < 0 or event.payload_bytes < 0
        ):
            problems.append(f"event {position}: negative shm quantities")
    return problems


def validate_chrome_trace(payload: Any) -> List[str]:
    """Validate an exported trace object (dict) or JSON string/path."""
    problems: List[str] = []
    if not isinstance(payload, dict):
        return [f"trace must be a JSON object, got {type(payload).__name__}"]
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["trace has no traceEvents array"]
    named_pids = set()
    named_tids = set()
    used_lanes = set()
    for position, record in enumerate(events):
        if not isinstance(record, dict):
            problems.append(f"record {position}: not an object")
            continue
        ph = record.get("ph")
        if ph not in ("X", "M", "i"):
            problems.append(f"record {position}: unsupported ph {ph!r}")
            continue
        if "name" not in record or "pid" not in record or "tid" not in record:
            problems.append(f"record {position}: missing name/pid/tid")
            continue
        if ph == "M":
            if record["name"] == "process_name":
                named_pids.add(record["pid"])
            elif record["name"] == "thread_name":
                named_tids.add((record["pid"], record["tid"]))
            if "name" not in record.get("args", {}):
                problems.append(
                    f"record {position}: metadata without args.name"
                )
        if ph == "X":
            used_lanes.add((record["pid"], record["tid"]))
            ts, dur = record.get("ts"), record.get("dur")
            if not isinstance(ts, (int, float)) or ts < 0:
                problems.append(f"record {position}: bad ts {ts!r}")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"record {position}: bad dur {dur!r}")
    for pid, tid in sorted(used_lanes):
        if pid not in named_pids:
            problems.append(f"pid {pid} has events but no process_name")
        if (pid, tid) not in named_tids:
            problems.append(
                f"lane (pid={pid}, tid={tid}) has events but no thread_name"
            )
    if not any(r.get("ph") == "X" for r in events if isinstance(r, dict)):
        problems.append("trace contains no complete ('X') events")
    return problems


def validate_report(report: Any) -> List[str]:
    problems: List[str] = []
    if not isinstance(report, dict):
        return [f"report must be a JSON object, got {type(report).__name__}"]
    serve = report.get("kind") == "serve"
    required = SERVE_REPORT_REQUIRED_KEYS if serve else REPORT_REQUIRED_KEYS
    for key in required:
        if key not in report:
            problems.append(f"report missing top-level key {key!r}")
    if report.get("schema_version") != REPORT_SCHEMA_VERSION:
        problems.append(
            f"schema_version {report.get('schema_version')!r} != "
            f"{REPORT_SCHEMA_VERSION}"
        )
    if serve:
        slo = report.get("slo")
        if isinstance(slo, dict) and slo:
            for key in ("objectives", "requests", "flight_recorder"):
                if key not in slo:
                    problems.append(f"slo summary missing {key!r}")
    jobs = report.get("jobs")
    if isinstance(jobs, list):
        for job in jobs:
            for key in ("name", "counters", "tasks", "schedule"):
                if key not in job:
                    problems.append(
                        f"job {job.get('name', '?')!r} missing {key!r}"
                    )
    # Wall-clock isolation: nothing outside "wall" may carry wall keys.
    def walk(node, path):
        if isinstance(node, dict):
            for key, value in node.items():
                if "wall" in str(key) and path:
                    problems.append(
                        f"wall-clock field {'.'.join(path + [str(key)])} "
                        "outside the top-level 'wall' key"
                    )
                walk(value, path + [str(key)])
        elif isinstance(node, list):
            for item in node:
                walk(item, path)

    for key, value in report.items():
        if key != "wall":
            walk(value, [key])
    return problems


def _load(path: str) -> Any:
    with open(path) as handle:
        return json.load(handle)


def main(argv=None) -> int:  # pragma: no cover - exercised by CI
    import argparse
    import sys

    parser = argparse.ArgumentParser(
        description="Validate an exported trace or run report."
    )
    parser.add_argument("path")
    parser.add_argument(
        "--kind", choices=["trace", "report"], default="trace"
    )
    args = parser.parse_args(argv)
    payload = _load(args.path)
    problems = (
        validate_chrome_trace(payload)
        if args.kind == "trace"
        else validate_report(payload)
    )
    for problem in problems:
        print(f"INVALID: {problem}", file=sys.stderr)
    if not problems:
        print(f"{args.path}: valid {args.kind}")
    return 1 if problems else 0


if __name__ == "__main__":  # pragma: no cover
    import sys

    sys.exit(main())
