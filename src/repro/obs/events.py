"""Typed runtime events and the :class:`EventBus` they travel on.

Every engine (serial, thread-pool, process-pool), the fault layer, and
the pipeline drivers publish the same small vocabulary of structured
events: job boundaries, per-attempt task lifecycles (with outcome,
straggler slowdown, and simulated node), shuffle and broadcast traffic,
injected faults, speculative launches, and pipeline completion.
Subscribers — the span tracer, the metrics collector, or anything a
user plugs in — receive each event synchronously, in emission order.

Overhead budget
---------------
The bus is designed to vanish when nobody listens:

* engines hold ``bus=None`` by default — emission sites are guarded by
  a single ``is not None`` test, so the default configuration pays a
  few nanoseconds per task;
* with a bus attached but **no subscriber**, every emission site checks
  :attr:`EventBus.active` *before* constructing the event object, so
  the cost is one attribute read and one truthiness test per site —
  benchmarked below 2% end-to-end by ``benchmarks/bench_obs_overhead.py``;
* with subscribers attached, dispatch is a lock plus one callback per
  subscriber per event (the span tracer budget is < 10% end-to-end).

Events are plain frozen dataclasses; ``kind`` is the stable wire name
documented in :mod:`repro.obs.schema` and used by the Chrome-trace
exporter and the run-report writer. Events replayed after the fact
(the process-pool engine cannot stream live events across the process
boundary, so the parent re-emits them from the recorded attempt
history) carry ``replay=True``; their sequence and payloads match the
live emission exactly, only wall-clock placement is synthetic.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, fields
from typing import Any, Callable, Dict, List, Optional, Tuple


@dataclass(frozen=True)
class Event:
    """Base class: every event has a stable ``kind`` wire name."""

    kind = "event"

    def as_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"kind": self.kind}
        for f in fields(self):
            payload[f.name] = getattr(self, f.name)
        return payload


@dataclass(frozen=True)
class PipelineStart(Event):
    """A skyline pipeline (chain of jobs) is about to run."""

    kind = "pipeline_start"
    algorithm: str


@dataclass(frozen=True)
class PipelineEnd(Event):
    """A pipeline finished: headline numbers for subscribers."""

    kind = "pipeline_end"
    algorithm: str
    jobs: int
    wall_s: float
    simulated_s: Optional[float] = None
    skyline_size: Optional[int] = None


@dataclass(frozen=True)
class JobStart(Event):
    kind = "job_start"
    job: str
    num_mappers: int
    num_reducers: int


@dataclass(frozen=True)
class JobEnd(Event):
    """Job finished; ``stats`` is the live JobStats (treat read-only)."""

    kind = "job_end"
    job: str
    stats: Any = None


@dataclass(frozen=True)
class Broadcast(Event):
    """Distributed-cache payload shipped to every node at job start."""

    kind = "broadcast"
    job: str
    payload_bytes: int
    num_keys: int


@dataclass(frozen=True)
class Shuffle(Event):
    """Map outputs partitioned into reducer buckets.

    ``partition_records``/``partition_bytes`` are per-reducer-bucket
    (index = reducer), the quantities behind the shuffle-skew
    histograms; ``total_bytes`` matches the job's shuffle-byte counter.
    """

    kind = "shuffle"
    job: str
    partition_records: Tuple[int, ...]
    partition_bytes: Tuple[int, ...]
    total_bytes: int


@dataclass(frozen=True)
class TaskAttemptStart(Event):
    kind = "task_attempt_start"
    job: Optional[str]
    task_id: str
    attempt: int
    node: Optional[int] = None
    speculative: bool = False
    replay: bool = False


#: Outcome vocabulary of task-attempt events — kept identical to
#: :data:`repro.mapreduce.metrics.ATTEMPT_OUTCOMES` (pinned by test).
ATTEMPT_EVENT_OUTCOMES = ("success", "failed", "killed", "speculative")


@dataclass(frozen=True)
class TaskAttemptEnd(Event):
    """One attempt finished; outcome vocabulary matches AttemptRecord
    (``success`` / ``failed`` / ``killed`` / ``speculative``).

    ``speculative`` marks the *backup copy* of a straggler race —
    regardless of outcome, so a crashed backup (outcome ``failed``)
    still pairs with its speculative :class:`TaskAttemptStart`."""

    kind = "task_attempt_end"
    job: Optional[str]
    task_id: str
    attempt: int
    outcome: str
    duration_s: float = 0.0
    slowdown: float = 1.0
    error: Optional[str] = None
    node: Optional[int] = None
    speculative: bool = False
    replay: bool = False


@dataclass(frozen=True)
class FaultInjected(Event):
    """The fault plan killed (or will slow) an attempt."""

    kind = "fault_injected"
    job: Optional[str]
    task_id: str
    attempt: int
    error: str
    node: Optional[int] = None
    replay: bool = False


@dataclass(frozen=True)
class SpeculationLaunched(Event):
    """A backup copy of a straggler attempt was launched."""

    kind = "speculation_launched"
    job: Optional[str]
    task_id: str
    attempt: int
    node: Optional[int] = None
    backup_node: Optional[int] = None
    replay: bool = False


#: Rejection vocabulary of :class:`ServeQueryRejected`.
SERVE_REJECT_REASONS = ("shed", "timeout")


@dataclass(frozen=True)
class ServeQueryServed(Event):
    """The serving frontend answered one skyline query.

    ``latency_s`` is on the frontend's clock — the deterministic
    virtual clock under a replayed schedule, wall time in threaded
    mode. ``source`` says where the answer came from (``cache`` /
    ``index``). ``at_s`` is the finish instant on the same clock and
    ``wait_s`` the queueing share of the latency — the fields the SLO
    monitor's fixed windows and wait histograms key on."""

    kind = "serve_query_served"
    request_id: int
    epoch: int
    cache_hit: bool
    latency_s: float
    result_size: int
    source: str = "index"
    tenant: str = "default"
    at_s: float = 0.0
    wait_s: float = 0.0


@dataclass(frozen=True)
class ServeQueryRejected(Event):
    """A query was refused: shed at admission or expired in queue."""

    kind = "serve_query_rejected"
    request_id: int
    reason: str  # 'shed' | 'timeout'
    queue_depth: int = 0
    tenant: str = "default"
    at_s: float = 0.0


@dataclass(frozen=True)
class ServeDeltaApplied(Event):
    """One insert/delete absorbed by the index's delta path."""

    kind = "serve_delta_applied"
    op: str  # 'insert' | 'delete'
    point_id: int
    cell: int
    epoch: int
    bit_flipped: bool = False
    repair_candidates: int = 0
    skyline_size: int = 0


@dataclass(frozen=True)
class ServeBatchRefresh(Event):
    """The staleness budget triggered a full batch recompute."""

    kind = "serve_batch_refresh"
    epoch: int
    deltas_absorbed: int
    algorithm: str
    skyline_size: int = 0


@dataclass(frozen=True)
class ShmBlocksShared(Event):
    """Block payloads re-homed into shared memory for one job.

    Emitted by the process-pool engine after promoting splits and
    cache blocks: the job's data now crosses process boundaries as
    descriptors, and ``payload_bytes`` is the volume that was *not*
    pickled per hop."""

    kind = "shm_blocks_shared"
    job: str
    segments: int
    blocks: int
    payload_bytes: int


@dataclass(frozen=True)
class ShmArenaRetired(Event):
    """A job arena's segments were unlinked (lifecycle completed)."""

    kind = "shm_arena_retired"
    job: str
    segments: int


@dataclass(frozen=True)
class ServeDeltaBatch(Event):
    """A coalesced burst of deltas applied in one repair pass.

    ``max_shard_pairs`` is the largest per-shard repair work of the
    batch — the quantity that bounds the fleet's parallel (virtual)
    service time."""

    kind = "serve_delta_batch"
    ops: int
    inserts: int
    deletes: int
    epoch: int
    shards_touched: int = 1
    max_shard_pairs: int = 0
    skyline_size: int = 0


@dataclass(frozen=True)
class ServeReshard(Event):
    """The sharded router rebuilt its fleet (coverage exhausted)."""

    kind = "serve_reshard"
    reason: str
    shards: int
    groups: int
    epoch: int


@dataclass(frozen=True)
class ServeTenantShed(Event):
    """Admission shed a query because its *tenant* was over quota.

    Fires in addition to :class:`ServeQueryRejected` (which records the
    query-level outcome): the global queue still had room, but the
    tenant already held ``quota_slots`` of the bounded queue, so
    weighted-fair admission refused to let it crowd out the others."""

    kind = "serve_tenant_shed"
    request_id: int
    tenant: str
    queued: int
    quota_slots: int
    at_s: float = 0.0


@dataclass(frozen=True)
class ServeQuotaUpdate(Event):
    """A tenant's fair-queueing parameters were (re)established.

    Emitted when a frontend first sees a tenant: its WFQ weight and
    the number of bounded-queue slots its quota allows."""

    kind = "serve_quota_update"
    tenant: str
    weight: float
    quota_slots: int


#: Every event type, keyed by wire name (drives the schema module).
EVENT_TYPES: Dict[str, type] = {
    cls.kind: cls
    for cls in (
        PipelineStart,
        PipelineEnd,
        JobStart,
        JobEnd,
        Broadcast,
        Shuffle,
        TaskAttemptStart,
        TaskAttemptEnd,
        FaultInjected,
        SpeculationLaunched,
        ServeQueryServed,
        ServeQueryRejected,
        ServeDeltaApplied,
        ServeBatchRefresh,
        ShmBlocksShared,
        ShmArenaRetired,
        ServeDeltaBatch,
        ServeReshard,
        ServeTenantShed,
        ServeQuotaUpdate,
    )
}


class EventBus:
    """Synchronous pub/sub for runtime events.

    Subscribers are objects with an ``on_event(event)`` method or bare
    callables; they are invoked in subscription order under one lock
    (the thread-pool engine emits from worker threads). Emission sites
    must guard with :attr:`active` before *constructing* events so an
    attached-but-unobserved bus stays within the documented < 2%
    overhead budget.
    """

    __slots__ = ("_handlers", "_lock")

    def __init__(self):
        self._handlers: List[Callable[[Event], None]] = []
        self._lock = threading.Lock()

    @property
    def active(self) -> bool:
        """True iff at least one subscriber is attached."""
        return bool(self._handlers)

    def subscribe(self, subscriber):
        """Attach a subscriber; returns it for chaining."""
        handler = getattr(subscriber, "on_event", None)
        if handler is None:
            if not callable(subscriber):
                raise TypeError(
                    f"subscriber {subscriber!r} has no on_event method "
                    "and is not callable"
                )
            handler = subscriber
        with self._lock:
            self._handlers.append(handler)
        return subscriber

    def unsubscribe(self, subscriber) -> None:
        handler = getattr(subscriber, "on_event", None) or subscriber
        with self._lock:
            self._handlers.remove(handler)

    def emit(self, event: Event) -> None:
        if not self._handlers:
            return
        # Dispatch under the lock: the thread-pool engine emits from
        # worker threads, and subscribers (histograms, span tables)
        # rely on serialized delivery.
        with self._lock:
            for handler in self._handlers:
                handler(event)


class EventLog:
    """The simplest subscriber: records every event (tests, debugging)."""

    def __init__(self):
        self.events: List[Event] = []

    def on_event(self, event: Event) -> None:
        self.events.append(event)

    def kinds(self) -> List[str]:
        return [e.kind for e in self.events]

    def of_kind(self, kind: str) -> List[Event]:
        return [e for e in self.events if e.kind == kind]


def replay_task_events(bus: EventBus, job: Optional[str], task_stats) -> None:
    """Re-emit one task's attempt lifecycle from its recorded history.

    Used by engines that cannot stream live task events (worker
    processes have no channel back to the parent's bus): the sequence
    of typed events — including fault injections and speculative
    launches reconstructed from the attempt outcomes — matches the live
    emission; only wall-clock placement is synthetic, which the events
    flag with ``replay=True``.
    """
    if not bus.active:
        return
    task_id = str(task_stats.task_id)
    for record in task_stats.attempts:
        if record.outcome == "speculative":
            bus.emit(
                SpeculationLaunched(
                    job=job,
                    task_id=task_id,
                    attempt=record.attempt,
                    backup_node=record.node,
                    replay=True,
                )
            )
        bus.emit(
            TaskAttemptStart(
                job=job,
                task_id=task_id,
                attempt=record.attempt,
                node=record.node,
                speculative=record.outcome == "speculative",
                replay=True,
            )
        )
        if record.error is not None and record.error.startswith(
            ("InjectedTaskFailure", "NodeLostError")
        ):
            bus.emit(
                FaultInjected(
                    job=job,
                    task_id=task_id,
                    attempt=record.attempt,
                    error=record.error,
                    node=record.node,
                    replay=True,
                )
            )
        bus.emit(
            TaskAttemptEnd(
                job=job,
                task_id=task_id,
                attempt=record.attempt,
                outcome=record.outcome,
                duration_s=record.duration_s,
                slowdown=record.slowdown,
                error=record.error,
                node=record.node,
                speculative=record.outcome == "speculative",
                replay=True,
            )
        )
