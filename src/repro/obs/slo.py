"""Deterministic SLO telemetry over the serving event stream.

The serving frontends stamp every request-level event with its instant
on the deterministic virtual clock (``at_s``), which makes classic
SRE-style SLO machinery *reproducible*: the same replayed workload
produces the same windows, the same burn rates, and the same
flight-recorder dumps, byte for byte — so CI can gate on them.

:class:`SLOMonitor` subscribes to the frontend's
:class:`~repro.obs.events.EventBus` and consumes only request-level
events (``serve_query_served`` / ``serve_query_rejected`` /
``serve_tenant_shed``; delta/refresh bookkeeping events are ignored so
a sharded and an unsharded replay of the same stream summarize
identically). It maintains:

* **fixed virtual windows** — window ``i`` covers
  ``[i * window_s, (i+1) * window_s)``; per closed window each
  :class:`SLOObjective` computes its error-budget **burn rate**
  ``bad_fraction / (1 - target)`` (burn 1.0 = consuming budget exactly
  at the sustainable rate, ``burn_threshold`` trips the recorder);
* **per-tenant latency digests** — exact nearest-rank p50/p99 over
  served latencies (deterministic, no streaming approximation);
* **per-shard busy digests** — fed from tracer spans on the
  ``shard-*`` / ``worker-*`` tracks via :meth:`SLOMonitor.ingest_spans`;
* a **flight recorder** — a bounded ring of the most recent
  request-level events, snapshotted into a dump whenever a window
  trips a burn threshold or sheds burst past ``shed_burst``.

:meth:`SLOMonitor.summary` renders everything as a JSON-safe dict that
``repro.obs.report.build_serve_run_report`` embeds under ``"slo"``.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from repro.errors import ValidationError

SLO_KINDS = ("latency", "availability")

#: Cap on the per-objective per-window burn listing in the summary
#: (the worst window and trip counts are always exact).
MAX_BURN_WINDOWS = 64


def _round(value: float) -> float:
    return round(float(value), 9)


def exact_percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (exact, deterministic)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[min(rank, len(ordered)) - 1]


@dataclass(frozen=True)
class SLOObjective:
    """One service-level objective over the request stream.

    ``latency``: a *served* request is bad when its latency exceeds
    ``threshold_s``. ``availability``: any rejected request (shed or
    timed out) is bad; ``threshold_s`` is unused. ``target`` is the
    good fraction the objective promises; the per-window burn rate is
    ``bad_fraction / (1 - target)``.
    """

    name: str
    kind: str = "latency"
    threshold_s: Optional[float] = None
    target: float = 0.99
    burn_threshold: float = 10.0

    def __post_init__(self):
        if self.kind not in SLO_KINDS:
            raise ValidationError(
                f"objective kind must be one of {SLO_KINDS}, "
                f"got {self.kind!r}"
            )
        if not 0.0 < self.target < 1.0:
            raise ValidationError(
                f"target must be in (0, 1), got {self.target}"
            )
        if self.kind == "latency" and (
            self.threshold_s is None or self.threshold_s <= 0
        ):
            raise ValidationError(
                "latency objectives need a positive threshold_s"
            )
        if self.burn_threshold <= 0:
            raise ValidationError(
                f"burn_threshold must be > 0, got {self.burn_threshold}"
            )

    def error_budget(self) -> float:
        return 1.0 - self.target


def default_objectives(workload) -> tuple:
    """Objectives derived from a workload's own admission parameters.

    The latency objective promises 99% of served queries inside half
    the workload's timeout (a query that waited near its full budget
    is an SLO miss even though it was served); the availability
    objective promises 99.9% of requests admitted-and-served, so shed
    bursts burn it fast.
    """
    return (
        SLOObjective(
            name="latency",
            kind="latency",
            threshold_s=workload.timeout_s / 2.0,
            target=0.99,
            burn_threshold=6.0,
        ),
        SLOObjective(
            name="availability",
            kind="availability",
            target=0.999,
            burn_threshold=10.0,
        ),
    )


def default_window_s(workload) -> float:
    """A window that splits the nominal run into ~16 slices.

    Computed from declared workload parameters (not the realized
    makespan), so it is known before the replay starts and identical
    across engines/shard counts.
    """
    return max(workload.num_ops * workload.mean_interarrival_s / 16.0, 1e-9)


class FlightRecorder:
    """Bounded ring of recent request-level events (as dicts)."""

    def __init__(self, capacity: int = 64):
        if capacity < 1:
            raise ValidationError(
                f"recorder capacity must be >= 1, got {capacity}"
            )
        self.capacity = int(capacity)
        self._ring: deque = deque(maxlen=self.capacity)

    def record(self, entry: Dict[str, Any]) -> None:
        self._ring.append(entry)

    def snapshot(self) -> List[Dict[str, Any]]:
        return [dict(entry) for entry in self._ring]


class SLOMonitor:
    """Bus subscriber computing windows, burn rates, and dumps."""

    _REQUEST_KINDS = (
        "serve_query_served",
        "serve_query_rejected",
        "serve_tenant_shed",
    )

    def __init__(
        self,
        objectives: Sequence[SLOObjective],
        *,
        window_s: float,
        recorder_capacity: int = 64,
        max_dumps: int = 4,
        shed_burst: int = 8,
    ):
        if not objectives:
            raise ValidationError("SLOMonitor needs at least one objective")
        names = [o.name for o in objectives]
        if len(set(names)) != len(names):
            raise ValidationError(f"duplicate objective names in {names}")
        if window_s <= 0:
            raise ValidationError(f"window_s must be > 0, got {window_s}")
        if shed_burst < 1:
            raise ValidationError(
                f"shed_burst must be >= 1, got {shed_burst}"
            )
        if max_dumps < 1:
            raise ValidationError(f"max_dumps must be >= 1, got {max_dumps}")
        self.objectives = tuple(objectives)
        self.window_s = float(window_s)
        self.shed_burst = int(shed_burst)
        self.max_dumps = int(max_dumps)
        self.recorder = FlightRecorder(recorder_capacity)
        self.dumps: List[Dict[str, Any]] = []
        self._suppressed_dumps = 0
        self._window: Optional[int] = None
        self._windows_closed = 0
        # Per-objective: totals and the open window's counts.
        self._good = {o.name: 0 for o in self.objectives}
        self._bad = {o.name: 0 for o in self.objectives}
        self._win_good = {o.name: 0 for o in self.objectives}
        self._win_bad = {o.name: 0 for o in self.objectives}
        self._worst_burn = {o.name: 0.0 for o in self.objectives}
        self._worst_window = {o.name: None for o in self.objectives}
        self._tripped = {o.name: 0 for o in self.objectives}
        self._burn_windows = {o.name: [] for o in self.objectives}
        self._burn_dropped = {o.name: 0 for o in self.objectives}
        self._win_sheds = 0
        # Request totals + per-tenant digests.
        self._served = 0
        self._rejected = {"shed": 0, "timeout": 0}
        self._tenant_latencies: Dict[str, List[float]] = {}
        self._tenant_rejected: Dict[str, int] = {}
        self._shard_digests: Dict[str, Dict[str, float]] = {}
        self._finalized = False

    # -- event intake ---------------------------------------------------

    def on_event(self, event) -> None:
        kind = getattr(event, "kind", None)
        if kind not in self._REQUEST_KINDS:
            return
        at_s = float(getattr(event, "at_s", 0.0))
        self._roll_to(int(at_s // self.window_s))
        self.recorder.record(event.as_dict())
        if kind == "serve_query_served":
            self._served += 1
            latency = float(event.latency_s)
            self._tenant_latencies.setdefault(event.tenant, []).append(
                latency
            )
            for objective in self.objectives:
                if objective.kind == "latency":
                    bad = latency > objective.threshold_s
                else:
                    bad = False
                self._count(objective.name, bad)
        elif kind == "serve_query_rejected":
            self._rejected[event.reason] = (
                self._rejected.get(event.reason, 0) + 1
            )
            self._tenant_rejected[event.tenant] = (
                self._tenant_rejected.get(event.tenant, 0) + 1
            )
            if event.reason == "shed":
                self._win_sheds += 1
            for objective in self.objectives:
                if objective.kind == "availability":
                    self._count(objective.name, True)
        # serve_tenant_shed only feeds the recorder: the query-level
        # outcome arrives as its own serve_query_rejected event.

    def _count(self, name: str, bad: bool) -> None:
        if bad:
            self._bad[name] += 1
            self._win_bad[name] += 1
        else:
            self._good[name] += 1
            self._win_good[name] += 1

    def _roll_to(self, window: int) -> None:
        if self._window is None:
            self._window = window
            return
        if window <= self._window:
            # Virtual event times interleave across kinds (a served
            # event fires at its finish instant, which may lie past a
            # later admission's arrival); late events count against
            # the still-open window so the accounting never reopens a
            # closed one.
            return
        self._close_window()
        self._windows_closed += window - self._window
        self._window = window

    def _close_window(self) -> None:
        window = self._window
        for objective in self.objectives:
            name = objective.name
            total = self._win_good[name] + self._win_bad[name]
            if total == 0:
                continue
            bad_fraction = self._win_bad[name] / total
            burn = bad_fraction / objective.error_budget()
            if self._win_bad[name]:
                if len(self._burn_windows[name]) < MAX_BURN_WINDOWS:
                    self._burn_windows[name].append(
                        [int(window), _round(burn)]
                    )
                else:
                    self._burn_dropped[name] += 1
            if burn > self._worst_burn[name] or (
                self._worst_window[name] is None and burn > 0
            ):
                self._worst_burn[name] = burn
                self._worst_window[name] = int(window)
            if burn >= objective.burn_threshold:
                self._tripped[name] += 1
                self._dump(
                    window,
                    reason=f"burn:{name}",
                    burn=burn,
                    objective=name,
                )
            self._win_good[name] = 0
            self._win_bad[name] = 0
        if self._win_sheds >= self.shed_burst:
            self._dump(window, reason="shed-burst", sheds=self._win_sheds)
        self._win_sheds = 0

    def _dump(
        self,
        window: int,
        *,
        reason: str,
        burn: Optional[float] = None,
        objective: Optional[str] = None,
        sheds: Optional[int] = None,
    ) -> None:
        if len(self.dumps) >= self.max_dumps:
            self._suppressed_dumps += 1
            return
        self.dumps.append(
            {
                "window": int(window),
                "window_start_s": _round(window * self.window_s),
                "reason": reason,
                "objective": objective,
                "burn": None if burn is None else _round(burn),
                "sheds": sheds,
                "events": self.recorder.snapshot(),
            }
        )

    # -- span digests ---------------------------------------------------

    def ingest_spans(self, spans) -> None:
        """Fold tracer spans on shard/worker tracks into busy digests."""
        for span in spans:
            track = span.track
            if not (
                track.startswith("shard-") or track.startswith("worker-")
            ):
                continue
            digest = self._shard_digests.setdefault(
                track, {"spans": 0, "busy_s": 0.0, "max_span_s": 0.0}
            )
            digest["spans"] += 1
            digest["busy_s"] += span.duration_s
            digest["max_span_s"] = max(
                digest["max_span_s"], span.duration_s
            )

    # -- output ---------------------------------------------------------

    def finalize(self) -> None:
        """Close the still-open window (call once, after the replay)."""
        if self._finalized:
            return
        self._finalized = True
        if self._window is not None:
            self._close_window()
            self._windows_closed += 1

    def summary(self) -> Dict[str, Any]:
        """JSON-safe, fully deterministic SLO summary."""
        objectives = []
        for objective in self.objectives:
            name = objective.name
            good, bad = self._good[name], self._bad[name]
            total = good + bad
            objectives.append(
                {
                    "name": name,
                    "kind": objective.kind,
                    "threshold_s": (
                        None
                        if objective.threshold_s is None
                        else _round(objective.threshold_s)
                    ),
                    "target": _round(objective.target),
                    "burn_threshold": _round(objective.burn_threshold),
                    "good": good,
                    "bad": bad,
                    "bad_fraction": _round(bad / total) if total else 0.0,
                    "worst_burn": _round(self._worst_burn[name]),
                    "worst_window": self._worst_window[name],
                    "tripped_windows": self._tripped[name],
                    "burn_by_window": self._burn_windows[name],
                    "burn_windows_dropped": self._burn_dropped[name],
                }
            )
        tenants = {}
        for tenant in sorted(
            set(self._tenant_latencies) | set(self._tenant_rejected)
        ):
            latencies = self._tenant_latencies.get(tenant, [])
            tenants[tenant] = {
                "served": len(latencies),
                "rejected": self._tenant_rejected.get(tenant, 0),
                "p50_latency_s": _round(exact_percentile(latencies, 0.50)),
                "p99_latency_s": _round(exact_percentile(latencies, 0.99)),
                "max_latency_s": _round(max(latencies, default=0.0)),
            }
        shards = {
            track: {
                "spans": int(digest["spans"]),
                "busy_s": _round(digest["busy_s"]),
                "max_span_s": _round(digest["max_span_s"]),
            }
            for track, digest in sorted(self._shard_digests.items())
        }
        return {
            "window_s": _round(self.window_s),
            "windows_closed": self._windows_closed,
            "shed_burst": self.shed_burst,
            "requests": {
                "served": self._served,
                "shed": self._rejected.get("shed", 0),
                "timed_out": self._rejected.get("timeout", 0),
            },
            "objectives": objectives,
            "tenants": tenants,
            "shards": shards,
            "flight_recorder": {
                "capacity": self.recorder.capacity,
                "dumps": self.dumps,
                "suppressed_dumps": self._suppressed_dumps,
            },
        }
