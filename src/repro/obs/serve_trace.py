"""Per-request tracing of the serving path, across process boundaries.

Every op a frontend admits — query, insert, delete, coalesced batch —
gets a :class:`TraceContext` (kind, sequence number, tenant). The
frontend commits one span per op on the deterministic virtual clock,
the serving cores contribute *relative* phase spans (cache probe,
index read, per-shard fan-out) that the tracer rebases onto the op's
start instant, and :class:`~repro.serve.fleet.SkylineFleet` workers —
who live in other processes and cannot see the clock — batch
``(rpc_seq, op, ctx, work)`` records back over their duplex pipes.
:meth:`ServeTracer.ingest_fleet_records` stitches those records onto
the router-side interval registered for the same context, so one
export (:func:`repro.obs.spans.write_chrome_trace` over
:meth:`ServeTracer.clocks`) shows the frontend, the shard phases, and
the fleet workers as separate Perfetto processes with spans joined by
``request_id``.

Everything here is deterministic: spans carry virtual times only, and
the final order is a total sort on ``(start, end, sequence, track,
name)`` — independent of pipe/thread interleaving. The same property
backs :func:`merge_span_records`, the canonical merge for record
batches arriving from concurrent producers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.obs.spans import Span

#: Clock (Perfetto process) names of the serving trace.
SERVE_CLOCK = "serve"
FLEET_CLOCK = "fleet"

#: Context kinds: queries carry their request id, mutations a tracer
#: sequence number (the two spaces never collide — kind is part of
#: the context identity).
TRACE_OP_KINDS = ("query", "insert", "delete", "batch")


@dataclass(frozen=True, order=True)
class TraceContext:
    """Identity of one traced serving op; crosses pipes by value."""

    kind: str
    seq: int
    tenant: str = "default"

    def label(self) -> str:
        return f"{self.kind}#{self.seq}"


def _span_sort_key(span: Span) -> Tuple:
    args = span.args
    seq = args.get("request_id", args.get("mutation_seq", -1))
    return (span.start_s, span.end_s, seq, span.track, span.name)


def sort_spans(spans: Iterable[Span]) -> List[Span]:
    """Total deterministic order: (start, end, sequence, track, name)."""
    return sorted(spans, key=_span_sort_key)


def merge_span_records(
    batches: Iterable[Iterable[Mapping[str, Any]]]
) -> List[Dict[str, Any]]:
    """Deterministically merge per-producer record batches.

    Fleet workers and engine threads hand their span/event records
    over in whatever interleaving the transport produced; the merged
    order must not depend on it. Records are mappings carrying at
    least ``at_s`` (virtual timestamp) and ``request_id``; ties beyond
    that pair break on the full sorted item list, so any two distinct
    records have one stable relative order no matter which producer
    delivered first.
    """
    merged = [dict(record) for batch in batches for record in batch]

    def key(record: Dict[str, Any]) -> Tuple:
        rest = tuple(sorted((str(k), repr(v)) for k, v in record.items()))
        return (
            float(record.get("at_s", 0.0)),
            int(record.get("request_id", -1)),
            rest,
        )

    return sorted(merged, key=key)


class ServeTracer:
    """Assembles one multi-process serving trace on the virtual clock.

    Frontends drive the op lifecycle (begin / phase / commit or
    reject); the fleet router feeds worker record batches in
    afterwards. Attaching a tracer never changes virtual timings —
    every cost is computed exactly as in the untraced run and the
    tracer only *records* the instants (asserted by the obs-overhead
    gate's perturbation checks).
    """

    def __init__(self):
        self._serve_spans: List[Span] = []
        self._fleet_spans: List[Span] = []
        # Pending relative phases of the op in flight:
        # (name, track, rel_start_s, rel_end_s, extra_args).
        self._phases: List[Tuple[str, str, float, float, Dict[str, Any]]] = []
        self._intervals: Dict[TraceContext, Tuple[float, float]] = {}
        self.current_ctx: Optional[TraceContext] = None
        self._mutation_seq = 0

    # -- op lifecycle (called by the frontends) -------------------------

    def begin_query(self, request_id: int, tenant: str) -> TraceContext:
        ctx = TraceContext("query", int(request_id), str(tenant))
        self.current_ctx = ctx
        self._phases = []
        return ctx

    def begin_mutation(self, kind: str) -> TraceContext:
        ctx = TraceContext(str(kind), self._mutation_seq)
        self._mutation_seq += 1
        self.current_ctx = ctx
        self._phases = []
        return ctx

    def phase(
        self,
        name: str,
        rel_start_s: float,
        rel_end_s: float,
        track: str = "index",
        **args: Any,
    ) -> None:
        """Record one relative phase of the op in flight.

        Serving cores don't know when the server will actually start
        the op — phases are offsets from the (future) start instant,
        rebased at commit time.
        """
        self._phases.append(
            (name, track, float(rel_start_s), float(rel_end_s), args)
        )

    def clear_phases(self) -> None:
        """Drop pending phases (a core re-pricing the op re-phases it)."""
        self._phases = []

    def commit_query(
        self,
        ctx: TraceContext,
        arrival_s: float,
        start_s: float,
        finish_s: float,
        *,
        cache_hit: bool,
        result_size: int,
        epoch: int,
    ) -> None:
        args = {"request_id": ctx.seq, "tenant": ctx.tenant}
        if start_s > arrival_s:
            self._serve_spans.append(
                Span(
                    name=f"wait#{ctx.seq}",
                    track="queue",
                    start_s=arrival_s,
                    end_s=start_s,
                    category="serve",
                    args=dict(args, wait_s=start_s - arrival_s),
                )
            )
        self._serve_spans.append(
            Span(
                name=f"query#{ctx.seq}",
                track="frontend",
                start_s=start_s,
                end_s=finish_s,
                category="serve",
                args=dict(
                    args,
                    cache_hit=bool(cache_hit),
                    result_size=int(result_size),
                    epoch=int(epoch),
                ),
            )
        )
        self._flush_phases(start_s, args)
        self._intervals[ctx] = (start_s, finish_s)
        self.current_ctx = None

    def reject_query(
        self,
        request_id: int,
        tenant: str,
        arrival_s: float,
        decided_s: float,
        reason: str,
    ) -> None:
        self._serve_spans.append(
            Span(
                name=f"{reason}#{int(request_id)}",
                track="admission",
                start_s=arrival_s,
                end_s=decided_s,
                category="serve",
                outcome="failed",
                args={
                    "request_id": int(request_id),
                    "tenant": str(tenant),
                    "reason": str(reason),
                },
            )
        )
        self._phases = []
        self.current_ctx = None

    def commit_mutation(
        self,
        ctx: TraceContext,
        arrival_s: float,
        start_s: float,
        finish_s: float,
        *,
        pairs: int,
        epoch: int,
        per_shard_pairs: Optional[Mapping[int, int]] = None,
        seconds_per_pair: float = 0.0,
    ) -> None:
        args = {"mutation_seq": ctx.seq, "op": ctx.kind}
        if start_s > arrival_s:
            self._serve_spans.append(
                Span(
                    name=f"wait#{ctx.label()}",
                    track="queue",
                    start_s=arrival_s,
                    end_s=start_s,
                    category="mutation",
                    args=dict(args, wait_s=start_s - arrival_s),
                )
            )
        self._serve_spans.append(
            Span(
                name=ctx.label(),
                track="frontend",
                start_s=start_s,
                end_s=finish_s,
                category="mutation",
                args=dict(args, pairs=int(pairs), epoch=int(epoch)),
            )
        )
        if per_shard_pairs:
            # The router charged the *largest* per-shard repair; the
            # per-shard spans show where the parallel work actually
            # went (they tile under the frontend span).
            for shard, shard_pairs in sorted(per_shard_pairs.items()):
                self._serve_spans.append(
                    Span(
                        name=f"repair#{ctx.seq}",
                        track=f"shard-{int(shard)}",
                        start_s=start_s,
                        end_s=start_s + shard_pairs * seconds_per_pair,
                        category="mutation",
                        args=dict(args, pairs=int(shard_pairs)),
                    )
                )
        self._flush_phases(start_s, args)
        self._intervals[ctx] = (start_s, finish_s)
        self.current_ctx = None

    def _flush_phases(self, base_s: float, args: Dict[str, Any]) -> None:
        for name, track, rel0, rel1, extra in self._phases:
            merged = dict(args)
            merged.update(extra)
            self._serve_spans.append(
                Span(
                    name=name,
                    track=track,
                    start_s=base_s + rel0,
                    end_s=base_s + rel1,
                    category="serve",
                    args=merged,
                )
            )
        self._phases = []

    # -- fleet stitching ------------------------------------------------

    def ingest_fleet_records(
        self, shard: int, records: Iterable[Tuple]
    ) -> int:
        """Rebase one worker's batched records onto the virtual clock.

        Workers have no clock — each record is ``(rpc_seq, op, ctx,
        work)`` in RPC order. The router-side interval registered for
        the same context places the worker span; records whose context
        never committed (e.g. an op that raised) are skipped. Returns
        the number of spans ingested.
        """
        count = 0
        for rpc_seq, op, ctx, work in records:
            interval = self._intervals.get(ctx)
            if interval is None:
                continue
            start_s, end_s = interval
            args: Dict[str, Any] = {
                "op": str(op),
                "work": int(work),
                "rpc_seq": int(rpc_seq),
                "tenant": ctx.tenant,
            }
            if ctx.kind == "query":
                args["request_id"] = ctx.seq
            else:
                args["mutation_seq"] = ctx.seq
            self._fleet_spans.append(
                Span(
                    name=f"{op}#{ctx.seq}",
                    track=f"worker-{int(shard)}",
                    start_s=start_s,
                    end_s=end_s,
                    category="fleet",
                    args=args,
                )
            )
            count += 1
        return count

    # -- export ---------------------------------------------------------

    def serve_spans(self) -> List[Span]:
        return sort_spans(self._serve_spans)

    def fleet_spans(self) -> List[Span]:
        return sort_spans(self._fleet_spans)

    def clocks(self) -> Dict[str, List[Span]]:
        """Chrome-trace clocks: the frontend process, plus the fleet
        process when worker records were ingested."""
        clocks = {SERVE_CLOCK: self.serve_spans()}
        if self._fleet_spans:
            clocks[FLEET_CLOCK] = self.fleet_spans()
        return clocks
