"""repro.obs — structured run telemetry for the MapReduce runtime.

The observability layer the paper's whole evaluation (Sections 7,
Figures 7–11) implicitly asks for: instead of bolting a new probe onto
the runtime for every question ("where did the time go inside the
bitstring job?", "what did attempt 2 of map-3 see?"), the engines emit
**typed events** once, and everything else is a subscriber:

* :class:`EventBus` / :mod:`repro.obs.events` — the event vocabulary
  (job/task-attempt lifecycles, shuffle, broadcast, fault injection,
  speculation, pipeline completion) with a documented near-zero
  overhead budget when nobody listens;
* :class:`SpanTracer` / :mod:`repro.obs.spans` — spans on two clocks
  (real wall time, simulated cluster time) exported as Chrome
  trace-event JSON loadable in Perfetto / ``chrome://tracing``; the
  ASCII Gantt renders from the same simulated spans;
* :class:`MetricsCollector` / :mod:`repro.obs.metrics` — a documented
  metric registry layered on counters: deterministic fixed-bucket
  histograms and gauges;
* :mod:`repro.obs.report` — one machine-readable JSON report per run
  (config, dataset fingerprint, counters, histograms, attempt
  histories, schedule, skyline checksum), diffable with wall-clock
  noise isolated under one key;
* :mod:`repro.obs.schema` — validators for the event, trace, and
  report formats (used by tests and the CI trace-smoke job).

See ``docs/observability.md`` for the full schemas and a Perfetto
walkthrough.
"""

from repro.obs.events import (
    ATTEMPT_EVENT_OUTCOMES,
    EVENT_TYPES,
    SERVE_REJECT_REASONS,
    Broadcast,
    Event,
    EventBus,
    EventLog,
    FaultInjected,
    JobEnd,
    JobStart,
    PipelineEnd,
    PipelineStart,
    ServeBatchRefresh,
    ServeDeltaApplied,
    ServeQueryRejected,
    ServeQueryServed,
    Shuffle,
    SpeculationLaunched,
    TaskAttemptEnd,
    TaskAttemptStart,
    replay_task_events,
)
from repro.obs.metrics import (
    METRICS,
    Histogram,
    MetricsCollector,
    MetricSpec,
    documented_metrics,
)
from repro.obs.report import (
    build_report,
    build_serve_run_report,
    canonical_json,
    diff_reports,
    load_report,
    pointset_checksum,
    render_report,
    write_report,
)
from repro.obs.schema import (
    validate_chrome_trace,
    validate_events,
    validate_report,
)
from repro.obs.serve_trace import (
    ServeTracer,
    TraceContext,
    merge_span_records,
    sort_spans,
)
from repro.obs.slo import (
    FlightRecorder,
    SLOMonitor,
    SLOObjective,
    default_objectives,
    default_window_s,
)
from repro.obs.spans import Span, chrome_trace, write_chrome_trace
from repro.obs.tracer import SpanTracer

__all__ = [
    "ATTEMPT_EVENT_OUTCOMES",
    "Broadcast",
    "EVENT_TYPES",
    "Event",
    "EventBus",
    "EventLog",
    "FaultInjected",
    "FlightRecorder",
    "Histogram",
    "JobEnd",
    "JobStart",
    "METRICS",
    "MetricSpec",
    "MetricsCollector",
    "PipelineEnd",
    "PipelineStart",
    "SERVE_REJECT_REASONS",
    "SLOMonitor",
    "SLOObjective",
    "ServeBatchRefresh",
    "ServeDeltaApplied",
    "ServeQueryRejected",
    "ServeQueryServed",
    "ServeTracer",
    "Shuffle",
    "Span",
    "SpanTracer",
    "SpeculationLaunched",
    "TaskAttemptEnd",
    "TaskAttemptStart",
    "TraceContext",
    "build_report",
    "build_serve_run_report",
    "canonical_json",
    "chrome_trace",
    "default_objectives",
    "default_window_s",
    "diff_reports",
    "documented_metrics",
    "load_report",
    "merge_span_records",
    "pointset_checksum",
    "render_report",
    "replay_task_events",
    "sort_spans",
    "validate_chrome_trace",
    "validate_events",
    "validate_report",
    "write_chrome_trace",
    "write_report",
]
