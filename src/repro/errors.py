"""Exception hierarchy for the :mod:`repro` package.

Every error raised by the library derives from :class:`ReproError`, so
callers can guard a whole pipeline with a single ``except ReproError``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ValidationError(ReproError, ValueError):
    """A user-supplied argument is malformed or out of range."""


class DataError(ValidationError):
    """An input dataset is malformed (wrong shape, dtype, NaNs, ...)."""


class GridError(ValidationError):
    """A grid-partitioning parameter or operation is invalid."""


class JobError(ReproError):
    """A MapReduce job specification is invalid or a job failed."""


class JobValidationError(JobError, ValidationError):
    """A MapReduce job specification is malformed."""


class TaskFailedError(JobError):
    """A map or reduce task raised; carries the original cause."""

    def __init__(self, task_id: str, cause: BaseException):
        super().__init__(f"task {task_id} failed: {cause!r}")
        self.task_id = task_id
        self.cause = cause

    def __reduce__(self):
        # Default Exception pickling replays ``args`` (the formatted
        # message) into ``__init__``, which needs (task_id, cause) —
        # required for crossing the ProcessPoolEngine boundary.
        return (type(self), (self.task_id, self.cause))


class ContractViolation(ValidationError):
    """User task code broke a MapReduce purity/determinism contract.

    Raised by :class:`repro.check.contracts.ContractCheckingEngine`
    when a mapper/reducer mutates its inputs or the distributed cache,
    depends on the order of its value lists, emits unusable keys, or
    uses a nondeterministic partitioner.  Subclasses
    :class:`ValidationError` so retry policies treat it as
    non-retryable: a contract breach fails identically every attempt.
    """


class AlgorithmError(ReproError):
    """A skyline algorithm was configured or used incorrectly."""


class UnknownAlgorithmError(AlgorithmError, KeyError):
    """Requested algorithm name is not in the registry."""
