"""A bundle of points with stable row identities.

Every MapReduce flow in this library carries *which* input rows are
skyline members, not just their coordinate values, so the final result
can be reported as indices into the caller's dataset (robust to
duplicate points). :class:`PointSet` packages the id vector and the
value matrix together and provides the dominance-filtering operations
the paper's algorithms are written in terms of.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

import numpy as np

from repro.core import dominance
from repro.errors import DataError


class PointSet:
    """Immutable-ish (ids, values) pair; all operations return copies."""

    __slots__ = ("ids", "values")

    def __init__(self, ids: np.ndarray, values: np.ndarray):
        ids = np.asarray(ids, dtype=np.int64).ravel()
        values = np.asarray(values, dtype=np.float64)
        if values.ndim != 2:
            raise DataError(f"values must be 2-D, got shape {values.shape}")
        if ids.shape[0] != values.shape[0]:
            raise DataError(
                f"ids/values length mismatch: {ids.shape[0]} vs {values.shape[0]}"
            )
        self.ids = ids
        self.values = values

    # -- constructors -------------------------------------------------

    @classmethod
    def empty(cls, dimensionality: int) -> "PointSet":
        return cls(np.empty(0, dtype=np.int64), np.empty((0, dimensionality)))

    @classmethod
    def from_array(cls, values: np.ndarray, start_id: int = 0) -> "PointSet":
        """Wrap an array, assigning sequential ids from ``start_id``."""
        values = np.asarray(values, dtype=np.float64)
        if values.ndim != 2:
            raise DataError(f"values must be 2-D, got shape {values.shape}")
        return cls(np.arange(start_id, start_id + values.shape[0]), values)

    @classmethod
    def concat(cls, parts) -> "PointSet":
        parts = [p for p in parts if p is not None]
        parts = [p for p in parts if len(p) > 0]
        if not parts:
            raise DataError("concat needs at least one non-empty PointSet")
        return cls(
            np.concatenate([p.ids for p in parts]),
            np.vstack([p.values for p in parts]),
        )

    # -- basics --------------------------------------------------------

    def __len__(self) -> int:
        return int(self.ids.shape[0])

    @property
    def dimensionality(self) -> int:
        return int(self.values.shape[1])

    def __iter__(self) -> Iterator[Tuple[int, np.ndarray]]:
        for i in range(len(self)):
            yield int(self.ids[i]), self.values[i]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PointSet(n={len(self)}, d={self.dimensionality})"

    def __eq__(self, other) -> bool:
        if not isinstance(other, PointSet):
            return NotImplemented
        return bool(
            np.array_equal(self.ids, other.ids)
            and np.array_equal(self.values, other.values)
        )

    def __hash__(self):  # PointSets are containers, not dict keys
        raise TypeError("PointSet is unhashable")

    def copy(self) -> "PointSet":
        return PointSet(self.ids.copy(), self.values.copy())

    def select(self, mask_or_index: np.ndarray) -> "PointSet":
        """Row subset by boolean mask or integer index array."""
        return PointSet(self.ids[mask_or_index], self.values[mask_or_index])

    def sort_by(self, key: np.ndarray) -> "PointSet":
        """Stable sort rows ascending by ``key``."""
        order = np.argsort(np.asarray(key), kind="stable")
        return self.select(order)

    def split_by(self, keys: np.ndarray):
        """Partition rows into per-key blocks.

        Returns ``[(key, PointSet), ...]`` with keys ascending and the
        original row order preserved within each block — one stable
        argsort over the whole set instead of a boolean scan per
        distinct key. This is the partition-aware block split the
        grid mappers and the block shuffle are built on.
        """
        keys = np.asarray(keys).ravel()
        if keys.shape[0] != len(self):
            raise DataError(
                f"keys/rows length mismatch: {keys.shape[0]} vs {len(self)}"
            )
        if keys.shape[0] == 0:
            return []
        order = np.argsort(keys, kind="stable")
        sorted_keys = keys[order]
        ids = self.ids[order]
        values = self.values[order]
        uniq, starts = np.unique(sorted_keys, return_index=True)
        bounds = np.append(starts, keys.shape[0])
        return [
            (
                uniq[i].item(),
                PointSet(ids[bounds[i]:bounds[i + 1]], values[bounds[i]:bounds[i + 1]]),
            )
            for i in range(uniq.shape[0])
        ]

    def id_set(self) -> set:
        return set(self.ids.tolist())

    # -- dominance operations -----------------------------------------

    def remove_dominated_by(
        self,
        other: "PointSet",
        counter: Optional[dominance.DominanceCounter] = None,
    ) -> "PointSet":
        """Drop rows of self dominated by any row of ``other``.

        This is the critical operation of the paper's Algorithm 5, line 3
        (``ComparePartitions``): "remove from Sp all those tuples that
        are dominated by tuples in Spi".
        """
        if len(self) == 0 or len(other) == 0:
            return self
        if counter is not None:
            counter.charge(len(other), len(self))
        mask = dominance.dominated_mask(self.values, other.values)
        if not mask.any():
            return self
        return self.select(~mask)

    def local_skyline(
        self, counter: Optional[dominance.DominanceCounter] = None
    ) -> "PointSet":
        """Skyline of this set alone (sort-filter, vectorised).

        Presorts by the monotone sum key so a tuple can only be dominated
        by tuples earlier in the order, then filters with a growing
        window (the vectorised equivalent of the paper's Algorithm 4
        ``InsertTuple`` loop). Stable sort keeps duplicate skyline points
        (which, per Definition 1, never dominate each other) all present.
        """
        n = len(self)
        if n <= 1:
            return self
        ordered = self.sort_by(dominance.entropy_key(self.values))
        vals = ordered.values
        d = self.dimensionality
        window = np.empty((n, d))
        keep = np.empty(n, dtype=np.int64)
        size = 0
        for i in range(n):
            v = vals[i]
            if size:
                if counter is not None:
                    counter.charge(size, 1)
                if dominance.point_dominated_by(v, window[:size]):
                    continue
            window[size] = v
            keep[size] = i
            size += 1
        return ordered.select(keep[:size])

    def merge_skyline(
        self,
        other: "PointSet",
        counter: Optional[dominance.DominanceCounter] = None,
    ) -> "PointSet":
        """Skyline of the union of two sets, exploiting that each side
        is already dominance-free internally (cross-filter only)."""
        if len(self) == 0:
            return other
        if len(other) == 0:
            return self
        mine = self.remove_dominated_by(other, counter)
        theirs = other.remove_dominated_by(self, counter)
        return PointSet.concat([mine, theirs])
