"""Sort-Filter-Skyline (SFS) [Chomicki, Godfrey, Gryz, Liang 2003].

Presort the data by a monotone scoring function, then filter with a
window. Because the score is monotone w.r.t. dominance, a tuple can only
be dominated by tuples *before* it in the order, so the window never
needs eviction — each survivor is final. Used by the MR-SFS baseline
and as the default vectorised local-skyline routine.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.core import dominance
from repro.errors import DataError


def sfs_skyline_indices(
    data: np.ndarray,
    counter: Optional[dominance.DominanceCounter] = None,
    key: Optional[Callable[[np.ndarray], np.ndarray]] = None,
) -> np.ndarray:
    """Indices (into ``data``) of the skyline via sort-filter.

    ``key`` maps the dataset to a 1-D monotone score (default: row sum,
    see :func:`repro.core.dominance.entropy_key`). Returned indices are
    ascending in that score.
    """
    data = np.asarray(data, dtype=np.float64)
    if data.ndim != 2:
        raise DataError(f"dataset must be 2-D, got shape {data.shape}")
    n, d = data.shape
    if n == 0:
        return np.empty(0, dtype=np.int64)
    scores = (key or dominance.entropy_key)(data)
    scores = np.asarray(scores, dtype=np.float64).ravel()
    if scores.shape[0] != n:
        raise DataError("sort key must produce one score per row")
    order = np.argsort(scores, kind="stable")
    window = np.empty((n, d))
    keep = np.empty(n, dtype=np.int64)
    size = 0
    for idx in order:
        v = data[idx]
        if size:
            if counter is not None:
                counter.charge(size, 1)
            if dominance.point_dominated_by(v, window[:size]):
                continue
        window[size] = v
        keep[size] = idx
        size += 1
    return keep[:size].copy()


def sfs_skyline(data: np.ndarray, **kwargs) -> np.ndarray:
    """Skyline rows (values, not indices) via sort-filter."""
    data = np.asarray(data, dtype=np.float64)
    return data[sfs_skyline_indices(data, **kwargs)]
