"""Tuple dominance (Definition 1 of the paper) — scalar and vectorised.

All functions assume min-is-better data (see :mod:`repro.core.order`).
A tuple ``a`` dominates ``b`` iff ``a`` is not worse on every dimension
and strictly better on at least one:

    a ≺ b  ⇔  (∀k: a[k] <= b[k]) ∧ (∃k: a[k] < b[k])

The vectorised helpers are the work-horses of every local-skyline
computation; they are chunked so the intermediate boolean tensors stay
bounded regardless of input size.
"""

from __future__ import annotations


import numpy as np

from repro.errors import DataError

#: Upper bound (in bool elements) for a single broadcasted comparison
#: tensor produced by the chunked helpers. 2**24 bools = 16 MiB.
_CHUNK_BUDGET = 1 << 24


def dominates(a, b) -> bool:
    """Return True iff tuple ``a`` dominates tuple ``b`` (a ≺ b)."""
    a = np.asarray(a, dtype=np.float64).ravel()
    b = np.asarray(b, dtype=np.float64).ravel()
    if a.shape != b.shape:
        raise DataError(f"dimensionality mismatch: {a.shape} vs {b.shape}")
    return bool(np.all(a <= b) and np.any(a < b))


def compare(a, b) -> int:
    """Three-way dominance compare.

    Returns ``-1`` if ``a ≺ b``, ``1`` if ``b ≺ a``, ``0`` if the two
    tuples are incomparable or equal.
    """
    if dominates(a, b):
        return -1
    if dominates(b, a):
        return 1
    return 0


def _row_chunks(n_rows: int, row_width: int) -> int:
    """Rows per chunk such that rows*width stays under the budget."""
    if n_rows == 0:
        return 1
    return max(1, _CHUNK_BUDGET // max(1, row_width))


def dominated_by_point(point: np.ndarray, block: np.ndarray) -> np.ndarray:
    """Boolean mask over ``block`` rows dominated by ``point``."""
    point = np.asarray(point, dtype=np.float64).ravel()
    block = np.asarray(block, dtype=np.float64)
    le = point <= block
    lt = point < block
    return le.all(axis=1) & lt.any(axis=1)


def point_dominated_by(point: np.ndarray, block: np.ndarray) -> bool:
    """True iff any row of ``block`` dominates ``point``."""
    point = np.asarray(point, dtype=np.float64).ravel()
    block = np.asarray(block, dtype=np.float64)
    if block.shape[0] == 0:
        return False
    le = block <= point
    lt = block < point
    return bool((le.all(axis=1) & lt.any(axis=1)).any())


def dominated_mask(candidates: np.ndarray, against: np.ndarray) -> np.ndarray:
    """Mask over ``candidates`` rows dominated by any row of ``against``.

    Memory-bounded: ``against`` is swept in chunks whose broadcasted
    comparison tensor stays under ``_CHUNK_BUDGET`` bools. Rows already
    known to be dominated are skipped in later chunks.
    """
    candidates = np.asarray(candidates, dtype=np.float64)
    against = np.asarray(against, dtype=np.float64)
    n = candidates.shape[0]
    mask = np.zeros(n, dtype=bool)
    if n == 0 or against.shape[0] == 0:
        return mask
    if candidates.shape[1] != against.shape[1]:
        raise DataError(
            f"dimensionality mismatch: {candidates.shape[1]} vs {against.shape[1]}"
        )
    d = candidates.shape[1]
    alive = np.arange(n)
    start = 0
    m = against.shape[0]
    while start < m and alive.size:
        # Re-derive the chunk step from the *surviving* candidate
        # count: as candidates are eliminated the broadcast tensor
        # shrinks, so later sweeps can take proportionally larger
        # bites of ``against`` under the same memory budget.
        step = _row_chunks(m - start, alive.size * d)
        blk = against[start : start + step]
        cand = candidates[alive]
        # (blk_rows, cand_rows, d) broadcast, reduced immediately.
        le = (blk[:, None, :] <= cand[None, :, :]).all(axis=2)
        lt = (blk[:, None, :] < cand[None, :, :]).any(axis=2)
        hit = (le & lt).any(axis=0)
        mask[alive[hit]] = True
        alive = alive[~hit]
        start += step
    return mask


def any_dominates(sources: np.ndarray, targets: np.ndarray) -> bool:
    """True iff any row of ``sources`` dominates any row of ``targets``."""
    return bool(dominated_mask(targets, sources).any())


def count_dominators(point: np.ndarray, block: np.ndarray) -> int:
    """Number of rows in ``block`` that dominate ``point``."""
    point = np.asarray(point, dtype=np.float64).ravel()
    block = np.asarray(block, dtype=np.float64)
    if block.shape[0] == 0:
        return 0
    le = block <= point
    lt = block < point
    return int((le.all(axis=1) & lt.any(axis=1)).sum())


def entropy_key(data: np.ndarray) -> np.ndarray:
    """Monotone sort key used by SFS-style presorting.

    The sum of coordinates is monotone w.r.t. dominance: if ``a ≺ b``
    then ``sum(a) < sum(b)``; therefore after an ascending sort no tuple
    can be dominated by a later one. (The classic SFS paper uses an
    entropy function ``sum(ln(1+v))``; any monotone score yields the
    same guarantee, and the plain sum is cheaper and does not require
    non-negative data.)
    """
    data = np.asarray(data, dtype=np.float64)
    return data.sum(axis=1)


def skyline_mask_bruteforce(data: np.ndarray) -> np.ndarray:
    """O(n^2) reference skyline mask. The oracle for all tests.

    Deliberately simple and independent from every optimised code path.
    """
    data = np.asarray(data, dtype=np.float64)
    n = data.shape[0]
    mask = np.ones(n, dtype=bool)
    for i in range(n):
        for j in range(n):
            if i != j and dominates(data[j], data[i]):
                mask[i] = False
                break
    return mask


def is_skyline_of(candidate: np.ndarray, data: np.ndarray) -> bool:
    """Check that ``candidate`` rows are exactly the skyline of ``data``.

    Set comparison on rows (duplicates collapsed); useful in tests and
    sanity assertions.
    """
    data = np.asarray(data, dtype=np.float64)
    candidate = np.asarray(candidate, dtype=np.float64)
    expected = data[skyline_mask_bruteforce(data)]
    expect_set = {tuple(r) for r in expected.tolist()}
    got_set = {tuple(r) for r in candidate.reshape(-1, data.shape[1]).tolist()}
    return expect_set == got_set


class DominanceCounter:
    """Counts tuple-level dominance work for instrumentation.

    The vectorised helpers perform many comparisons per call; callers
    that need Figure-11-style accounting wrap their calls and record the
    number of *pairwise tuple comparisons* each vectorised operation is
    equivalent to.
    """

    __slots__ = ("pairs", "calls")

    def __init__(self) -> None:
        self.pairs = 0
        self.calls = 0

    def charge(self, left_rows: int, right_rows: int) -> None:
        """Record a block comparison of ``left_rows`` x ``right_rows``."""
        self.pairs += int(left_rows) * int(right_rows)
        self.calls += 1

    def merge(self, other: "DominanceCounter") -> None:
        self.pairs += other.pairs
        self.calls += other.calls

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DominanceCounter(pairs={self.pairs}, calls={self.calls})"
