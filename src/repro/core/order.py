"""Per-dimension preference handling.

The paper (Section 1) assumes *smaller is better* on every dimension.
Real queries mix directions (minimise price, maximise rating), so the
public API accepts a preference per dimension and this module maps the
data onto the paper's convention by negating maximised dimensions.

All internal algorithms therefore only ever deal with min-is-better
float data produced by :func:`normalize`.
"""

from __future__ import annotations

import enum
from typing import Iterable, Sequence, Union

import numpy as np

from repro.errors import DataError, ValidationError


class Preference(enum.Enum):
    """Direction of preference for one dimension."""

    MIN = "min"
    MAX = "max"

    @classmethod
    def coerce(cls, value: Union["Preference", str]) -> "Preference":
        """Accept a :class:`Preference` or its string name ('min'/'max')."""
        if isinstance(value, cls):
            return value
        if isinstance(value, str):
            try:
                return cls(value.lower())
            except ValueError:
                raise ValidationError(
                    f"preference must be 'min' or 'max', got {value!r}"
                ) from None
        raise ValidationError(f"cannot interpret {value!r} as a preference")


PreferenceLike = Union[Preference, str]


def coerce_preferences(
    prefs: Union[None, PreferenceLike, Sequence[PreferenceLike]],
    dimensionality: int,
) -> tuple:
    """Expand ``prefs`` to one :class:`Preference` per dimension.

    ``None`` means all-MIN (the paper's convention); a single value is
    broadcast; a sequence must match the dimensionality.
    """
    if dimensionality <= 0:
        raise ValidationError(f"dimensionality must be positive, got {dimensionality}")
    if prefs is None:
        return (Preference.MIN,) * dimensionality
    if isinstance(prefs, (Preference, str)):
        return (Preference.coerce(prefs),) * dimensionality
    out = tuple(Preference.coerce(p) for p in prefs)
    if len(out) != dimensionality:
        raise ValidationError(
            f"got {len(out)} preferences for {dimensionality} dimensions"
        )
    return out


def as_dataset(data: object) -> np.ndarray:
    """Validate and convert ``data`` to a 2-D float64 array.

    Accepts anything :func:`numpy.asarray` understands. Rejects empty
    dimensionality, non-2-D shapes, NaNs and infinities: dominance is
    undefined for non-finite values.
    """
    arr = np.asarray(data, dtype=np.float64)
    if arr.ndim == 1:
        # A single tuple is promoted to a one-row dataset.
        arr = arr.reshape(1, -1)
    if arr.ndim != 2:
        raise DataError(f"dataset must be 2-D (rows x dims), got shape {arr.shape}")
    if arr.shape[1] == 0:
        raise DataError("dataset must have at least one dimension")
    if arr.size and not np.isfinite(arr).all():
        raise DataError("dataset contains NaN or infinite values")
    return arr


def normalize(data: object, prefs=None) -> np.ndarray:
    """Return a min-is-better copy of ``data``.

    Dimensions whose preference is MAX are negated, which preserves the
    dominance relation exactly (x better than y on a MAX dimension iff
    -x < -y).
    """
    arr = as_dataset(data)
    directions = coerce_preferences(prefs, arr.shape[1])
    if all(p is Preference.MIN for p in directions):
        return arr.copy()
    out = arr.copy()
    for k, pref in enumerate(directions):
        if pref is Preference.MAX:
            out[:, k] = -out[:, k]
    return out


def minmax_bounds(data: np.ndarray) -> tuple:
    """Per-dimension ``(lows, highs)`` of a dataset, as float64 arrays."""
    arr = as_dataset(data)
    if arr.shape[0] == 0:
        raise DataError("cannot compute bounds of an empty dataset")
    return arr.min(axis=0), arr.max(axis=0)


def iter_rows(data: np.ndarray) -> Iterable[tuple]:
    """Yield dataset rows as plain Python tuples (hashable, picklable)."""
    for row in as_dataset(data):
        yield tuple(row.tolist())
