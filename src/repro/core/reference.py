"""Reference (oracle) skyline implementations.

:func:`bruteforce_skyline_indices` is the O(n^2) ground truth every
algorithm in this repository is validated against. It must stay dumb:
no presorting, no pruning, no sharing with optimised code paths.
"""

from __future__ import annotations

import numpy as np

from repro.core.dominance import skyline_mask_bruteforce
from repro.errors import DataError


def bruteforce_skyline_indices(data: np.ndarray) -> np.ndarray:
    """Indices of all rows not dominated by any other row."""
    data = np.asarray(data, dtype=np.float64)
    if data.ndim != 2:
        raise DataError(f"dataset must be 2-D, got shape {data.shape}")
    return np.flatnonzero(skyline_mask_bruteforce(data)).astype(np.int64)


def bruteforce_skyline(data: np.ndarray) -> np.ndarray:
    """Skyline rows of ``data`` (values, not indices)."""
    data = np.asarray(data, dtype=np.float64)
    return data[bruteforce_skyline_indices(data)]
