"""Block-Nested-Loops (BNL) skyline [Börzsönyi, Kossmann, Stocker 2001].

This is the local skyline algorithm the paper builds on: Algorithm 4
(``InsertTuple``) is exactly BNL's window update — add a tuple unless a
window tuple dominates it, evicting window tuples it dominates.

Two implementations are provided:

* :func:`insert_tuple` / :class:`BNLWindow` — the paper's Algorithm 4,
  tuple-at-a-time, used where faithfulness matters (tests pin behaviour
  against the pseudo-code).
* :func:`bnl_skyline_indices` — a windowed pass suitable for datasets,
  with the window held as a NumPy block for vectorised checks.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.core import dominance
from repro.errors import DataError


def insert_tuple(t: Sequence[float], window: List) -> List:
    """The paper's Algorithm 4, verbatim over a Python list window.

    Adds tuple ``t`` to the local skyline ``window`` if no window member
    dominates it; removes window members that ``t`` dominates. Returns
    the (mutated) window, as the pseudo-code does.
    """
    t = tuple(float(v) for v in t)
    check = True
    survivors = []
    for existing in window:
        if check and dominance.dominates(existing, t):
            check = False
            survivors = None  # window unchanged from here on
            break
        if not dominance.dominates(t, existing):
            survivors.append(existing)
    if survivors is None:
        return window
    survivors.append(t)
    window[:] = survivors
    return window


class BNLWindow:
    """Incremental BNL window over (id, value) points.

    Backed by a geometrically grown NumPy block so the dominance checks
    per insert are vectorised. Semantics match :func:`insert_tuple`.
    """

    def __init__(self, dimensionality: int, capacity: int = 16):
        if dimensionality <= 0:
            raise DataError("dimensionality must be positive")
        self._d = dimensionality
        self._values = np.empty((max(capacity, 1), dimensionality))
        self._ids = np.empty(max(capacity, 1), dtype=np.int64)
        self._size = 0

    def __len__(self) -> int:
        return self._size

    @property
    def values(self) -> np.ndarray:
        return self._values[: self._size]

    @property
    def ids(self) -> np.ndarray:
        return self._ids[: self._size]

    def _grow(self) -> None:
        new_cap = max(2 * self._values.shape[0], 4)
        values = np.empty((new_cap, self._d))
        ids = np.empty(new_cap, dtype=np.int64)
        values[: self._size] = self._values[: self._size]
        ids[: self._size] = self._ids[: self._size]
        self._values, self._ids = values, ids

    def insert(
        self,
        point_id: int,
        value: np.ndarray,
        counter: Optional[dominance.DominanceCounter] = None,
    ) -> bool:
        """Offer a point; returns True iff it joined the window."""
        value = np.asarray(value, dtype=np.float64).ravel()
        if value.shape[0] != self._d:
            raise DataError(
                f"expected {self._d}-dimensional point, got {value.shape[0]}"
            )
        if self._size:
            win = self._values[: self._size]
            if counter is not None:
                counter.charge(self._size, 1)
            if dominance.point_dominated_by(value, win):
                return False
            evict = dominance.dominated_by_point(value, win)
            if evict.any():
                keep = ~evict
                kept = int(keep.sum())
                self._values[:kept] = win[keep]
                self._ids[:kept] = self._ids[: self._size][keep]
                self._size = kept
        if self._size == self._values.shape[0]:
            self._grow()
        self._values[self._size] = value
        self._ids[self._size] = point_id
        self._size += 1
        return True


def bnl_skyline_indices(
    data: np.ndarray, counter: Optional[dominance.DominanceCounter] = None
) -> np.ndarray:
    """Indices (into ``data``) of the skyline, by a single BNL pass.

    Unlike SFS this does not presort, so the window both rejects and
    evicts; results are identical, order of returned indices follows
    window order. For the faithful bounded-window multi-pass variant
    (Börzsönyi et al.'s actual algorithm, with overflow files) see
    :func:`bnl_multipass_skyline_indices`.
    """
    data = np.asarray(data, dtype=np.float64)
    if data.ndim != 2:
        raise DataError(f"dataset must be 2-D, got shape {data.shape}")
    window = BNLWindow(data.shape[1]) if data.shape[1] else None
    if data.shape[0] == 0:
        return np.empty(0, dtype=np.int64)
    for i in range(data.shape[0]):
        window.insert(i, data[i], counter)
    return window.ids.copy()


def bnl_multipass_skyline_indices(
    data: np.ndarray,
    window_size: int,
    counter: Optional[dominance.DominanceCounter] = None,
) -> np.ndarray:
    """Bounded-window BNL with overflow passes [Börzsönyi et al.].

    The original BNL keeps a memory-limited window; tuples that are
    incomparable to a full window are written to an overflow file and
    handled in later passes. A window tuple is *confirmed* (output as
    skyline) once it has been compared against every tuple read after
    it entered — i.e., at the end of a pass, iff it entered the window
    before the pass's first overflow write. Unconfirmed survivors stay
    in the window for the next pass (they have, by construction,
    already been compared with everything except the overflow, which is
    exactly the next pass's input).

    Terminates because every pass confirms (and removes) at least the
    pre-overflow window entries, freeing room: overflow strictly
    shrinks. Results are identical to the unbounded variant.
    """
    data = np.asarray(data, dtype=np.float64)
    if data.ndim != 2:
        raise DataError(f"dataset must be 2-D, got shape {data.shape}")
    if window_size < 1:
        raise DataError(f"window_size must be >= 1, got {window_size}")
    n = data.shape[0]
    if n == 0:
        return np.empty(0, dtype=np.int64)

    confirmed: List[int] = []
    todo = list(range(n))
    # window entries: (row_id, entered_at); entered_at = -1 means
    # "carried over from an earlier pass" (has met all prior input).
    window: List[tuple] = []
    passes = 0
    while todo:
        passes += 1
        if passes > n + 1:  # pragma: no cover - safety net
            raise RuntimeError("multi-pass BNL failed to terminate")
        overflow: List[int] = []
        first_overflow_at: Optional[int] = None
        for position, row_id in enumerate(todo):
            value = data[row_id]
            if window:
                if counter is not None:
                    counter.charge(len(window), 1)
                win_values = data[[w[0] for w in window]]
                if dominance.point_dominated_by(value, win_values):
                    continue
                evict = dominance.dominated_by_point(value, win_values)
                if evict.any():
                    window = [
                        w for w, dead in zip(window, evict) if not dead
                    ]
            if len(window) < window_size:
                window.append((row_id, position))
            else:
                if first_overflow_at is None:
                    first_overflow_at = position
                overflow.append(row_id)
        cutoff = (
            first_overflow_at
            if first_overflow_at is not None
            else len(todo)
        )
        survivors = []
        for row_id, entered_at in window:
            if entered_at < cutoff:
                confirmed.append(row_id)
            else:
                survivors.append((row_id, -1))
        window = survivors
        todo = overflow
    confirmed.extend(row_id for row_id, _at in window)
    return np.asarray(sorted(confirmed), dtype=np.int64)
