"""Core skyline machinery: dominance, point sets, local algorithms.

Everything in this package operates on min-is-better float data; the
public API boundary (:func:`repro.skyline`) normalises mixed MIN/MAX
preferences before reaching here.
"""

from repro.core.bitmap import BitmapIndex, bitmap_skyline_indices
from repro.core.bnl import (
    BNLWindow,
    bnl_multipass_skyline_indices,
    bnl_skyline_indices,
    insert_tuple,
)
from repro.core.dnc import dnc_skyline, dnc_skyline_indices
from repro.core.dominance import (
    DominanceCounter,
    compare,
    dominated_mask,
    dominates,
    entropy_key,
)
from repro.core.order import Preference, as_dataset, coerce_preferences, normalize
from repro.core.pointset import PointSet
from repro.core.reference import bruteforce_skyline, bruteforce_skyline_indices
from repro.core.sfs import sfs_skyline, sfs_skyline_indices

__all__ = [
    "BNLWindow",
    "BitmapIndex",
    "DominanceCounter",
    "PointSet",
    "Preference",
    "as_dataset",
    "bitmap_skyline_indices",
    "bnl_multipass_skyline_indices",
    "bnl_skyline_indices",
    "bruteforce_skyline",
    "bruteforce_skyline_indices",
    "coerce_preferences",
    "compare",
    "dnc_skyline",
    "dnc_skyline_indices",
    "dominated_mask",
    "dominates",
    "entropy_key",
    "insert_tuple",
    "normalize",
    "sfs_skyline",
    "sfs_skyline_indices",
]
