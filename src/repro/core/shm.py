"""Zero-copy shared-memory substrate for :class:`PointSet` blocks.

The process-pool engine used to pickle every split, cache payload, and
task output across the process boundary — for a columnar block that is
a full copy of two large arrays on each hop. This module puts block
storage in POSIX shared memory instead, so a block crosses a process
boundary as a ~100-byte :class:`BlockRef` descriptor (segment name,
offsets, shape) and every process maps the same physical pages.

Three pieces:

* :class:`BlockRef` — the picklable descriptor of one block inside a
  named segment (ids are always int64, values float64; offsets are
  8-byte aligned by construction).
* :class:`ShmBlock` — a :class:`PointSet` whose arrays are read-only
  views into a segment. It pickles as ``(attach_block, (ref,))``, so
  re-emitting an input block costs a descriptor, never a copy. Every
  derived operation (``select``, ``local_skyline``, ...) returns a
  plain owning :class:`PointSet`, so results never alias a segment
  that might be retired.
* :class:`SharedArena` — the owner of segment lifecycle. The creating
  process packs blocks into segments, workers attach on demand (by
  name — works identically under ``fork`` and ``spawn``), and only the
  arena ever unlinks. A ``weakref.finalize`` guarantees the names are
  released even if the owner crashes past the arena's creation (the
  finalizer also runs at interpreter exit).

Lifecycle rules (the ones the leak tests pin down):

* the **owner** (arena) unlinks its segments on :meth:`SharedArena.unlink`,
  on garbage collection, and at interpreter exit;
* **attachers** never unlink. On Python < 3.13 merely attaching
  re-registers the name with ``multiprocessing.resource_tracker`` —
  benign in this architecture, because attachers are always members of
  the owner's process family and share its tracker process, whose
  name cache has set semantics (3.13+ skips it via ``track=False``);
* unlinking while mappings are live is safe (POSIX keeps the pages
  until the last mapping closes), so parent-held views of a retired
  job's outputs stay valid while the name is already released — each
  :class:`ShmBlock` pins its segment handle, and the mapping closes
  only when the last block over it is garbage-collected.

Segment names are deterministic — ``repro-shm-<pid>-<seq>`` from a
process-local counter — so runs are reproducible and the checker's
no-unseeded-randomness rule holds; a name collision with a leftover
segment from a dead process is resolved by bumping the sequence.
"""

from __future__ import annotations

import threading
import weakref
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.pointset import PointSet
from repro.errors import ValidationError

#: Prefix of every segment this module creates (the leak tests scan
#: ``/dev/shm`` for it).
SEGMENT_PREFIX = "repro-shm-"

_ITEM = 8  # int64 / float64 element size; keeps offsets aligned


@dataclass(frozen=True)
class BlockRef:
    """Descriptor of one columnar block inside a shared segment."""

    segment: str
    ids_offset: int
    values_offset: int
    rows: int
    dims: int

    @property
    def nbytes(self) -> int:
        return self.rows * _ITEM + self.rows * self.dims * _ITEM


class ShmBlock(PointSet):
    """A PointSet whose arrays live in a shared-memory segment.

    Behaves exactly like :class:`PointSet` (all derived operations
    return plain owning PointSets); only identity pickling differs —
    the block crosses process boundaries as its :class:`BlockRef`.

    The block pins its segment handle (``_shm``): numpy does *not*
    keep the underlying mmap exported, so without the pin an eager
    ``close()`` elsewhere would silently unmap pages these arrays
    still point into.
    """

    __slots__ = ("ref", "_shm")

    def __init__(
        self,
        ids: np.ndarray,
        values: np.ndarray,
        ref: BlockRef,
        shm: Optional[shared_memory.SharedMemory] = None,
    ):
        super().__init__(ids, values)
        self.ref = ref
        self._shm = shm

    def __reduce__(self):
        return (attach_block, (self.ref,))


# -- segment registry (per process) ----------------------------------------

#: name -> open SharedMemory handle. Owners register at creation;
#: attachers populate on first use. One handle per segment per process.
_SEGMENTS: Dict[str, shared_memory.SharedMemory] = {}  # repro: guarded-by[_REGISTRY_LOCK]
_REGISTRY_LOCK = threading.Lock()
_SEQ = 0  # repro: guarded-by[_REGISTRY_LOCK]
#: Monotonic count of real segment attachments this process performed
#: (registry hits excluded). Attachment happens while descriptors are
#: *unpickled* — before any task body runs — so engines report it via
#: this counter's deltas rather than by snapshotting around a call.
_ATTACH_COUNT = 0  # repro: guarded-by[_REGISTRY_LOCK]


def _next_name() -> str:
    """Deterministic process-local segment name."""
    import os

    global _SEQ
    with _REGISTRY_LOCK:
        _SEQ += 1
        return f"{SEGMENT_PREFIX}{os.getpid()}-{_SEQ}"


def _register(shm: shared_memory.SharedMemory) -> None:
    with _REGISTRY_LOCK:
        _SEGMENTS[shm.name] = shm


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Open (or reuse) a mapping of ``name`` without taking ownership."""
    with _REGISTRY_LOCK:
        shm = _SEGMENTS.get(name)
    if shm is not None:
        return shm
    try:
        shm = shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python < 3.13: no track parameter
        # Attaching re-registers the name with the resource tracker.
        # That is harmless here: workers share the owner's tracker
        # process, whose cache is a *set* — the add is idempotent, and
        # the owner's eventual unlink() performs the one balancing
        # unregister. (Unregistering manually after attach would
        # instead remove the owner's registration from the shared set
        # and make that unlink a double-unregister.)
        shm = shared_memory.SharedMemory(name=name)
    global _ATTACH_COUNT
    with _REGISTRY_LOCK:
        _ATTACH_COUNT += 1
    _register(shm)
    return shm


def attach_count() -> int:
    """Total real attachments performed by this process so far."""
    with _REGISTRY_LOCK:
        return _ATTACH_COUNT


def _forget_segment(name: str) -> None:
    """Drop this process's registry entry for ``name``.

    Deliberately no eager ``close()``: numpy views built over the
    segment do not keep the mmap exported, so closing here would
    unmap pages still reachable through handed-out arrays (a silent
    segfault, not a BufferError). Every :class:`ShmBlock` pins its
    handle instead — the mapping closes when the last block (or
    nothing, if none are live) is garbage-collected.
    """
    with _REGISTRY_LOCK:
        _SEGMENTS.pop(name, None)


def attach_block(ref: BlockRef) -> ShmBlock:
    """Rebuild a block from its descriptor (the unpickle entry point)."""
    shm = _attach_segment(ref.segment)
    ids = np.ndarray(
        (ref.rows,), dtype=np.int64, buffer=shm.buf, offset=ref.ids_offset
    )
    values = np.ndarray(
        (ref.rows, ref.dims),
        dtype=np.float64,
        buffer=shm.buf,
        offset=ref.values_offset,
    )
    ids.flags.writeable = False
    values.flags.writeable = False
    return ShmBlock(ids, values, ref, shm)


def attached_segments() -> Tuple[str, ...]:
    """Names this process currently holds a mapping for (tests)."""
    with _REGISTRY_LOCK:
        return tuple(sorted(_SEGMENTS))


# -- the owning arena ------------------------------------------------------


def _unlink_names(names: List[str]) -> None:
    """Finalizer body: release every still-owned segment name."""
    for name in list(names):
        try:
            shared_memory.SharedMemory(name=name, track=False).unlink()
        except TypeError:
            try:
                shm = shared_memory.SharedMemory(name=name)
            except FileNotFoundError:
                continue
            # No manual unregister here: attaching registered the name
            # with the tracker and unlink() unregisters it — balanced.
            shm.unlink()
            try:
                shm.close()
            except BufferError:
                pass
        except FileNotFoundError:
            continue
    names.clear()


class SharedArena:
    """Creates, tracks, and (alone) unlinks shared segments.

    One arena per job is the intended granularity: the engine packs a
    job's splits and cache blocks into the arena, runs the job, and
    retires the arena when the *next* job starts or the engine shuts
    down — so returned outputs stay mapped while no name ever leaks.
    """

    def __init__(self):
        self._names: List[str] = []
        self._closed = False
        self.segments_created = 0
        self.blocks_shared = 0
        self.bytes_shared = 0
        # Runs on gc and at interpreter exit; detached once unlink()
        # has run explicitly.
        self._finalizer = weakref.finalize(self, _unlink_names, self._names)

    # -- creation -----------------------------------------------------

    def _create_segment(self, size: int) -> shared_memory.SharedMemory:
        while True:
            name = _next_name()
            try:
                shm = shared_memory.SharedMemory(
                    name=name, create=True, size=max(size, _ITEM)
                )
                break
            except FileExistsError:
                continue  # leftover from a dead pid: bump the sequence
        _register(shm)
        self._names.append(shm.name)
        self.segments_created += 1
        return shm

    def share_blocks(self, blocks: Sequence[PointSet]) -> List[ShmBlock]:
        """Pack blocks into ONE segment; returns shared equivalents.

        One segment per batch means workers open one shm handle per
        job, not one per split. Blocks that are already shared pass
        through untouched (no re-copy, no new segment).
        """
        if self._closed:
            raise ValidationError("arena is closed")
        todo = [
            (i, b)
            for i, b in enumerate(blocks)
            if not isinstance(b, ShmBlock)
        ]
        out: List[PointSet] = list(blocks)
        if not todo:
            return out
        total = sum(
            b.ids.nbytes + b.values.nbytes for _i, b in todo
        )
        shm = self._create_segment(total)
        offset = 0
        for i, block in todo:
            ids_nbytes = block.ids.nbytes
            values_nbytes = block.values.nbytes
            ref = BlockRef(
                segment=shm.name,
                ids_offset=offset,
                values_offset=offset + ids_nbytes,
                rows=len(block),
                dims=block.dimensionality,
            )
            ids = np.ndarray(
                (ref.rows,),
                dtype=np.int64,
                buffer=shm.buf,
                offset=ref.ids_offset,
            )
            values = np.ndarray(
                (ref.rows, ref.dims),
                dtype=np.float64,
                buffer=shm.buf,
                offset=ref.values_offset,
            )
            np.copyto(ids, block.ids)
            np.copyto(values, block.values)
            ids.flags.writeable = False
            values.flags.writeable = False
            out[i] = ShmBlock(ids, values, ref, shm)
            offset += ids_nbytes + values_nbytes
            self.blocks_shared += 1
            self.bytes_shared += ids_nbytes + values_nbytes
        return out

    def share_block(self, block: PointSet) -> ShmBlock:
        return self.share_blocks([block])[0]

    # -- lifecycle ----------------------------------------------------

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(self._names)

    @property
    def closed(self) -> bool:
        return self._closed

    def unlink(self) -> None:
        """Release every owned segment name (idempotent).

        Existing mappings — including views this process handed out —
        stay valid until their holders drop them; only the names (and
        thus the leak surface) disappear.
        """
        if self._closed:
            return
        self._closed = True
        names = list(self._names)
        self._finalizer.detach()
        for name in names:
            try:
                _segment_unlink(name)
            finally:
                _forget_segment(name)
        self._names.clear()


def _segment_unlink(name: str) -> None:
    with _REGISTRY_LOCK:
        shm = _SEGMENTS.get(name)
    if shm is None:
        _unlink_names([name])
        return
    try:
        shm.unlink()
    except FileNotFoundError:
        pass


# -- engine-facing promotion helpers ---------------------------------------


def promote_splits(splits: Iterable, arena: SharedArena) -> List:
    """Re-home the block payloads of input splits into the arena.

    Block splits come back as new ``BlockInputSplit``-alikes whose
    ``points`` is a :class:`ShmBlock`; record splits (no ``points``)
    pass through unchanged. Split ids and ordering are preserved, so
    task identity — and with it the fault plan's schedule — is
    untouched.
    """
    splits = list(splits)
    blocks = []
    where = []
    for i, split in enumerate(splits):
        points = getattr(split, "points", None)
        if isinstance(points, PointSet) and not isinstance(points, ShmBlock):
            where.append(i)
            blocks.append(points)
    if not where:
        return splits
    shared = arena.share_blocks(blocks)
    for pos, i in enumerate(where):
        split = splits[i]
        splits[i] = type(split)(split_id=split.split_id, points=shared[pos])
    return splits


def promote_cache(cache, arena: SharedArena):
    """Re-home PointSet cache payloads; other values ship as-is.

    Returns the original cache when nothing qualifies (preserving its
    memoized payload size). Sizing is unchanged either way — a
    :class:`ShmBlock` is a PointSet, so ``payload_size`` charges the
    same bytes and broadcast accounting stays byte-identical.
    """
    items = list(cache._data.items())
    todo = [
        (key, value)
        for key, value in items
        if isinstance(value, PointSet) and not isinstance(value, ShmBlock)
    ]
    if not todo:
        return cache
    shared = arena.share_blocks([value for _key, value in todo])
    replaced = dict(cache._data)
    for pos, (key, _value) in enumerate(todo):
        replaced[key] = shared[pos]
    return cache.replaced(replaced)


def live_segments() -> Tuple[str, ...]:
    """Segment names currently linked on this host (the leak probe).

    Reads ``/dev/shm`` where available (Linux); returns an empty tuple
    elsewhere, which keeps the leak tests vacuously green on platforms
    without an enumerable shm namespace.
    """
    import os

    try:
        entries = os.listdir("/dev/shm")
    except (FileNotFoundError, NotADirectoryError, PermissionError):
        return ()
    return tuple(
        sorted(e for e in entries if e.startswith(SEGMENT_PREFIX))
    )


def segment_exists(name: str) -> bool:
    """Whether ``name`` is still linked (attach-probe, then close)."""
    try:
        shm = shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        try:
            shm = shared_memory.SharedMemory(name=name)
        except FileNotFoundError:
            return False
        shm.close()
        return True
    except FileNotFoundError:
        return False
    shm.close()
    return True


def release_attachments(keep: Optional[Iterable[str]] = None) -> int:
    """Drop cached attachments not in ``keep`` (worker-side hygiene).

    Long-lived pool workers attach one segment per job; names are
    never reused, so stale handles would pile up. Engines pass the
    current job's segment names; everything else is closed (or left to
    die with its last live view if a BufferError says views remain).
    """
    keep_set = set(keep or ())
    with _REGISTRY_LOCK:
        stale = [name for name in _SEGMENTS if name not in keep_set]
    for name in stale:
        _forget_segment(name)
    return len(stale)
