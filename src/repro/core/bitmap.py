"""Bitmap skyline [Tan, Eng, Ooi 2001], for low-distinct-value domains.

Each dimension's values are rank-encoded; per-tuple dominance testing
becomes bit-slice algebra: a tuple ``t`` is dominated iff some other
tuple is less-or-equal on *every* dimension and strictly less on at
least one, i.e. the intersection of the LE slices meets the union of
the LT slices. The paper's MR-Bitmap baseline runs this per node; the
paper also notes (and our tests confirm) it only pays off when each
dimension has a limited number of distinct values.
"""

from __future__ import annotations


import numpy as np

from repro.errors import DataError


class BitmapIndex:
    """Rank-encoded bitmap index over a dataset (min-is-better)."""

    def __init__(self, data: np.ndarray):
        data = np.asarray(data, dtype=np.float64)
        if data.ndim != 2:
            raise DataError(f"dataset must be 2-D, got shape {data.shape}")
        self.data = data
        self.n, self.d = data.shape
        # ranks[k][i] = dense ascending rank of data[i, k] among the
        # distinct values of dimension k (0 = best).
        self.ranks = np.empty((self.d, self.n), dtype=np.int64)
        self.distinct_counts = np.empty(self.d, dtype=np.int64)
        for k in range(self.d):
            distinct, inverse = np.unique(data[:, k], return_inverse=True)
            self.ranks[k] = inverse
            self.distinct_counts[k] = distinct.shape[0]

    def le_slice(self, dim: int, rank: int) -> np.ndarray:
        """Bitmap of tuples with rank <= ``rank`` on ``dim``."""
        return self.ranks[dim] <= rank

    def lt_slice(self, dim: int, rank: int) -> np.ndarray:
        """Bitmap of tuples with rank < ``rank`` on ``dim``."""
        return self.ranks[dim] < rank

    def is_dominated(self, i: int) -> bool:
        """Bit-slice dominance test for tuple ``i``."""
        le = self.le_slice(0, self.ranks[0, i])
        lt = self.lt_slice(0, self.ranks[0, i])
        for k in range(1, self.d):
            le &= self.le_slice(k, self.ranks[k, i])
            lt |= self.lt_slice(k, self.ranks[k, i])
        return bool((le & lt).any())


def bitmap_skyline_indices(data: np.ndarray) -> np.ndarray:
    """Indices of the skyline of ``data`` via the bitmap algorithm."""
    data = np.asarray(data, dtype=np.float64)
    if data.ndim != 2:
        raise DataError(f"dataset must be 2-D, got shape {data.shape}")
    if data.shape[0] == 0:
        return np.empty(0, dtype=np.int64)
    index = BitmapIndex(data)
    keep = [i for i in range(index.n) if not index.is_dominated(i)]
    return np.asarray(keep, dtype=np.int64)


def distinct_value_counts(data: np.ndarray) -> np.ndarray:
    """Distinct values per dimension; MR-Bitmap viability check."""
    data = np.asarray(data, dtype=np.float64)
    if data.ndim != 2:
        raise DataError(f"dataset must be 2-D, got shape {data.shape}")
    return np.asarray(
        [np.unique(data[:, k]).shape[0] for k in range(data.shape[1])],
        dtype=np.int64,
    )
