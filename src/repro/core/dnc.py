"""Divide-and-Conquer skyline [Börzsönyi, Kossmann, Stocker 2001].

The other classic centralized algorithm from the paper that introduced
the skyline operator. Split the data at the median of one dimension,
recurse on both halves, then merge: a point from the upper half can
never dominate a point from the lower half on the split dimension, so
the merge only filters the upper-half skyline against the lower-half
skyline.

Included as a centralized reference ("dnc" in the registry) and as an
alternative local-skyline building block.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core import dominance
from repro.core.sfs import sfs_skyline_indices
from repro.errors import DataError, ValidationError

#: Below this many rows, fall back to the vectorised sort-filter pass.
DEFAULT_BLOCK_SIZE = 64


def dnc_skyline_indices(
    data: np.ndarray,
    block_size: int = DEFAULT_BLOCK_SIZE,
    counter: Optional[dominance.DominanceCounter] = None,
) -> np.ndarray:
    """Indices (into ``data``) of the skyline via divide & conquer."""
    data = np.asarray(data, dtype=np.float64)
    if data.ndim != 2:
        raise DataError(f"dataset must be 2-D, got shape {data.shape}")
    if block_size < 2:
        raise ValidationError(f"block_size must be >= 2, got {block_size}")
    if data.shape[0] == 0:
        return np.empty(0, dtype=np.int64)
    ids = np.arange(data.shape[0], dtype=np.int64)
    keep = _recurse(data, ids, 0, block_size, counter)
    return np.sort(keep)


def _recurse(
    data: np.ndarray,
    ids: np.ndarray,
    depth: int,
    block_size: int,
    counter: Optional[dominance.DominanceCounter],
) -> np.ndarray:
    rows = data[ids]
    if ids.shape[0] <= block_size:
        local = sfs_skyline_indices(rows, counter=counter)
        return ids[local]
    dim = depth % data.shape[1]
    order = np.argsort(rows[:, dim], kind="stable")
    half = ids.shape[0] // 2
    lower = ids[order[:half]]
    upper = ids[order[half:]]
    if np.all(rows[:, dim] == rows[0, dim]):
        # Degenerate split dimension: rotate to the next one; if the
        # block is constant on every dimension the recursion still
        # terminates because the halves strictly shrink.
        pass
    lower_sky = _recurse(data, lower, depth + 1, block_size, counter)
    upper_sky = _recurse(data, upper, depth + 1, block_size, counter)
    # Lower half cannot be dominated by the upper half on `dim` when the
    # split value is strict; with ties, cross-check is still safe
    # because we filter the upper side against the lower side and keep
    # the lower side intact only if no tie-crossing dominance exists.
    # To stay exactly correct under ties we filter both directions.
    if counter is not None:
        counter.charge(lower_sky.shape[0], upper_sky.shape[0])
    upper_mask = dominance.dominated_mask(data[upper_sky], data[lower_sky])
    upper_kept = upper_sky[~upper_mask]
    boundary_ties = data[lower_sky][:, dim].max() >= data[upper_kept][:, dim].min() if (
        lower_sky.size and upper_kept.size
    ) else False
    if boundary_ties:
        if counter is not None:
            counter.charge(upper_kept.shape[0], lower_sky.shape[0])
        lower_mask = dominance.dominated_mask(
            data[lower_sky], data[upper_kept]
        )
        lower_sky = lower_sky[~lower_mask]
    return np.concatenate([lower_sky, upper_kept])


def dnc_skyline(data: np.ndarray, **kwargs) -> np.ndarray:
    """Skyline rows (values, not indices) via divide & conquer."""
    data = np.asarray(data, dtype=np.float64)
    return data[dnc_skyline_indices(data, **kwargs)]
