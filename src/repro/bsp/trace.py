"""Superstep-structured schedule views: barriers made visible.

The plain Gantt (:mod:`repro.mapreduce.trace`) renders a job as map
wave, shuffle, reduce wave. Under the BSP engine the same execution
has extra structure — each round is two supersteps separated by global
barriers — and the whole point of the model is to *see* where peers
synchronise. This module rebuilds the simulated schedule with that
structure explicit:

* the communication phase renders on a ``comm`` track (``~`` cells,
  the shuffle's h-relation);
* each barrier renders on a ``barrier`` track with its own category
  and cell (``=``) — distinctly from shuffle waits — charged one
  ``task_overhead_s`` of synchronisation time per barrier, exactly the
  per-task coordination charge the cluster model already uses;
* reduce waves shift right by the intervening barrier, and each job's
  closing barrier separates it from the next round.

Both renderers consume the same spans: :func:`render_bsp_gantt` for
ASCII, :func:`bsp_schedule_spans` for the Chrome-trace ``simulated``
clock (``repro-skyline compute --engine bsp --trace-out``), so the two
views cannot drift apart.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.errors import ValidationError
from repro.mapreduce.cluster import SimulatedCluster
from repro.mapreduce.metrics import JobStats
from repro.mapreduce.trace import build_schedule
from repro.obs.spans import Span, render_span_rows


def bsp_job_spans(
    cluster: SimulatedCluster, stats: JobStats, offset: float = 0.0
) -> Tuple[List[Span], List[str], float]:
    """One job's superstep-structured spans.

    Returns ``(spans, track_order, makespan)`` where the makespan
    includes the two barrier charges. Task placement reuses
    :func:`~repro.mapreduce.trace.build_schedule`, so compute waves are
    identical to the plain Gantt; only the synchronisation structure is
    added.
    """
    schedule = build_schedule(cluster, stats)
    map_phase, comm_phase, reduce_phase = schedule.phases
    barrier_s = cluster.task_overhead_s
    spans: List[Span] = []
    tracks: List[str] = []
    for task in map_phase.tasks:
        track = f"map-slot-{task.slot}"
        if track not in tracks:
            tracks.append(track)
        spans.append(
            Span(
                name=task.name,
                track=track,
                start_s=offset + task.start_s,
                end_s=offset + task.end_s,
                outcome=task.outcome,
                args={
                    "job": stats.job_name,
                    "phase": "map",
                    "superstep": 0,
                },
            )
        )
    tracks.append("comm")
    spans.append(
        Span(
            name=f"{stats.job_name} h-relation",
            track="comm",
            start_s=offset + comm_phase.start_s,
            end_s=offset + comm_phase.end_s,
            category="shuffle",
            args={"job": stats.job_name, "superstep": 0},
        )
    )
    tracks.append("barrier")
    barrier0_end = comm_phase.end_s + barrier_s
    spans.append(
        Span(
            name=f"{stats.job_name} barrier 0",
            track="barrier",
            start_s=offset + comm_phase.end_s,
            end_s=offset + barrier0_end,
            category="barrier",
            args={"job": stats.job_name, "superstep": 0},
        )
    )
    shift = barrier_s  # reduce wave starts after the barrier clears
    for task in reduce_phase.tasks:
        track = f"reduce-slot-{task.slot}"
        if track not in tracks:
            tracks.append(track)
        spans.append(
            Span(
                name=task.name,
                track=track,
                start_s=offset + shift + task.start_s,
                end_s=offset + shift + task.end_s,
                outcome=task.outcome,
                args={
                    "job": stats.job_name,
                    "phase": "reduce",
                    "superstep": 1,
                },
            )
        )
    reduce_end = shift + reduce_phase.end_s
    spans.append(
        Span(
            name=f"{stats.job_name} barrier 1",
            track="barrier",
            start_s=offset + reduce_end,
            end_s=offset + reduce_end + barrier_s,
            category="barrier",
            args={"job": stats.job_name, "superstep": 1},
        )
    )
    return spans, tracks, reduce_end + barrier_s


def bsp_schedule_spans(
    cluster: SimulatedCluster, jobs: Sequence[JobStats]
) -> List[Span]:
    """Superstep spans of a whole pipeline, rounds back to back.

    The BSP twin of :func:`repro.mapreduce.trace.schedule_spans` — the
    ``"simulated"`` clock of a Chrome trace exported under
    ``--engine bsp``, with each round's barriers on their own track.
    """
    spans: List[Span] = []
    offset = 0.0
    for stats in jobs:
        job_spans, _tracks, makespan = bsp_job_spans(cluster, stats, offset)
        spans.extend(job_spans)
        offset += makespan
    return spans


def render_bsp_gantt(
    cluster: SimulatedCluster,
    jobs: Sequence[JobStats],
    width: int = 64,
    min_label: int = 14,
) -> str:
    """ASCII Gantt of a pipeline with superstep barriers visible.

    Cells: ``#`` compute, ``~`` the h-relation (communication), ``=``
    a barrier, ``x``/``+`` failed and speculative attempts — barriers
    render distinctly from shuffle waits by construction.
    """
    if width < 8:
        raise ValidationError(f"width must be >= 8, got {width}")
    parts: List[str] = []
    step = 0
    for stats in jobs:
        spans, tracks, makespan = bsp_job_spans(cluster, stats)
        if makespan <= 0:
            parts.append(f"{stats.job_name}: empty schedule")
            continue
        header = (
            f"{stats.job_name}: supersteps {step}-{step + 1}, "
            f"simulated makespan {makespan:.3f}s "
            f"(1 col = {makespan / width:.4f}s, barriers '=')"
        )
        rows = render_span_rows(
            spans, tracks, makespan, width, min_label=min_label
        )
        parts.append("\n".join([header] + rows))
        step += 2
    return "\n\n".join(parts)
