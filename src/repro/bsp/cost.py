"""First-class cost-model outputs of the BSP engine.

The paper's MR-GPSRS/MR-GPMRS designs are round-and-replication
tradeoffs: independent-group partitioning (Lemma 2, Figure 6) buys
fewer rounds at the price of replicated reducer input. Afrati et al.
("Upper and Lower Bounds on the Cost of a Map-Reduce Computation")
frame that frontier with two numbers:

* **replication rate** ``r`` — record copies delivered to reducers
  divided by distinct source records entering communication;
* **reducer input size** ``q`` — the largest input one reduce peer
  must hold (the memory bound).

The BSP engine measures both directly at its communication phases,
plus the BSP-native quantities — round count, superstep count, and the
per-superstep *h-relation* degree (max over peers of records/bytes
sent or received) — and accumulates them here. Everything is charged
on the engine's own counter bag (``mr.cost.*``), never into job stats,
which must stay byte-identical across engines.

Replication accounting counts logical records
(:func:`repro.mapreduce.sizes.payload_units`): a delivered
:class:`~repro.core.pointset.PointSet` contributes one copy per point,
and distinct sources are counted by point id, so a partition skyline
sent to three reducer groups counts three copies of one source.
Payloads without ids (plain keys/values) count each emission as its
own source — their replication contribution is exactly 1 — so
``replication_rate >= 1`` holds by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Set

from repro.core.pointset import PointSet
from repro.errors import ValidationError

#: Decimal places kept for derived rates in ``as_dict`` (matches the
#: run report's simulated-clock rounding).
_RATE_DECIMALS = 9


def gather_source_ids(value: Any, ids: Set[int]) -> int:
    """Collect the point ids inside ``value``; return the scalar count.

    The two halves of source-record accounting: ids land in ``ids``
    (deduplicated across every message a peer sends — the same
    partition skyline routed to three groups is one source per point),
    and payloads that carry no ids return how many id-less records they
    contain (each emission counts as its own source).
    """
    if isinstance(value, PointSet):
        ids.update(int(i) for i in value.ids.tolist())
        return 0
    if isinstance(value, (tuple, list, set, frozenset)):
        return sum(gather_source_ids(v, ids) for v in value)
    if isinstance(value, dict):
        return sum(gather_source_ids(v, ids) for v in value.values())
    return 1


def afrati_allpairs_bound(source_records: int, reducer_input: int) -> float:
    """Afrati et al.'s all-pairs lower bound ``r >= n / q``.

    The reference curve the cost-frontier bench charts measured
    replication against: for the all-pairs problem on ``n`` inputs with
    reducer memory ``q``, no MapReduce algorithm replicates less than
    ``n / q``. Skyline grouping is an easier communication problem, so
    measured curves sit *below* this bound; it anchors the axes.
    """
    if source_records < 0:
        raise ValidationError(
            f"source_records must be >= 0, got {source_records}"
        )
    if reducer_input <= 0:
        raise ValidationError(
            f"reducer_input must be > 0, got {reducer_input}"
        )
    return source_records / reducer_input


@dataclass(frozen=True)
class SuperstepCost:
    """Measured cost of one executed superstep.

    ``h_records``/``h_bytes`` are the h-relation degree: the maximum
    over peers of max(sent, received) in that superstep's communication
    phase (0 for supersteps that retain their output locally).
    """

    step: int  # global superstep index across the engine's lifetime
    job: str
    phase: str  # 'map' | 'reduce'
    peers: int
    delivered_records: int = 0
    delivered_bytes: int = 0
    h_records: int = 0
    h_bytes: int = 0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "step": self.step,
            "job": self.job,
            "phase": self.phase,
            "peers": self.peers,
            "delivered_records": self.delivered_records,
            "delivered_bytes": self.delivered_bytes,
            "h_records": self.h_records,
            "h_bytes": self.h_bytes,
        }


@dataclass
class CostReport:
    """Accumulated cost-model outputs of one BSP engine instance.

    One engine executes a whole pipeline (algorithms submit each round
    to ``engine.run``), so the report spans every round the instance
    has run: ``rounds`` is the pipeline's MapReduce round count and
    ``replication_rate`` the pipeline-wide Afrati rate.
    """

    rounds: int = 0
    barriers: int = 0
    source_records: int = 0
    delivered_records: int = 0
    delivered_bytes: int = 0
    max_reducer_input_records: int = 0
    max_reducer_input_bytes: int = 0
    supersteps: List[SuperstepCost] = field(default_factory=list)

    @property
    def num_supersteps(self) -> int:
        return len(self.supersteps)

    @property
    def replication_rate(self) -> float:
        """Delivered record copies per distinct source record (>= 1).

        An engine that has not communicated yet reports the identity
        rate 1.0 rather than dividing by zero.
        """
        if self.source_records <= 0:
            return 1.0
        return self.delivered_records / self.source_records

    def as_dict(self) -> Dict[str, Any]:
        """The run-report ``"cost"`` section (deterministic, JSON-safe)."""
        return {
            "rounds": self.rounds,
            "supersteps": self.num_supersteps,
            "barriers": self.barriers,
            "replication_rate": round(self.replication_rate, _RATE_DECIMALS),
            "source_records": self.source_records,
            "delivered_records": self.delivered_records,
            "delivered_bytes": self.delivered_bytes,
            "max_reducer_input_records": self.max_reducer_input_records,
            "max_reducer_input_bytes": self.max_reducer_input_bytes,
            "per_superstep": [step.as_dict() for step in self.supersteps],
        }

    def describe(self) -> str:
        return (
            f"{self.rounds} rounds / {self.num_supersteps} supersteps / "
            f"{self.barriers} barriers, replication "
            f"{self.replication_rate:.3f}x, max reducer input "
            f"{self.max_reducer_input_records} records"
        )
