"""``repro.bsp`` — the BSP superstep engine and its cost model.

A whole parallel execution model alongside MapReduce: unchanged job
and pipeline definitions compile onto Bulk Synchronous Parallel
superstep programs (local compute -> h-relation communication ->
barrier), execute with byte-identical results to every other engine,
and measure the rounds/replication cost frontier the paper's
independent-group designs trade along (Lemma 2 / Figure 6; Afrati et
al.'s replication-vs-reducer-input bound).

Public surface:

* :class:`~repro.bsp.engine.BSPEngine` — the fifth engine (a drop-in
  ``engine=`` argument, ``--engine bsp`` on the CLI);
* :class:`~repro.bsp.engine.ContractCheckingBSPEngine` — the same,
  under the full purity-contract certificate;
* :func:`~repro.bsp.superstep.compile_job` /
  :class:`~repro.bsp.superstep.Superstep` /
  :class:`~repro.bsp.superstep.BSPProgram` — the compiler;
* :class:`~repro.bsp.cost.CostReport` /
  :class:`~repro.bsp.cost.SuperstepCost` /
  :func:`~repro.bsp.cost.afrati_allpairs_bound` — the cost model;
* :func:`~repro.bsp.trace.render_bsp_gantt` /
  :func:`~repro.bsp.trace.bsp_schedule_spans` — barrier-aware views.
"""

from repro.bsp.cost import CostReport, SuperstepCost, afrati_allpairs_bound
from repro.bsp.engine import BSPEngine, ContractCheckingBSPEngine
from repro.bsp.superstep import (
    BSPProgram,
    Superstep,
    compile_job,
    compile_jobs,
)
from repro.bsp.trace import bsp_job_spans, bsp_schedule_spans, render_bsp_gantt

__all__ = [
    "BSPEngine",
    "ContractCheckingBSPEngine",
    "BSPProgram",
    "Superstep",
    "compile_job",
    "compile_jobs",
    "CostReport",
    "SuperstepCost",
    "afrati_allpairs_bound",
    "bsp_job_spans",
    "bsp_schedule_spans",
    "render_bsp_gantt",
]
