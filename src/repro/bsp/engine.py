"""The BSP superstep engine: the runtime's fifth execution backend.

:class:`BSPEngine` executes unchanged
:class:`~repro.mapreduce.job.MapReduceJob` definitions as BSP superstep
programs (:func:`repro.bsp.superstep.compile_job`): local compute on
one peer per split, an explicit h-relation communication phase that
realises the shuffle through the job's partitioner, a barrier, local
compute on one peer per reduce partition, and the closing barrier.

Execution is semantics-preserving *by construction*: per-task work
runs through the same ``_map_task`` / ``_reduce_task`` drivers as
:class:`~repro.mapreduce.engine.SerialEngine` (so retry, fault
injection, speculation, and the telemetry stream are inherited
verbatim), and the communication phase routes records with the same
validated :func:`~repro.mapreduce.engine.partition_index` probe in the
same mapper-major order as ``shuffle_outputs`` — skylines, job
counters, shuffle bytes, and attempt histories are byte-identical to
every other engine.

What the model *adds* is measurement: each communication phase charges
the rounds/replication cost frontier — replication rate, round count,
max-reducer-input, per-superstep h-relation volume — onto the
engine-local :class:`~repro.bsp.cost.CostReport` and ``cost_counters``
bag (documented ``mr.cost.*`` names). Like the process-pool engine's
``shm_counters``, these never touch job stats, which must stay
byte-identical across engines.
"""

from __future__ import annotations

from typing import Any, List, Optional

from repro.bsp.cost import CostReport, SuperstepCost, gather_source_ids
from repro.bsp.superstep import BSPProgram, Superstep, compile_job
from repro.check.contracts import ContractCheckingEngine
from repro.mapreduce import counters as counter_names
from repro.mapreduce.counters import Counters, cost_counter
from repro.mapreduce.engine import SerialEngine, partition_index
from repro.mapreduce.job import JobResult, MapReduceJob
from repro.mapreduce.metrics import JobStats
from repro.mapreduce.sizes import payload_size, payload_units
from repro.mapreduce.types import KeyValue


class BSPEngine(SerialEngine):
    """Run jobs as compiled superstep programs with cost accounting.

    Constructor arguments are inherited from
    :class:`~repro.mapreduce.engine.SerialEngine`
    (retry/faults/speculation/bus/block_path). ``cost`` and
    ``cost_counters`` accumulate across every ``run`` call on the
    instance — algorithms submit one job per round, so after a pipeline
    the report covers the whole chain; ``reset_cost()`` rewinds the
    accounting for reuse across measurements.
    """

    def __init__(self, **kwargs: Any):
        super().__init__(**kwargs)
        self.cost = CostReport()
        self.cost_counters = Counters()
        self.last_program: Optional[BSPProgram] = None

    def reset_cost(self) -> None:
        self.cost = CostReport()
        self.cost_counters = Counters()

    # -- superstep phases ----------------------------------------------

    def _exchange(
        self, job, map_outputs: List[List[KeyValue]], step: Superstep
    ) -> List[List[KeyValue]]:
        """The h-relation: route every record, measure the frontier.

        Routing is bucket-for-bucket identical to ``shuffle_outputs``
        (same partitioner probe, same mapper-major append order); the
        cost model rides along on the same pass.
        """
        n = job.num_reducers
        buckets: List[List[KeyValue]] = [[] for _ in range(n)]
        sent_records = [0] * max(1, len(map_outputs))
        sent_bytes = [0] * max(1, len(map_outputs))
        received_records = [0] * n
        received_bytes = [0] * n
        source_records = 0
        for peer, output in enumerate(map_outputs):
            peer_ids: set = set()
            scalar_sources = 0
            for key, value in output:
                dest = partition_index(job, key, n)
                units = payload_units(value)
                size = payload_size(key) + payload_size(value)
                sent_records[peer] += units
                sent_bytes[peer] += size
                received_records[dest] += units
                received_bytes[dest] += size
                scalar_sources += gather_source_ids(value, peer_ids)
                buckets[dest].append((key, value))
            source_records += len(peer_ids) + scalar_sources
        self._account_exchange(
            step,
            source_records=source_records,
            sent_records=sent_records,
            sent_bytes=sent_bytes,
            received_records=received_records,
            received_bytes=received_bytes,
        )
        return buckets

    def _account_exchange(
        self,
        step: Superstep,
        source_records: int,
        sent_records: List[int],
        sent_bytes: List[int],
        received_records: List[int],
        received_bytes: List[int],
    ) -> None:
        index = self.cost.num_supersteps
        delivered = sum(received_records)
        delivered_bytes = sum(received_bytes)
        h_records = max(
            max(sent_records, default=0), max(received_records, default=0)
        )
        h_bytes = max(
            max(sent_bytes, default=0), max(received_bytes, default=0)
        )
        self.cost.supersteps.append(
            SuperstepCost(
                step=index,
                job=step.job_name,
                phase=step.phase,
                peers=step.num_peers,
                delivered_records=delivered,
                delivered_bytes=delivered_bytes,
                h_records=h_records,
                h_bytes=h_bytes,
            )
        )
        self.cost.source_records += source_records
        self.cost.delivered_records += delivered
        self.cost.delivered_bytes += delivered_bytes
        self.cost_counters.inc(counter_names.COST_SUPERSTEPS)
        if source_records:
            self.cost_counters.inc(
                counter_names.COST_SOURCE_RECORDS, source_records
            )
        if delivered:
            self.cost_counters.inc(
                counter_names.COST_DELIVERED_RECORDS, delivered
            )
        if delivered_bytes:
            self.cost_counters.inc(
                counter_names.COST_DELIVERED_BYTES, delivered_bytes
            )
        if h_records:
            self.cost_counters.inc(cost_counter(index, "h_records"), h_records)
        if h_bytes:
            self.cost_counters.inc(cost_counter(index, "h_bytes"), h_bytes)
        # Reducer-input high-water mark: the memory bound q. Charged by
        # delta so the counter stays monotone while tracking a maximum.
        peak = max(received_records, default=0)
        if peak > self.cost.max_reducer_input_records:
            self.cost_counters.inc(
                counter_names.COST_MAX_REDUCER_INPUT,
                peak - self.cost.max_reducer_input_records,
            )
            self.cost.max_reducer_input_records = peak
        peak_bytes = max(received_bytes, default=0)
        if peak_bytes > self.cost.max_reducer_input_bytes:
            self.cost.max_reducer_input_bytes = peak_bytes

    def _account_local_step(self, step: Superstep) -> None:
        """A superstep whose output stays local (no h-relation)."""
        self.cost.supersteps.append(
            SuperstepCost(
                step=self.cost.num_supersteps,
                job=step.job_name,
                phase=step.phase,
                peers=step.num_peers,
            )
        )
        self.cost_counters.inc(counter_names.COST_SUPERSTEPS)

    def _barrier(self) -> None:
        self.cost.barriers += 1
        self.cost_counters.inc(counter_names.COST_BARRIERS)

    # -- the engine ----------------------------------------------------

    def run(self, job: MapReduceJob) -> JobResult:
        program = compile_job(job)
        self.last_program = program
        map_step, reduce_step = program.supersteps
        stats = JobStats(job_name=job.name)
        stats.broadcast_bytes = job.cache.payload_bytes()
        self._emit_job_start(job)

        # Superstep 2k: map peers compute, then communicate (shuffle).
        map_results = [self._map_task(job, split) for split in job.splits]
        map_outputs = self._collect_maps(stats, map_results)
        buckets = self._exchange(job, map_outputs, map_step)
        self._emit_shuffle(job, buckets)
        self._barrier()

        # Superstep 2k+1: reduce peers compute; output stays local.
        reduce_results = [
            self._reduce_task(job, r, buckets[r])
            for r in range(job.num_reducers)
        ]
        reducer_outputs = self._collect_reduces(stats, reduce_results)
        self._account_local_step(reduce_step)
        self._barrier()

        self._emit_job_end(stats)
        self.cost.rounds += 1
        self.cost_counters.inc(counter_names.COST_ROUNDS)
        return JobResult(
            job_name=job.name, reducer_outputs=reducer_outputs, stats=stats
        )


class ContractCheckingBSPEngine(ContractCheckingEngine, BSPEngine):
    """BSP execution under the full purity-contract certificate.

    Cooperative MRO does all the work:
    :class:`~repro.check.contracts.ContractCheckingEngine` wraps
    ``run``/``_map_task``/``_reduce_task`` and delegates via ``super()``
    — which here is :class:`BSPEngine` — so every superstep runs with
    input fingerprinting, emission validation, and the
    order-insensitivity shadow reduce, while the cost frontier is
    measured exactly as on the plain BSP engine.
    """
