"""The BSP ``Superstep`` abstraction and the job -> superstep compiler.

Valiant's Bulk Synchronous Parallel model structures a computation as a
sequence of *supersteps*: every peer performs local computation, then
exchanges messages (an *h-relation*, h being the maximum per-peer
communication degree), then waits at a global barrier. Pace ("BSP vs
MapReduce") shows a MapReduce job is exactly two supersteps:

* **map superstep** — one peer per input split runs the mapper (and
  combiner); its communication phase realises the shuffle, routing
  every emitted record through the job's partitioner;
* **reduce superstep** — one peer per reduce partition runs the
  reducer over its inbox; no outgoing communication (reduce output is
  the job's result), followed by the final barrier.

:func:`compile_job` lowers an *unchanged*
:class:`~repro.mapreduce.job.MapReduceJob` onto this program — no
algorithm rewrites, no new job type. Pipelines (the paper's two-job
chains) compile incrementally: each stage of a
:class:`~repro.mapreduce.pipeline.JobChain` is a lazy callable, so the
engine compiles the produced job at submission time and the chain
becomes ``2 * rounds`` supersteps; :func:`compile_jobs` compiles any
already-materialised sequence in one call.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.errors import ValidationError

#: The two phases a MapReduce round lowers onto.
SUPERSTEP_PHASES = ("map", "reduce")


@dataclass(frozen=True)
class Superstep:
    """One BSP superstep: local compute, then communication, barrier.

    ``communicates`` distinguishes the map superstep (its communication
    phase is the shuffle h-relation) from the reduce superstep (output
    is retained locally; the barrier alone separates it from the next
    round).
    """

    index: int
    job_name: str
    phase: str  # 'map' | 'reduce'
    num_peers: int
    communicates: bool

    def __post_init__(self):
        if self.phase not in SUPERSTEP_PHASES:
            raise ValidationError(
                f"superstep phase must be one of {SUPERSTEP_PHASES}, "
                f"got {self.phase!r}"
            )
        if self.num_peers < 1:
            raise ValidationError(
                f"superstep needs >= 1 peer, got {self.num_peers}"
            )

    def describe(self) -> str:
        comm = "h-relation + barrier" if self.communicates else "barrier"
        return (
            f"superstep {self.index} [{self.job_name}/{self.phase}]: "
            f"{self.num_peers} peers, {comm}"
        )


@dataclass(frozen=True)
class BSPProgram:
    """The superstep program of one MapReduce round (one job)."""

    job_name: str
    supersteps: Tuple[Superstep, ...]

    @property
    def num_supersteps(self) -> int:
        return len(self.supersteps)

    @property
    def num_barriers(self) -> int:
        return len(self.supersteps)

    def describe(self) -> str:
        lines = [f"program {self.job_name}: {self.num_supersteps} supersteps"]
        lines.extend(f"  {step.describe()}" for step in self.supersteps)
        return "\n".join(lines)


def compile_job(job) -> BSPProgram:
    """Lower one unchanged MapReduce job onto its superstep program.

    The mapping is fixed — map superstep, reduce superstep — because a
    MapReduce job *is* that program; what varies is the peer counts and
    the h-relation the communication phase realises, which the engine
    measures at run time (:class:`repro.bsp.cost.CostReport`).
    """
    job.validate()
    map_step = Superstep(
        index=0,
        job_name=job.name,
        phase="map",
        num_peers=len(job.splits),
        communicates=True,
    )
    reduce_step = Superstep(
        index=1,
        job_name=job.name,
        phase="reduce",
        num_peers=job.num_reducers,
        communicates=False,
    )
    return BSPProgram(job_name=job.name, supersteps=(map_step, reduce_step))


def compile_jobs(jobs: Sequence) -> List[BSPProgram]:
    """Compile a materialised job sequence (a pipeline's rounds)."""
    return [compile_job(job) for job in jobs]
