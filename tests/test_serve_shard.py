"""Exactness and capacity tests for the sharded serving fleet.

The load-bearing claim: a :class:`ShardedSkylineIndex` (and the
process-backed :class:`SkylineFleet`) answers **byte-identically** to a
single :class:`SkylineIndex` fed the same deltas, for every shard
count — sharding may only change capacity, never answers. Each oracle
below replays a seeded mutation stream against both and compares ids
and values exactly at every step.
"""

import numpy as np
import pytest

from repro.core.shm import live_segments
from repro.errors import ValidationError
from repro.mapreduce.counters import (
    Counters,
    SERVE_SHARD_BATCHED_OPS,
    SERVE_SHARD_DELTA_BATCHES,
    SERVE_SHARD_QUERIES_FANNED,
    SERVE_SHARD_REPLICATED_POINTS,
    SERVE_SHARD_RESHARDS,
)
from repro.obs.events import EventBus, EventLog
from repro.serve.fleet import SkylineFleet
from repro.serve.frontend import QueryFrontend
from repro.serve.index import SkylineIndex
from repro.serve.shard import (
    ShardedFrontend,
    ShardedSkylineIndex,
    UncoveredCellError,
    plan_shards,
)
from repro.serve.workloads import run_workload


def _data(n=120, d=3, seed=0):
    return np.random.default_rng(seed).random((n, d))


def _assert_same(a, b, context=""):
    assert np.array_equal(a.ids, b.ids), context
    assert np.array_equal(a.values, b.values), context


class TestPlanShards:
    def test_plans_requested_shard_count(self):
        plan = plan_shards(_data(200), 4)
        assert plan.num_shards == 4
        assert len(plan.groups) >= 4

    def test_every_occupied_cell_routes(self):
        data = _data(150)
        plan = plan_shards(data, 3)
        for cell in np.unique(plan.grid.cell_indices(data)):
            shards, owner = plan.route_cell(int(cell))
            assert owner in shards
            assert shards == tuple(sorted(set(shards)))

    def test_coverage_is_downward_closed(self):
        # If a cell routes to shard set S, every cell it anti-dominates
        # (coords <= its coords) routes to a superset of S.
        data = _data(100, d=2)
        plan = plan_shards(data, 3)
        cells = [int(c) for c in np.unique(plan.grid.cell_indices(data))]
        coords = plan.coords
        for c in cells[:10]:
            shards_c, _ = plan.route_cell(c)
            for other in cells:
                if (coords[other] <= coords[c]).all():
                    shards_o, _ = plan.route_cell(other)
                    assert set(shards_c) <= set(shards_o)

    def test_single_shard_plan_covers_everything(self):
        plan = plan_shards(_data(50), 1)
        assert plan.num_shards == 1


class TestShardedIndexExactness:
    @pytest.mark.parametrize("shards", [1, 2, 3, 4])
    def test_initial_skyline_matches_single_index(self, shards):
        data = _data(140)
        single = SkylineIndex(data.copy())
        sharded = ShardedSkylineIndex(data.copy(), num_shards=shards)
        _assert_same(single.skyline(), sharded.skyline())

    def test_mutation_stream_oracle(self):
        rng = np.random.default_rng(42)
        data = rng.random((100, 3))
        twin = SkylineIndex(data.copy())
        sharded = ShardedSkylineIndex(data.copy(), num_shards=3)
        live = list(range(100))
        next_id = 100
        for step in range(60):
            draw = rng.random()
            if draw < 0.45 or len(live) < 5:
                point = rng.random(3)
                twin.insert(point, next_id)
                sharded.insert(point, next_id)
                live.append(next_id)
                next_id += 1
            elif draw < 0.8:
                victim = live.pop(int(rng.integers(len(live))))
                twin.delete(victim)
                sharded.delete(victim)
            else:
                ops = [
                    ("insert", rng.random(3), next_id),
                    ("delete", live.pop(0)),
                ]
                live.append(next_id)
                next_id += 1
                twin.apply_delta_batch(ops)
                sharded.apply_delta_batch(ops)
            _assert_same(twin.skyline(), sharded.skyline(), f"step {step}")
        _assert_same(twin.snapshot(), sharded.snapshot())

    def test_batch_bumps_epoch_once_and_reports_per_shard_pairs(self):
        data = _data(90)
        sharded = ShardedSkylineIndex(data, num_shards=3)
        before = sharded.epoch
        # Re-inserting existing coordinates keeps every op inside the
        # fitted coverage (the uncovered path is tested separately).
        pairs = sharded.apply_delta_batch(
            [
                ("insert", data[0], 500),
                ("insert", data[1], 501),
                ("delete", 500),
            ]
        )
        assert sharded.epoch == before + 1
        assert pairs == sharded.last_shard_pairs
        assert all(
            shard_id in range(sharded.num_shards) and count >= 0
            for shard_id, count in pairs.items()
        )
        assert sharded.counters.get(SERVE_SHARD_DELTA_BATCHES) == 1
        assert sharded.counters.get(SERVE_SHARD_BATCHED_OPS) == 3

    def test_out_of_bounds_insert_reshards_and_stays_exact(self):
        data = _data(80)
        twin = SkylineIndex(data.copy())
        sharded = ShardedSkylineIndex(data.copy(), num_shards=3)
        outside = np.array([1.7, 1.7, 1.7])  # past every fitted seed
        twin.insert(outside, 400)
        sharded.insert(outside, 400)
        assert sharded.counters.get(SERVE_SHARD_RESHARDS) == 1
        _assert_same(twin.skyline(), sharded.skyline())
        # And the rebuilt fleet keeps serving deltas exactly.
        twin.delete(400)
        sharded.delete(400)
        _assert_same(twin.skyline(), sharded.skyline())

    def test_region_queries_match_single_index(self):
        data = _data(130)
        single = SkylineIndex(data.copy())
        sharded = ShardedSkylineIndex(data.copy(), num_shards=4)
        region = ((0.0, 0.0, 0.0), (0.5, 0.6, 0.7))
        _assert_same(single.query(region), sharded.query(region))

    def test_replication_and_fanout_are_counted(self):
        sharded = ShardedSkylineIndex(_data(100), num_shards=4)
        sharded.skyline()
        assert sharded.counters.get(SERVE_SHARD_QUERIES_FANNED) >= 4
        assert sharded.counters.get(SERVE_SHARD_REPLICATED_POINTS) >= 0
        assert sum(len(s) for s in sharded.shards) == 100 + sharded.counters.get(
            SERVE_SHARD_REPLICATED_POINTS
        )

    def test_rejects_empty_data_and_bad_shard_count(self):
        with pytest.raises(ValidationError):
            ShardedSkylineIndex(np.empty((0, 2)), num_shards=2)
        with pytest.raises(ValidationError):
            ShardedSkylineIndex(_data(20), num_shards=0)

    def test_emits_delta_batch_event_with_shard_fields(self):
        bus = EventBus()
        log = bus.subscribe(EventLog())
        data = _data(60)
        sharded = ShardedSkylineIndex(data, num_shards=2, bus=bus)
        sharded.apply_delta_batch(
            [("insert", data[0], 300), ("delete", 300)]
        )
        events = log.of_kind("serve_delta_batch")
        assert events
        last = events[-1]
        assert last.ops == 2
        assert last.shards_touched >= 1
        assert last.max_shard_pairs >= 0


class TestShardedFrontend:
    def test_batching_coalesces_mutations(self):
        index = ShardedSkylineIndex(_data(80), num_shards=2)
        frontend = ShardedFrontend(
            index, batch_window_s=1.0, max_batch=64
        )
        t = 0.0
        for i in range(10):
            t += 0.001
            frontend.apply_insert(t, np.full(3, 0.5), 200 + i)
        frontend.flush()
        # Ten mutations landed inside one window: one repair pass.
        assert index.counters.get(SERVE_SHARD_DELTA_BATCHES) == 1
        assert index.counters.get(SERVE_SHARD_BATCHED_OPS) == 10

    def test_query_flushes_pending_batch(self):
        index = ShardedSkylineIndex(_data(80), num_shards=2)
        frontend = ShardedFrontend(index, batch_window_s=10.0)
        frontend.apply_insert(0.001, np.full(3, 1e-4), 999)
        frontend.submit_query(0.002)
        responses = frontend.flush()
        served = [r for r in responses if r.status == "ok"]
        assert served
        # The query observed the insert that arrived before it.
        assert 999 in served[0].result.ids.tolist()

    def test_final_state_matches_plain_frontend(self):
        rng = np.random.default_rng(9)
        data = rng.random((100, 3))
        plain = QueryFrontend(SkylineIndex(data.copy()))
        sharded = ShardedFrontend(
            ShardedSkylineIndex(data.copy(), num_shards=3)
        )
        t = 0.0
        next_id = 100
        live = list(range(100))
        for _ in range(80):
            t += float(rng.random()) * 0.002
            draw = rng.random()
            if draw < 0.4:
                point = rng.random(3)
                plain.apply_insert(t, point, next_id)
                sharded.apply_insert(t, point, next_id)
                live.append(next_id)
                next_id += 1
            elif draw < 0.6 and len(live) > 10:
                victim = live.pop(int(rng.integers(len(live))))
                plain.apply_delete(t, victim)
                sharded.apply_delete(t, victim)
            else:
                plain.submit_query(t)
                sharded.submit_query(t)
        plain.flush()
        sharded.flush()
        _assert_same(plain.index.skyline(), sharded.index.skyline())

    def test_workload_capacity_does_not_degrade_with_shards(self):
        # The bench sweeps 1..4 with a monotonic gate; the test pins the
        # cheap endpoint comparison on a write-heavy stream.
        one, _ = run_workload("write-heavy", seed=3, shards=1, scale=0.5)
        four, _ = run_workload("write-heavy", seed=3, shards=4, scale=0.5)
        assert four["queries_served"] >= one["queries_served"]
        assert four["shards"] == 4

    def test_workload_sharded_results_match_unsharded(self):
        base, plain_fe = run_workload("write-heavy", seed=5, scale=0.5)
        sharded, shard_fe = run_workload(
            "write-heavy", seed=5, shards=3, scale=0.5
        )
        _assert_same(plain_fe.index.skyline(), shard_fe.index.skyline())
        assert sharded["final_skyline_size"] == base["final_skyline_size"]


class TestSkylineFleet:
    @pytest.mark.parametrize("start_method", ["fork", "spawn"])
    def test_fleet_matches_single_index_and_frees_segments(
        self, start_method
    ):
        rng = np.random.default_rng(17)
        data = rng.random((90, 3))
        twin = SkylineIndex(data.copy())
        with SkylineFleet(
            data.copy(), num_shards=3, start_method=start_method
        ) as fleet:
            _assert_same(twin.skyline(), fleet.skyline())
            next_id = 90
            for step in range(8):
                point = rng.random(3)
                twin.insert(point, next_id)
                fleet.insert(point, next_id)
                next_id += 1
                if step % 3 == 2:
                    ops = [("insert", rng.random(3), next_id)]
                    next_id += 1
                    twin.apply_delta_batch(ops)
                    fleet.apply_delta_batch(ops)
                _assert_same(
                    twin.skyline(), fleet.skyline(), f"step {step}"
                )
            twin.delete(0)
            fleet.delete(0)
            _assert_same(twin.skyline(), fleet.skyline())
        assert live_segments() == ()

    def test_uncovered_insert_raises(self):
        with SkylineFleet(_data(40), num_shards=2) as fleet:
            with pytest.raises(UncoveredCellError):
                fleet.insert(np.array([2.5, 2.5, 2.5]))

    def test_stop_is_idempotent(self):
        fleet = SkylineFleet(_data(30), num_shards=2)
        fleet.stop()
        fleet.stop()
        assert live_segments() == ()


class TestFleetReshardAndTracing:
    """Opt-in resharding and the cross-process span-record path."""

    def test_reshard_absorbs_uncovered_insert_and_stays_exact(self):
        data = _data(40)
        twin = SkylineIndex(data.copy())
        bus = EventBus()
        log = bus.subscribe(EventLog())
        counters = Counters()
        outlier = np.array([2.5, 2.5, 2.5])
        with SkylineFleet(
            data.copy(), num_shards=2, reshard=True, bus=bus,
            counters=counters,
        ) as fleet:
            pid = fleet.insert(outlier)
            twin.insert(outlier, pid)
            _assert_same(twin.skyline(), fleet.skyline())
            # A covered insert after the respawn still routes normally.
            point = np.random.default_rng(5).random(3)
            fleet.insert(point, pid + 1)
            twin.insert(point, pid + 1)
            _assert_same(twin.skyline(), fleet.skyline())
        assert counters.get(SERVE_SHARD_RESHARDS) == 1
        (event,) = log.of_kind("serve_reshard")
        assert event.reason == "uncovered"
        assert live_segments() == ()

    def test_worker_records_are_ctx_tagged_and_survive_reshard(self):
        from repro.obs.serve_trace import ServeTracer

        tracer = ServeTracer()
        with SkylineFleet(
            _data(40), num_shards=2, reshard=True, tracer=tracer
        ) as fleet:
            ctx = tracer.begin_query(0, "t0")
            size = len(fleet.skyline())
            tracer.commit_query(
                ctx, 0.0, 0.0, 0.01, cache_hit=False, result_size=size,
                epoch=fleet.epoch,
            )
            # The reshard respawns every worker; the records they hold
            # for the committed query must be stitched in, not dropped.
            fleet.insert(np.array([2.5, 2.5, 2.5]))
            spans = tracer.fleet_spans()
            assert {s.track for s in spans} == {"worker-0", "worker-1"}
            assert all(s.args["request_id"] == 0 for s in spans)
            assert all(s.name == "skyline#0" for s in spans)

    def test_untraced_rpcs_produce_no_records(self):
        with SkylineFleet(_data(40), num_shards=2) as fleet:
            fleet.insert(np.random.default_rng(9).random(3))
            fleet.skyline()
            drained = fleet.drain_span_records()
            assert all(recs == [] for recs in drained.values())


class TestFleetLifecycle:
    def test_failed_workload_setup_does_not_leak_the_fleet(self):
        # Regression for a REP008 finding: run_workload built the
        # frontend *outside* the try/finally that retires the fleet, so
        # a config error after fleet spawn leaked the worker processes
        # and their shared-memory segments.
        assert live_segments() == ()
        with pytest.raises(ValidationError):
            run_workload(
                "write-heavy",
                seed=1,
                scale=0.1,
                shards=2,
                fleet=True,
                policy="bogus",
            )
        assert live_segments() == ()
