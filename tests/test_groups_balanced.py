"""The balanced merging strategy (paper Section 8 future work)."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.grid.bitstring import Bitstring
from repro.grid.grid import Grid
from repro.grid.groups import (
    IndependentGroup,
    generate_independent_groups,
    merge_groups,
    merge_groups_balanced,
    merge_groups_communication,
    merge_groups_computation,
)


def random_groups(rng, grid_n=5):
    grid = Grid.unit(grid_n, 2)
    bits = rng.random(grid.num_partitions) < 0.5
    return grid, generate_independent_groups(grid, Bitstring(grid, bits))


class TestBalancedMerging:
    def test_respects_reducer_count(self, rng):
        _grid, groups = random_groups(rng)
        if not groups:
            pytest.skip("empty occupancy drawn")
        merged = merge_groups_balanced(groups, 3)
        assert 1 <= len(merged) <= 3

    def test_zero_weight_equals_computation_lpt(self, rng):
        _grid, groups = random_groups(rng)
        if not groups:
            pytest.skip("empty occupancy drawn")
        balanced = merge_groups_balanced(groups, 3, communication_weight=0.0)
        lpt = merge_groups_computation(groups, 3)
        assert sorted(m.cost for m in balanced) == sorted(
            m.cost for m in lpt
        )

    def test_full_coverage_and_unique_responsibility(self, rng):
        _grid, groups = random_groups(rng)
        if not groups:
            pytest.skip("empty occupancy drawn")
        merged = merge_groups_balanced(groups, 4)
        responsible = [p for m in merged for p in m.responsible]
        all_members = {p for g in groups for p in g.members}
        assert sorted(responsible) == sorted(set(responsible))
        assert set(responsible) == all_members

    def test_interpolates_between_extremes(self):
        """High communication weight should replicate no more
        partitions than pure LPT does on an overlap-heavy input."""
        groups = [
            IndependentGroup(seed=20, members=(1, 2, 3, 4, 20)),
            IndependentGroup(seed=21, members=(1, 2, 3, 4, 21)),
            IndependentGroup(seed=22, members=(9, 22)),
            IndependentGroup(seed=23, members=(9, 23)),
        ]

        def replicated(merged):
            return sum(len(m.partitions) for m in merged)

        sticky = merge_groups_balanced(groups, 2, communication_weight=10.0)
        lpt = merge_groups_computation(groups, 2)
        assert replicated(sticky) <= replicated(lpt)

    def test_dispatch_via_merge_groups(self, rng):
        _grid, groups = random_groups(rng)
        if not groups:
            pytest.skip("empty occupancy drawn")
        merged = merge_groups(groups, 3, strategy="balanced")
        assert merged

    def test_validation(self):
        with pytest.raises(ValidationError):
            merge_groups_balanced([], 0)
        with pytest.raises(ValidationError):
            merge_groups_balanced([], 2, communication_weight=-1)


class TestBalancedEndToEnd:
    def test_gpmrs_balanced_matches_oracle(self, oracle, rng):
        from repro.algorithms.gpmrs import MRGPMRS

        data = rng.random((300, 3))
        result = MRGPMRS(
            ppd=4, num_reducers=4, merge_strategy="balanced"
        ).compute(data)
        assert set(result.indices.tolist()) == oracle(data)

    def test_registry_accepts_balanced(self, oracle, rng):
        from repro import skyline

        data = rng.random((200, 2))
        result = skyline(
            data, algorithm="mr-gpmrs", merge_strategy="balanced"
        )
        assert set(result.indices.tolist()) == oracle(data)
