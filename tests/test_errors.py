"""The exception hierarchy contract."""

import pytest

from repro import errors


def test_all_errors_derive_from_repro_error():
    for name in (
        "ValidationError",
        "DataError",
        "GridError",
        "JobError",
        "JobValidationError",
        "AlgorithmError",
        "UnknownAlgorithmError",
    ):
        assert issubclass(getattr(errors, name), errors.ReproError)


def test_validation_errors_are_value_errors():
    assert issubclass(errors.ValidationError, ValueError)
    assert issubclass(errors.DataError, ValueError)
    assert issubclass(errors.GridError, ValueError)


def test_unknown_algorithm_is_key_error():
    assert issubclass(errors.UnknownAlgorithmError, KeyError)


def test_task_failed_error_carries_cause():
    cause = RuntimeError("boom")
    err = errors.TaskFailedError("map-0001", cause)
    assert err.task_id == "map-0001"
    assert err.cause is cause
    assert "map-0001" in str(err)
    assert "boom" in str(err)


def test_one_except_catches_everything():
    with pytest.raises(errors.ReproError):
        raise errors.GridError("bad grid")
    with pytest.raises(errors.ReproError):
        raise errors.TaskFailedError("reduce-0000", ValueError("x"))
