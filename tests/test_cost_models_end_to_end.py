"""End-to-end behaviour of the two cluster cost models."""

import numpy as np
import pytest

from repro import skyline
from repro.data.generators import generate
from repro.mapreduce.cluster import SimulatedCluster


class TestWorkModelEndToEnd:
    def test_deterministic_across_runs(self):
        """The work model is a pure function of the computation."""
        data = generate("anticorrelated", 2000, 4, seed=3)
        cluster = SimulatedCluster(cost_model="work")
        a = skyline(data, algorithm="mr-gpmrs", cluster=cluster)
        b = skyline(data, algorithm="mr-gpmrs", cluster=cluster)
        assert a.runtime_s == pytest.approx(b.runtime_s, rel=1e-12)

    def test_more_work_costs_more(self):
        cluster = SimulatedCluster(cost_model="work")
        small = skyline(
            generate("anticorrelated", 1000, 4, seed=3),
            algorithm="mr-gpsrs",
            cluster=cluster,
        )
        large = skyline(
            generate("anticorrelated", 8000, 4, seed=3),
            algorithm="mr-gpsrs",
            cluster=cluster,
        )
        assert large.runtime_s > small.runtime_s

    def test_rates_scale_runtime(self):
        data = generate("anticorrelated", 3000, 4, seed=3)
        slow = SimulatedCluster(compare_rate=1e5, task_overhead_s=0.0)
        fast = SimulatedCluster(compare_rate=1e8, task_overhead_s=0.0)
        a = skyline(data, algorithm="mr-gpsrs", cluster=slow)
        b = skyline(data, algorithm="mr-gpsrs", cluster=fast)
        assert a.runtime_s > b.runtime_s

    def test_overhead_floors_runtime(self):
        data = generate("independent", 200, 2, seed=4)
        cluster = SimulatedCluster(task_overhead_s=1.0)
        result = skyline(data, algorithm="mr-gpsrs", cluster=cluster)
        # two jobs, each at least map-wave + reduce overhead = 2s
        assert result.runtime_s >= 4.0


class TestMeasuredModelEndToEnd:
    def test_measured_mode_runs_and_is_positive(self):
        data = generate("independent", 2000, 3, seed=5)
        cluster = SimulatedCluster(cost_model="measured", task_overhead_s=0.0)
        result = skyline(data, algorithm="mr-gpmrs", cluster=cluster)
        assert result.runtime_s > 0

    def test_same_skyline_under_both_models(self):
        data = generate("anticorrelated", 1500, 3, seed=6)
        work = skyline(
            data,
            algorithm="mr-gpmrs",
            cluster=SimulatedCluster(cost_model="work"),
        )
        measured = skyline(
            data,
            algorithm="mr-gpmrs",
            cluster=SimulatedCluster(cost_model="measured"),
        )
        assert np.array_equal(work.indices, measured.indices)


class TestClusterShapeEffects:
    def test_more_nodes_never_slower_for_map_heavy_jobs(self):
        data = generate("independent", 6000, 5, seed=7)
        small = SimulatedCluster(num_nodes=2, task_overhead_s=0.0)
        big = SimulatedCluster(num_nodes=16, task_overhead_s=0.0)
        a = skyline(
            data, algorithm="mr-gpsrs", cluster=small, num_mappers=16
        )
        b = skyline(data, algorithm="mr-gpsrs", cluster=big, num_mappers=16)
        assert b.runtime_s <= a.runtime_s + 1e-9

    def test_bandwidth_prices_shuffle(self):
        data = generate("anticorrelated", 5000, 5, seed=8)
        slow_net = SimulatedCluster(
            bandwidth_bytes_per_s=1e4, task_overhead_s=0.0
        )
        fast_net = SimulatedCluster(
            bandwidth_bytes_per_s=1e9, task_overhead_s=0.0
        )
        a = skyline(data, algorithm="mr-bnl", cluster=slow_net)
        b = skyline(data, algorithm="mr-bnl", cluster=fast_net)
        assert a.runtime_s > b.runtime_s * 1.5  # MR-BNL ships everything
