"""MR-BNL / MR-SFS baselines (Zhang et al.)."""

import numpy as np
import pytest

from repro.algorithms.mr_bnl import (
    MRBNL,
    MRSFS,
    flag_can_dominate,
    subspace_flags,
)
from repro.data.generators import generate
from repro.mapreduce.counters import PARTITION_COMPARES


class TestSubspaceFlags:
    def test_median_split(self):
        mid = np.array([0.5, 0.5])
        values = np.array(
            [[0.1, 0.1], [0.9, 0.1], [0.1, 0.9], [0.9, 0.9], [0.5, 0.5]]
        )
        assert subspace_flags(values, mid).tolist() == [0, 1, 2, 3, 3]

    def test_flag_count_bounded(self, rng):
        values = rng.random((500, 4))
        flags = subspace_flags(values, np.full(4, 0.5))
        assert flags.min() >= 0 and flags.max() < 16


class TestFlagDominance:
    def test_subset_flags_can_dominate(self):
        assert flag_can_dominate(0b00, 0b11)
        assert flag_can_dominate(0b01, 0b01)
        assert flag_can_dominate(0b01, 0b11)

    def test_non_subset_cannot(self):
        assert not flag_can_dominate(0b10, 0b01)
        assert not flag_can_dominate(0b11, 0b00)

    def test_filter_is_safe(self, rng):
        """If flags say 'cannot dominate', no tuple pair may dominate."""
        from repro.core.dominance import dominates

        values = rng.random((200, 3))
        mid = np.full(3, 0.5)
        flags = subspace_flags(values, mid)
        for i in range(0, 200, 7):
            for j in range(0, 200, 11):
                if dominates(values[i], values[j]):
                    assert flag_can_dominate(int(flags[i]), int(flags[j]))


class TestMRBNL:
    @pytest.mark.parametrize("d", [2, 3, 4])
    def test_matches_oracle(self, oracle, distribution, d):
        data = generate(distribution, 250, d, seed=31)
        result = MRBNL().compute(data)
        assert set(result.indices.tolist()) == oracle(data)

    def test_two_jobs(self, rng):
        result = MRBNL().compute(rng.random((100, 3)))
        names = [j.job_name for j in result.stats.jobs]
        assert names == ["mr-bnl-local", "mr-bnl-merge"]

    def test_final_merge_single_reducer(self, rng):
        result = MRBNL().compute(rng.random((100, 3)))
        assert result.stats.jobs[1].num_reduce_tasks == 1

    def test_subspace_pair_comparisons_counted(self, rng):
        result = MRBNL().compute(rng.random((300, 3)))
        assert result.stats.jobs[1].counters[PARTITION_COMPARES] > 0

    def test_explicit_bounds(self, oracle, rng):
        data = rng.random((200, 2))
        result = MRBNL(bounds=(np.zeros(2), np.ones(2))).compute(data)
        assert set(result.indices.tolist()) == oracle(data)

    def test_empty(self):
        assert len(MRBNL().compute(np.empty((0, 3)))) == 0

    def test_duplicates(self):
        data = np.array([[0.2, 0.2]] * 4 + [[0.9, 0.9]])
        result = MRBNL().compute(data)
        assert sorted(result.indices.tolist()) == [0, 1, 2, 3]

    def test_whole_dataset_shuffled(self, rng):
        """The baseline's weakness: phase 1 ships every tuple."""
        data = rng.random((500, 4))
        result = MRBNL().compute(data)
        assert result.stats.jobs[0].shuffle_bytes >= data.nbytes


class TestMRSFS:
    def test_matches_oracle(self, oracle, rng):
        data = rng.random((300, 3))
        result = MRSFS().compute(data)
        assert set(result.indices.tolist()) == oracle(data)

    def test_same_skyline_as_mr_bnl(self, rng):
        data = generate("anticorrelated", 300, 3, seed=2)
        a = MRBNL().compute(data)
        b = MRSFS().compute(data)
        assert np.array_equal(a.indices, b.indices)

    def test_job_names(self, rng):
        result = MRSFS().compute(rng.random((50, 2)))
        assert result.stats.jobs[0].job_name == "mr-sfs-local"
