"""Skewed data, reducer load balance, and engine-variant coverage."""

import numpy as np
import pytest

from repro import skyline
from repro.data.generators import clustered, generate
from repro.mapreduce.cluster import SimulatedCluster
from repro.mapreduce.counters import TUPLE_COMPARES
from repro.mapreduce.parallel import ThreadPoolEngine


class TestSkewedOccupancy:
    """Clustered data concentrates tuples in few cells — the regime
    where grid pruning is strongest and groups are few."""

    @pytest.mark.parametrize(
        "algorithm", ["mr-gpsrs", "mr-gpmrs", "mr-bnl", "mr-angle", "sky-mr"]
    )
    def test_correct_on_clustered_data(self, oracle, algorithm):
        data = clustered(600, 3, seed=12, num_clusters=4)
        result = skyline(data, algorithm=algorithm)
        assert set(result.indices.tolist()) == oracle(data)

    def test_single_cluster_degenerates_gracefully(self, oracle):
        data = clustered(400, 3, seed=13, num_clusters=1, spread=0.02)
        result = skyline(data, algorithm="mr-gpmrs", num_reducers=8)
        assert set(result.indices.tolist()) == oracle(data)

    def test_extreme_mass_on_one_point(self, oracle):
        rng = np.random.default_rng(14)
        data = np.vstack(
            [np.full((500, 3), 0.5), rng.random((20, 3))]
        )
        for algorithm in ("mr-gpsrs", "mr-gpmrs"):
            result = skyline(data, algorithm=algorithm)
            assert set(result.indices.tolist()) == oracle(data), algorithm


class TestReducerLoadBalance:
    """Section 5.4.1's motivation: computation-cost merging balances
    reducer work."""

    def run_gpmrs(self, strategy, reducers=4):
        data = generate("anticorrelated", 20_000, 3, seed=54)
        result = skyline(
            data,
            algorithm="mr-gpmrs",
            num_reducers=reducers,
            merge_strategy=strategy,
            ppd=8,
            bounds=(np.zeros(3), np.ones(3)),
        )
        job = result.stats.jobs[1]
        loads = [
            t.counters[TUPLE_COMPARES]
            for t in job.reduce_tasks
            if t.records_in > 0
        ]
        return result, loads

    def test_computation_merging_balances_work(self):
        _result, loads = self.run_gpmrs("computation")
        assert len(loads) >= 2
        assert max(loads) <= 6 * (sum(loads) / len(loads))

    def test_all_strategies_same_skyline(self):
        results = [
            self.run_gpmrs(s)[0].id_set()
            for s in ("computation", "communication", "balanced")
        ]
        assert results[0] == results[1] == results[2]

    def test_communication_merging_ships_fewer_bytes(self):
        comp, _ = self.run_gpmrs("computation")
        comm, _ = self.run_gpmrs("communication")
        assert (
            comm.stats.jobs[1].shuffle_bytes
            <= comp.stats.jobs[1].shuffle_bytes
        )


class TestThreadEngineMatrix:
    """Every MR algorithm must be engine-agnostic."""

    @pytest.mark.parametrize(
        "algorithm",
        ["mr-gpsrs", "mr-gpmrs", "mr-bnl", "mr-angle", "sky-mr", "mr-hybrid"],
    )
    def test_thread_engine_matches_oracle(self, oracle, algorithm):
        data = generate("anticorrelated", 250, 3, seed=15)
        result = skyline(
            data,
            algorithm=algorithm,
            engine=ThreadPoolEngine(max_workers=4),
            cluster=SimulatedCluster(num_nodes=3),
        )
        assert set(result.indices.tolist()) == oracle(data)
