"""The REP rule catalogue against the known-bad fixture programs.

Every ``tests/checkdata/bad_repNNN.py`` fixture tags its violations
with ``<- REPNNN`` markers; the checker must report exactly the marked
(line, rule) pairs.  Both directions are enforced: a missed marker is a
false negative, an unmarked report is a false positive.

The suite also pins the pragma contract (suppression on the line or the
line above, REP007 for stale/unknown pragmas, docstring pragmas inert)
and — the actual gate — that the shipped ``src/repro`` tree is clean.
"""

import re
from pathlib import Path

import pytest

import repro
from repro.check import RULES, check_paths, check_source
from repro.check.rules import DEEP_RULES, VISITOR_RULES
from repro.check.runner import check_file, iter_python_files, main

DATA = Path(__file__).parent / "checkdata"
MARKER = re.compile(r"<-\s*(REP\d{3})")

BAD_FIXTURES = sorted(DATA.glob("bad_rep*.py"))
DEEP_FIXTURES = [p for p in BAD_FIXTURES if p.stem[len("bad_"):].upper() in DEEP_RULES]


def expected_markers(path):
    out = set()
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        match = MARKER.search(line)
        if match:
            out.add((lineno, match.group(1)))
    return out


class TestFixtures:
    @pytest.mark.parametrize("path", BAD_FIXTURES, ids=lambda p: p.stem)
    def test_deep_mode_fires_exactly_at_markers(self, path):
        # Deep mode is a superset of shallow mode, so every fixture —
        # visitor-rule and dataflow-rule alike — must be marker-exact
        # under --deep.  Extra reports are false positives, missing
        # reports are false negatives.
        expected = expected_markers(path)
        assert expected, f"fixture {path.name} has no <- REPNNN markers"
        got = {(v.line, v.rule_id) for v in check_file(path, deep=True)}
        assert got == expected

    @pytest.mark.parametrize(
        "path",
        [p for p in BAD_FIXTURES if p not in DEEP_FIXTURES],
        ids=lambda p: p.stem,
    )
    def test_shallow_mode_fires_exactly_at_markers(self, path):
        expected = expected_markers(path)
        got = {(v.line, v.rule_id) for v in check_file(path)}
        assert got == expected

    @pytest.mark.parametrize("path", DEEP_FIXTURES, ids=lambda p: p.stem)
    def test_deep_fixtures_are_silent_without_deep(self, path):
        # The dataflow rules only run under --deep; the default pass
        # must neither report them nor flag their pragmas as stale.
        assert check_file(path) == []

    def test_every_rule_has_a_fixture(self):
        covered = set()
        for path in BAD_FIXTURES:
            covered.update(rule for _, rule in expected_markers(path))
        assert covered == set(VISITOR_RULES) | set(DEEP_RULES)

    def test_clean_fixture_is_clean(self):
        assert check_file(DATA / "clean.py", deep=True) == []

    def test_violations_carry_rule_metadata(self):
        for violation in check_file(DATA / "bad_rep001.py"):
            assert violation.rule_id in RULES
            assert str(DATA / "bad_rep001.py") == violation.path
            rendered = violation.render()
            assert violation.rule_id in rendered
            assert f":{violation.line}:" in rendered


class TestPragmas:
    def test_pragma_suppresses_on_line_and_line_above(self):
        assert check_file(DATA / "pragma_used.py") == []

    def test_stale_pragma_is_rep007(self):
        violations = check_file(DATA / "pragma_unused.py")
        assert [v.rule_id for v in violations] == ["REP007"]
        assert violations[0].line == 5

    def test_unknown_rule_in_pragma_is_rep007(self):
        violations = check_source("x = 1  # repro: allow[REP999]\n", "inline")
        assert [v.rule_id for v in violations] == ["REP007"]
        assert "REP999" in violations[0].message

    def test_empty_pragma_is_rep007(self):
        violations = check_source("x = 1  # repro: allow[]\n", "inline")
        assert [v.rule_id for v in violations] == ["REP007"]

    def test_docstring_pragma_is_inert(self):
        source = (
            '"""Examples use # repro: allow[REP001] in docs."""\n'
            "import time\n"
            "\n"
            "\n"
            "def wall():\n"
            "    return time.time()\n"
        )
        violations = check_source(source, "inline")
        assert [v.rule_id for v in violations] == ["REP001"]

    def test_pragma_does_not_leak_to_other_lines(self):
        source = (
            "import time\n"
            "a = time.time()  # repro: allow[REP001]\n"
            "b = time.time()\n"
        )
        violations = check_source(source, "inline")
        assert [(v.rule_id, v.line) for v in violations] == [("REP001", 3)]

    DEEP_LEAK = (
        "def leak(cond):\n"
        "    arena = SharedArena()  # repro: allow[REP008]\n"
        "    if cond:\n"
        "        return None\n"
        "    return arena\n"
    )

    def test_pragma_suppresses_deep_rule(self):
        assert check_source(self.DEEP_LEAK, "inline", deep=True) == []

    def test_deep_pragma_is_not_stale_in_shallow_mode(self):
        # Without --deep the analysis that would use the pragma never
        # runs, so the shallow pass must not call it stale.
        assert check_source(self.DEEP_LEAK, "inline") == []

    def test_unused_deep_pragma_is_stale_in_deep_mode(self):
        source = "x = 1  # repro: allow[REP010]\n"
        violations = check_source(source, "inline", deep=True)
        assert [v.rule_id for v in violations] == ["REP007"]


class TestRunner:
    def test_unparseable_file_is_rep000(self):
        violations = check_source("def broken(:\n", "inline")
        assert [v.rule_id for v in violations] == ["REP000"]

    def test_iter_python_files_rejects_missing_paths(self):
        with pytest.raises(FileNotFoundError):
            iter_python_files(["no/such/path"])

    def test_main_exit_codes(self, capsys):
        assert main([str(DATA / "clean.py")]) == 0
        assert "clean" in capsys.readouterr().out
        assert main([str(DATA / "bad_rep006.py")]) == 1
        assert "REP006" in capsys.readouterr().out
        assert main(["no/such/path"]) == 2
        assert main(["--list-rules"]) == 0
        assert "REP004" in capsys.readouterr().out

    def test_json_output(self, capsys):
        import json

        assert main([str(DATA / "bad_rep006.py"), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload, "json output should carry the findings"
        for entry in payload:
            assert set(entry) == {"file", "line", "col", "rule", "message"}
        assert {e["rule"] for e in payload} == {"REP006"}

    def test_deep_flag_reaches_the_runner(self, capsys):
        assert main([str(DATA / "bad_rep009.py")]) == 0
        capsys.readouterr()
        assert main([str(DATA / "bad_rep009.py"), "--deep"]) == 1
        assert "REP009" in capsys.readouterr().out


class TestCounterFamilies:
    """REP003's documented-family handling (satellite of the serve-trace
    work: per-tenant counters are linted, not accidentally exempt)."""

    def test_family_regexes_cover_tenant_counters(self):
        from repro.mapreduce.counters import (
            counter_family_regexes,
            matches_counter_family,
            tenant_counter,
        )

        regexes = counter_family_regexes()
        assert "serve.tenant.<tenant>.queries" in regexes
        assert matches_counter_family(tenant_counter("t7", "queries"))
        assert not matches_counter_family("serve.tenant.t7.bogus")
        # A placeholder matches exactly one segment, never dots.
        assert not matches_counter_family("serve.tenant.a.b.queries")

    def test_literal_family_instance_is_accepted(self):
        source = (
            "def f(ctx):\n"
            "    ctx.counters.inc('serve.tenant.t3.shed')\n"
        )
        assert check_source(source, "inline") == []

    def test_fstring_outside_family_is_flagged(self):
        source = (
            "def f(ctx, t):\n"
            "    ctx.counters.inc(f'serve.{t}.queries')\n"
        )
        assert [v.rule_id for v in check_source(source, "inline")] == [
            "REP003"
        ]

    def test_builder_call_is_accepted_and_others_flagged(self):
        good = (
            "from repro.mapreduce.counters import tenant_counter\n"
            "def f(ctx, t):\n"
            "    ctx.counters.inc(tenant_counter(t, 'queries'))\n"
        )
        assert check_source(good, "inline") == []
        bad = (
            "def f(ctx, t):\n"
            "    ctx.counters.inc(make_name(t))\n"
        )
        assert [v.rule_id for v in check_source(bad, "inline")] == [
            "REP003"
        ]

    def test_family_regexes_cover_cost_counters(self):
        from repro.mapreduce.counters import (
            cost_counter,
            counter_family_regexes,
            matches_counter_family,
        )

        regexes = counter_family_regexes()
        assert "mr.cost.superstep.<step>.h_records" in regexes
        assert "mr.cost.superstep.<step>.h_bytes" in regexes
        assert matches_counter_family(cost_counter(4, "h_records"))
        assert not matches_counter_family("mr.cost.superstep.4.bogus")

    def test_cost_builder_call_is_accepted(self):
        source = (
            "from repro.mapreduce.counters import cost_counter\n"
            "def f(ctx, step):\n"
            "    ctx.counters.inc(cost_counter(step, 'h_bytes'))\n"
        )
        assert check_source(source, "inline") == []

    def test_undocumented_cost_counter_is_flagged(self):
        source = (
            "def f(ctx):\n"
            "    ctx.counters.inc('mr.cost.rogue')\n"
        )
        assert [v.rule_id for v in check_source(source, "inline")] == [
            "REP003"
        ]

    def test_bare_name_argument_stays_exempt(self):
        # A plain variable carries no syntactic evidence either way;
        # the lint only judges what it can see.
        source = (
            "def f(ctx, name):\n"
            "    ctx.counters.inc(name)\n"
        )
        assert check_source(source, "inline") == []


class TestRepoIsClean:
    def test_shipped_tree_has_no_violations_and_no_stale_pragmas(self):
        src_tree = Path(repro.__file__).parent
        violations = check_paths([str(src_tree)])
        assert violations == [], "\n".join(v.render() for v in violations)

    def test_shipped_tree_is_clean_under_deep_analysis(self):
        # The whole point of shipping the dataflow layer: the analyzer
        # holds the shm/fleet substrate itself to its own rules.
        src_tree = Path(repro.__file__).parent
        violations = check_paths([str(src_tree)], deep=True)
        assert violations == [], "\n".join(v.render() for v in violations)
