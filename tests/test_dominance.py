"""Tuple dominance semantics (Definition 1) and vectorised helpers."""

import numpy as np
import pytest

from repro.core import dominance
from repro.errors import DataError


class TestDominates:
    def test_strictly_better_everywhere(self):
        assert dominance.dominates([1, 1], [2, 2])

    def test_better_on_one_equal_on_rest(self):
        assert dominance.dominates([1, 2], [1, 3])

    def test_equal_tuples_do_not_dominate(self):
        assert not dominance.dominates([1, 2], [1, 2])

    def test_incomparable(self):
        assert not dominance.dominates([1, 3], [2, 1])
        assert not dominance.dominates([2, 1], [1, 3])

    def test_antisymmetric(self):
        assert dominance.dominates([0, 0], [1, 1])
        assert not dominance.dominates([1, 1], [0, 0])

    def test_dimension_mismatch_raises(self):
        with pytest.raises(DataError):
            dominance.dominates([1, 2], [1, 2, 3])

    def test_single_dimension(self):
        assert dominance.dominates([1], [2])
        assert not dominance.dominates([2], [2])


class TestCompare:
    def test_three_way(self):
        assert dominance.compare([1, 1], [2, 2]) == -1
        assert dominance.compare([2, 2], [1, 1]) == 1
        assert dominance.compare([1, 2], [2, 1]) == 0
        assert dominance.compare([1, 2], [1, 2]) == 0


class TestVectorised:
    def test_dominated_by_point(self):
        block = np.array([[2.0, 2.0], [0.5, 0.5], [1.0, 3.0], [1.0, 1.0]])
        mask = dominance.dominated_by_point(np.array([1.0, 1.0]), block)
        # dominates the worse row, the equal-on-one/worse-on-other row,
        # but not the better row or its own duplicate
        assert mask.tolist() == [True, False, True, False]

    def test_point_dominated_by(self):
        block = np.array([[2.0, 2.0], [0.5, 0.5]])
        assert dominance.point_dominated_by(np.array([1.0, 1.0]), block)
        assert not dominance.point_dominated_by(np.array([0.1, 0.1]), block)

    def test_point_dominated_by_empty_block(self):
        assert not dominance.point_dominated_by(
            np.array([1.0]), np.empty((0, 1))
        )

    def test_dominated_mask_matches_scalar(self, rng):
        cand = rng.random((40, 3))
        against = rng.random((60, 3))
        mask = dominance.dominated_mask(cand, against)
        for i in range(cand.shape[0]):
            expect = any(
                dominance.dominates(against[j], cand[i])
                for j in range(against.shape[0])
            )
            assert mask[i] == expect

    def test_dominated_mask_empty_inputs(self):
        assert dominance.dominated_mask(
            np.empty((0, 2)), np.ones((3, 2))
        ).shape == (0,)
        assert not dominance.dominated_mask(
            np.ones((3, 2)), np.empty((0, 2))
        ).any()

    def test_dominated_mask_dim_mismatch(self):
        with pytest.raises(DataError):
            dominance.dominated_mask(np.ones((2, 2)), np.ones((2, 3)))

    def test_dominated_mask_chunking(self, rng, monkeypatch):
        """A tiny chunk budget must not change the result."""
        cand = rng.random((50, 4))
        against = rng.random((70, 4))
        expect = dominance.dominated_mask(cand, against)
        monkeypatch.setattr(dominance, "_CHUNK_BUDGET", 64)
        assert np.array_equal(dominance.dominated_mask(cand, against), expect)

    def test_any_dominates(self):
        assert dominance.any_dominates(
            np.array([[0.0, 0.0]]), np.array([[1.0, 1.0]])
        )
        assert not dominance.any_dominates(
            np.array([[1.0, 0.0]]), np.array([[0.0, 1.0]])
        )

    def test_count_dominators(self):
        block = np.array([[0.0, 0.0], [0.5, 0.5], [2.0, 2.0], [1.0, 1.0]])
        assert dominance.count_dominators(np.array([1.0, 1.0]), block) == 2


class TestEntropyKey:
    def test_monotone_wrt_dominance(self, rng):
        data = rng.random((50, 3))
        keys = dominance.entropy_key(data)
        for i in range(50):
            for j in range(50):
                if dominance.dominates(data[i], data[j]):
                    assert keys[i] < keys[j]

    def test_handles_negative_values(self):
        keys = dominance.entropy_key(np.array([[-5.0, 1.0], [0.0, 0.0]]))
        assert keys.tolist() == [-4.0, 0.0]


class TestBruteforceMask:
    def test_simple(self):
        data = np.array([[1.0, 1.0], [2.0, 2.0], [0.5, 3.0]])
        mask = dominance.skyline_mask_bruteforce(data)
        assert mask.tolist() == [True, False, True]

    def test_duplicates_all_kept(self):
        data = np.array([[1.0, 1.0], [1.0, 1.0], [2.0, 2.0]])
        mask = dominance.skyline_mask_bruteforce(data)
        assert mask.tolist() == [True, True, False]

    def test_is_skyline_of(self):
        data = np.array([[1.0, 2.0], [2.0, 1.0], [3.0, 3.0]])
        assert dominance.is_skyline_of(data[:2], data)
        assert not dominance.is_skyline_of(data, data)


class TestDominanceCounter:
    def test_charge_and_merge(self):
        a = dominance.DominanceCounter()
        a.charge(10, 5)
        assert a.pairs == 50 and a.calls == 1
        b = dominance.DominanceCounter()
        b.charge(2, 2)
        a.merge(b)
        assert a.pairs == 54 and a.calls == 2
