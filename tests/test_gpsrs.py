"""MR-GPSRS (Algorithms 3-6)."""

import numpy as np
import pytest

from repro.algorithms.gpsrs import MRGPSRS
from repro.data.generators import generate
from repro.errors import ValidationError
from repro.mapreduce.cluster import SimulatedCluster
from repro.mapreduce.counters import (
    PARTITION_COMPARES,
    TUPLES_PRUNED_BY_BITSTRING,
)


class TestCorrectness:
    @pytest.mark.parametrize("d", [2, 3, 5])
    def test_matches_oracle(self, oracle, distribution, d):
        data = generate(distribution, 250, d, seed=17)
        result = MRGPSRS(ppd=3).compute(data)
        assert set(result.indices.tolist()) == oracle(data)

    def test_various_ppd(self, oracle, rng):
        data = rng.random((300, 3))
        expect = oracle(data)
        for ppd in (1, 2, 4, 7):
            result = MRGPSRS(ppd=ppd).compute(data)
            assert set(result.indices.tolist()) == expect, ppd

    def test_mapper_count_invariant(self, oracle, rng):
        data = rng.random((200, 3))
        expect = oracle(data)
        for m in (1, 2, 7, 25):
            result = MRGPSRS(ppd=3).compute(data, num_mappers=m)
            assert set(result.indices.tolist()) == expect, m

    def test_adaptive_strategies(self, oracle, rng):
        data = rng.random((400, 3))
        expect = oracle(data)
        for strategy in ("equation4", "adaptive-target", "adaptive-literal"):
            result = MRGPSRS(ppd_strategy=strategy).compute(data)
            assert set(result.indices.tolist()) == expect, strategy

    def test_without_pruning(self, oracle, rng):
        data = rng.random((300, 3))
        result = MRGPSRS(ppd=3, prune_bitstring=False).compute(data)
        assert set(result.indices.tolist()) == oracle(data)

    def test_explicit_bounds(self, oracle, rng):
        data = rng.random((200, 2))
        result = MRGPSRS(
            ppd=4, bounds=(np.zeros(2), np.ones(2))
        ).compute(data)
        assert set(result.indices.tolist()) == oracle(data)

    def test_duplicates_preserved(self):
        data = np.vstack([np.array([[0.1, 0.1]] * 3), np.array([[0.9, 0.9]])])
        result = MRGPSRS(ppd=3).compute(data)
        assert sorted(result.indices.tolist()) == [0, 1, 2]

    def test_empty_dataset(self):
        result = MRGPSRS().compute(np.empty((0, 3)))
        assert len(result) == 0
        assert result.stats.simulated_s == 0.0

    def test_single_row(self):
        result = MRGPSRS().compute(np.array([[1.0, 2.0]]))
        assert result.indices.tolist() == [0]

    def test_identical_rows_only(self):
        data = np.ones((20, 3))
        result = MRGPSRS(ppd=2).compute(data)
        assert len(result) == 20


class TestStructure:
    def test_two_job_pipeline(self, rng):
        result = MRGPSRS(ppd=3).compute(rng.random((100, 2)))
        assert [j.job_name for j in result.stats.jobs] == [
            "bitstring",
            "gpsrs-skyline",
        ]

    def test_single_reducer(self, rng):
        result = MRGPSRS(ppd=3).compute(rng.random((100, 2)))
        assert result.stats.jobs[1].num_reduce_tasks == 1

    def test_artifacts_exposed(self, rng):
        result = MRGPSRS(ppd=4).compute(rng.random((100, 2)))
        assert result.artifacts["grid"].n == 4
        assert result.artifacts["bitstring"].grid.n == 4

    def test_bitstring_pruning_drops_tuples(self):
        """Anti-corner clusters: the dominated cluster never shuffles."""
        rng = np.random.default_rng(3)
        good = rng.random((100, 2)) * 0.2  # near origin
        bad = rng.random((100, 2)) * 0.2 + 0.8  # dominated corner
        data = np.vstack([good, bad])
        result = MRGPSRS(ppd=4).compute(data)
        pruned = result.stats.jobs[1].counters[TUPLES_PRUNED_BY_BITSTRING]
        assert pruned >= 100

    def test_partition_compares_counted(self, rng):
        result = MRGPSRS(ppd=4).compute(rng.random((300, 2)))
        assert result.stats.jobs[1].counters[PARTITION_COMPARES] > 0

    def test_runtime_annotated(self, rng):
        cluster = SimulatedCluster(num_nodes=5)
        result = MRGPSRS(ppd=3).compute(rng.random((100, 2)), cluster=cluster)
        assert result.stats.simulated_s == pytest.approx(
            cluster.pipeline_makespan(result.stats.jobs)
        )

    def test_values_match_indices(self, rng):
        data = rng.random((150, 3))
        result = MRGPSRS(ppd=3).compute(data)
        assert np.array_equal(result.values, data[result.indices])

    def test_indices_sorted(self, rng):
        result = MRGPSRS(ppd=3).compute(rng.random((150, 3)))
        assert np.all(np.diff(result.indices) > 0)


class TestValidation:
    def test_bad_ppd(self):
        with pytest.raises(ValidationError):
            MRGPSRS(ppd=0)
        with pytest.raises(ValidationError):
            MRGPSRS(ppd=2.5)

    def test_bad_strategy(self):
        with pytest.raises(ValidationError):
            MRGPSRS(ppd_strategy="guess")

    def test_bad_tpp(self):
        with pytest.raises(ValidationError):
            MRGPSRS(tpp=0)
